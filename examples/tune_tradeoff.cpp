/**
 * @file
 * Operating-point tuning walkthrough: how a deployment picks between
 * JUNO-L / JUNO-M / JUNO-H and the threshold scaling factor to hit a
 * recall target at maximum throughput — the knobs of paper Sec. 4.1
 * and 5.4, all adjustable on one build.
 *
 *   ./build/examples/tune_tradeoff [target_recall]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

using namespace juno;

int
main(int argc, char **argv)
{
    const double target = argc > 1 ? std::atof(argv[1]) : 0.9;

    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 15000;
    spec.num_queries = 40;
    spec.seed = 5;
    const auto data = makeDataset(spec);
    const auto gt = computeGroundTruth(data.metric, data.base.view(),
                                       data.queries.view(), 100);

    JunoParams params;
    params.clusters = 192;
    params.pq_entries = 128;
    JunoIndex index(data.metric, data.base.view(), params);
    std::printf("tuning for R1@100 >= %.2f\n\n", target);

    struct Candidate {
        std::string label;
        double recall;
        double qps;
    };
    std::vector<Candidate> feasible;

    for (SearchMode mode : {SearchMode::kHitCount,
                            SearchMode::kRewardPenalty,
                            SearchMode::kExactDistance}) {
        index.setSearchMode(mode);
        for (double scale : {0.5, 0.75, 1.0}) {
            index.setThresholdScale(scale);
            for (idx_t nprobs : {8, 32, 128}) {
                index.setNprobs(nprobs);
                Timer timer;
                const auto results = index.search(
                    SearchRequest(data.queries.view(), /*k=*/100));
                const double secs = timer.seconds();
                const double recall = recall1AtK(gt, results);
                const double qps =
                    static_cast<double>(data.queries.rows()) / secs;
                const std::string label =
                    std::string(searchModeName(mode)) + " scale=" +
                    std::to_string(scale).substr(0, 4) +
                    " nprobs=" + std::to_string(nprobs);
                std::printf("  %-38s recall=%.3f qps=%7.0f%s\n",
                            label.c_str(), recall, qps,
                            recall >= target ? "  <- feasible" : "");
                if (recall >= target)
                    feasible.push_back({label, recall, qps});
            }
        }
    }

    if (feasible.empty()) {
        std::printf("\nno configuration reached %.2f; raise nprobs or "
                    "use JUNO-H with scale 1.0\n", target);
        return 1;
    }
    const Candidate *best = &feasible[0];
    for (const auto &cand : feasible)
        if (cand.qps > best->qps)
            best = &cand;
    std::printf("\nselected operating point: %s (recall %.3f, %.0f "
                "QPS)\n",
                best->label.c_str(), best->recall, best->qps);
    return 0;
}
