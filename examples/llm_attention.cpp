/**
 * @file
 * LLM-serving scenario (the paper's Sec. 6.5 motivation): use JUNO's
 * MIPS search to retrieve the most significant keys of a long-context
 * attention head, computing attention only over the retrieved subset.
 *
 *   ./build/examples/llm_attention
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/distance.h"
#include "common/rng.h"
#include "core/juno_index.h"

using namespace juno;

int
main()
{
    // A long context window: one key vector per past token.
    const idx_t context_len = 4096;
    const idx_t head_dim = 128;
    Rng rng(2026);
    FloatMatrix keys(context_len, head_dim);
    FloatMatrix values(context_len, head_dim);
    for (idx_t i = 0; i < context_len; ++i)
        for (idx_t j = 0; j < head_dim; ++j) {
            keys.at(i, j) = static_cast<float>(rng.gaussian(0.0, 1.0));
            values.at(i, j) = static_cast<float>(rng.gaussian(0.0, 1.0));
        }
    // Give ~5% of tokens strong norms so attention is concentrated,
    // matching the head statistics the paper's Fig. 15 relies on.
    for (idx_t i = 0; i < context_len; ++i)
        if (rng.uniform() < 0.05)
            for (idx_t j = 0; j < head_dim; ++j)
                keys.at(i, j) *= 3.0f;

    // Index the keys under inner product — attention logits ARE inner
    // products, so MIPS retrieval selects the heaviest keys.
    JunoParams params = junoPresetH();
    params.clusters = 64;
    params.pq_entries = 64;
    params.nprobs = 24;
    JunoIndex index(Metric::kInnerProduct, keys.view(), params);
    std::printf("indexed %lld keys of a %lld-dim attention head\n",
                static_cast<long long>(context_len),
                static_cast<long long>(head_dim));

    // Serve a few decode steps: each new query attends to the top 8%
    // of keys instead of the full context.
    const idx_t kept = context_len * 8 / 100;
    const double inv_sqrt_d =
        1.0 / std::sqrt(static_cast<double>(head_dim));
    double total_mass = 0.0;
    const int steps = 16;
    for (int step = 0; step < steps; ++step) {
        std::vector<float> q(static_cast<std::size_t>(head_dim));
        for (auto &v : q)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));

        // Exact softmax normaliser for scoring.
        std::vector<double> w(static_cast<std::size_t>(context_len));
        double max_logit = -1e300;
        for (idx_t i = 0; i < context_len; ++i) {
            w[static_cast<std::size_t>(i)] =
                innerProduct(q.data(), keys.row(i), head_dim) *
                inv_sqrt_d;
            max_logit =
                std::max(max_logit, w[static_cast<std::size_t>(i)]);
        }
        double z = 0.0;
        for (auto &lw : w) {
            lw = std::exp(lw - max_logit);
            z += lw;
        }

        // ANN-retrieved sparse attention.
        const auto top = index.searchOne(q.data(), kept);
        double mass = 0.0;
        for (const auto &nb : top)
            mass += w[static_cast<std::size_t>(nb.id)] / z;
        total_mass += mass;
        if (step < 4)
            std::printf("decode step %d: attended %lld/%lld keys, "
                        "softmax mass retained %.3f\n",
                        step, static_cast<long long>(top.size()),
                        static_cast<long long>(context_len), mass);
    }
    std::printf("\nmean softmax mass retained over %d steps at 8%% keys: "
                "%.3f\n",
                steps, total_mass / steps);
    std::printf("(the paper's Fig. 15: <20%% of attention suffices for "
                "Llama-7B quality)\n");
    return 0;
}
