/**
 * @file
 * Index lifecycle walkthrough: train once, save a versioned snapshot,
 * reload in a "fresh process" and serve queries — the deployment
 * pattern for JUNO's expensive offline phase (IVF + codebooks +
 * density maps + threshold regressors + the interleaved code plane
 * are all persisted; the RT scene and the entry->points index are
 * rebuilt deterministically on load).
 *
 * Two reload paths are shown: the typed JunoIndex::load() (knob
 * access), and the factory openIndex() that re-opens *any* snapshot
 * by its stored spec string with zero-copy mmap views.
 *
 *   ./build/examples/persistence [index-path]
 */
#include <cstdio>
#include <string>

#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"
#include "registry/index_factory.h"

using namespace juno;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/juno_example_index.bin";

    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 10000;
    spec.num_queries = 30;
    spec.seed = 99;
    const auto data = makeDataset(spec);

    // --- "Training process": build and persist. ---
    {
        JunoParams params = junoPresetH();
        params.clusters = 128;
        params.pq_entries = 64;
        params.nprobs = 16;
        Timer build_timer;
        JunoIndex index(data.metric, data.base.view(), params);
        std::printf("offline build: %.1fs\n", build_timer.seconds());
        Timer save_timer;
        index.save(path);
        std::printf("saved %s in %.0f ms\n", path.c_str(),
                    save_timer.millis());
    } // index destroyed: nothing but the file survives

    // --- "Serving process": load and search. ---
    Timer load_timer;
    auto index = JunoIndex::load(path);
    std::printf("loaded %s in %.0f ms (%lld points, %s)\n",
                index->name().c_str(), load_timer.millis(),
                static_cast<long long>(index->size()),
                metricName(index->metric()));

    const auto gt = computeGroundTruth(data.metric, data.base.view(),
                                       data.queries.view(), 100);
    // Serving path: batch + thread-parallel search via SearchRequest.
    SearchRequest request(data.queries.view(), /*k=*/100);
    request.options.threads = 2;
    Timer search_timer;
    const auto results = index->search(request);
    std::printf("serving: %.0f QPS, R1@100 = %.3f\n",
                static_cast<double>(data.queries.rows()) /
                    search_timer.seconds(),
                recall1AtK(gt, results));

    // Knobs persist too, and remain adjustable after load.
    index->setSearchMode(SearchMode::kHitCount);
    index->setThresholdScale(0.7);
    const auto fast = index->search(request);
    std::printf("after retune (JUNO-L, scale 0.7): R1@100 = %.3f\n",
                recall1AtK(gt, fast));

    // The factory path: any snapshot re-opens through its stored spec
    // string, with the large payloads memory-mapped (zero-copy).
    Timer open_timer;
    auto generic = openIndex(path);
    std::printf("openIndex: %s in %.0f ms (spec %s)\n",
                generic->name().c_str(), open_timer.millis(),
                generic->spec().c_str());

    std::remove(path.c_str());
    return 0;
}
