/**
 * @file
 * Image-retrieval scenario (the paper's SIFT workload): descriptor
 * vectors, an accuracy/latency service-level target, and a comparison
 * of JUNO against the FAISS-style IVFPQ baseline the paper evaluates.
 *
 * Demonstrates: choosing presets per SLO, reading per-stage timers,
 * and falling back to real .fvecs corpora when available.
 *
 *   ./build/examples/image_search [base.fvecs query.fvecs]
 */
#include <cstdio>

#include "baseline/ivfpq_index.h"
#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

using namespace juno;

int
main(int argc, char **argv)
{
    // Load real SIFT descriptors when provided, else synthesise.
    FloatMatrix base, queries;
    if (argc == 3) {
        std::printf("loading %s / %s\n", argv[1], argv[2]);
        base = readFvecs(argv[1]);
        queries = readFvecs(argv[2]);
    } else {
        SyntheticSpec spec;
        spec.kind = DatasetKind::kSiftLike; // D = 128 descriptors
        spec.num_points = 20000;
        spec.num_queries = 50;
        spec.seed = 7;
        auto data = makeDataset(spec);
        base = std::move(data.base);
        queries = std::move(data.queries);
        std::printf("synthetic SIFT-like corpus: %lld descriptors\n",
                    static_cast<long long>(base.rows()));
    }

    const GroundTruth gt = computeGroundTruth(Metric::kL2, base.view(),
                                              queries.view(), 100);

    // The FAISS-style baseline at the paper's PQ64 configuration.
    IvfPqIndex::Params bp;
    bp.clusters = 256;
    bp.pq_subspaces = 64;
    bp.pq_entries = 128;
    bp.nprobs = 32;
    IvfPqIndex baseline(Metric::kL2, base.view(), bp);

    JunoParams jp = junoPresetH();
    jp.clusters = 256;
    jp.pq_entries = 128;
    jp.nprobs = 32;
    JunoIndex index(Metric::kL2, base.view(), jp);

    // Batched request shared by every run below (the serving shape:
    // one request object, many index configurations).
    SearchRequest request(queries.view(), /*k=*/100);
    request.options.threads = 2;

    auto report = [&](AnnIndex &idx) {
        idx.resetStageTimers();
        Timer timer;
        const auto results = idx.search(request);
        const double secs = timer.seconds();
        std::printf("%-16s  QPS=%7.0f  R1@100=%.3f  stages:",
                    idx.name().c_str(),
                    static_cast<double>(queries.rows()) / secs,
                    recall1AtK(gt, results));
        for (const auto &stage : idx.stageTimers().names())
            std::printf(" %s=%.1fms", stage.c_str(),
                        idx.stageTimers().seconds(stage) * 1e3);
        std::printf("\n");
    };

    std::printf("\n-- high-quality retrieval (JUNO-H vs IVFPQ) --\n");
    report(baseline);
    report(index);

    std::printf("\n-- recall/latency sweep on one build --\n");
    for (double scale : {1.0, 0.8, 0.6, 0.4}) {
        index.setThresholdScale(scale);
        Timer timer;
        const auto results = index.search(request);
        const double secs = timer.seconds();
        std::printf("scale=%.1f  QPS=%7.0f  R1@100=%.3f\n", scale,
                    static_cast<double>(queries.rows()) / secs,
                    recall1AtK(gt, results));
    }
    return 0;
}
