/**
 * @file
 * Quickstart: build a JUNO index over synthetic vectors, search it,
 * and score the result against exact ground truth.
 *
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

using namespace juno;

int
main()
{
    // 1. Get some vectors. Real corpora load via readFvecs(); here we
    //    synthesise a DEEP-like clustered embedding set.
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike; // D = 96, L2 metric
    spec.num_points = 20000;
    spec.num_queries = 50;
    spec.seed = 1;
    const Dataset data = makeDataset(spec);
    std::printf("dataset: %s, %lld points, D=%lld, metric=%s\n",
                data.name.c_str(),
                static_cast<long long>(data.base.rows()),
                static_cast<long long>(data.base.cols()),
                metricName(data.metric));

    // 2. Configure and build the index. The constructor runs the whole
    //    offline phase: IVF clustering, PQ codebooks, the entry->points
    //    inverted index, density maps, threshold regressors, and the
    //    ray-traced entry scene.
    JunoParams params = junoPresetH(); // exact-distance quality preset
    params.clusters = 256;
    params.pq_entries = 128;
    params.nprobs = 32;
    JunoIndex index(data.metric, data.base.view(), params);
    std::printf("built %s over %lld vectors\n", index.name().c_str(),
                static_cast<long long>(index.size()));

    // 3. Search. A SearchRequest batches all queries; options.threads
    //    shards the batch across worker threads (results are identical
    //    at any thread count — only the throughput changes).
    SearchRequest request(data.queries.view(), /*k=*/100);
    request.options.threads = 2;
    Timer timer;
    const SearchResults results = index.search(request);
    const double seconds = timer.seconds();
    std::printf("searched %lld queries on %d threads in %.1f ms "
                "(%.0f QPS)\n",
                static_cast<long long>(data.queries.rows()),
                index.lastSearchThreads(), seconds * 1e3,
                static_cast<double>(data.queries.rows()) / seconds);

    // 4. Score against exact ground truth.
    const GroundTruth gt = computeGroundTruth(
        data.metric, data.base.view(), data.queries.view(), 100);
    std::printf("R1@100   = %.3f\n", recall1AtK(gt, results));
    std::printf("R100@100 = %.3f\n", recallMAtK(gt, results, 100));

    // 5. Trade quality for throughput without rebuilding: switch to the
    //    hit-count preset and tighten the threshold scale.
    index.setSearchMode(SearchMode::kHitCount);
    index.setThresholdScale(0.7);
    timer.reset();
    const auto fast_results = index.search(request);
    const double fast_seconds = timer.seconds();
    std::printf("JUNO-L: %.0f QPS, R1@100 = %.3f\n",
                static_cast<double>(data.queries.rows()) / fast_seconds,
                recall1AtK(gt, fast_results));
    return 0;
}
