/**
 * @file
 * Serving-layer bench: what micro-batching buys for purely concurrent
 * traffic (the workload the paper's dispatched batches amortise,
 * Sec. 5.3), and what it costs in latency.
 *
 * Two harnesses per batch-window setting:
 *  - capacity: closed-loop clients keep a bounded window of requests
 *    in flight (self-pacing, never sheds), measuring the sustainable
 *    QPS of the whole service path. The `batch=1` row is the
 *    no-batching baseline: every request is dispatched alone, paying
 *    the full wake-dispatch-complete cycle per query, which is
 *    exactly the per-query cost micro-batching amortises.
 *  - open loop: Poisson arrivals at a target rate (clients never wait
 *    for completions, like independent front-ends), reporting
 *    achieved QPS, shed fraction and the queue/search/total latency
 *    split at p50/p95/p99 — the numbers a latency SLO is written
 *    against. Offered rates derive from the measured baseline
 *    capacity so the sweep lands in comparable operating regimes on
 *    any host.
 *
 * A third leg (skipped under --smoke) offers 2.5x the measured
 * capacity with the overload machinery off, then on (deadline
 * propagation + tiered degradation), gating on conservation, on
 * late-implies-degraded, and on the resilient p99 staying near the
 * deadline while the baseline's collapses; `--overload-json <path>`
 * dumps that comparison (BENCH_overload.json).
 *
 * `--smoke` runs a seconds-scale pass asserting the service invariants
 * (completed == submitted, zero sheds in the closed loop, result and
 * recall parity with direct batch search) and exits nonzero on any
 * violation — the CI leg. `--json <path>` dumps the measured points
 * like the fig12 snapshot.
 */
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"

#include "baseline/ivfflat_index.h"
#include "bench_common.h"
#include "common/build_info.h"
#include "common/rng.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"
#include "harness/reporter.h"
#include "registry/index_factory.h"
#include "serve/hot_list_cache.h"
#include "serve/search_service.h"

using namespace juno;

namespace {

using Clock = std::chrono::steady_clock;

struct BatchSetting {
    std::string label;
    idx_t max_batch;
    std::chrono::microseconds linger;
};

struct Options {
    bool smoke = false;
    bool quick = false;
    std::string json_path;
    /** Where the overload-leg snapshot goes (BENCH_overload.json). */
    std::string overload_json_path;
    /** Snapshot to serve from (skips the in-process build). */
    std::string load_path;
    /** Hot-list cache budget (bytes, k/m/g suffix); -1 = unset. */
    std::int64_t mem_budget = -1;
    idx_t num_points = 8000;
    idx_t dim = 96;
    idx_t num_queries = 256;
    idx_t k = 10;
    int clusters = 1024;
    idx_t nprobs = 1;
    int clients = 4;
    /**
     * Requests each client keeps pipelined (a realistic RPC frontend
     * bounds its outstanding calls). clients * window is the
     * concurrency ceiling, so sweep settings cap max_batch at it.
     */
    int window = 8;
    std::uint64_t closed_requests = 60000;
    double open_duration_s = 1.0;
};

struct RunResult {
    double qps = 0.0;
    double offered = 0.0; ///< open loop only
    std::uint64_t attempted = 0;
    std::uint64_t client_errors = 0; ///< exceptions out of future.get()
    ServiceStats::Snapshot snap;
};

/** Out-of-core budget forwarded to every service in the sweep. */
std::int64_t g_mem_budget = -1;

ServiceConfig
serviceConfig(const BatchSetting &setting)
{
    ServiceConfig config;
    config.max_batch = setting.max_batch;
    config.linger = setting.linger;
    config.queue_capacity = 4096;
    config.memory_budget_bytes = g_mem_budget;
    return config;
}

/**
 * Closed loop: each client keeps @p window requests in flight and
 * replenishes as they complete; total throughput is the service's
 * sustainable capacity under this setting.
 */
RunResult
runClosedLoop(AnnIndex &index, FloatMatrixView queries, idx_t k,
              const BatchSetting &setting, int clients, int window,
              std::uint64_t total_requests,
              const ServiceConfig *config_override = nullptr)
{
    SearchService service(index, config_override != nullptr
                                     ? *config_override
                                     : serviceConfig(setting));
    service.start();
    const std::uint64_t per_client =
        total_requests / static_cast<std::uint64_t>(clients);
    std::atomic<std::uint64_t> errors{0};

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            // get() rethrows engine failures; an escape from a
            // std::thread body would terminate the bench instead of
            // failing it.
            try {
                const idx_t nq = queries.rows();
                idx_t qi = static_cast<idx_t>(c) % nq;
                std::deque<std::future<ResultList>> inflight;
                for (std::uint64_t i = 0; i < per_client; ++i) {
                    if (inflight.size() >=
                        static_cast<std::size_t>(window)) {
                        inflight.front().get();
                        inflight.pop_front();
                    }
                    RejectReason reason = RejectReason::kNone;
                    auto f =
                        service.submit(queries.row(qi), k, &reason);
                    qi = (qi + 1) % nq;
                    if (reason == RejectReason::kNone)
                        inflight.push_back(std::move(f));
                    // else: shed — the dropped future already holds
                    // its RejectedError; the service's per-reason
                    // counter is reconciled by the caller's
                    // conservation gate.
                }
                while (!inflight.empty()) {
                    inflight.front().get();
                    inflight.pop_front();
                }
            } catch (const std::exception &err) {
                std::fprintf(stderr, "client %d: %s\n", c, err.what());
                errors.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    service.stop();

    RunResult result;
    result.snap = service.snapshot();
    result.attempted =
        per_client * static_cast<std::uint64_t>(clients);
    result.client_errors = errors.load();
    result.qps = static_cast<double>(result.snap.completed) / secs;
    return result;
}

/**
 * Open loop: Poisson arrivals at @p offered_qps split across clients;
 * clients never block on completions, so latency reflects the
 * service, not client pacing. Sheds (queue full) are counted, not
 * retried.
 */
RunResult
runOpenLoop(AnnIndex &index, FloatMatrixView queries, idx_t k,
            const BatchSetting &setting, int clients,
            double offered_qps, double duration_s)
{
    SearchService service(index, serviceConfig(setting));
    service.start();
    const double per_client_rate =
        offered_qps / static_cast<double>(clients);
    std::atomic<std::uint64_t> attempted{0};
    std::atomic<std::uint64_t> errors{0};

    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration_s));
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            try {
                Rng rng(0xC0FFEE + static_cast<std::uint64_t>(c));
                const idx_t nq = queries.rows();
                idx_t qi = static_cast<idx_t>(c) % nq;
                std::vector<std::future<ResultList>> futures;
                futures.reserve(4096);
                auto next = Clock::now();
                std::uint64_t sent = 0;
                while (true) {
                    // Exponential inter-arrival: a Poisson process
                    // per client; the superposition is Poisson at the
                    // target.
                    const double gap_s =
                        -std::log(1.0 - rng.uniform()) /
                        per_client_rate;
                    next +=
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(gap_s));
                    if (next >= deadline)
                        break;
                    std::this_thread::sleep_until(next);
                    RejectReason reason = RejectReason::kNone;
                    auto f =
                        service.submit(queries.row(qi), k, &reason);
                    qi = (qi + 1) % nq;
                    ++sent;
                    if (reason == RejectReason::kNone)
                        futures.push_back(std::move(f));
                }
                attempted.fetch_add(sent);
                for (auto &f : futures)
                    f.get();
            } catch (const std::exception &err) {
                std::fprintf(stderr, "client %d: %s\n", c, err.what());
                errors.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    service.stop();

    RunResult result;
    result.snap = service.snapshot();
    result.offered = offered_qps;
    result.attempted = attempted.load();
    result.client_errors = errors.load();
    result.qps = static_cast<double>(result.snap.completed) / secs;
    return result;
}

/** One overload-leg run: open loop far past capacity, resilience
 * mechanisms on or off, with client-side shed/degraded accounting. */
struct OverloadResult {
    double offered = 0.0;
    double qps = 0.0;
    std::uint64_t attempted = 0;
    /** submit() refusals, by reason (client view of the door). */
    std::uint64_t shed_submit_full = 0;
    std::uint64_t shed_submit_expired = 0;
    /** Accepted but shed at dequeue: future threw RejectedError. */
    std::uint64_t shed_queue_expired = 0;
    std::uint64_t completed_seen = 0;
    std::uint64_t degraded_seen = 0;
    /**
     * Completions observed past their deadline (plus a reap-lag
     * grace) whose result was NOT flagged degraded. The resilience
     * contract says this is always zero: a late completion is a
     * degraded completion.
     */
    std::uint64_t late_unmarked = 0;
    std::uint64_t client_errors = 0;
    ServiceStats::Snapshot snap;
};

/**
 * Open-loop arrivals at @p offered_qps (far past capacity by
 * construction of the caller) against a service configured with
 * @p deadline_us (0 = none) and @p degrade. Futures are reaped
 * promptly — polled as arrivals proceed — so the client can check the
 * late-implies-degraded contract with a small grace for reap lag.
 */
OverloadResult
runOverloadLoop(AnnIndex &index, FloatMatrixView queries, idx_t k,
                const BatchSetting &setting, int clients,
                double offered_qps, double duration_s,
                double deadline_us, bool degrade)
{
    ServiceConfig config = serviceConfig(setting);
    config.default_deadline_ms = deadline_us / 1000.0;
    config.degradation.enabled = degrade;
    // Deadline shedding keeps the standing queue short, so depth alone
    // would never trip the policy; arm the lagging signal with half
    // the deadline as the queue-wait budget (waits run right up to the
    // deadline under sustained overload).
    if (degrade && deadline_us > 0.0)
        config.degradation.queue_p95_budget_us = deadline_us / 2.0;
    SearchService service(index, config);
    service.start();
    const double per_client_rate =
        offered_qps / static_cast<double>(clients);
    const bool deadlined = deadline_us > 0.0;
    const auto budget = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::micro>(deadline_us));
    // Absorbs the gap between the service fulfilling a future and the
    // client's poll observing it; the service-side marking itself is
    // exact, so the grace only avoids false positives.
    constexpr std::chrono::milliseconds kReapGrace{20};

    std::atomic<std::uint64_t> attempted{0}, shed_full{0},
        shed_submit_expired{0}, shed_queue_expired{0}, completed{0},
        degraded{0}, late_unmarked{0}, errors{0};

    const auto t0 = Clock::now();
    const auto t_end =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration_s));
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            Rng rng(0xBADCAB1E + static_cast<std::uint64_t>(c));
            const idx_t nq = queries.rows();
            idx_t qi = static_cast<idx_t>(c) % nq;
            struct Pending {
                std::future<ResultList> f;
                Clock::time_point deadline;
            };
            std::deque<Pending> pending;
            auto reapOne = [&](Pending &p, Clock::time_point t_ready) {
                try {
                    const ResultList r = p.f.get();
                    completed.fetch_add(1);
                    if (r.degraded)
                        degraded.fetch_add(1);
                    else if (deadlined &&
                             t_ready > p.deadline + kReapGrace)
                        late_unmarked.fetch_add(1);
                } catch (const RejectedError &) {
                    shed_queue_expired.fetch_add(1);
                } catch (const std::exception &err) {
                    std::fprintf(stderr, "client %d: %s\n", c,
                                 err.what());
                    errors.fetch_add(1);
                }
            };
            auto next = Clock::now();
            std::uint64_t sent = 0;
            while (true) {
                const double gap_s = -std::log(1.0 - rng.uniform()) /
                                     per_client_rate;
                next += std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(gap_s));
                if (next >= t_end)
                    break;
                std::this_thread::sleep_until(next);
                RejectReason reason = RejectReason::kNone;
                auto f = service.submit(queries.row(qi), k, &reason);
                qi = (qi + 1) % nq;
                ++sent;
                if (reason == RejectReason::kNone)
                    pending.push_back(
                        {std::move(f), Clock::now() + budget});
                else if (reason == RejectReason::kQueueFull)
                    shed_full.fetch_add(1);
                else
                    shed_submit_expired.fetch_add(1);
                // Prompt reap: drain whatever already resolved so the
                // observed completion time tracks the real one.
                while (!pending.empty() &&
                       pending.front().f.wait_for(
                           std::chrono::seconds(0)) ==
                           std::future_status::ready) {
                    reapOne(pending.front(), Clock::now());
                    pending.pop_front();
                }
            }
            attempted.fetch_add(sent);
            // Final drain: poll at 1ms so even the tail's observed
            // ready times stay well inside the grace.
            while (!pending.empty()) {
                while (pending.front().f.wait_for(
                           std::chrono::milliseconds(1)) !=
                       std::future_status::ready) {
                }
                reapOne(pending.front(), Clock::now());
                pending.pop_front();
            }
        });
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    service.stop();

    OverloadResult result;
    result.snap = service.snapshot();
    result.offered = offered_qps;
    result.qps = static_cast<double>(result.snap.completed) / secs;
    result.attempted = attempted.load();
    result.shed_submit_full = shed_full.load();
    result.shed_submit_expired = shed_submit_expired.load();
    result.shed_queue_expired = shed_queue_expired.load();
    result.completed_seen = completed.load();
    result.degraded_seen = degraded.load();
    result.late_unmarked = late_unmarked.load();
    result.client_errors = errors.load();
    return result;
}

/**
 * Routes every query through a service once and checks the serving
 * invariants against a direct search(SearchRequest) run: identical
 * result lists (hence identical recall) and conservation (every
 * accepted request completed exactly once). Returns failure count.
 */
int
checkParity(AnnIndex &index, const Dataset &ds, idx_t k,
            const BatchSetting &setting, const GroundTruth &gt)
{
    int failures = 0;
    const auto direct = index.search(ds.queries.view(), k);

    SearchService service(index, serviceConfig(setting));
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        futures.push_back(service.submit(ds.queries.view().row(q), k));
    SearchResults served;
    bool any_degraded = false;
    for (auto &f : futures) {
        try {
            ResultList list = f.get();
            any_degraded = any_degraded || list.degraded;
            served.push_back(std::move(list));
        } catch (const RejectedError &err) {
            std::fprintf(stderr,
                         "PARITY FAIL: request rejected under "
                         "no load (%s)\n",
                         rejectReasonName(err.reason()));
            ++failures;
            served.emplace_back();
        }
    }
    service.stop();
    // An unloaded service with every overload feature at its default
    // must never mark a result degraded (the parity promise).
    if (any_degraded) {
        std::fprintf(stderr, "PARITY FAIL: degraded result without "
                             "deadline or degradation armed\n");
        ++failures;
    }

    for (std::size_t q = 0; q < served.size(); ++q)
        if (served[q] != direct[q]) {
            std::fprintf(stderr,
                         "PARITY FAIL: query %zu differs from direct "
                         "batch search\n",
                         q);
            ++failures;
        }
    const double recall_direct = recall1AtK(gt, direct);
    const double recall_served = recall1AtK(gt, served);
    if (recall_direct != recall_served) {
        std::fprintf(stderr, "PARITY FAIL: recall %f != %f\n",
                     recall_served, recall_direct);
        ++failures;
    }
    const auto snap = service.snapshot();
    if (snap.completed != snap.submitted ||
        snap.submitted !=
            static_cast<std::uint64_t>(ds.queries.rows())) {
        std::fprintf(stderr,
                     "PARITY FAIL: submitted=%llu completed=%llu "
                     "expected=%lld\n",
                     static_cast<unsigned long long>(snap.submitted),
                     static_cast<unsigned long long>(snap.completed),
                     static_cast<long long>(ds.queries.rows()));
        ++failures;
    }
    if (failures == 0)
        std::printf("parity[%s]: %lld served results identical to "
                    "direct search, R1@%lld %.4f, completed == "
                    "submitted == %lld\n",
                    setting.label.c_str(),
                    static_cast<long long>(ds.queries.rows()),
                    static_cast<long long>(k), recall_served,
                    static_cast<long long>(ds.queries.rows()));
    return failures;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto value = [&](const char *name) -> std::string {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", name);
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--smoke")
            opt.smoke = true;
        else if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--json")
            opt.json_path = value("--json");
        else if (arg == "--overload-json")
            opt.overload_json_path = value("--overload-json");
        else if (arg == "--load")
            opt.load_path = value("--load");
        else if (arg == "--mem-budget") {
            const std::string text = value("--mem-budget");
            opt.mem_budget = HotListCache::parseByteSize(text);
            if (opt.mem_budget < 0) {
                std::fprintf(stderr, "bad --mem-budget '%s'\n",
                             text.c_str());
                std::exit(2);
            }
        }
        else if (arg == "--n")
            opt.num_points = std::atoll(value("--n").c_str());
        else if (arg == "--dim")
            opt.dim = std::atoll(value("--dim").c_str());
        else if (arg == "--k")
            opt.k = std::atoll(value("--k").c_str());
        else if (arg == "--clients")
            opt.clients = std::atoi(value("--clients").c_str());
        else if (arg == "--window")
            opt.window = std::atoi(value("--window").c_str());
        else if (arg == "--clusters")
            opt.clusters = std::atoi(value("--clusters").c_str());
        else if (arg == "--nprobs")
            opt.nprobs = std::atoll(value("--nprobs").c_str());
        else if (arg == "--requests")
            opt.closed_requests =
                std::strtoull(value("--requests").c_str(), nullptr, 10);
        else {
            std::fprintf(stderr,
                         "usage: bench_serve [--smoke] [--quick] "
                         "[--json path] [--overload-json path] "
                         "[--load snapshot.juno] "
                         "[--mem-budget BYTES[k|m|g]] "
                         "[--n N] [--dim D] [--k K] "
                         "[--clients C] [--requests R]\n");
            std::exit(2);
        }
    }
    if (opt.smoke) {
        opt.num_points = 4000;
        opt.dim = 64;
        opt.clusters = 256;
        opt.num_queries = 128;
        opt.closed_requests = 8000;
        opt.open_duration_s = 0.4;
    } else if (opt.quick) {
        opt.closed_requests = 20000;
        opt.open_duration_s = 0.5;
    }
    return opt;
}

std::vector<BatchSetting>
batchSettings(const Options &opt)
{
    using std::chrono::microseconds;
    std::vector<BatchSetting> settings = {
        {"batch=1 (none)", 1, microseconds(0)},
        {"batch=8/100us", 8, microseconds(100)},
        {"batch=16/200us", 16, microseconds(200)},
        {"batch=32/200us", 32, microseconds(200)},
    };
    if (opt.smoke || opt.quick)
        settings.erase(settings.begin() + 1); // keep 1, 16, 32
    // A batch wider than the achievable concurrency would never fill
    // and stall on the linger every time; cap the sweep there.
    const idx_t ceiling =
        static_cast<idx_t>(opt.clients) * static_cast<idx_t>(opt.window);
    while (settings.size() > 1 && settings.back().max_batch > ceiling)
        settings.pop_back();
    return settings;
}

/**
 * The observability-is-free gate: QPS with the whole layer off vs on
 * (metrics callbacks registered, tracer constructed at sample rate 0,
 * slow-query detection armed). The claim in DESIGN.md is that the
 * disabled hot path costs one constant read per request.
 */
struct ObsOverhead {
    double plain_qps = 0.0;
    double obs_qps = 0.0;
    double overhead_pct = 0.0;
};

void
writeJson(const std::string &path,
          const std::vector<BatchSetting> &settings,
          const std::vector<RunResult> &capacity,
          const std::vector<std::vector<RunResult>> &open_loop,
          double baseline_qps, const ObsOverhead &obs)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"serve\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"observability\": {\"plain_qps\": "
        << obs.plain_qps << ", \"obs_qps\": " << obs.obs_qps
        << ", \"overhead_pct\": " << obs.overhead_pct
        << "},\n  \"settings\": [\n";
    for (std::size_t s = 0; s < settings.size(); ++s) {
        const auto &cap = capacity[s];
        out << "    {\"label\": \"" << settings[s].label
            << "\", \"max_batch\": " << settings[s].max_batch
            << ", \"linger_us\": " << settings[s].linger.count()
            << ",\n     \"closed_loop_qps\": " << cap.qps
            << ", \"speedup_vs_no_batching\": "
            << cap.qps / baseline_qps
            << ", \"mean_batch\": " << cap.snap.mean_batch
            << ",\n     \"total_us\": {\"p50\": "
            << cap.snap.total_us.p50
            << ", \"p95\": " << cap.snap.total_us.p95
            << ", \"p99\": " << cap.snap.total_us.p99 << "},\n"
            << "     \"memory\": {\"rss_bytes\": "
            << cap.snap.usage.rss_bytes
            << ", \"major_faults\": " << cap.snap.usage.major_faults
            << ", \"minor_faults\": " << cap.snap.usage.minor_faults
            << ", \"cache_budget_bytes\": "
            << cap.snap.cache.budget_bytes
            << ", \"cache_hits\": " << cap.snap.cache.hits
            << ", \"cache_misses\": " << cap.snap.cache.misses
            << ", \"cache_pinned_bytes\": "
            << cap.snap.cache.pinned_bytes << "},\n"
            << "     \"open_loop\": [\n";
        for (std::size_t p = 0; p < open_loop[s].size(); ++p) {
            const auto &r = open_loop[s][p];
            out << "       {\"offered_qps\": " << r.offered
                << ", \"achieved_qps\": " << r.qps
                << ", \"rejected\": " << r.snap.rejected_full
                << ", \"queue_p99_us\": " << r.snap.queue_us.p99
                << ", \"search_p99_us\": " << r.snap.search_us.p99
                << ", \"total_p99_us\": " << r.snap.total_us.p99
                << "}" << (p + 1 < open_loop[s].size() ? "," : "")
                << "\n";
        }
        out << "     ]}" << (s + 1 < settings.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
    std::printf("snapshot written to %s\n", path.c_str());
}

void
writeOverloadJson(const std::string &path, const BatchSetting &setting,
                  double capacity_qps, double capacity_p99_us,
                  double offered, double load_factor,
                  double deadline_us, const OverloadResult &base,
                  const OverloadResult &resilient)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    auto run = [&](const char *label, const OverloadResult &r,
                   double run_deadline_us, bool degrade) {
        out << "    {\"label\": \"" << label
            << "\", \"deadline_us\": " << run_deadline_us
            << ", \"degradation\": " << (degrade ? "true" : "false")
            << ",\n     \"achieved_qps\": " << r.qps
            << ", \"attempted\": " << r.attempted
            << ",\n     \"total_us\": {\"p50\": " << r.snap.total_us.p50
            << ", \"p95\": " << r.snap.total_us.p95
            << ", \"p99\": " << r.snap.total_us.p99
            << "}, \"queue_p99_us\": " << r.snap.queue_us.p99
            << ",\n     \"submitted\": " << r.snap.submitted
            << ", \"completed\": " << r.snap.completed
            << ", \"failed\": " << r.snap.failed
            << ", \"expired\": " << r.snap.expired
            << ",\n     \"rejected_full\": " << r.snap.rejected_full
            << ", \"rejected_expired\": " << r.snap.rejected_expired
            << ", \"degraded\": " << r.snap.degraded
            << ", \"degraded_batches\": " << r.snap.degraded_batches
            << ", \"final_tier\": " << r.snap.degradation_tier
            << ",\n     \"client\": {\"shed_submit_full\": "
            << r.shed_submit_full
            << ", \"shed_submit_expired\": " << r.shed_submit_expired
            << ", \"shed_queue_expired\": " << r.shed_queue_expired
            << ", \"degraded_seen\": " << r.degraded_seen
            << ", \"late_unmarked\": " << r.late_unmarked
            << ", \"errors\": " << r.client_errors << "}}";
    };
    out << "{\n  \"bench\": \"serve_overload\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"setting\": {\"label\": \""
        << setting.label << "\", \"max_batch\": " << setting.max_batch
        << ", \"linger_us\": " << setting.linger.count() << "},\n"
        << "  \"capacity_qps\": " << capacity_qps
        << ", \"capacity_p99_us\": " << capacity_p99_us
        << ",\n  \"offered_qps\": " << offered
        << ", \"load_factor\": " << load_factor
        << ", \"deadline_us\": " << deadline_us << ",\n  \"runs\": [\n";
    run("baseline", base, 0.0, false);
    out << ",\n";
    run("deadline+degradation", resilient, deadline_us, true);
    out << "\n  ],\n  \"p99_collapse_ratio\": "
        << base.snap.total_us.p99 /
               std::max(resilient.snap.total_us.p99, 1e-9)
        << ",\n  \"late_unmarked_completions\": "
        << resilient.late_unmarked << "\n}\n";
    std::printf("overload snapshot written to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    g_mem_budget = opt.mem_budget;

    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = opt.num_points;
    spec.num_queries = opt.num_queries;
    spec.dim = opt.dim;
    spec.seed = 20260730;
    const Dataset ds = makeDataset(spec);

    // Filter-stage-dominant configuration: a wide centroid table is
    // where the chunk-batched GEMM filter amortises across the
    // micro-batch (nprobs stays small so the scatter-scan does not
    // drown the effect). Cluster quality is irrelevant to a serving
    // bench, so training is capped hard. With --load the whole build
    // is skipped: the service starts from a snapshot (the CI
    // persistence leg produces one with matching flags).
    std::unique_ptr<AnnIndex> index_holder;
    if (!opt.load_path.empty()) {
        Timer load_timer;
        index_holder = openIndex(opt.load_path);
        std::printf("loaded %s in %.0f ms (spec %s)\n",
                    opt.load_path.c_str(), load_timer.millis(),
                    index_holder->spec().c_str());
        if (index_holder->dim() != ds.base.cols() ||
            index_holder->size() != ds.base.rows()) {
            std::fprintf(stderr,
                         "bench_serve: snapshot shape (%lld x %lld) "
                         "does not match the dataset (%lld x %lld); "
                         "pass the build's --n/--dim\n",
                         static_cast<long long>(index_holder->size()),
                         static_cast<long long>(index_holder->dim()),
                         static_cast<long long>(ds.base.rows()),
                         static_cast<long long>(ds.base.cols()));
            return 1;
        }
    } else {
        IvfFlatIndex::Params params;
        params.clusters = opt.clusters;
        params.nprobs = opt.nprobs;
        params.max_iters = 5;
        params.max_training_points =
            std::min<idx_t>(opt.num_points, 4000);
        index_holder = std::make_unique<IvfFlatIndex>(
            ds.metric, ds.base.view(), params);
    }
    AnnIndex &index = *index_holder;
    std::printf("index: %s over %lld points (D=%lld), k=%lld, "
                "%d clients\n",
                index.name().c_str(),
                static_cast<long long>(index.size()),
                static_cast<long long>(index.dim()),
                static_cast<long long>(opt.k), opt.clients);

    const auto gt = computeGroundTruth(ds.metric, ds.base.view(),
                                       ds.queries.view(), opt.k);
    const auto settings = batchSettings(opt);

    // ---- Serving invariants / parity (always; THE smoke gate) ----
    printBanner("Serving parity vs direct batch search");
    int failures = 0;
    for (const auto &setting : settings)
        failures += checkParity(index, ds, opt.k, setting, gt);

    // ---- Closed-loop capacity per batch-window setting ----
    printBanner("Capacity (closed loop, windowed clients)");
    std::vector<RunResult> capacity;
    const int repeats = opt.smoke ? 1 : 2;
    for (const auto &setting : settings) {
        // Best of N probes: capacity is a property of the service,
        // not of whichever run the scheduler disturbed least.
        RunResult best;
        for (int rep = 0; rep < repeats; ++rep) {
            auto r = runClosedLoop(index, ds.queries.view(), opt.k,
                                   setting, opt.clients, opt.window,
                                   opt.closed_requests);
            if (rep == 0 || r.qps > best.qps)
                best = std::move(r);
        }
        capacity.push_back(std::move(best));
    }
    const double baseline_qps = capacity.front().qps;

    TablePrinter cap_table({"setting", "QPS", "speedup", "mean_batch",
                            "total_p50_us", "total_p99_us",
                            "completed"});
    for (std::size_t s = 0; s < settings.size(); ++s) {
        const auto &r = capacity[s];
        cap_table.addRow(
            {settings[s].label, TablePrinter::num(r.qps),
             TablePrinter::num(r.qps / baseline_qps),
             TablePrinter::num(r.snap.mean_batch),
             TablePrinter::num(r.snap.total_us.p50),
             TablePrinter::num(r.snap.total_us.p99),
             std::to_string(r.snap.completed)});
        // Conservation over all submit attempts: each was either
        // accepted (and then completed with a value, an engine
        // exception, or kExpired) or shed at the door for a typed
        // reason. Engine failures and client exceptions fail the gate
        // too.
        if (r.snap.completed + r.snap.failed + r.snap.expired +
                    r.snap.rejected_full + r.snap.rejected_expired +
                    r.snap.rejected_stopped !=
                r.attempted ||
            r.snap.failed != 0 || r.client_errors != 0) {
            std::fprintf(
                stderr,
                "SMOKE FAIL: closed loop %s: %llu attempted = %llu "
                "completed + %llu failed + %llu shed? (%llu client "
                "errors)\n",
                settings[s].label.c_str(),
                static_cast<unsigned long long>(r.attempted),
                static_cast<unsigned long long>(r.snap.completed),
                static_cast<unsigned long long>(r.snap.failed),
                static_cast<unsigned long long>(r.snap.rejected_full),
                static_cast<unsigned long long>(r.client_errors));
            ++failures;
        }
    }
    cap_table.print();

    std::size_t best_setting = 0;
    for (std::size_t s = 1; s < settings.size(); ++s)
        if (capacity[s].qps > capacity[best_setting].qps)
            best_setting = s;
    std::printf("\nclosed-loop capacity speedup (%s vs no batching): "
                "%.2fx\n",
                settings[best_setting].label.c_str(),
                capacity[best_setting].qps /
                    std::max(baseline_qps, 1e-9));
    const auto &mem = capacity[best_setting].snap;
    std::printf("memory at %s: rss %.1f MiB, faults major %llu minor "
                "%llu",
                settings[best_setting].label.c_str(),
                static_cast<double>(mem.usage.rss_bytes) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(mem.usage.major_faults),
                static_cast<unsigned long long>(
                    mem.usage.minor_faults));
    if (mem.cache.budget_bytes > 0)
        std::printf(", cache %zu lists / %.1f MiB pinned, %llu hits "
                    "%llu misses",
                    mem.cache.resident_lists,
                    static_cast<double>(mem.cache.pinned_bytes) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(mem.cache.hits),
                    static_cast<unsigned long long>(mem.cache.misses));
    std::printf("\n");

    // ---- Observability overhead at the best setting ----
    // The A/B the "free when off" claim is judged by: the same closed
    // loop with the whole layer off, then on in its always-on serving
    // shape — metrics callbacks registered, tracer built with sample
    // rate 0, slow-query detection armed with a threshold nothing
    // crosses (the compare still runs per request).
    printBanner("Observability overhead (metrics on, trace rate 0)");
    ObsOverhead obs;
    {
        const BatchSetting &setting = settings[best_setting];
        ServiceConfig plain_cfg = serviceConfig(setting);
        plain_cfg.metrics = false;
        ServiceConfig obs_cfg = serviceConfig(setting);
        obs_cfg.metrics = true;
        obs_cfg.trace_sample = 0.0;
        obs_cfg.slow_trace_us = 1e12;
        for (int rep = 0; rep < repeats; ++rep) {
            const auto plain = runClosedLoop(
                index, ds.queries.view(), opt.k, setting, opt.clients,
                opt.window, opt.closed_requests, &plain_cfg);
            const auto traced = runClosedLoop(
                index, ds.queries.view(), opt.k, setting, opt.clients,
                opt.window, opt.closed_requests, &obs_cfg);
            obs.plain_qps = std::max(obs.plain_qps, plain.qps);
            obs.obs_qps = std::max(obs.obs_qps, traced.qps);
        }
        obs.overhead_pct =
            100.0 * (1.0 - obs.obs_qps / std::max(obs.plain_qps, 1e-9));
        std::printf("%s: %.0f QPS plain, %.0f QPS with observability "
                    "-> %.2f%% overhead\n",
                    setting.label.c_str(), obs.plain_qps, obs.obs_qps,
                    obs.overhead_pct);
    }

    // ---- Open-loop QPS vs latency split ----
    printBanner("Open loop (Poisson arrivals): QPS vs latency SLO");
    // Offered rates relative to the no-batching capacity: below it
    // every setting keeps up; above it only batching can, and the
    // baseline visibly sheds — the paper's amortisation argument as a
    // latency table.
    // The last factor offers twice the baseline's capacity: traffic
    // the no-batching configuration cannot serve by construction —
    // its sustained QPS pins at capacity while admission control
    // sheds the rest — and the micro-batched settings can. The
    // sustained-QPS ratio at that equal offered load is the headline
    // number below.
    std::vector<double> load_factors =
        opt.smoke ? std::vector<double>{0.6}
                  : std::vector<double>{0.5, 0.9, 1.5, 2.0};
    TablePrinter open_table({"setting", "offered", "achieved", "shed%",
                             "queue_p99_us", "search_p99_us",
                             "total_p50_us", "total_p99_us"});
    std::vector<std::vector<RunResult>> open_results(settings.size());
    for (std::size_t s = 0; s < settings.size(); ++s) {
        for (double f : load_factors) {
            const double offered = f * baseline_qps;
            auto r = runOpenLoop(index, ds.queries.view(), opt.k,
                                 settings[s], opt.clients, offered,
                                 opt.open_duration_s);
            const double shed =
                r.attempted == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(r.snap.rejected_full) /
                          static_cast<double>(r.attempted);
            open_table.addRow(
                {settings[s].label, TablePrinter::num(offered),
                 TablePrinter::num(r.qps), TablePrinter::num(shed),
                 TablePrinter::num(r.snap.queue_us.p99),
                 TablePrinter::num(r.snap.search_us.p99),
                 TablePrinter::num(r.snap.total_us.p50),
                 TablePrinter::num(r.snap.total_us.p99)});
            // Conservation holds under shedding too: accepted ==
            // completed + failed + expired once stop() has drained.
            if (r.snap.completed + r.snap.failed + r.snap.expired !=
                    r.snap.submitted ||
                r.snap.failed != 0 || r.client_errors != 0) {
                std::fprintf(stderr,
                             "SMOKE FAIL: open loop %s lost requests "
                             "(submitted %llu, completed %llu, %llu "
                             "client errors)\n",
                             settings[s].label.c_str(),
                             static_cast<unsigned long long>(
                                 r.snap.submitted),
                             static_cast<unsigned long long>(
                                 r.snap.completed),
                             static_cast<unsigned long long>(
                                 r.client_errors));
                ++failures;
            }
            open_results[s].push_back(std::move(r));
        }
    }
    open_table.print();

    // Headline: sustained QPS under the heaviest identical offered
    // load, micro-batched vs per-query dispatch. Results (and hence
    // recall) are identical per the parity section above.
    double best_overload = 0.0;
    std::string best_overload_label;
    for (std::size_t s = 1; s < settings.size(); ++s)
        if (open_results[s].back().qps > best_overload) {
            best_overload = open_results[s].back().qps;
            best_overload_label = settings[s].label;
        }
    const double baseline_overload = open_results[0].back().qps;
    if (!opt.smoke && settings.size() > 1) {
        std::printf("\nsustained QPS at %.0f offered (%.1fx the "
                    "no-batching capacity), equal recall:\n"
                    "  no batching: %.0f    %s: %.0f    -> %.2fx\n",
                    load_factors.back() * baseline_qps,
                    load_factors.back(), baseline_overload,
                    best_overload_label.c_str(), best_overload,
                    best_overload / std::max(baseline_overload, 1e-9));
    }

    // ---- Overload leg: resilience on vs off at 2.5x capacity ----
    // Offered traffic neither configuration can serve; the baseline
    // queues to capacity and its p99 pins at queue-drain time, while
    // deadline propagation sheds doomed work and tiered degradation
    // cheapens what remains, holding the completed requests' p99 near
    // the deadline. Skipped under --smoke (the gates are timing-based;
    // the deadline unit tests cover the mechanisms deterministically).
    if (!opt.smoke) {
        printBanner("Overload (2.5x capacity): baseline vs "
                    "deadline + degradation");
        const BatchSetting &setting = settings[best_setting];
        const double cap_qps = capacity[best_setting].qps;
        const double cap_p99 = capacity[best_setting].snap.total_us.p99;
        const double load_factor = 2.5;
        const double offered = load_factor * cap_qps;
        // Generous relative to healthy latency, tiny relative to the
        // collapse: a shed-or-degrade budget, not a stretch target.
        const double deadline_us = std::max(5000.0, 4.0 * cap_p99);
        const auto base = runOverloadLoop(
            index, ds.queries.view(), opt.k, setting, opt.clients,
            offered, opt.open_duration_s, 0.0, false);
        const auto resil = runOverloadLoop(
            index, ds.queries.view(), opt.k, setting, opt.clients,
            offered, opt.open_duration_s, deadline_us, true);

        TablePrinter overload_table(
            {"run", "offered", "achieved", "total_p50_us",
             "total_p99_us", "shed", "expired", "degraded", "tier"});
        auto addRow = [&](const char *label, const OverloadResult &r) {
            overload_table.addRow(
                {label, TablePrinter::num(r.offered),
                 TablePrinter::num(r.qps),
                 TablePrinter::num(r.snap.total_us.p50),
                 TablePrinter::num(r.snap.total_us.p99),
                 std::to_string(r.snap.rejected_full +
                                r.snap.rejected_expired),
                 std::to_string(r.snap.expired),
                 std::to_string(r.snap.degraded),
                 std::to_string(r.snap.degradation_tier)});
        };
        addRow("baseline", base);
        addRow("deadline+degradation", resil);
        overload_table.print();

        auto conserve = [&](const char *label,
                            const OverloadResult &r) {
            if (r.snap.completed + r.snap.failed + r.snap.expired !=
                    r.snap.submitted ||
                r.snap.failed != 0 || r.client_errors != 0) {
                std::fprintf(
                    stderr,
                    "OVERLOAD FAIL: %s lost requests (submitted "
                    "%llu, completed %llu, failed %llu, expired "
                    "%llu, %llu client errors)\n",
                    label,
                    static_cast<unsigned long long>(r.snap.submitted),
                    static_cast<unsigned long long>(r.snap.completed),
                    static_cast<unsigned long long>(r.snap.failed),
                    static_cast<unsigned long long>(r.snap.expired),
                    static_cast<unsigned long long>(r.client_errors));
                ++failures;
            }
            // Client-side reconciliation: every value-completed future
            // is reaped exactly once, so the counters the clients
            // observed must equal the service's. The degraded half is
            // what catches a degraded flag dropped anywhere between
            // the engine's per-query marking and the fulfilled future
            // (e.g. a top-k merge that rebuilds the ResultList).
            if (r.snap.completed != r.completed_seen ||
                r.snap.degraded != r.degraded_seen) {
                std::fprintf(
                    stderr,
                    "OVERLOAD FAIL: %s service/client mismatch "
                    "(completed %llu vs seen %llu, degraded %llu vs "
                    "seen %llu)\n",
                    label,
                    static_cast<unsigned long long>(r.snap.completed),
                    static_cast<unsigned long long>(r.completed_seen),
                    static_cast<unsigned long long>(r.snap.degraded),
                    static_cast<unsigned long long>(r.degraded_seen));
                ++failures;
            }
        };
        conserve("baseline", base);
        conserve("deadline+degradation", resil);
        if (resil.late_unmarked != 0) {
            std::fprintf(stderr,
                         "OVERLOAD FAIL: %llu completions past their "
                         "deadline were not flagged degraded\n",
                         static_cast<unsigned long long>(
                             resil.late_unmarked));
            ++failures;
        }
        // A completed request can legitimately carry deadline-epsilon
        // queue wait plus one dispatched batch's worth of search (the
        // first probe always runs), so p99 lands somewhat past the
        // deadline; 3x is the "held near the deadline" gate, against a
        // baseline collapse measured in tens of deadlines.
        if (resil.snap.total_us.p99 > 3.0 * deadline_us) {
            std::fprintf(stderr,
                         "OVERLOAD FAIL: resilient p99 %.0f us "
                         "exceeds 3x the %.0f us deadline\n",
                         resil.snap.total_us.p99, deadline_us);
            ++failures;
        }
        std::printf(
            "\noverload at %.1fx capacity, %.0f us deadline: "
            "baseline p99 %.0f us vs resilient p99 %.0f us "
            "(%.1fx collapse avoided); resilient shed %llu at the "
            "door + %llu in queue, degraded %llu, late-unmarked "
            "%llu\n",
            load_factor, deadline_us, base.snap.total_us.p99,
            resil.snap.total_us.p99,
            base.snap.total_us.p99 /
                std::max(resil.snap.total_us.p99, 1e-9),
            static_cast<unsigned long long>(
                resil.snap.rejected_expired + resil.snap.rejected_full),
            static_cast<unsigned long long>(resil.snap.expired),
            static_cast<unsigned long long>(resil.snap.degraded),
            static_cast<unsigned long long>(resil.late_unmarked));

        if (!opt.overload_json_path.empty())
            writeOverloadJson(opt.overload_json_path, setting, cap_qps,
                              cap_p99, offered, load_factor,
                              deadline_us, base, resil);
    }

    if (!opt.json_path.empty())
        writeJson(opt.json_path, settings, capacity, open_results,
                  baseline_qps, obs);

    if (opt.smoke) {
        if (failures == 0)
            std::printf("\nSMOKE PASS: conservation and parity hold "
                        "across %zu batch settings\n",
                        settings.size());
        else
            std::fprintf(stderr, "\nSMOKE FAIL: %d violations\n",
                         failures);
        return failures == 0 ? 0 : 1;
    }

    std::printf("\npaper: dispatched-batch amortisation is the "
                "throughput story (Sec. 5.3); here the same effect "
                "appears as the micro-batched speedup over per-query "
                "dispatch at identical results and recall.\n");
    return failures == 0 ? 0 : 1;
}
