/**
 * @file
 * Reproduces paper Fig. 13(b): static-small vs static-large vs dynamic
 * threshold strategies (SIFT-like, JUNO-H). The static thresholds are
 * the minimum and maximum of the dynamic policy's training range,
 * exactly as the paper selects them.
 *
 * Expected shape: the large static threshold reaches high recall but
 * low QPS (every ray triggers many hit shaders); the small one is fast
 * but recall-starved; the dynamic strategy dominates both.
 */
#include <cstdio>

#include "bench_common.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 13(b): static vs dynamic threshold (SIFT-like, "
                "JUNO-H)");
    const auto spec = bench::siftSpec();
    Workload workload(spec, 100);

    JunoParams jp = junoPresetH();
    jp.clusters = bench::clustersFor(spec.num_points);
    jp.pq_entries = 128;
    jp.max_training_points = 10000;
    jp.policy.ref_samples = 4000;
    JunoIndex index(workload.metric(), workload.base(), jp);

    TablePrinter table({"strategy", "nprobs", "R1@100", "QPS",
                        "rt_hits_per_query"});
    const struct {
        const char *label;
        ThresholdMode mode;
    } strategies[] = {
        {"R-Small (static min)", ThresholdMode::kStaticSmall},
        {"R-Large (static max)", ThresholdMode::kStaticLarge},
        {"R-Dynamic (density-regressed)", ThresholdMode::kDynamic},
    };
    for (const auto &strategy : strategies) {
        index.setThresholdMode(strategy.mode);
        for (idx_t np : {8, 32, 128}) {
            if (np > index.ivf().numClusters())
                break;
            index.setNprobs(np);
            index.device().resetStats();
            const auto point =
                evaluate(workload, index, bench::searchOptions(100));
            const double hits_per_query =
                static_cast<double>(index.rtStats().hits) /
                static_cast<double>(workload.queries().rows());
            table.addRow({strategy.label, std::to_string(np),
                          TablePrinter::num(point.recall1_at_k),
                          TablePrinter::num(point.qps),
                          TablePrinter::num(hits_per_query)});
        }
    }
    table.print();
    std::printf("\npaper: the dynamic strategy beats both static "
                "extremes on the quality/throughput\nfrontier — the "
                "large static radius triggers excess hit shaders, the "
                "small one starves\nrecall and forces more probed "
                "clusters.\n");
    return 0;
}
