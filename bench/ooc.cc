/**
 * @file
 * Out-of-core serving bench: what IO-aware probing (madvise prefetch +
 * resident-first scan order + the admission-controlled hot-list cache)
 * buys when the index does not fit in RAM.
 *
 * A real out-of-core condition — an index larger than the machine —
 * cannot be staged portably inside a bench, so memory pressure is
 * *simulated* the way the kernel would apply it: between query groups
 * the mapped scan planes are dropped with MADV_DONTNEED and the
 * snapshot's page-cache entries with POSIX_FADV_DONTNEED, so every
 * cold scan pays genuine page faults (and real IO where the filesystem
 * is disk-backed). Both serving modes face the identical pressure:
 *
 *  - naive cold-mmap: no cache, no hints — every probe of an evicted
 *    list stalls the scan on faults (the pre-PR-6 behaviour);
 *  - io-aware: a HotListCache pinning the hottest lists' planes in
 *    heap memory (immune to the eviction) with WILLNEED prefetches
 *    issued for the cold tail before the resident lists scan.
 *
 * Traffic is skewed (80% of queries from a 20% hot set), the regime
 * admission-controlled caching targets. The sweep reports recall and
 * QPS at cache budgets of 100% / 50% / 25% of the scan-plane bytes,
 * plus an unconstrained warm run for context.
 *
 * Gates (exit nonzero, `--smoke` is the CI leg): every mode's results
 * must be bitwise identical to the unconstrained search — the cache
 * and the probe reordering are performance constructs only.
 * `--json <path>` dumps the measured points (BENCH_ooc.json).
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baseline/ivfpq_index.h"
#include "bench_common.h"
#include "common/build_info.h"
#include "common/mmap_blob.h"
#include "common/rng.h"
#include "common/timer.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"
#include "harness/reporter.h"
#include "registry/index_factory.h"
#include "serve/hot_list_cache.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace juno;

namespace {

struct Options {
    bool smoke = false;
    std::string json_path;
    idx_t num_points = bench::scale1M();
    idx_t k = 10;
    idx_t nprobs = 8;
    /** Queries between evictions (the simulated pressure period). */
    idx_t evict_every = 8;
    /** Skewed requests per measured pass. */
    idx_t requests = 2048;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto value = [&](const char *name) -> std::string {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", name);
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--smoke")
            opt.smoke = true;
        else if (arg == "--json")
            opt.json_path = value("--json");
        else if (arg == "--n")
            opt.num_points = std::atoll(value("--n").c_str());
        else if (arg == "--k")
            opt.k = std::atoll(value("--k").c_str());
        else if (arg == "--nprobs")
            opt.nprobs = std::atoll(value("--nprobs").c_str());
        else if (arg == "--requests")
            opt.requests = std::atoll(value("--requests").c_str());
        else if (arg == "--evict-every")
            opt.evict_every =
                std::atoll(value("--evict-every").c_str());
        else {
            std::fprintf(stderr,
                         "usage: bench_ooc [--smoke] [--json path] "
                         "[--n N] [--k K] [--nprobs P] "
                         "[--requests R] [--evict-every E]\n");
            std::exit(2);
        }
    }
    if (opt.smoke) {
        opt.num_points = 6000;
        opt.requests = 512;
    }
    return opt;
}

/**
 * Simulated memory pressure: drop the mapped scan planes from this
 * process (MADV_DONTNEED on a read-only private file mapping discards
 * the clean pages) and the snapshot's page-cache entries (so refaults
 * hit storage, not RAM). A no-op where the hints are unsupported —
 * the parity gates still run, only the contrast shrinks.
 */
void
evictScanPlanes(const InterleavedLists &il, const std::string &path)
{
    memAdvise(il.blocksData(), il.blocksBytes(), MemAdvice::kDontNeed);
    if (il.packed4())
        memAdvise(il.packedData(), il.packedBytes(),
                  MemAdvice::kDontNeed);
#if defined(__unix__) && defined(POSIX_FADV_DONTNEED)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

/**
 * Skewed single-query traffic: 80% of requests revisit a 20% hot
 * subset of the query set (rotating), the rest draw uniformly. The
 * same deterministic sequence drives every mode.
 */
std::vector<idx_t>
makeWorkload(idx_t num_queries, idx_t requests)
{
    Rng rng(0x00C0FFEE);
    const idx_t hot = std::max<idx_t>(1, num_queries / 5);
    std::vector<idx_t> workload;
    workload.reserve(static_cast<std::size_t>(requests));
    for (idx_t i = 0; i < requests; ++i) {
        if (rng.uniform() < 0.8)
            workload.push_back(static_cast<idx_t>(
                rng.below(static_cast<std::uint64_t>(hot))));
        else
            workload.push_back(static_cast<idx_t>(
                rng.below(static_cast<std::uint64_t>(num_queries))));
    }
    return workload;
}

struct ModeResult {
    double qps = 0.0;
    double recall = 0.0;
    HotListCache::Counters cache;
    bool parity = true;
};

/**
 * One serving mode under eviction pressure. @p budget_bytes == 0 is
 * the naive cold-mmap mode (explicitly detaches any cache, so a
 * stray JUNO_MEM_BUDGET cannot contaminate the baseline); > 0 runs
 * IO-aware with a cache of that size. The workload runs twice —
 * first pass warms the cache's frequency state (real serving is a
 * steady state, not a cold start), second pass is measured.
 */
ModeResult
runMode(IvfPqIndex &index, const std::string &snapshot_path,
        FloatMatrixView queries, const std::vector<idx_t> &workload,
        const Options &opt, std::int64_t budget_bytes,
        const SearchResults &reference, const GroundTruth &gt)
{
    index.setMemoryBudget(budget_bytes);
    const idx_t dim = queries.cols();
    auto serveOnce = [&](bool timed) -> double {
        Timer timer;
        for (std::size_t i = 0; i < workload.size(); ++i) {
            if (static_cast<idx_t>(i) % opt.evict_every == 0)
                evictScanPlanes(index.interleaved(), snapshot_path);
            SearchRequest request(
                FloatMatrixView(queries.row(workload[i]), 1, dim),
                opt.k);
            request.options.memory_budget_bytes = budget_bytes;
            index.search(request);
        }
        return timed ? timer.seconds() : 0.0;
    };
    serveOnce(false); // warm the cache / frequency state
    const double secs = serveOnce(true);

    ModeResult result;
    result.qps = static_cast<double>(workload.size()) / secs;
    if (const auto cache = index.hotListCache())
        result.cache = cache->counters();

    // Parity + recall over the full query set (untimed): whatever the
    // budget did, results must match the unconstrained search bit for
    // bit.
    SearchRequest full(queries, opt.k);
    full.options.memory_budget_bytes = budget_bytes;
    const SearchResults results = index.search(full);
    result.recall = recall1AtK(gt, results);
    for (std::size_t q = 0; q < results.size(); ++q)
        if (results[q] != reference[q]) {
            std::fprintf(stderr,
                         "PARITY FAIL: budget %lld, query %zu differs "
                         "from unconstrained search\n",
                         static_cast<long long>(budget_bytes), q);
            result.parity = false;
        }
    return result;
}

void
writeJson(const std::string &path, std::size_t index_bytes,
          double warm_qps, const ModeResult &naive,
          const std::vector<int> &pcts,
          const std::vector<std::int64_t> &budgets,
          const std::vector<ModeResult> &modes)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"ooc\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"scan_plane_bytes\": "
        << index_bytes << ",\n  \"warm_qps\": " << warm_qps
        << ",\n  \"naive_cold_mmap\": {\"qps\": " << naive.qps
        << ", \"recall1\": " << naive.recall
        << ", \"parity\": " << (naive.parity ? "true" : "false")
        << "},\n  \"budgets\": [\n";
    for (std::size_t i = 0; i < modes.size(); ++i) {
        const auto &m = modes[i];
        out << "    {\"pct\": " << pcts[i]
            << ", \"budget_bytes\": " << budgets[i]
            << ", \"qps\": " << m.qps
            << ", \"recall1\": " << m.recall
            << ", \"speedup_vs_naive\": " << m.qps / naive.qps
            << ",\n     \"parity\": " << (m.parity ? "true" : "false")
            << ", \"cache_hits\": " << m.cache.hits
            << ", \"cache_misses\": " << m.cache.misses
            << ", \"pinned_bytes\": " << m.cache.pinned_bytes
            << ", \"resident_lists\": " << m.cache.resident_lists
            << ", \"evicted\": " << m.cache.evicted << "}"
            << (i + 1 < modes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("snapshot written to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    auto spec = bench::deepSpec(opt.num_points);
    const Dataset ds = makeDataset(spec);

    // PQ4 fast-scan configuration: entries <= 16 keeps the nibble
    // plane (the payload the cache pins and the prefetches cover).
    IvfPqIndex::Params params;
    params.clusters = bench::clustersFor(opt.num_points);
    params.pq_subspaces = static_cast<int>(ds.base.cols() / 2);
    params.pq_entries = 16;
    params.nprobs = opt.nprobs;
    params.max_training_points =
        std::min<idx_t>(opt.num_points, 8000);
    IvfPqIndex built(ds.metric, ds.base.view(), params);

    // The out-of-core condition requires a *file-backed* index: save
    // and re-open zero-copy so the scan planes view the mapping and
    // eviction hints mean something.
    const std::string path = "bench_ooc_snapshot.juno";
    built.save(path);
    auto opened = openIndex(path);
    auto *index = dynamic_cast<IvfPqIndex *>(opened.get());
    if (index == nullptr || !index->interleaved().planesMapped()) {
        std::fprintf(stderr,
                     "bench_ooc: snapshot did not reopen as a mapped "
                     "IVFPQ index\n");
        return 1;
    }
    const auto &il = index->interleaved();
    const std::size_t plane_bytes = il.blocksBytes() + il.packedBytes();

    std::printf("index: %s over %lld points, scan planes %.2f MiB "
                "(%lld lists), nprobs %lld, evict every %lld queries\n",
                index->name().c_str(),
                static_cast<long long>(index->size()),
                static_cast<double>(plane_bytes) / (1024.0 * 1024.0),
                static_cast<long long>(il.numLists()),
                static_cast<long long>(opt.nprobs),
                static_cast<long long>(opt.evict_every));

    const auto gt = computeGroundTruth(ds.metric, ds.base.view(),
                                       ds.queries.view(), opt.k);
    const auto workload =
        makeWorkload(ds.queries.rows(), opt.requests);

    // Unconstrained reference: warm planes, no cache, no pressure —
    // the bitwise target every mode must reproduce.
    SearchRequest ref_request(ds.queries.view(), opt.k);
    ref_request.options.memory_budget_bytes = 0;
    const SearchResults reference = index->search(ref_request);
    Timer warm_timer;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        SearchRequest request(
            FloatMatrixView(ds.queries.view().row(workload[i]), 1,
                            ds.queries.cols()),
            opt.k);
        request.options.memory_budget_bytes = 0;
        index->search(request);
    }
    const double warm_qps =
        static_cast<double>(workload.size()) / warm_timer.seconds();

    printBanner("Out-of-core serving under eviction pressure");
    int failures = 0;

    const ModeResult naive =
        runMode(*index, path, ds.queries.view(), workload, opt, 0,
                reference, gt);
    if (!naive.parity)
        ++failures;

    const std::vector<int> pcts = {100, 50, 25};
    std::vector<std::int64_t> budgets;
    std::vector<ModeResult> modes;
    for (int pct : pcts) {
        const auto budget = static_cast<std::int64_t>(
            plane_bytes * static_cast<std::size_t>(pct) / 100);
        auto m = runMode(*index, path, ds.queries.view(), workload,
                         opt, budget, reference, gt);
        if (!m.parity)
            ++failures;
        budgets.push_back(budget);
        modes.push_back(std::move(m));
    }

    TablePrinter table({"mode", "budget_MiB", "QPS", "vs_naive",
                        "recall1", "hit_rate%", "pinned_MiB"});
    table.addRow({"warm mmap (no pressure)", "-",
                  TablePrinter::num(warm_qps),
                  TablePrinter::num(warm_qps / naive.qps), "-", "-",
                  "-"});
    table.addRow({"naive cold mmap", "0", TablePrinter::num(naive.qps),
                  "1.00", TablePrinter::num(naive.recall), "-", "-"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
        const auto &m = modes[i];
        const double hit_rate =
            m.cache.lookups > 0
                ? 100.0 * static_cast<double>(m.cache.hits) /
                      static_cast<double>(m.cache.lookups)
                : 0.0;
        table.addRow(
            {"io-aware " + std::to_string(pcts[i]) + "%",
             TablePrinter::num(static_cast<double>(budgets[i]) /
                               (1024.0 * 1024.0)),
             TablePrinter::num(m.qps),
             TablePrinter::num(m.qps / naive.qps),
             TablePrinter::num(m.recall), TablePrinter::num(hit_rate),
             TablePrinter::num(static_cast<double>(
                                   m.cache.pinned_bytes) /
                               (1024.0 * 1024.0))});
    }
    table.print();

    if (!opt.json_path.empty())
        writeJson(opt.json_path, plane_bytes, warm_qps, naive, pcts,
                  budgets, modes);

    std::remove(path.c_str());

    if (failures != 0) {
        std::fprintf(stderr, "\n%s FAIL: %d parity violations\n",
                     opt.smoke ? "SMOKE" : "BENCH", failures);
        return 1;
    }
    if (opt.smoke)
        std::printf("\nSMOKE PASS: bitwise parity holds across naive "
                    "and all cache budgets under eviction pressure\n");
    else
        std::printf("\npaper context: JUNO assumes the quantised index "
                    "fits device memory; this PR's serving answer for "
                    "larger-than-RAM deployments is admission-"
                    "controlled pinning plus prefetch overlap, at "
                    "bitwise-identical results.\n");
    return 0;
}
