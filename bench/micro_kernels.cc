/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels every figure
 * rests on: distance kernels, top-k selection, BVH traversal and the
 * selective-LUT ray pass. Useful for spotting regressions that would
 * silently distort the figure benches.
 */
#include <benchmark/benchmark.h>

#include "common/distance.h"
#include "common/rng.h"
#include "common/topk.h"
#include "rtcore/bvh.h"

namespace juno {
namespace {

void
BM_L2Sqr(benchmark::State &state)
{
    const idx_t d = state.range(0);
    Rng rng(1);
    std::vector<float> a(static_cast<std::size_t>(d)),
        b(static_cast<std::size_t>(d));
    for (idx_t i = 0; i < d; ++i) {
        a[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
        b[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(l2Sqr(a.data(), b.data(), d));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Sqr)->Arg(2)->Arg(96)->Arg(128)->Arg(200);

void
BM_InnerProduct(benchmark::State &state)
{
    const idx_t d = state.range(0);
    Rng rng(2);
    std::vector<float> a(static_cast<std::size_t>(d)),
        b(static_cast<std::size_t>(d));
    for (idx_t i = 0; i < d; ++i) {
        a[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
        b[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(innerProduct(a.data(), b.data(), d));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InnerProduct)->Arg(96)->Arg(128)->Arg(200);

void
BM_TopK(benchmark::State &state)
{
    const idx_t n = state.range(0);
    const idx_t k = state.range(1);
    Rng rng(3);
    std::vector<float> scores(static_cast<std::size_t>(n));
    for (auto &s : scores)
        s = rng.uniform(0.0f, 1.0f);
    for (auto _ : state) {
        TopK top(k, Metric::kL2);
        for (idx_t i = 0; i < n; ++i)
            top.push(i, scores[static_cast<std::size_t>(i)]);
        benchmark::DoNotOptimize(top.take());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopK)->Args({1000, 10})->Args({10000, 100})
    ->Args({10000, 1000});

void
BM_BvhTraversal(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    std::vector<rt::Sphere> spheres(n);
    for (std::size_t i = 0; i < n; ++i) {
        spheres[i].center = {rng.uniform(-1.0f, 1.0f),
                             rng.uniform(-1.0f, 1.0f), 1.0f};
        spheres[i].radius = 1.0f;
        spheres[i].user_id = i;
    }
    rt::Bvh bvh;
    bvh.build(spheres);
    rt::Ray ray;
    ray.origin = {0.1f, -0.1f, 0.0f};
    ray.dir = {0, 0, 1};
    ray.tmax = 0.3f;
    rt::TraversalStats stats;
    for (auto _ : state) {
        int hits = 0;
        bvh.traverse(ray, spheres, stats, [&](const rt::Hit &) {
            ++hits;
            return true;
        });
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BvhTraversal)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_LinearTraversal(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    std::vector<rt::Sphere> spheres(n);
    for (std::size_t i = 0; i < n; ++i) {
        spheres[i].center = {rng.uniform(-1.0f, 1.0f),
                             rng.uniform(-1.0f, 1.0f), 1.0f};
        spheres[i].radius = 1.0f;
        spheres[i].user_id = i;
    }
    rt::Ray ray;
    ray.origin = {0.1f, -0.1f, 0.0f};
    ray.dir = {0, 0, 1};
    ray.tmax = 0.3f;
    rt::TraversalStats stats;
    for (auto _ : state) {
        int hits = 0;
        rt::Bvh::traverseLinear(ray, spheres, stats, [&](const rt::Hit &) {
            ++hits;
            return true;
        });
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearTraversal)->Arg(256)->Arg(4096)->Arg(65536);

} // namespace
} // namespace juno

BENCHMARK_MAIN();
