/**
 * @file
 * Microbenchmarks of the hot kernels every figure rests on, printed
 * as scalar-vs-dispatched rows so the SIMD layer's speedup is a
 * number, not a claim:
 *
 *   kernel            shape            scalar      dispatched  speedup
 *   l2Sqr             d=128            x.xx GF/s   y.yy GF/s   z.zzx
 *   ...
 *
 * Self-contained (no google-benchmark): each kernel runs in a
 * calibrated timing loop against both dispatch tables. Also keeps the
 * top-k and BVH traversal spot-checks of the original bench.
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "common/topk.h"
#include "quant/interleaved_codes.h"
#include "rtcore/bvh.h"

namespace juno {
namespace {

/** Runs @p fn until ~this much wall time accumulates, returns ops/s. */
constexpr double kMinSeconds = 0.2;

template <typename Fn>
double
opsPerSecond(std::size_t ops_per_call, Fn &&fn)
{
    // Warm-up + calibration pass.
    fn();
    Timer calibrate;
    fn();
    const double once = calibrate.seconds();
    std::size_t reps = once > 0.0
        ? static_cast<std::size_t>(kMinSeconds / once) + 1
        : 1000;
    Timer timer;
    for (std::size_t r = 0; r < reps; ++r)
        fn();
    const double elapsed = timer.seconds();
    return static_cast<double>(reps) *
           static_cast<double>(ops_per_call) / elapsed;
}

/** One printed row, also collected for the --json snapshot. */
struct RowRecord {
    std::string kernel;
    std::string shape;
    double baseline_ops = 0.0;
    double dispatched_ops = 0.0;
    std::string unit;
};

std::vector<RowRecord> g_rows;

/** Dispatched fast-scan vs dispatched legacy gather (CI gate). */
double g_fastscan_vs_gather = 0.0;

void
printRow(const std::string &kernel, const std::string &shape,
         double scalar_ops, double dispatched_ops, const char *unit)
{
    std::printf("%-18s %-20s %9.2f %-6s %9.2f %-6s %6.2fx\n",
                kernel.c_str(), shape.c_str(), scalar_ops * 1e-9, unit,
                dispatched_ops * 1e-9, unit,
                dispatched_ops / scalar_ops);
    g_rows.push_back(
        {kernel, shape, scalar_ops, dispatched_ops, unit});
}

/**
 * Writes the collected rows as JSON (BENCH_adc.json is produced from
 * this): kernel, shape, baseline and dispatched throughput, speedup.
 * The baseline column is the scalar table except for the explicit
 * cross-kernel rows (adcScan/seed, fastscanPq4/gather), whose
 * baseline is the row's stated reference.
 */
void
writeSnapshot(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"micro_kernels\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"dispatch\": \""
        << simd::levelName(simd::bestSupported())
        << "\",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
        const auto &r = g_rows[i];
        out << "    {\"kernel\": \"" << r.kernel << "\", \"shape\": \""
            << r.shape << "\", \"baseline_gops\": "
            << r.baseline_ops * 1e-9 << ", \"dispatched_gops\": "
            << r.dispatched_ops * 1e-9 << ", \"speedup\": "
            << r.dispatched_ops / r.baseline_ops << ", \"unit\": \""
            << r.unit << "\"}" << (i + 1 < g_rows.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
    std::printf("snapshot written to %s\n", path.c_str());
}

std::vector<float>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

/** Scalar-vs-dispatched rows for the reduction kernels. */
void
benchReductions(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(1);
    for (idx_t d : {idx_t(16), idx_t(128), idx_t(200)}) {
        const auto a = randomVec(rng, static_cast<std::size_t>(d));
        const auto b = randomVec(rng, static_cast<std::size_t>(d));
        // 3 flops per element for l2 (sub, mul, add), 2 for ip.
        const auto flops_l2 = static_cast<std::size_t>(3 * d);
        const auto flops_ip = static_cast<std::size_t>(2 * d);
        volatile float sink = 0.0f;

        const double s_l2 = opsPerSecond(flops_l2, [&] {
            sink = scalar.l2_sqr(a.data(), b.data(), d);
        });
        const double v_l2 = opsPerSecond(flops_l2, [&] {
            sink = best.l2_sqr(a.data(), b.data(), d);
        });
        printRow("l2Sqr", "d=" + std::to_string(d), s_l2, v_l2, "GF/s");

        const double s_ip = opsPerSecond(flops_ip, [&] {
            sink = scalar.inner_product(a.data(), b.data(), d);
        });
        const double v_ip = opsPerSecond(flops_ip, [&] {
            sink = best.inner_product(a.data(), b.data(), d);
        });
        printRow("innerProduct", "d=" + std::to_string(d), s_ip, v_ip,
                 "GF/s");
        (void)sink;
    }
}

void
benchBatch(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(2);
    const idx_t n = 4096;
    for (idx_t d : {idx_t(2), idx_t(96), idx_t(128)}) {
        const auto q = randomVec(rng, static_cast<std::size_t>(d));
        const auto rows = randomVec(
            rng, static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(d));
        std::vector<float> out(static_cast<std::size_t>(n));
        const auto flops = static_cast<std::size_t>(3 * n * d);
        const double s = opsPerSecond(flops, [&] {
            scalar.l2_sqr_batch(q.data(), rows.data(), n, d, out.data());
        });
        const double v = opsPerSecond(flops, [&] {
            best.l2_sqr_batch(q.data(), rows.data(), n, d, out.data());
        });
        printRow("l2SqrBatch",
                 "n=" + std::to_string(n) + ",d=" + std::to_string(d), s,
                 v, "GF/s");
    }
}

void
benchGemm(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(3);
    const idx_t m = 64, k = 128, n = 256;
    const auto a = randomVec(rng, static_cast<std::size_t>(m * k));
    const auto b = randomVec(rng, static_cast<std::size_t>(k * n));
    std::vector<float> c(static_cast<std::size_t>(m * n));
    const auto flops = static_cast<std::size_t>(2) *
                       static_cast<std::size_t>(m) *
                       static_cast<std::size_t>(k) *
                       static_cast<std::size_t>(n);
    const double s = opsPerSecond(flops, [&] {
        scalar.gemm(a.data(), b.data(), c.data(), m, k, n);
    });
    const double v = opsPerSecond(flops, [&] {
        best.gemm(a.data(), b.data(), c.data(), m, k, n);
    });
    printRow("gemm",
             std::to_string(m) + "x" + std::to_string(k) + "x" +
                 std::to_string(n),
             s, v, "GF/s");

    // Batch-width sweep: per-row cost of the dispatched GEMM as the
    // row-block (query-batch) height grows. m = 1 runs the tile
    // under-occupied — the per-query dispatch regime the serving
    // layer's micro-batcher exists to avoid; the cross-row
    // amortisation saturates around the 4-row tile times the
    // register-block depth (m ~ 16), which is why the serving bench
    // chunks micro-batches in 16s.
    const idx_t width_k = 96, width_n = 1024;
    const auto wa = randomVec(rng, static_cast<std::size_t>(64 * width_k));
    const auto wb =
        randomVec(rng, static_cast<std::size_t>(width_k * width_n));
    std::vector<float> wc(static_cast<std::size_t>(64) *
                          static_cast<std::size_t>(width_n));
    for (idx_t rows : {1, 4, 16, 64}) {
        const auto row_flops = static_cast<std::size_t>(2) *
                               static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(width_k) *
                               static_cast<std::size_t>(width_n);
        const double sw = opsPerSecond(row_flops, [&] {
            scalar.gemm(wa.data(), wb.data(), wc.data(), rows, width_k,
                        width_n);
        });
        const double vw = opsPerSecond(row_flops, [&] {
            best.gemm(wa.data(), wb.data(), wc.data(), rows, width_k,
                      width_n);
        });
        printRow("gemmBatchWidth",
                 "m=" + std::to_string(rows) + ",k=" +
                     std::to_string(width_k) + ",n=" +
                     std::to_string(width_n),
                 sw, vw, "GF/s");
    }
}

void
benchAdcScan(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(4);
    const int subspaces = 48;
    const idx_t entries = 256;
    const idx_t num_points = 8192;
    const auto lut_flat = randomVec(
        rng, static_cast<std::size_t>(subspaces) *
                 static_cast<std::size_t>(entries));
    std::vector<entry_t> codes(static_cast<std::size_t>(num_points) *
                               static_cast<std::size_t>(subspaces));
    for (auto &c : codes)
        c = static_cast<entry_t>(rng.uniform() *
                                 static_cast<double>(entries)) %
            static_cast<entry_t>(entries);
    std::vector<idx_t> ids(static_cast<std::size_t>(num_points));
    for (idx_t i = 0; i < num_points; ++i)
        ids[static_cast<std::size_t>(i)] = i;
    std::vector<float> out(static_cast<std::size_t>(num_points));
    // One gather + add per (point, subspace).
    const auto ops = static_cast<std::size_t>(num_points) *
                     static_cast<std::size_t>(subspaces);

    // The scan loop exactly as the index ran it before the SIMD layer:
    // FloatMatrix::at() per cell (bounds-asserted row indexing) and a
    // per-point accumulator. This is the baseline the dispatched scan
    // replaced in ivfpq_index.cc.
    FloatMatrix lut(subspaces, entries);
    std::copy(lut_flat.begin(), lut_flat.end(), lut.data());
    const double seed = opsPerSecond(ops, [&] {
        for (idx_t i = 0; i < num_points; ++i) {
            const entry_t *pc =
                codes.data() + static_cast<std::size_t>(ids[
                                   static_cast<std::size_t>(i)]) *
                                   static_cast<std::size_t>(subspaces);
            float acc = 0.0f;
            for (int s = 0; s < subspaces; ++s)
                acc += lut.at(s, pc[s]);
            out[static_cast<std::size_t>(i)] = acc;
        }
    });
    const double s = opsPerSecond(ops, [&] {
        scalar.adc_scan(lut_flat.data(), entries, subspaces, codes.data(),
                        static_cast<std::size_t>(subspaces), ids.data(),
                        ids.size(), 0.0f, out.data());
    });
    const double v = opsPerSecond(ops, [&] {
        best.adc_scan(lut_flat.data(), entries, subspaces, codes.data(),
                      static_cast<std::size_t>(subspaces), ids.data(),
                      ids.size(), 0.0f, out.data());
    });
    const std::string shape = "S=" + std::to_string(subspaces) + ",n=" +
                              std::to_string(num_points);
    printRow("adcScan", shape, s, v, "Gop/s");
    printRow("adcScan/seed", shape, seed, v, "Gop/s");

    // Interleaved streaming scan on the same codes: one "list"
    // holding every point, re-materialised in 32-point blocks.
    PQCodes pq_codes;
    pq_codes.num_points = num_points;
    pq_codes.num_subspaces = subspaces;
    pq_codes.codes = codes;
    std::vector<std::vector<idx_t>> lists(1);
    lists[0] = ids;
    InterleavedLists inter;
    inter.build(lists, pq_codes, static_cast<int>(entries));
    const double si = opsPerSecond(ops, [&] {
        scalar.adc_scan_interleaved(lut_flat.data(), entries, subspaces,
                                    inter.listBlocks(0), ids.size(),
                                    0.0f, out.data());
    });
    const double vi = opsPerSecond(ops, [&] {
        best.adc_scan_interleaved(lut_flat.data(), entries, subspaces,
                                  inter.listBlocks(0), ids.size(), 0.0f,
                                  out.data());
    });
    printRow("adcScanInter", shape, si, vi, "Gop/s");
    // Layout change alone: dispatched interleaved vs dispatched gather.
    printRow("adcScanInter/gthr", shape, v, vi, "Gop/s");
}

/**
 * The 4-bit fast-scan path against the dispatched legacy gather on
 * identical lists: same points, same subspaces, PQ4 codes. The
 * "fastscanPq4/gather" row is the ISSUE's acceptance metric and the
 * --check-fastscan CI gate.
 */
void
benchFastScan(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(7);
    const int subspaces = 48;
    const idx_t entries = 16;
    const idx_t num_points = 8192;
    const auto lut_flat = randomVec(
        rng, static_cast<std::size_t>(subspaces) *
                 static_cast<std::size_t>(entries));
    PQCodes codes;
    codes.num_points = num_points;
    codes.num_subspaces = subspaces;
    codes.codes.resize(static_cast<std::size_t>(num_points) *
                       static_cast<std::size_t>(subspaces));
    for (auto &c : codes.codes)
        c = static_cast<entry_t>(rng.uniform() *
                                 static_cast<double>(entries)) %
            static_cast<entry_t>(entries);
    std::vector<idx_t> ids(static_cast<std::size_t>(num_points));
    for (idx_t i = 0; i < num_points; ++i)
        ids[static_cast<std::size_t>(i)] = i;
    std::vector<std::vector<idx_t>> lists(1);
    lists[0] = ids;
    InterleavedLists inter;
    inter.build(lists, codes, static_cast<int>(entries));

    FloatMatrix lut(subspaces, entries);
    std::copy(lut_flat.begin(), lut_flat.end(), lut.data());
    QuantizedLut qlut;
    quantizeLut(lut, static_cast<int>(entries), qlut);

    std::vector<float> out(static_cast<std::size_t>(num_points));
    std::vector<std::uint16_t> qsums(
        static_cast<std::size_t>(num_points));
    const auto ops = static_cast<std::size_t>(num_points) *
                     static_cast<std::size_t>(subspaces);
    const std::string shape = "S=" + std::to_string(subspaces) +
                              ",E=16,n=" + std::to_string(num_points);

    const double gather = opsPerSecond(ops, [&] {
        best.adc_scan(lut_flat.data(), entries, subspaces,
                      codes.codes.data(),
                      static_cast<std::size_t>(subspaces), ids.data(),
                      ids.size(), 0.0f, out.data());
    });
    const double s = opsPerSecond(ops, [&] {
        scalar.fastscan_pq4(inter.listPacked(0), subspaces,
                            qlut.table.data(), ids.size(),
                            qsums.data());
    });
    const double v = opsPerSecond(ops, [&] {
        best.fastscan_pq4(inter.listPacked(0), subspaces,
                          qlut.table.data(), ids.size(), qsums.data());
    });
    printRow("fastscanPq4", shape, s, v, "Gop/s");
    printRow("fastscanPq4/gthr", shape, gather, v, "Gop/s");
    g_fastscan_vs_gather = v / gather;
}

void
benchCompact(const simd::Kernels &scalar, const simd::Kernels &best)
{
    Rng rng(5);
    const std::size_t n = 8192;
    std::vector<float> acc(n);
    std::vector<std::int32_t> hits(n, 0);
    std::vector<idx_t> list(n);
    for (std::size_t i = 0; i < n; ++i) {
        acc[i] = rng.uniform(-1.0f, 1.0f);
        // ~5% touched: the sparse regime JUNO's selective LUT creates.
        hits[i] = rng.uniform() < 0.05 ? 1 : 0;
        list[i] = static_cast<idx_t>(i);
    }
    std::vector<Neighbor> out;
    out.reserve(n);
    const double s = opsPerSecond(n, [&] {
        out.clear();
        scalar.compact_candidates(acc.data(), hits.data(), list.data(), n,
                                  0.0f, out);
    });
    const double v = opsPerSecond(n, [&] {
        out.clear();
        best.compact_candidates(acc.data(), hits.data(), list.data(), n,
                                0.0f, out);
    });
    printRow("compactCand", "n=" + std::to_string(n) + ",5%", s, v,
             "Gop/s");
}

/** Original spot-checks, kept so regressions here stay visible too. */
void
benchTopKAndBvh()
{
    Rng rng(6);
    const idx_t n = 10000, k = 100;
    std::vector<float> scores(static_cast<std::size_t>(n));
    for (auto &s : scores)
        s = rng.uniform(0.0f, 1.0f);
    const double topk_ops = opsPerSecond(
        static_cast<std::size_t>(n), [&] {
            TopK top(k, Metric::kL2);
            for (idx_t i = 0; i < n; ++i)
                top.push(i, scores[static_cast<std::size_t>(i)]);
            volatile std::size_t sink = top.take().size();
            (void)sink;
        });
    std::printf("%-18s %-20s %9.2f %-6s\n", "topK",
                "n=10000,k=100", topk_ops * 1e-9, "Gop/s");

    std::vector<rt::Sphere> spheres(4096);
    for (std::size_t i = 0; i < spheres.size(); ++i) {
        spheres[i].center = {rng.uniform(-1.0f, 1.0f),
                             rng.uniform(-1.0f, 1.0f), 1.0f};
        spheres[i].radius = 1.0f;
        spheres[i].user_id = i;
    }
    rt::Bvh bvh;
    bvh.build(spheres);
    rt::Ray ray;
    ray.origin = {0.1f, -0.1f, 0.0f};
    ray.dir = {0, 0, 1};
    ray.tmax = 0.3f;
    rt::TraversalStats stats;
    const double trav_ops = opsPerSecond(1, [&] {
        int hits = 0;
        bvh.traverse(ray, spheres, stats, [&](const rt::Hit &) {
            ++hits;
            return true;
        });
        volatile int sink = hits;
        (void)sink;
    });
    std::printf("%-18s %-20s %9.2f %-6s\n", "bvhTraverse",
                "spheres=4096", trav_ops * 1e-6, "Mray/s");
}

} // namespace
} // namespace juno

int
main(int argc, char **argv)
{
    using namespace juno;
    // --json <path>: dump the measured rows (BENCH_adc.json is this
    // snapshot). --check-fastscan: exit nonzero unless the dispatched
    // 4-bit fast-scan beats the dispatched legacy gather (CI gate).
    std::string json_path;
    bool check_fastscan = false;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json" && a + 1 < argc)
            json_path = argv[++a];
        else if (arg == "--check-fastscan")
            check_fastscan = true;
    }

    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &best = simd::table(simd::bestSupported());
    std::printf("SIMD dispatch: best supported level = %s "
                "(active = %s)\n\n",
                simd::levelName(simd::bestSupported()),
                simd::active().name);
    std::printf("%-18s %-20s %9s %-6s %9s %-6s %7s\n", "kernel", "shape",
                "scalar", "", "dispatch", "", "speedup");
    benchReductions(scalar, best);
    benchBatch(scalar, best);
    benchGemm(scalar, best);
    benchAdcScan(scalar, best);
    benchFastScan(scalar, best);
    benchCompact(scalar, best);
    std::printf("\n");
    benchTopKAndBvh();

    if (!json_path.empty())
        writeSnapshot(json_path);
    if (check_fastscan) {
        if (simd::bestSupported() == simd::Level::kScalar) {
            // The scalar fast-scan trades float gathers for integer
            // table walks — a wash without the in-register shuffles,
            // and the gate exists to pin the SIMD win.
            std::printf("fast-scan gate skipped: host has no SIMD "
                        "tier (scalar dispatch only)\n");
            return 0;
        }
        std::printf("fast-scan vs legacy gather: %.2fx\n",
                    g_fastscan_vs_gather);
        if (g_fastscan_vs_gather <= 1.0) {
            std::fprintf(stderr,
                         "FAIL: fast-scan (%.2fx) does not beat the "
                         "legacy gather on the same lists\n",
                         g_fastscan_vs_gather);
            return 1;
        }
    }
    return 0;
}
