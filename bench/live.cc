/**
 * @file
 * Live-mutability serving bench: what concurrent writes cost the read
 * path, and how fresh an insert actually is.
 *
 * Two legs over the same dataset and service configuration:
 *
 *  - read-only baseline: the micro-batching SearchService over a
 *    frozen index, closed-loop clients for a fixed wall-clock window;
 *  - mixed read/write: the same clients over a LiveIndex while a
 *    writer injects inserts and deletes at a configured rate, with
 *    the background merge publishing generations mid-run.
 *
 * Freshness lag is measured directly: every Nth insert is a probe
 * whose vector is a query-set row (the guaranteed unique nearest
 * neighbour of itself), and the writer polls the serving path until
 * the new id appears in the top-k — the insert-to-first-visible-query
 * latency, reported as percentiles. The design bound is one query
 * latency (inserts are visible to the very next search), so the lag
 * distribution should track the read path's, not the merge cadence.
 *
 * Gates (exit nonzero, `--smoke` is the CI leg): every probe must
 * become visible (a missed probe is a freshness bug, not noise), and
 * the mixed leg must publish at least one generation so the numbers
 * cover a reader swap. `--json <path>` dumps the measured points
 * (BENCH_live.json).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/build_info.h"
#include "common/stats.h"
#include "common/timer.h"
#include "dataset/synthetic.h"
#include "harness/reporter.h"
#include "live/live_index.h"
#include "registry/index_factory.h"
#include "serve/search_service.h"

using namespace juno;

namespace {

struct Options {
    bool smoke = false;
    std::string json_path;
    idx_t num_points = bench::scale1M();
    idx_t k = 10;
    int clients = 2;
    int window = 8;
    /** Wall-clock seconds each leg serves. */
    double seconds = 2.0;
    double insert_rate = 2000.0;
    double delete_rate = 500.0;
    /** Every Nth insert is a freshness probe. */
    idx_t probe_every = 16;
    idx_t merge_threshold = 1024;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto value = [&](const char *name) -> std::string {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", name);
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--smoke")
            opt.smoke = true;
        else if (arg == "--json")
            opt.json_path = value("--json");
        else if (arg == "--n")
            opt.num_points = std::atoll(value("--n").c_str());
        else if (arg == "--k")
            opt.k = std::atoll(value("--k").c_str());
        else if (arg == "--clients")
            opt.clients = std::atoi(value("--clients").c_str());
        else if (arg == "--seconds")
            opt.seconds = std::atof(value("--seconds").c_str());
        else if (arg == "--insert-rate")
            opt.insert_rate = std::atof(value("--insert-rate").c_str());
        else if (arg == "--delete-rate")
            opt.delete_rate = std::atof(value("--delete-rate").c_str());
        else if (arg == "--merge-threshold")
            opt.merge_threshold =
                std::atoll(value("--merge-threshold").c_str());
        else {
            std::fprintf(stderr,
                         "usage: bench_live [--smoke] [--json path] "
                         "[--n N] [--k K] [--clients C] [--seconds S] "
                         "[--insert-rate R] [--delete-rate R] "
                         "[--merge-threshold N]\n");
            std::exit(2);
        }
    }
    if (opt.smoke) {
        opt.num_points = 4000;
        opt.seconds = 1.0;
        opt.insert_rate = 1500.0;
        opt.delete_rate = 400.0;
        opt.probe_every = 8;
        opt.merge_threshold = 256;
    }
    return opt;
}

struct LegResult {
    double qps = 0.0;
    std::uint64_t completed = 0;
    LatencySummary total_us;
};

/**
 * Closed-loop read clients against a running service for a fixed
 * wall-clock window (duration-based so the two legs are comparable
 * whatever their throughput). A full queue is backpressure, retried;
 * typed sheds are counted out of the completion tally by reap().
 */
LegResult
runReadClients(SearchService &service, FloatMatrixView queries,
               const Options &opt)
{
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> threads;
    Timer leg_timer;
    for (int c = 0; c < opt.clients; ++c)
        threads.emplace_back([&, c] {
            std::deque<std::future<ResultList>> inflight;
            auto reap = [&](std::future<ResultList> &f) {
                try {
                    f.get();
                    completed.fetch_add(1);
                } catch (const RejectedError &) {
                }
            };
            idx_t qi = static_cast<idx_t>(c) % queries.rows();
            Timer timer;
            while (timer.seconds() < opt.seconds) {
                if (inflight.size() >=
                    static_cast<std::size_t>(opt.window)) {
                    reap(inflight.front());
                    inflight.pop_front();
                }
                RejectReason reason = RejectReason::kNone;
                auto f = service.submit(queries.row(qi), opt.k,
                                        &reason);
                while (reason == RejectReason::kQueueFull &&
                       service.running()) {
                    std::this_thread::yield();
                    f = service.submit(queries.row(qi), opt.k,
                                       &reason);
                }
                inflight.push_back(std::move(f));
                qi = (qi + 1) % queries.rows();
            }
            while (!inflight.empty()) {
                reap(inflight.front());
                inflight.pop_front();
            }
        });
    for (auto &t : threads)
        t.join();
    LegResult result;
    result.completed = completed.load();
    result.qps = static_cast<double>(result.completed) /
                 leg_timer.seconds();
    result.total_us = service.snapshot().total_us;
    return result;
}

/** Writer-side tallies of the mixed leg. */
struct WriterResult {
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    std::uint64_t rejected = 0;
    std::uint64_t probes = 0;
    std::uint64_t probes_missed = 0;
    QuantileSketch lag_us;
};

void
writeJson(const std::string &path, const Options &opt,
          const LegResult &base, const LegResult &mixed,
          const WriterResult &w, const LiveStats &live)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    auto leg = [&](const char *name, const LegResult &r) {
        out << "  \"" << name << "\": {\"qps\": " << r.qps
            << ", \"completed\": " << r.completed
            << ", \"p50_us\": " << r.total_us.p50
            << ", \"p95_us\": " << r.total_us.p95
            << ", \"p99_us\": " << r.total_us.p99 << "}";
    };
    out << "{\n  \"bench\": \"live\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"points\": " << opt.num_points
        << ",\n  \"insert_rate\": " << opt.insert_rate
        << ",\n  \"delete_rate\": " << opt.delete_rate << ",\n";
    leg("read_only", base);
    out << ",\n";
    leg("mixed", mixed);
    out << ",\n  \"read_overhead\": "
        << (base.qps > 0.0 ? mixed.qps / base.qps : 0.0)
        << ",\n  \"writer\": {\"inserts\": " << w.inserts
        << ", \"removes\": " << w.removes
        << ", \"rejected\": " << w.rejected << "},\n"
        << "  \"freshness_lag_us\": {\"probes\": " << w.probes
        << ", \"missed\": " << w.probes_missed
        << ", \"p50\": " << w.lag_us.quantile(0.50)
        << ", \"p95\": " << w.lag_us.quantile(0.95)
        << ", \"p99\": " << w.lag_us.quantile(0.99)
        << ", \"max\": " << w.lag_us.quantile(1.0) << "},\n"
        << "  \"live\": {\"generation\": " << live.generation
        << ", \"generations_published\": "
        << live.generations_published
        << ", \"merges\": " << live.merges
        << ", \"live_count\": " << live.live_count << "}\n}\n";
    std::printf("snapshot written to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    auto spec = bench::deepSpec(opt.num_points);
    const Dataset ds = makeDataset(spec);
    const std::string index_spec =
        "ivfflat:nlist=" +
        std::to_string(bench::clustersFor(opt.num_points)) +
        ",nprobe=8";

    ServiceConfig config;
    config.search_threads = bench::benchThreads();

    std::printf("dataset: %lld points dim %lld, spec %s, %d clients "
                "for %.1fs/leg, writes +%.0f/-%.0f per sec\n",
                static_cast<long long>(ds.base.rows()),
                static_cast<long long>(ds.base.cols()), index_spec.c_str(),
                opt.clients, opt.seconds, opt.insert_rate,
                opt.delete_rate);

    // Leg 1: read-only baseline over the frozen index.
    LegResult base;
    {
        SearchService service(
            buildIndex(ds.metric, ds.base.view(), index_spec), config);
        service.start();
        base = runReadClients(service, ds.queries.view(), opt);
        service.stop();
    }

    // Leg 2: the same read traffic over a LiveIndex with a paced
    // writer. Deletes only touch writer-inserted ids so the read
    // workload's ground set never shrinks.
    LegResult mixed;
    WriterResult wr;
    LiveStats live;
    {
        LiveConfig lcfg;
        lcfg.merge_threshold = opt.merge_threshold;
        lcfg.fresh_capacity =
            std::max<idx_t>(4 * opt.merge_threshold, 4096);
        SearchService service(
            std::make_unique<LiveIndex>(ds.metric, ds.base.view(),
                                        index_spec, std::move(lcfg)),
            config);
        service.start();

        std::atomic<bool> stop{false};
        std::thread writer([&] {
            std::deque<idx_t> mine;
            idx_t next_id = ds.base.rows() + 1000000;
            idx_t probe_qi = 0;
            using Clock = std::chrono::steady_clock;
            const auto start = Clock::now();
            double ins_due = 0.0, del_due = 0.0;
            while (!stop.load()) {
                const double t =
                    std::chrono::duration<double>(Clock::now() - start)
                        .count();
                bool worked = false;
                if (t >= ins_due) {
                    const bool probe =
                        wr.inserts % opt.probe_every == 0;
                    // Probe vectors come from the query set: the
                    // inserted copy is its own unique nearest
                    // neighbour, so visibility == membership in the
                    // top-k for that query.
                    const float *vec =
                        probe ? ds.queries.view().row(probe_qi)
                              : ds.base.row(next_id % ds.base.rows());
                    Timer lag;
                    if (service.insert(vec, next_id) ==
                        MutateStatus::kOk) {
                        mine.push_back(next_id);
                        ++wr.inserts;
                        if (probe) {
                            ++wr.probes;
                            bool seen = false;
                            for (int tries = 0;
                                 tries < 200 && !seen; ++tries) {
                                const ResultList r =
                                    service.submit(vec, opt.k).get();
                                for (const Neighbor &n : r)
                                    if (n.id == next_id)
                                        seen = true;
                            }
                            if (seen)
                                wr.lag_us.add(lag.micros());
                            else
                                ++wr.probes_missed;
                            probe_qi = (probe_qi + 1) %
                                       ds.queries.rows();
                        }
                    } else {
                        ++wr.rejected;
                    }
                    ++next_id;
                    ins_due += 1.0 / opt.insert_rate;
                    worked = true;
                }
                if (opt.delete_rate > 0.0 && t >= del_due) {
                    if (!mine.empty()) {
                        if (service.remove(mine.front()) ==
                            MutateStatus::kOk)
                            ++wr.removes;
                        mine.pop_front();
                        worked = true;
                    }
                    del_due += 1.0 / opt.delete_rate;
                }
                if (!worked)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }
        });
        mixed = runReadClients(service, ds.queries.view(), opt);
        stop.store(true);
        writer.join();
        live = service.liveStats();
        service.stop();
    }

    printBanner("Serving under live mutation");
    TablePrinter table({"leg", "read_QPS", "vs_read_only", "p50_us",
                        "p95_us", "p99_us"});
    table.addRow({"read-only", TablePrinter::num(base.qps), "1.00",
                  TablePrinter::num(base.total_us.p50),
                  TablePrinter::num(base.total_us.p95),
                  TablePrinter::num(base.total_us.p99)});
    table.addRow({"mixed r/w", TablePrinter::num(mixed.qps),
                  TablePrinter::num(base.qps > 0.0
                                        ? mixed.qps / base.qps
                                        : 0.0),
                  TablePrinter::num(mixed.total_us.p50),
                  TablePrinter::num(mixed.total_us.p95),
                  TablePrinter::num(mixed.total_us.p99)});
    table.print();
    std::printf("freshness lag (insert -> first visible query): "
                "%llu probes, p50 %.0fus p95 %.0fus p99 %.0fus "
                "max %.0fus\n",
                static_cast<unsigned long long>(wr.probes),
                wr.lag_us.quantile(0.50), wr.lag_us.quantile(0.95),
                wr.lag_us.quantile(0.99), wr.lag_us.quantile(1.0));
    std::printf("writer: +%llu -%llu (%llu rejected); live: "
                "generation %llu, %llu published, %llu merges, "
                "%lld ids live\n",
                static_cast<unsigned long long>(wr.inserts),
                static_cast<unsigned long long>(wr.removes),
                static_cast<unsigned long long>(wr.rejected),
                static_cast<unsigned long long>(live.generation),
                static_cast<unsigned long long>(
                    live.generations_published),
                static_cast<unsigned long long>(live.merges),
                static_cast<long long>(live.live_count));

    if (!opt.json_path.empty())
        writeJson(opt.json_path, opt, base, mixed, wr, live);

    int failures = 0;
    if (wr.probes == 0 || wr.probes_missed != 0) {
        std::fprintf(stderr,
                     "FRESHNESS FAIL: %llu of %llu probes never "
                     "became visible\n",
                     static_cast<unsigned long long>(wr.probes_missed),
                     static_cast<unsigned long long>(wr.probes));
        ++failures;
    }
    if (live.generations_published == 0) {
        std::fprintf(stderr,
                     "MERGE FAIL: no generation published during the "
                     "mixed leg (write traffic below the threshold?)\n");
        ++failures;
    }
    if (failures != 0) {
        std::fprintf(stderr, "\n%s FAIL: %d gate violations\n",
                     opt.smoke ? "SMOKE" : "BENCH", failures);
        return 1;
    }
    if (opt.smoke)
        std::printf("\nSMOKE PASS: every probe visible, %llu "
                    "generations published under load\n",
                    static_cast<unsigned long long>(
                        live.generations_published));
    else
        std::printf("\npaper context: JUNO's index is frozen at build "
                    "time; this leg shows the serving layer absorbing "
                    "updates with freshness bounded by one query "
                    "latency instead of a rebuild.\n");
    return 0;
}
