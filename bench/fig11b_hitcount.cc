/**
 * @file
 * Reproduces paper Fig. 11(b): correlation between the hit count of a
 * search point (number of subspaces where its codebook entry's sphere
 * is hit) and its exact distance to the query — for the plain hit
 * count (JUNO-L) and the reward/penalty variant (JUNO-M).
 *
 * Expected shape: points in tighter true-distance percentiles have
 * higher hit counts, and the reward/penalty score separates the
 * percentiles more sharply than the plain count.
 */
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/distance.h"
#include "common/stats.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 11(b): hit count vs true distance percentile "
                "(DEEP-like)");
    auto spec = bench::deepSpec();
    spec.num_queries = 16;
    Workload workload(spec, 100);

    JunoParams params = junoPresetH();
    params.clusters = bench::clustersFor(spec.num_points);
    params.pq_entries = 128;
    params.nprobs = 16;
    params.max_training_points = 10000;
    params.policy.ref_samples = 4000;
    JunoIndex index(workload.metric(), workload.base(), params);

    // Percentile buckets of the true distance within the probed pool.
    const char *bucket_names[4] = {"top 0.1%", "top 1%", "top 10%",
                                   "top 100%"};
    const double bucket_edges[4] = {0.001, 0.01, 0.1, 1.0};
    RunningStat plain[4], reward[4];

    for (idx_t qi = 0; qi < workload.queries().rows(); ++qi) {
        const float *q = workload.queries().row(qi);
        const auto probes = index.probe(q);
        index.setSearchMode(SearchMode::kRewardPenalty);
        const auto lut = index.buildLut(q, probes);

        // Exact distances of every point in the probed clusters.
        std::vector<Neighbor> exact;
        for (const auto &pr : probes) {
            for (idx_t pid :
                 index.ivf().list(static_cast<cluster_t>(pr.id)))
                exact.push_back(
                    {pid, l2Sqr(q, workload.base().row(pid),
                                workload.base().cols())});
        }
        std::sort(exact.begin(), exact.end(),
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.score < b.score;
                  });
        std::map<idx_t, int> bucket_of;
        for (std::size_t rank = 0; rank < exact.size(); ++rank) {
            const double pct = static_cast<double>(rank + 1) /
                               static_cast<double>(exact.size());
            for (int b = 0; b < 4; ++b)
                if (pct <= bucket_edges[b]) {
                    bucket_of[exact[rank].id] = b;
                    break;
                }
        }

        // Hit-count scores of every touched point, both modes.
        auto collect = [&](SearchMode mode, RunningStat *sink) {
            for (std::size_t p = 0; p < probes.size(); ++p) {
                const auto scores = index.calculator().scoreCluster(
                    workload.metric(), mode, probes, p, lut);
                for (const auto &nb : scores) {
                    const auto it = bucket_of.find(nb.id);
                    if (it != bucket_of.end())
                        sink[it->second].add(nb.score);
                }
            }
        };
        collect(SearchMode::kHitCount, plain);
        collect(SearchMode::kRewardPenalty, reward);
    }

    TablePrinter table({"true-distance bucket", "hit_count_mean",
                        "reward_penalty_mean"});
    for (int b = 0; b < 4; ++b)
        table.addRow({bucket_names[b], TablePrinter::num(plain[b].mean()),
                      TablePrinter::num(reward[b].mean())});
    table.print();

    const double plain_sep = plain[0].mean() - plain[3].mean();
    const double reward_sep = reward[0].mean() - reward[3].mean();
    std::printf("\nseparation (top 0.1%% minus top 100%%): plain=%.2f "
                "reward/penalty=%.2f\n",
                plain_sep, reward_sep);
    std::printf("paper: closer points collect more hits, and the "
                "reward/penalty variant correlates\nmore strongly than "
                "the plain count.\n");
    return 0;
}
