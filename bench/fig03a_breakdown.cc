/**
 * @file
 * Reproduces paper Fig. 3(a): execution-time breakdown of the FAISS
 * IVFPQ pipeline (filter / L2-LUT construction / distance calculation)
 * on a DEEP-like dataset as nprobs sweeps.
 *
 * Expected shape: LUT construction + distance calculation dominate
 * (90-99.9% of time) and grow linearly with nprobs, while filtering
 * stays flat (its cost depends on C, not nprobs).
 */
#include <cstdio>

#include "baseline/ivfpq_index.h"
#include "bench_common.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 3(a): FAISS-style IVFPQ stage breakdown vs nprobs "
                "(DEEP-like)");
    const auto spec = bench::deepSpec();
    Workload workload(spec, 100);
    std::printf("dataset %s, D=%lld, Q=%lld\n",
                workload.name().c_str(),
                static_cast<long long>(workload.base().cols()),
                static_cast<long long>(workload.queries().rows()));

    IvfPqIndex::Params params;
    params.clusters = bench::clustersFor(spec.num_points);
    params.pq_subspaces = 48; // PQ48 at D = 96 (M = 2), as in the paper
    params.pq_entries = 128;
    params.max_training_points = 10000;
    IvfPqIndex index(workload.metric(), workload.base(), params);

    TablePrinter table({"nprobs", "filter_ms_per_10k", "lut_ms_per_10k",
                        "scan_ms_per_10k", "lut+scan_share"});
    const double per_10k =
        10000.0 / static_cast<double>(workload.queries().rows());
    for (idx_t nprobs : {4, 8, 16, 32, 64, 128, 256}) {
        if (nprobs > index.ivf().numClusters())
            break;
        index.setNprobs(nprobs);
        index.resetStageTimers();
        index.search(
            SearchRequest(workload.queries(), bench::searchOptions(100)));
        const auto &timers = index.stageTimers();
        const double filter = timers.seconds("filter") * 1e3 * per_10k;
        const double lut = timers.seconds("lut") * 1e3 * per_10k;
        const double scan = timers.seconds("scan") * 1e3 * per_10k;
        const double share = (lut + scan) / (filter + lut + scan);
        table.addRow({std::to_string(nprobs), TablePrinter::num(filter),
                      TablePrinter::num(lut), TablePrinter::num(scan),
                      TablePrinter::num(share)});
    }
    table.print();
    std::printf("\npaper: lut+scan consume ~90%%-99.9%% of query time and "
                "scale with nprobs;\nfilter stays flat.\n");
    return 0;
}
