/**
 * @file
 * Extra ablation (DESIGN.md Sec. 5): BVH build-policy quality. The RT
 * substrate defaults to binned SAH, the heuristic GPU builders use;
 * this bench compares SAH vs median splits on the actual JUNO entry
 * scene in build time, tree cost, and traversal work per query ray.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "harness/reporter.h"
#include "rtcore/bvh.h"

using namespace juno;
using namespace juno::rt;

int
main()
{
    printBanner("Extra: BVH split-policy ablation on a JUNO-like entry "
                "scene");

    // A JUNO-like scene: S subspace planes of E unit spheres each,
    // clustered in xy like real codebook entries.
    const int subspaces = 48, entries = bench::largeScale() ? 256 : 128;
    Rng rng(4242);
    std::vector<Sphere> spheres;
    for (int s = 0; s < subspaces; ++s) {
        for (int e = 0; e < entries; ++e) {
            Sphere sphere;
            const bool clustered = rng.uniform() < 0.7;
            const float spread = clustered ? 0.2f : 0.9f;
            sphere.center = {
                static_cast<float>(rng.gaussian(0.0, spread)),
                static_cast<float>(rng.gaussian(0.0, spread)),
                4.0f * static_cast<float>(s) + 1.0f};
            sphere.radius = 1.0f;
            sphere.user_id = static_cast<std::uint64_t>(s * entries + e);
            spheres.push_back(sphere);
        }
    }

    // Query rays mimicking JUNO's: +z, one per subspace, tight tmax.
    std::vector<Ray> rays;
    for (int trial = 0; trial < 2000; ++trial) {
        Ray ray;
        const int s = static_cast<int>(rng.below(subspaces));
        ray.origin = {static_cast<float>(rng.gaussian(0.0, 0.3)),
                      static_cast<float>(rng.gaussian(0.0, 0.3)),
                      4.0f * static_cast<float>(s)};
        ray.dir = {0, 0, 1};
        ray.tmax = 1.0f - 0.6f; // ~gate radius 0.8
        rays.push_back(ray);
    }

    TablePrinter table({"policy", "build_ms", "sah_cost", "depth",
                        "node_visits/ray", "prim_tests/ray", "hits/ray"});
    for (SplitPolicy policy : {SplitPolicy::kBinnedSah,
                               SplitPolicy::kMedian}) {
        Bvh bvh;
        BvhBuildParams params;
        params.policy = policy;
        Timer build_timer;
        bvh.build(spheres, params);
        const double build_ms = build_timer.millis();

        TraversalStats stats;
        for (const auto &ray : rays)
            bvh.traverse(ray, spheres, stats,
                         [](const Hit &) { return true; });
        const double per_ray = 1.0 / static_cast<double>(rays.size());
        table.addRow(
            {policy == SplitPolicy::kBinnedSah ? "binned SAH" : "median",
             TablePrinter::num(build_ms), TablePrinter::num(bvh.sahCost()),
             std::to_string(bvh.depth()),
             TablePrinter::num(static_cast<double>(stats.node_visits) *
                               per_ray),
             TablePrinter::num(static_cast<double>(stats.prim_tests) *
                               per_ray),
             TablePrinter::num(static_cast<double>(stats.hits) * per_ray)});
    }
    table.print();
    std::printf("\nreading: on JUNO's z-layered entry planes the two "
                "policies converge to nearly the\nsame tree (the scene "
                "is built once offline either way, paper Alg. 1); SAH "
                "is the\nsafe default because it never traverses worse "
                "and wins on irregular scenes.\n");
    return 0;
}
