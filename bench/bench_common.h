/**
 * @file
 * Shared configuration for the figure-reproduction benches.
 *
 * Scales are reduced from the paper's 1M/100M points to fit a
 * single-core CPU host (see DESIGN.md substitution table); the *shape*
 * of each result (who wins, where crossovers fall) is what each bench
 * reproduces, not absolute numbers. Set JUNO_BENCH_SCALE=large in the
 * environment to run closer to paper scale.
 */
#ifndef JUNO_BENCH_BENCH_COMMON_H
#define JUNO_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dataset/synthetic.h"
#include "engine/search_request.h"

namespace juno {
namespace bench {

/** True when the JUNO_BENCH_SCALE=large environment override is set. */
inline bool
largeScale()
{
    const char *env = std::getenv("JUNO_BENCH_SCALE");
    return env != nullptr && std::strcmp(env, "large") == 0;
}

/** Number of base points for the "1M-class" datasets. */
inline idx_t
scale1M()
{
    return largeScale() ? 200000 : 20000;
}

/** Number of base points for the "100M-class" datasets. */
inline idx_t
scale100M()
{
    return largeScale() ? 500000 : 60000;
}

/** Queries per evaluation. */
inline idx_t
queryCount()
{
    return largeScale() ? 200 : 64;
}

/** DEEP1M-like spec (D=96, L2): the paper's default study dataset. */
inline SyntheticSpec
deepSpec(idx_t n = scale1M())
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = n;
    spec.num_queries = queryCount();
    spec.components = 512;
    spec.noise_scale = 4.0f;
    spec.seed = 20240404;
    return spec;
}

/** SIFT1M-like spec (D=128, L2). */
inline SyntheticSpec
siftSpec(idx_t n = scale1M())
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kSiftLike;
    spec.num_points = n;
    spec.num_queries = queryCount();
    spec.components = 512;
    spec.noise_scale = 4.0f;
    spec.seed = 20240405;
    return spec;
}

/** TTI1M-like spec (D=200, inner product). */
inline SyntheticSpec
ttiSpec(idx_t n = scale1M())
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kTtiLike;
    spec.num_points = n;
    spec.num_queries = queryCount();
    spec.components = 512;
    spec.noise_scale = 4.0f;
    spec.seed = 20240406;
    return spec;
}

/**
 * Worker threads for batched searches (JUNO_BENCH_THREADS override;
 * default 1 so figures stay comparable to the paper's per-query runs).
 */
inline int
benchThreads()
{
    const char *env = std::getenv("JUNO_BENCH_THREADS");
    if (env == nullptr)
        return 1;
    const int v = std::atoi(env);
    return v > 0 ? v : 1;
}

/** Default SearchOptions of the QPS benches. */
inline SearchOptions
searchOptions(idx_t k)
{
    SearchOptions options;
    options.k = k;
    options.threads = benchThreads();
    return options;
}

/** Worker counts of the thread-scaling tables (effective QPS). */
inline std::vector<int>
threadScalingCounts()
{
    return {1, 2, 4};
}

/** IVF cluster count scaled to dataset size (paper: IVF4096 at 1M). */
inline int
clustersFor(idx_t n)
{
    if (n >= 200000)
        return 1024;
    if (n >= 50000)
        return 512;
    return 256;
}

} // namespace bench
} // namespace juno

#endif // JUNO_BENCH_BENCH_COMMON_H
