/**
 * @file
 * Reproduces paper Fig. 6: the fraction of search-point projections
 * that remain (require LUT lookups and accumulation) as the distance
 * threshold sweeps from 0 to the maximum subspace distance.
 *
 * Expected shape: the remaining fraction grows roughly linearly with
 * the threshold, so a threshold sized for the top-100 prunes most of
 * the accumulation work.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 6: remaining point projections vs distance "
                "threshold (DEEP-like)");
    auto spec = bench::deepSpec();
    spec.num_queries = 16;
    Workload workload(spec, 100);

    const idx_t n = workload.base().rows();
    const idx_t dim = workload.base().cols();
    const int subspaces = static_cast<int>(dim / 2);
    Rng rng(7);

    // For sampled (query, subspace) pairs, measure the fraction of
    // projections within threshold * max_distance for a threshold grid.
    const int grid = 10;
    std::vector<QuantileSketch> remain(static_cast<std::size_t>(grid));
    const idx_t sample_points = std::min<idx_t>(n, 4000);
    const auto sample_ids =
        rng.sampleWithoutReplacement(n, sample_points);

    for (idx_t qi = 0; qi < workload.queries().rows(); ++qi) {
        const float *q = workload.queries().row(qi);
        for (int s = 0; s < subspaces; s += 7) { // subsample subspaces
            const float qx = q[2 * s], qy = q[2 * s + 1];
            std::vector<float> dists;
            dists.reserve(static_cast<std::size_t>(sample_points));
            float max_d = 0.0f;
            for (idx_t r : sample_ids) {
                const float dx = workload.base().at(r, 2 * s) - qx;
                const float dy = workload.base().at(r, 2 * s + 1) - qy;
                const float d = std::sqrt(dx * dx + dy * dy);
                dists.push_back(d);
                max_d = std::max(max_d, d);
            }
            if (max_d <= 0.0f)
                continue;
            std::sort(dists.begin(), dists.end());
            for (int g = 0; g < grid; ++g) {
                const float thr =
                    max_d * static_cast<float>(g + 1) / grid;
                const auto it =
                    std::upper_bound(dists.begin(), dists.end(), thr);
                remain[static_cast<std::size_t>(g)].add(
                    static_cast<double>(it - dists.begin()) /
                    static_cast<double>(dists.size()));
            }
        }
    }

    TablePrinter table({"threshold/max", "remain_mean", "remain_q1",
                        "remain_q3"});
    for (int g = 0; g < grid; ++g) {
        const auto &sketch = remain[static_cast<std::size_t>(g)];
        table.addRow({TablePrinter::num((g + 1) / static_cast<double>(grid)),
                      TablePrinter::num(sketch.mean()),
                      TablePrinter::num(sketch.q1()),
                      TablePrinter::num(sketch.q3())});
    }
    table.print();
    std::printf("\npaper: remaining projections decrease roughly linearly "
                "as the threshold tightens,\nso top-100-sized thresholds "
                "skip most LUT lookups.\n");
    return 0;
}
