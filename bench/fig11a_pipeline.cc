/**
 * @file
 * Reproduces paper Fig. 11(a): latency of the L2-LUT construction and
 * distance-calculation stages when run solo, naively co-run, and
 * pipelined (the paper's RT/Tensor-core MPS co-run).
 *
 * On this CPU substrate the two stages run on two threads connected by
 * a bounded queue. We report measured wall times plus the analytic
 * bounds max(stage1, stage2) (ideal co-run) and stage1 + stage2
 * (strictly sequential); on a single-core host the measured pipelined
 * wall time approaches the sequential bound and the analytic bound
 * shows the attainable overlap (see DESIGN.md substitution table).
 */
#include <cstdio>

#include "bench_common.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 11(a): stage latency, sequential vs pipelined "
                "(DEEP-like, JUNO-H)");
    const auto spec = bench::deepSpec();
    Workload workload(spec, 100);

    JunoParams params = junoPresetH();
    params.clusters = bench::clustersFor(spec.num_points);
    params.pq_entries = 128;
    params.nprobs = 32;
    params.max_training_points = 10000;
    params.policy.ref_samples = 4000;
    JunoIndex index(workload.metric(), workload.base(), params);

    // Sequential run.
    index.setPipelined(false);
    index.resetStageTimers();
    Timer seq_timer;
    index.search(
        SearchRequest(workload.queries(), bench::searchOptions(100)));
    const double seq_wall = seq_timer.seconds();
    const double lut_busy = index.stageTimers().seconds("rt_lut");
    const double scan_busy = index.stageTimers().seconds("scan");
    const double filter_busy = index.stageTimers().seconds("filter");

    // Pipelined run.
    index.setPipelined(true);
    index.resetStageTimers();
    Timer pipe_timer;
    index.search(
        SearchRequest(workload.queries(), bench::searchOptions(100)));
    const double pipe_wall = pipe_timer.seconds();

    TablePrinter table({"configuration", "wall_ms", "normalized"});
    const double base = seq_wall * 1e3;
    table.addRow({"solo-run (sequential)", TablePrinter::num(base), "1.00"});
    table.addRow({"pipelined (measured)", TablePrinter::num(pipe_wall * 1e3),
                  TablePrinter::num(pipe_wall * 1e3 / base)});
    const double ideal =
        (filter_busy + std::max(lut_busy, scan_busy)) * 1e3;
    table.addRow({"pipelined (analytic bound)", TablePrinter::num(ideal),
                  TablePrinter::num(ideal / base)});
    table.print();

    std::printf("\nstage busy time: filter=%.1fms rt_lut=%.1fms "
                "scan=%.1fms\n",
                filter_busy * 1e3, lut_busy * 1e3, scan_busy * 1e3);
    std::printf("paper: pipelining hides the shorter stage behind the "
                "longer; naive co-run without\nthe Tensor-core "
                "accumulation mapping suffers ~2-3x slowdown from "
                "contention.\n");
    return 0;
}
