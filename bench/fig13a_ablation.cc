/**
 * @file
 * Reproduces paper Fig. 13(a): JUNO's speed-up over the FAISS-style
 * baseline at fixed recall targets, with each optimization ablated:
 *  - full JUNO (best of the three modes, pipelined),
 *  - w/o pipelining (strictly sequential stages),
 *  - w/o hit-count selection (always exact distances).
 *
 * QPS uses the RTX 4090 re-pricing of the RT stage (see
 * fig12_qps_recall.cc header); the paper's shape is: hit-count
 * selection drives the low-recall advantage and is harmless to ablate
 * at the highest recall (it cannot reach that quality anyway), while
 * pipelining contributes across the range.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/ivfpq_index.h"
#include "bench_common.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/workload.h"
#include "rtcore/device.h"

using namespace juno;

namespace {

struct Operating {
    double recall = 0.0;
    double qps = 0.0;
};

double
rtAccel4090()
{
    return rt::costModelRtx4090().rt_throughput /
           rt::costModelA100().rt_throughput;
}

/** One pass over the nprobs sweep, collecting operating points. */
template <typename IndexT>
std::vector<Operating>
collect(Workload &workload, IndexT &index, bool reprice_rt)
{
    const double q_count =
        static_cast<double>(workload.queries().rows());
    std::vector<Operating> points;
    for (idx_t np : {1, 2, 4, 8, 16, 32, 64}) {
        if (np > index.ivf().numClusters())
            break;
        index.setNprobs(np);
        const auto point =
            evaluate(workload, index, bench::searchOptions(100));
        double qps = point.qps;
        if (reprice_rt) {
            const double rt = point.timers.seconds("rt_lut");
            const double total = q_count / point.qps;
            qps = q_count / (total - rt + rt / rtAccel4090());
        }
        points.push_back({point.recall1_at_k, qps});
    }
    return points;
}

/** Best QPS among cached points whose recall reaches @p target. */
Operating
bestAtRecall(const std::vector<Operating> &points, double target)
{
    Operating best;
    for (const auto &p : points)
        if (p.recall >= target && p.qps > best.qps)
            best = p;
    return best;
}

} // namespace

int
main()
{
    printBanner("Fig. 13(a): speed-up breakdown vs FAISS baseline "
                "(DEEP-like, QPS_rt4090)");
    const auto spec = bench::deepSpec();
    Workload workload(spec, 100);
    const int clusters = bench::clustersFor(spec.num_points);

    IvfPqIndex::Params bp;
    bp.clusters = clusters;
    bp.pq_subspaces = 48;
    bp.pq_entries = 256;
    bp.max_training_points = 10000;
    IvfPqIndex baseline(workload.metric(), workload.base(), bp);
    const auto base_points = collect(workload, baseline, false);

    JunoParams jp;
    jp.clusters = clusters;
    jp.pq_entries = 256;
    jp.max_training_points = 10000;
    jp.policy.ref_samples = 4000;
    JunoIndex index(workload.metric(), workload.base(), jp);

    // Collect one sweep per (mode, pipelined) configuration.
    struct ModeSweep {
        SearchMode mode;
        bool pipelined;
        std::vector<Operating> points;
    };
    std::vector<ModeSweep> sweeps;
    for (SearchMode mode : {SearchMode::kExactDistance,
                            SearchMode::kRewardPenalty,
                            SearchMode::kHitCount}) {
        for (bool pipelined : {true, false}) {
            index.setSearchMode(mode);
            index.setPipelined(pipelined);
            index.setThresholdScale(mode == SearchMode::kExactDistance
                                        ? 1.0
                                        : 0.7);
            sweeps.push_back(
                {mode, pipelined, collect(workload, index, true)});
        }
    }

    auto best_of = [&](bool allow_hitcount, bool pipelined,
                       double target) {
        Operating best;
        for (const auto &sweep : sweeps) {
            if (sweep.pipelined != pipelined)
                continue;
            if (!allow_hitcount &&
                sweep.mode != SearchMode::kExactDistance)
                continue;
            const auto got = bestAtRecall(sweep.points, target);
            if (got.qps > best.qps)
                best = got;
        }
        return best;
    };

    TablePrinter table({"recall target", "FAISS_qps", "JUNO_qps",
                        "JUNO_wo_pipeline_qps", "JUNO_wo_hitcount_qps",
                        "speedup", "speedup_wo_pipe", "speedup_wo_hc"});
    for (double target : {0.95, 0.9, 0.8, 0.65}) {
        const auto base = bestAtRecall(base_points, target);
        if (base.qps == 0.0)
            continue;
        const auto full = best_of(true, true, target);
        const auto wo_pipe = best_of(true, false, target);
        const auto wo_hc = best_of(false, true, target);
        table.addRow(
            {TablePrinter::num(target), TablePrinter::num(base.qps),
             TablePrinter::num(full.qps), TablePrinter::num(wo_pipe.qps),
             TablePrinter::num(wo_hc.qps),
             TablePrinter::num(full.qps / base.qps),
             TablePrinter::num(wo_pipe.qps / base.qps),
             TablePrinter::num(wo_hc.qps / base.qps)});
    }
    table.print();
    std::printf("\npaper: hit-count selection drives the low-recall "
                "advantage; its ablation is harmless\nat the top recall "
                "band. Pipelining contributes across the range (bounded "
                "on a\nsingle-core host; see DESIGN.md).\n");
    return 0;
}
