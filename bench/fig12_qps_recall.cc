/**
 * @file
 * Reproduces paper Fig. 12: QPS vs. search quality for JUNO-L/M/H
 * against FAISS-style PQx and +HNSW baselines on five datasets
 * (SIFT-like, DEEP-like, TTI-like at "1M-class" scale plus SIFT/DEEP
 * at "100M-class" scale), under both R1@100 and R100@1000.
 *
 * Two QPS columns are reported:
 *  - QPS_cpu: measured wall time on this host. The software BVH is the
 *    "no RT core" execution regime, so this column corresponds to the
 *    paper's A100 study (Fig. 14(a)): JUNO wins at low quality through
 *    algorithmic sparsity alone and loses at high quality where
 *    software traversal costs more than the pruning saves.
 *  - QPS_rt4090: the RT-LUT stage re-priced under the RTX 4090 cost
 *    model (hardware BVH traversal at 8x the software-fallback
 *    throughput: rt_throughput 2.0 vs 0.25, see rtcore/device.h); the
 *    filter and scan stages keep their measured times. This is the
 *    substitution for the paper's RT-core execution and is the column
 *    whose shape Fig. 12 describes.
 */
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baseline/ivfpq_index.h"
#include "common/build_info.h"
#include "bench_common.h"
#include "core/juno_index.h"
#include "harness/index_cache.h"
#include "harness/reporter.h"
#include "harness/sweep.h"
#include "harness/workload.h"
#include "rtcore/device.h"

using namespace juno;

namespace {

/** Hardware acceleration of the RT stage under the 4090 cost model. */
double
rtAccel4090()
{
    return rt::costModelRtx4090().rt_throughput /
           rt::costModelA100().rt_throughput;
}

struct NamedPoint {
    std::string config;
    double recall1 = 0.0;
    double qps_cpu = 0.0;
    double qps_rt = 0.0; ///< RT stage re-priced under the 4090 model
};

/** Everything one dataset contributes to the JSON snapshot. */
struct DatasetResult {
    std::string label;
    std::vector<NamedPoint> rows;
    std::vector<EvalPoint> thread_scaling; ///< JUNO-H at 1/2/4 workers
};

std::vector<DatasetResult> g_snapshot;

/**
 * Writes the collected operating points as JSON (BENCH_fig12.json):
 * the perf trajectory future PRs diff against.
 */
void
writeSnapshot(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"fig12_qps_recall\",\n  \"build\": "
        << buildInfoJson() << ",\n  \"scale\": \""
        << (bench::largeScale() ? "large" : "default")
        << "\",\n  \"datasets\": [\n";
    for (std::size_t d = 0; d < g_snapshot.size(); ++d) {
        const auto &ds = g_snapshot[d];
        out << "    {\n      \"label\": \"" << ds.label
            << "\",\n      \"points\": [\n";
        for (std::size_t i = 0; i < ds.rows.size(); ++i) {
            const auto &p = ds.rows[i];
            out << "        {\"config\": \"" << p.config
                << "\", \"recall1_at_100\": " << p.recall1
                << ", \"qps_cpu\": " << p.qps_cpu
                << ", \"qps_rt4090\": " << p.qps_rt << "}"
                << (i + 1 < ds.rows.size() ? "," : "") << "\n";
        }
        out << "      ],\n      \"thread_scaling\": [\n";
        for (std::size_t i = 0; i < ds.thread_scaling.size(); ++i) {
            const auto &p = ds.thread_scaling[i];
            out << "        {\"threads\": " << p.threads
                << ", \"qps\": " << p.qps
                << ", \"recall1_at_100\": " << p.recall1_at_k << "}"
                << (i + 1 < ds.thread_scaling.size() ? "," : "") << "\n";
        }
        out << "      ]\n    }" << (d + 1 < g_snapshot.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
    std::printf("snapshot written to %s\n", path.c_str());
}

std::vector<idx_t>
nprobsSweep(int clusters)
{
    std::vector<idx_t> sweep;
    for (idx_t np : {1, 4, 16, 64})
        if (np <= clusters)
            sweep.push_back(np);
    return sweep;
}

/** Evaluates an index across an nprobs sweep. */
template <typename IndexT>
void
sweepIndex(Workload &workload, IndexT &index, const std::string &prefix,
           std::vector<NamedPoint> &out, std::vector<ParetoPoint> *pareto)
{
    const double q_count =
        static_cast<double>(workload.queries().rows());
    for (idx_t np : nprobsSweep(static_cast<int>(
             index.ivf().numClusters()))) {
        index.setNprobs(np);
        const auto point =
            evaluate(workload, index, bench::searchOptions(100));
        NamedPoint named;
        named.config = prefix + ",np=" + std::to_string(np);
        named.recall1 = point.recall1_at_k;
        named.qps_cpu = point.qps;
        // Re-price the RT stage (zero for the baselines, whose LUT
        // stage runs on CUDA/Tensor cores in the paper and stays at
        // measured cost here).
        const double rt = point.timers.seconds("rt_lut");
        const double total = q_count / point.qps;
        const double repriced = total - rt + rt / rtAccel4090();
        named.qps_rt = q_count / repriced;
        out.push_back(named);
        if (pareto != nullptr)
            pareto->push_back({named.recall1, named.qps_rt, named.config});
    }
}

void
runDataset(const char *label, const SyntheticSpec &spec, int pq_fine,
           int pq_coarse, bool with_r100)
{
    printBanner(std::string("Fig. 12: ") + label);
    Workload workload(spec, 100);
    const int clusters = bench::clustersFor(spec.num_points);
    std::vector<NamedPoint> rows;
    std::vector<ParetoPoint> juno_points;

    // Index builds go through the snapshot cache: with
    // JUNO_SNAPSHOT_CACHE set, re-runs (and the sweep's repeated
    // visits to the same configuration) open the persisted index
    // instead of re-running k-means/PQ/graph construction.
    const std::string dataset_key =
        workload.name() + "|n=" + std::to_string(spec.num_points) +
        "|q=" + std::to_string(spec.num_queries) +
        "|seed=" + std::to_string(spec.seed);

    // FAISS-style baselines: fine and coarse PQ, plus +HNSW routing.
    for (int pq : {pq_fine, pq_coarse}) {
        const std::string bspec =
            "ivfpq:nlist=" + std::to_string(clusters) +
            ",m=" + std::to_string(pq) + ",entries=256,train=10000";
        auto baseline = buildOrOpen(workload.metric(), workload.base(),
                                    bspec, dataset_key);
        auto *ivfpq = dynamic_cast<IvfPqIndex *>(baseline.get());
        sweepIndex(workload, *ivfpq, "PQ" + std::to_string(pq), rows,
                   nullptr);
    }
    {
        const std::string bspec =
            "ivfpq:nlist=" + std::to_string(clusters) +
            ",m=" + std::to_string(pq_fine) +
            ",entries=256,train=10000,hnsw=1";
        auto hnsw_baseline = buildOrOpen(
            workload.metric(), workload.base(), bspec, dataset_key);
        auto *ivfpq = dynamic_cast<IvfPqIndex *>(hnsw_baseline.get());
        sweepIndex(workload, *ivfpq,
                   "PQ" + std::to_string(pq_fine) + "+HNSW", rows,
                   nullptr);
    }

    // JUNO: one build, three modes x two scales swept at search time.
    const std::string jspec = "juno:nlist=" + std::to_string(clusters) +
                              ",entries=256,train=10000,prefs=4000";
    auto juno =
        buildOrOpen(workload.metric(), workload.base(), jspec,
                    dataset_key);
    auto &index = dynamic_cast<JunoIndex &>(*juno);
    for (SearchMode mode : {SearchMode::kExactDistance,
                            SearchMode::kRewardPenalty,
                            SearchMode::kHitCount}) {
        index.setSearchMode(mode);
        for (double scale : {1.0, 0.6}) {
            index.setThresholdScale(scale);
            const std::string prefix =
                std::string(searchModeName(mode)) + ",s=" +
                TablePrinter::num(scale);
            sweepIndex(workload, index, prefix, rows, &juno_points);
        }
    }

    TablePrinter table({"config", "R1@100", "QPS_cpu", "QPS_rt4090"});
    for (const auto &row : rows)
        table.addRow({row.config, TablePrinter::num(row.recall1),
                      TablePrinter::num(row.qps_cpu),
                      TablePrinter::num(row.qps_rt)});
    table.print();

    // Batch-parallel serving: effective QPS of the JUNO-H operating
    // point as the query engine shards the batch over 1/2/4 workers.
    printBanner(std::string(label) +
                ": thread scaling (JUNO-H, effective QPS)");
    index.setSearchMode(SearchMode::kExactDistance);
    index.setThresholdScale(1.0);
    index.setNprobs(16);
    auto scaling = evaluateThreadScaling(workload, index, 100,
                                         bench::threadScalingCounts());
    printThreadScaling(scaling);
    g_snapshot.push_back({label, rows, scaling});

    printBanner(std::string(label) + ": aggregated JUNO Pareto frontier "
                "(QPS_rt4090; the bold grey line)");
    TablePrinter frontier_table({"config", "recall", "QPS_rt4090"});
    for (const auto &p : paretoFrontier(juno_points))
        frontier_table.addRow({p.label, TablePrinter::num(p.recall),
                               TablePrinter::num(p.qps)});
    frontier_table.print();

    if (with_r100) {
        printBanner(std::string(label) + ": R100@1000 operating points");
        TablePrinter r100_table({"config", "R100@1000", "QPS_cpu"});
        // Representative configs only (full sweep would double runtime).
        {
            const std::string bspec =
                "ivfpq:nlist=" + std::to_string(clusters) +
                ",m=" + std::to_string(pq_fine) +
                ",entries=256,train=10000";
            auto baseline = buildOrOpen(workload.metric(),
                                        workload.base(), bspec,
                                        dataset_key);
            dynamic_cast<IvfPqIndex *>(baseline.get())->setNprobs(64);
            const auto point = evaluate(workload, *baseline, 1000, 100);
            r100_table.addRow({"PQ" + std::to_string(pq_fine) + ",np=64",
                               TablePrinter::num(point.recallm_at_k),
                               TablePrinter::num(point.qps)});
        }
        index.setSearchMode(SearchMode::kExactDistance);
        index.setThresholdScale(1.0);
        index.setNprobs(64);
        const auto jp_point = evaluate(workload, index, 1000, 100);
        r100_table.addRow({"JUNO-H,np=64",
                           TablePrinter::num(jp_point.recallm_at_k),
                           TablePrinter::num(jp_point.qps)});
        r100_table.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // --json <path>: dump the measured operating points (the snapshot
    // BENCH_fig12.json is produced from). --quick: first dataset only.
    std::string json_path;
    bool quick = false;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json" && a + 1 < argc)
            json_path = argv[++a];
        else if (arg == "--quick")
            quick = true;
    }

    runDataset("DEEP1M-class (L2, D=96)", bench::deepSpec(), 48, 24,
               true);
    if (!quick) {
        runDataset("SIFT1M-class (L2, D=128)", bench::siftSpec(), 64, 32,
                   true);
        runDataset("TTI1M-class (MIPS, D=200)", bench::ttiSpec(), 100, 50,
                   true);
        runDataset("DEEP100M-class (L2, D=96)",
                   bench::deepSpec(bench::scale100M()), 48, 24, false);
        runDataset("SIFT100M-class (L2, D=128)",
                   bench::siftSpec(bench::scale100M()), 64, 32, false);
    }

    if (!json_path.empty())
        writeSnapshot(json_path);

    std::printf("\npaper: JUNO delivers 2.2x-8.5x higher QPS at low "
                "quality and ~2.1x at high quality;\nthe advantage "
                "narrows as recall -> 1.0. The QPS_cpu column is the "
                "no-RT-core regime of\nFig. 14(a); QPS_rt4090 carries "
                "the Fig. 12 shape (see file header).\n");
    return 0;
}
