/**
 * @file
 * Reproduces paper Fig. 3(b), Fig. 4 and Fig. 5: sparsity and spatial
 * locality of codebook-entry usage by the true top-100 neighbours, on
 * DEEP-like, SIFT-like and TTI-like datasets.
 *
 * Part 1 (Fig. 4(a) / 5(a)): mean and max fraction of codebook entries
 * used per subspace, over a batch of queries. Paper: mean <= ~25-30%.
 *
 * Part 2 (Fig. 4(b) / 5(b)): CDF of top-100 coverage when entries are
 * taken closest-first from the query projection. Paper: ~50% of the
 * closest entries contain >= 90% of the top-100.
 */
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "baseline/ivfpq_index.h"
#include "bench_common.h"
#include "common/stats.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

namespace {

struct SparsityResult {
    double mean_usage = 0.0;
    double max_usage = 0.0;
    /** coverage[i]: fraction of top-100 captured by the (i+1) closest
     *  deciles of entries (10 buckets). */
    std::vector<double> coverage_deciles;
};

SparsityResult
analyze(Workload &workload, int pq_subspaces, int entries)
{
    IvfPqIndex::Params params;
    params.clusters = bench::clustersFor(workload.base().rows());
    params.pq_subspaces = pq_subspaces;
    params.pq_entries = entries;
    params.nprobs = params.clusters; // exhaustive: usage of true top-100
    params.max_training_points = 10000;
    IvfPqIndex index(workload.metric(), workload.base(), params);

    const int subspaces = index.pq().numSubspaces();
    RunningStat usage_mean;
    double usage_max = 0.0;
    std::vector<double> coverage(10, 0.0);
    idx_t queries_done = 0;

    const idx_t q_count = std::min<idx_t>(workload.queries().rows(), 32);
    FloatMatrix lut;
    for (idx_t qi = 0; qi < q_count; ++qi) {
        std::vector<std::vector<std::uint32_t>> per_entry_usage;
        index.searchOneRecordingUsage(workload.queries().row(qi), 100,
                                      &per_entry_usage);
        index.pq().computeLut(workload.metric(),
                              workload.queries().row(qi), lut);

        for (int s = 0; s < subspaces; ++s) {
            const auto &row = per_entry_usage[static_cast<std::size_t>(s)];
            int used = 0;
            std::uint64_t total = 0;
            for (auto c : row) {
                used += c > 0;
                total += c;
            }
            const double ratio =
                static_cast<double>(used) / static_cast<double>(row.size());
            usage_mean.add(ratio);
            usage_max = std::max(usage_max, ratio);

            // Coverage CDF: sort entries by distance between the entry
            // and the query projection (via the dense LUT), then count
            // how much of the top-100 the closest deciles capture.
            std::vector<int> order(row.size());
            std::iota(order.begin(), order.end(), 0);
            const float *scores = lut.row(s);
            const bool l2 = workload.metric() == Metric::kL2;
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                return l2 ? scores[a] < scores[b] : scores[a] > scores[b];
            });
            if (total == 0)
                continue;
            std::uint64_t acc = 0;
            std::size_t idx = 0;
            for (int decile = 0; decile < 10; ++decile) {
                const std::size_t limit = (decile + 1) * row.size() / 10;
                for (; idx < limit; ++idx)
                    acc += row[static_cast<std::size_t>(order[idx])];
                coverage[static_cast<std::size_t>(decile)] +=
                    static_cast<double>(acc) / static_cast<double>(total);
            }
        }
        ++queries_done;
    }

    SparsityResult result;
    result.mean_usage = usage_mean.mean();
    result.max_usage = usage_max;
    for (double &c : coverage)
        c /= static_cast<double>(queries_done) * subspaces;
    result.coverage_deciles = std::move(coverage);
    return result;
}

void
report(const char *label, Workload &workload, int pq, int entries)
{
    const auto res = analyze(workload, pq, entries);
    std::printf("\n%s (PQ%d, E=%d):\n", label, pq, entries);
    std::printf("  entry usage ratio by top-100: mean=%.3f max=%.3f "
                "(paper: mean ~0.25, max ~0.3)\n",
                res.mean_usage, res.max_usage);
    std::printf("  coverage CDF, closest deciles of entries:\n    ");
    for (int d = 0; d < 10; ++d)
        std::printf("%d%%:%.2f  ", (d + 1) * 10,
                    res.coverage_deciles[static_cast<std::size_t>(d)]);
    std::printf("\n  (paper: closest ~50%% of entries contain >= 90%% of "
                "the top-100)\n");
}

} // namespace

int
main()
{
    printBanner("Fig. 3(b)/4/5: codebook-entry sparsity and locality");

    Workload deep(bench::deepSpec(), 100);
    report("DEEP-like", deep, 48, 256);

    Workload sift(bench::siftSpec(), 100);
    report("SIFT-like", sift, 64, 256);

    Workload tti(bench::ttiSpec(), 100);
    report("TTI-like", tti, 100, 256);

    return 0;
}
