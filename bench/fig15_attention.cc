/**
 * @file
 * Reproduces paper Fig. 15 in spirit: the claim that transformer
 * attention is an ideal MIPS-ANN client because keeping only the most
 * significant attention entries preserves model quality.
 *
 * The paper measures Llama-7B perplexity vs. the fraction of attention
 * retained. Without model weights we build the synthetic equivalent
 * (DESIGN.md substitution table): low-rank-structured query/key
 * vectors, softmax attention, and two quality proxies measured as the
 * kept fraction shrinks — retained softmax mass and attention-output
 * relative error. The keys kept are retrieved with a real JUNO MIPS
 * index, exercising the exact code path an LLM serving stack would.
 */
#include <algorithm>
#include <cmath>
#include <functional>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/distance.h"
#include "common/rng.h"
#include "core/juno_index.h"
#include "harness/reporter.h"

using namespace juno;

namespace {

/** Synthetic attention workload with low-rank Q/K structure. */
struct AttentionData {
    FloatMatrix keys;    // seq_len x d
    FloatMatrix queries; // num_queries x d
    FloatMatrix values;  // seq_len x d
};

AttentionData
makeAttention(idx_t seq_len, idx_t d, idx_t num_queries,
              std::uint64_t seed)
{
    Rng rng(seed);
    // Low-rank structure: keys/queries are combinations of r basis
    // directions plus noise, mimicking attention-head geometry where
    // few keys dominate each query's scores.
    const idx_t r = 8;
    FloatMatrix basis(r, d);
    for (idx_t i = 0; i < r; ++i)
        for (idx_t j = 0; j < d; ++j)
            basis.at(i, j) = static_cast<float>(rng.gaussian(0.0, 1.0));

    auto sample = [&](FloatMatrix &m, double noise) {
        for (idx_t i = 0; i < m.rows(); ++i) {
            // One dominant basis direction per vector (sparse mixing).
            const idx_t dom = static_cast<idx_t>(rng.below(r));
            const double w = rng.uniform() * 2.0 + 1.0;
            for (idx_t j = 0; j < d; ++j)
                m.at(i, j) = static_cast<float>(
                    w * basis.at(dom, j) + rng.gaussian(0.0, noise));
        }
    };
    AttentionData data;
    data.keys = FloatMatrix(seq_len, d);
    data.queries = FloatMatrix(num_queries, d);
    data.values = FloatMatrix(seq_len, d);
    sample(data.keys, 0.4);
    sample(data.queries, 0.4);
    for (idx_t i = 0; i < seq_len; ++i)
        for (idx_t j = 0; j < d; ++j)
            data.values.at(i, j) =
                static_cast<float>(rng.gaussian(0.0, 1.0));
    return data;
}

} // namespace

int
main()
{
    printBanner("Fig. 15 (proxy): attention quality vs ANN top-k "
                "fraction");
    const idx_t seq_len = bench::largeScale() ? 8192 : 2048;
    const idx_t d = 128;
    const idx_t num_queries = 32;
    const auto data = makeAttention(seq_len, d, num_queries, 777);

    // MIPS index over the keys (attention scores are inner products).
    JunoParams jp = junoPresetH();
    jp.clusters = 64;
    jp.pq_entries = 64;
    // Probe every cluster: the kept-fraction knob, not the coarse
    // filter, must control coverage (keep = 1.0 has to be lossless).
    jp.nprobs = 64;
    jp.policy.ref_samples = 2000;
    jp.density_grid = 50;
    JunoIndex index(Metric::kInnerProduct, data.keys.view(), jp);

    const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
    // Two mass columns: the exhaustive top-k mass isolates the
    // attention head's inherent concentration; the ANN column shows
    // what JUNO's retrieval actually captures of it.
    TablePrinter table({"kept fraction", "exact_topk_mass",
                        "ann_mass_retained", "attention_output_rel_err"});

    for (double keep : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
        const idx_t k = std::max<idx_t>(
            1, static_cast<idx_t>(keep * static_cast<double>(seq_len)));
        double mass_acc = 0.0, err_acc = 0.0, exact_mass_acc = 0.0;
        for (idx_t qi = 0; qi < num_queries; ++qi) {
            const float *q = data.queries.row(qi);

            // Exact softmax over all keys.
            std::vector<double> logits(static_cast<std::size_t>(seq_len));
            double max_logit = -1e300;
            for (idx_t i = 0; i < seq_len; ++i) {
                logits[static_cast<std::size_t>(i)] =
                    innerProduct(q, data.keys.row(i), d) * inv_sqrt_d;
                max_logit = std::max(max_logit,
                                     logits[static_cast<std::size_t>(i)]);
            }
            double z = 0.0;
            for (auto &l : logits) {
                l = std::exp(l - max_logit);
                z += l;
            }
            std::vector<double> exact_out(static_cast<std::size_t>(d),
                                          0.0);
            for (idx_t i = 0; i < seq_len; ++i) {
                const double w = logits[static_cast<std::size_t>(i)] / z;
                for (idx_t j = 0; j < d; ++j)
                    exact_out[static_cast<std::size_t>(j)] +=
                        w * data.values.at(i, j);
            }

            // Exhaustive top-k mass (the head's inherent concentration).
            {
                std::vector<double> sorted_w(logits);
                std::partial_sort(sorted_w.begin(),
                                  sorted_w.begin() +
                                      static_cast<std::ptrdiff_t>(k),
                                  sorted_w.end(), std::greater<double>());
                double m = 0.0;
                for (idx_t i = 0; i < k; ++i)
                    m += sorted_w[static_cast<std::size_t>(i)] / z;
                exact_mass_acc += m;
            }

            // ANN-retrieved top-k keys; softmax restricted to them.
            const auto kept = index.searchOne(q, k);
            double kept_mass = 0.0, zk = 0.0;
            std::vector<double> approx_out(static_cast<std::size_t>(d),
                                           0.0);
            for (const auto &nb : kept) {
                kept_mass += logits[static_cast<std::size_t>(nb.id)] / z;
                zk += logits[static_cast<std::size_t>(nb.id)];
            }
            for (const auto &nb : kept) {
                const double w =
                    logits[static_cast<std::size_t>(nb.id)] / zk;
                for (idx_t j = 0; j < d; ++j)
                    approx_out[static_cast<std::size_t>(j)] +=
                        w * data.values.at(nb.id, j);
            }
            double num = 0.0, den = 0.0;
            for (idx_t j = 0; j < d; ++j) {
                const double diff =
                    approx_out[static_cast<std::size_t>(j)] -
                    exact_out[static_cast<std::size_t>(j)];
                num += diff * diff;
                den += exact_out[static_cast<std::size_t>(j)] *
                       exact_out[static_cast<std::size_t>(j)];
            }
            mass_acc += kept_mass;
            err_acc += std::sqrt(num / (den + 1e-12));
        }
        table.addRow({TablePrinter::num(keep),
                      TablePrinter::num(exact_mass_acc / num_queries),
                      TablePrinter::num(mass_acc / num_queries),
                      TablePrinter::num(err_acc / num_queries)});
    }
    table.print();
    std::printf("\npaper: Llama-7B keeps usable perplexity with < 20%% of "
                "attention retained.\nreading: the exact column shows the "
                "head's mass concentrates in few keys (flat far\nbelow "
                "keep=0.2); the ANN column tracks it closely, so MIPS "
                "retrieval captures the\nsignificant attention — the "
                "paper's claim.\n");
    return 0;
}
