/**
 * @file
 * Reproduces paper Fig. 7:
 *  (a) the negative correlation between local point density and the
 *      radius needed to contain the top-100 search points' projections
 *      (quantified per density decade, plus the fitted regressor);
 *  (b) the fraction of the top-100 retained as the radius scaling
 *      factor shrinks (the power-law that motivates the user knob).
 */
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/distance.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/topk.h"
#include "core/density_map.h"
#include "core/threshold_policy.h"
#include "harness/reporter.h"
#include "harness/workload.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 7(a): threshold-to-contain-top-100 vs local density "
                "(DEEP-like)");
    auto spec = bench::deepSpec();
    spec.num_queries = 0;
    Workload workload(spec, 1); // ground truth unused here
    const idx_t n = workload.base().rows();
    const idx_t dim = workload.base().cols();
    const int subspaces = static_cast<int>(dim / 2);

    DensityMap density;
    density.build(workload.base(), subspaces, 100);

    // Sample projections; for each, measure density and the radius
    // containing the projections of its top-100 full-D neighbours.
    Rng rng(17);
    const idx_t num_train = 200;
    const idx_t num_ref = std::min<idx_t>(n, 4000);
    const auto train_ids = rng.sampleWithoutReplacement(n, num_train);
    const auto ref_ids = rng.sampleWithoutReplacement(n, num_ref);
    const idx_t k_eff = std::max<idx_t>(
        1, 100 * num_ref / n);

    // Bucket by log10(density).
    std::map<int, QuantileSketch> by_decade;
    QuantileSketch retention[5]; // scaling 1.0, 0.75, 0.5, 0.25, 0.1
    const double scales[5] = {1.0, 0.75, 0.5, 0.25, 0.1};

    for (idx_t t : train_ids) {
        // Full-D top-k of the sample among references.
        TopK top(std::max<idx_t>(k_eff, 10), Metric::kL2);
        for (idx_t r : ref_ids) {
            if (r == t)
                continue;
            top.push(r, l2Sqr(workload.base().row(t),
                              workload.base().row(r), dim));
        }
        const auto neighbors = top.take();

        for (int s = 0; s < subspaces; s += 6) {
            const float qx = workload.base().at(t, 2 * s);
            const float qy = workload.base().at(t, 2 * s + 1);
            std::vector<double> proj_d;
            double radius = 0.0;
            for (const auto &nb : neighbors) {
                const double dx = workload.base().at(nb.id, 2 * s) - qx;
                const double dy =
                    workload.base().at(nb.id, 2 * s + 1) - qy;
                const double d = std::sqrt(dx * dx + dy * dy);
                proj_d.push_back(d);
                radius = std::max(radius, d);
            }
            const double dens = density.densityAt(s, qx, qy);
            const int decade =
                static_cast<int>(std::floor(std::log10(dens + 1.0)));
            by_decade[decade].add(radius);

            // Fig. 7(b): retention when the radius is scaled down.
            for (int sc = 0; sc < 5; ++sc) {
                const double shrunk = radius * scales[sc];
                int kept = 0;
                for (double d : proj_d)
                    kept += d <= shrunk;
                retention[sc].add(static_cast<double>(kept) /
                                  static_cast<double>(proj_d.size()));
            }
        }
    }

    TablePrinter table({"log10(density)", "radius_mean", "radius_q1",
                        "radius_q3", "samples"});
    for (auto &[decade, sketch] : by_decade) {
        table.addRow({std::to_string(decade),
                      TablePrinter::num(sketch.mean()),
                      TablePrinter::num(sketch.q1()),
                      TablePrinter::num(sketch.q3()),
                      std::to_string(sketch.count())});
    }
    table.print();
    std::printf("\npaper: radius falls as density rises (negative "
                "correlation).\n");

    printBanner("Fig. 7(b): top-100 retention vs radius scaling factor");
    TablePrinter table_b({"scale", "retained_mean", "retained_q1",
                          "retained_q3"});
    for (int sc = 0; sc < 5; ++sc)
        table_b.addRow({TablePrinter::num(scales[sc]),
                        TablePrinter::num(retention[sc].mean()),
                        TablePrinter::num(retention[sc].q1()),
                        TablePrinter::num(retention[sc].q3())});
    table_b.print();
    std::printf("\npaper: scaling the radius to 0.5 retains ~90%% of the "
                "top-100 (power law).\n");

    // Also fit the production regressor and report its in-sample error,
    // validating the "simple polynomial model captures it" claim.
    printBanner("Fig. 7(a) continued: polynomial regressor fit quality");
    ThresholdPolicy policy;
    ThresholdPolicy::Params tp;
    tp.train_samples = 200;
    tp.ref_samples = num_ref;
    tp.contain_topk = 100;
    policy.train(Metric::kL2, workload.base(), subspaces, density, tp);
    std::printf("trained %d per-subspace degree-%d regressors; subspace-0 "
                "threshold range [%.4f, %.4f]\n",
                policy.numSubspaces(), tp.poly_degree,
                policy.minThreshold(0), policy.maxThreshold(0));
    return 0;
}
