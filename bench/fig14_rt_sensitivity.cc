/**
 * @file
 * Reproduces paper Fig. 14:
 *  (a) JUNO with the RT traversal replaced by the linear CUDA-core
 *      fallback (the A100 situation) against the FAISS-style baseline:
 *      the algorithmic enhancement alone still wins at low quality but
 *      loses at high quality, where simulating traversal in software
 *      costs more than the sparsity saves;
 *  (b) sensitivity to RT-core throughput via the traversal cost model
 *      (RTX 4090 Gen-3 = 2x A40 Gen-2; A100 = software fallback).
 */
#include <cstdio>

#include "baseline/ivfpq_index.h"
#include "bench_common.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/workload.h"
#include "rtcore/device.h"

using namespace juno;

int
main()
{
    printBanner("Fig. 14(a): JUNO w/o RT acceleration vs baseline "
                "(SIFT-like)");
    const auto spec = bench::siftSpec();
    Workload workload(spec, 100);
    const int clusters = bench::clustersFor(spec.num_points);

    IvfPqIndex::Params bp;
    bp.clusters = clusters;
    bp.pq_subspaces = 64;
    bp.pq_entries = 128;
    bp.use_hnsw_router = true; // paper: best baseline is PQ16+HNSW
    bp.max_training_points = 10000;
    IvfPqIndex baseline(workload.metric(), workload.base(), bp);

    JunoParams jp;
    jp.clusters = clusters;
    jp.pq_entries = 128;
    jp.max_training_points = 10000;
    jp.policy.ref_samples = 4000;
    JunoIndex index(workload.metric(), workload.base(), jp);

    TablePrinter table({"index", "nprobs", "R1@100", "QPS"});
    for (idx_t np : {4, 16, 64}) {
        if (np > clusters)
            break;
        baseline.setNprobs(np);
        const auto b =
            evaluate(workload, baseline, bench::searchOptions(100));
        table.addRow({"FAISS(+HNSW)", std::to_string(np),
                      TablePrinter::num(b.recall1_at_k),
                      TablePrinter::num(b.qps)});
    }
    for (bool rt : {true, false}) {
        index.setUseRtCore(rt);
        for (SearchMode mode : {SearchMode::kHitCount,
                                SearchMode::kExactDistance}) {
            index.setSearchMode(mode);
            for (idx_t np : {4, 16, 64}) {
                if (np > clusters)
                    break;
                index.setNprobs(np);
                const auto p =
                    evaluate(workload, index, bench::searchOptions(100));
                std::string name = std::string(searchModeName(mode)) +
                                   (rt ? "(BVH)" : "(linear fallback)");
                table.addRow({name, std::to_string(np),
                              TablePrinter::num(p.recall1_at_k),
                              TablePrinter::num(p.qps)});
            }
        }
    }
    table.print();
    std::printf("\npaper: without RT cores JUNO still wins at low "
                "quality (pure algorithmic sparsity)\nbut falls behind "
                "at high quality.\n");

    printBanner("Fig. 14(b): modelled speed-up vs RT-core generation");
    // Collect one traversal-counter profile and price it per device.
    index.setUseRtCore(true);
    index.setSearchMode(SearchMode::kExactDistance);
    index.setNprobs(32);
    index.device().resetStats();
    index.resetStageTimers();
    evaluate(workload, index, bench::searchOptions(100));
    const auto stats = index.rtStats();
    const double non_rt_seconds =
        index.stageTimers().seconds("filter") +
        index.stageTimers().seconds("scan");

    // Calibrate model units so the A40 preset matches the measured RT
    // stage time, then rescale per device.
    const double measured_rt = index.stageTimers().seconds("rt_lut");
    const auto a40 = rt::costModelA40();
    const double unit = measured_rt / a40.cost(stats);

    TablePrinter model_table({"device", "rt_throughput",
                              "modelled_rt_ms", "modelled_total_ms",
                              "modelled_qps_ratio_vs_A40"});
    // Two passes: totals first so every ratio uses the A40 reference.
    const auto models = {rt::costModelRtx4090(), rt::costModelA40(),
                         rt::costModelA100()};
    double a40_total = 0.0;
    for (const auto &model : models) {
        if (model.name == "A40")
            a40_total = model.cost(stats) * unit + non_rt_seconds;
    }
    for (const auto &model : models) {
        const double rt_seconds = model.cost(stats) * unit;
        const double total = rt_seconds + non_rt_seconds;
        model_table.addRow(
            {model.name, TablePrinter::num(model.rt_throughput),
             TablePrinter::num(rt_seconds * 1e3),
             TablePrinter::num(total * 1e3),
             TablePrinter::num(a40_total / total)});
    }
    model_table.print();
    std::printf("\npaper: Ada's Gen-3 RT cores (2x Gen-2 throughput) "
                "give RTX 4090 ~1.5x higher\nimprovement than A40; "
                "the A100 fallback pays a software-traversal tax.\n");
    return 0;
}
