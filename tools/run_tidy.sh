#!/usr/bin/env bash
# clang-tidy wrapper: full-tree or changed-files lint against the
# checked-in .clang-tidy, driven from a compile_commands.json.
#
# Usage:
#   tools/run_tidy.sh [options] [file...]
#
# Options:
#   --build-dir DIR   build tree with compile_commands.json
#                     (default: build; configured on demand)
#   --since REF       lint only files changed since git REF
#                     (e.g. --since origin/main for the CI gate)
#   --fix             apply clang-tidy's suggested fixes in place
#   --jobs N          parallel clang-tidy processes (default: nproc)
#
# With neither --since nor explicit files, lints every .cc/.h under
# src/ tools/ bench/ examples/ tests/.
#
# Exits 0 when clean or when clang-tidy is unavailable (prints
# SKIPPED — local GCC-only boxes shouldn't fail; the CI leg installs
# clang-tidy and is the real gate), 1 on findings.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
since=""
fix=0
jobs="$(nproc 2>/dev/null || echo 2)"
files=()

while [[ $# -gt 0 ]]; do
    case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --since)     since="$2"; shift 2 ;;
    --fix)       fix=1; shift ;;
    --jobs)      jobs="$2"; shift 2 ;;
    -h|--help)   sed -n '2,20p' "$0"; exit 0 ;;
    --*)         echo "unknown option: $1" >&2; exit 2 ;;
    *)           files+=("$1"); shift ;;
    esac
done

# Find clang-tidy under its common names, newest first.
tidy=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
        tidy="$candidate"
        break
    fi
done
if [[ -z "$tidy" ]]; then
    echo "SKIPPED: clang-tidy not found (CI runs the real gate)" >&2
    exit 0
fi

# Ensure a compilation database; configure one if the build tree
# doesn't exist yet (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S . >/dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "error: $build_dir/compile_commands.json still missing" >&2
    exit 2
fi

# Resolve the file list: explicit args > --since diff > full tree.
if [[ ${#files[@]} -eq 0 ]]; then
    if [[ -n "$since" ]]; then
        mapfile -t files < <(git diff --name-only --diff-filter=d \
                                 "$since" -- \
                                 'src/*.cc' 'src/*.h' 'tools/*.cc' \
                                 'bench/*.cc' 'examples/*.cpp' \
                                 'tests/*.cc')
    else
        mapfile -t files < <(git ls-files \
                                 'src/*.cc' 'src/*.h' 'tools/*.cc' \
                                 'bench/*.cc' 'examples/*.cpp' \
                                 'tests/*.cc')
    fi
fi
# Headers aren't compilation-database entries; they get linted via the
# TUs that include them (HeaderFilterRegex), so drop them here.
cc_files=()
for f in "${files[@]}"; do
    [[ "$f" == *.cc || "$f" == *.cpp ]] && cc_files+=("$f")
done
if [[ ${#cc_files[@]} -eq 0 ]]; then
    echo "nothing to lint"
    exit 0
fi

extra=()
[[ $fix -eq 1 ]] && extra+=(--fix --fix-errors)

echo "linting ${#cc_files[@]} file(s) with $tidy (jobs=$jobs)"
printf '%s\0' "${cc_files[@]}" |
    xargs -0 -n 1 -P "$jobs" \
        "$tidy" -p "$build_dir" --quiet "${extra[@]}"
echo "clang-tidy clean"
