/**
 * @file
 * Command-line front end for the whole index lifecycle — describe,
 * build, save, open, serve — without writing C++.
 *
 * Usage:
 *   juno_cli build  --save idx.juno [--spec "ivfpq:nlist=256,m=16"]
 *                   [--base b.fvecs | --synthetic deep] [--metric l2|ip]
 *                   [--n 20000] [--dim 0] [--seed 42]
 *                   [--clusters 256] [--entries 128] [--nprobs 32]
 *                   [--mode h|m|l] [--scale 1.0] [--train-points 10000]
 *                   (without --spec the legacy JUNO flags compose a
 *                   "juno:..." spec; any factory type works via --spec)
 *   juno_cli search --load idx.juno [--queries q.fvecs | --synthetic deep]
 *                   [--k 100] [--nprobs 32] [--mode h|m|l] [--scale 1.0]
 *                   [--threads 1] [--batch 0] [--mmap 1]
 *   juno_cli eval   [--load idx.juno | --spec ... | build flags]
 *                   [--synthetic deep] [--metric l2|ip] [--n 20000]
 *                   [--k 100] [--queries-n 64] [--threads 1] ...
 *                   (build-or-load + search + ground truth + recall)
 *   juno_cli serve  [--load idx.juno | --spec ... | build flags] [--k 10]
 *                   [--clients 4] [--window 8] [--requests 20000]
 *                   [--batch-max 32] [--linger-us 200]
 *                   [--queue-cap 4096] [--threads 1] [--mmap 1]
 *                   [--stats-every S] [--metrics-out m.prom]
 *                   [--trace-out t.json] [--trace-sample R]
 *                   [--trace-slow-us N] [--deadline-ms D]
 *                   [--degrade 0|1] [--smoke]
 *                   [--live 0|1] [--insert-rate R] [--delete-rate R]
 *                   [--fresh-cap N] [--merge-threshold N]
 *                   (drive the micro-batching SearchService; --load
 *                   warm-starts from a snapshot: first-query-ready is
 *                   page-in time, not a rebuild. --stats-every S runs
 *                   the flight recorder every S seconds; --metrics-out
 *                   writes the final Prometheus snapshot there and the
 *                   recorder appends JSONL ticks to <path>.jsonl;
 *                   --trace-sample R traces ~R of requests end to end
 *                   and --trace-slow-us always captures outliers, both
 *                   dumped to --trace-out as Chrome trace-event JSON
 *                   (open in Perfetto). --smoke shrinks everything for
 *                   a seconds-long CI run. SIGINT/SIGTERM stop the
 *                   service cleanly and still dump the final
 *                   metrics/trace snapshots. --live 1 (implied by a
 *                   nonzero write rate) serves a LiveIndex built from
 *                   the dataset; --insert-rate/--delete-rate drive a
 *                   synthetic writer at that many ops/sec alongside
 *                   the reading clients, the stats dump gains a live
 *                   line (fresh rows, tombstones, generations), and
 *                   the run ends with a freshness gate — an inserted
 *                   vector must be seen by the next query and a
 *                   deleted one never again, across a merge publish —
 *                   whose "freshness: OK" the CI leg greps)
 *   juno_cli parity --load idx.juno [data flags identical to build]
 *                   (CI gate: re-opens the snapshot in this fresh
 *                   process, rebuilds the same spec from scratch over
 *                   the same dataset, and exits 1 unless results are
 *                   bitwise identical)
 *
 * --threads shards the query batch across worker threads (0 = all
 * cores); --batch overrides the per-chunk query count. Results are
 * identical for every thread/batch setting. --mmap 0 disables
 * zero-copy loading (sections are read and checksum-verified into
 * owned buffers instead).
 *
 * Exit codes: 0 success, 1 invalid configuration (including malformed
 * flags and missing/truncated/wrong-magic snapshots) or runtime
 * failure, 2 unknown or missing subcommand.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/hnsw.h"
#include "baseline/ivfflat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/parse.h"
#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"
#include "obs/metrics.h"
#include "live/live_index.h"
#include "registry/index_factory.h"
#include "serve/hot_list_cache.h"
#include "serve/search_service.h"

using namespace juno;

namespace {

/** Valueless flags (presence is the value). */
bool
isBareFlag(const std::string &key)
{
    return key == "smoke";
}

/**
 * Set by SIGINT/SIGTERM during serve. Client loops stop submitting,
 * the service drains what it already accepted, and the final
 * metrics/trace snapshots are still written — a clean Ctrl-C instead
 * of losing the flight-recorder output to a hard kill.
 */
std::atomic<bool> g_interrupted{false};

void
handleStopSignal(int)
{
    g_interrupted.store(true);
}

/** Tiny --key value argument map. */
class Args {
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("expected --option, got '" + key + "'");
            key = key.substr(2);
            if (isBareFlag(key)) {
                values_[key] = "1";
                continue;
            }
            if (i + 1 >= argc)
                fatal("missing value for --" + key);
            values_[key] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    /**
     * Integer flag, checked against an inclusive [lo, hi] range. A
     * typo like `--k ten`, a partial parse (`--k 1x`), overflow
     * (`--seed 99999999999999999999`) or an out-of-range value must
     * exit with a diagnostic, not wrap, throw, or reach the engine
     * (juno::parseInt64InRange rejects all four).
     */
    long
    getInt(const std::string &key, long fallback,
           long lo = std::numeric_limits<long>::min(),
           long hi = std::numeric_limits<long>::max()) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        const auto v = parseInt64InRange(it->second, lo, hi);
        if (!v)
            fatal("--" + key + " expects an integer in [" +
                  std::to_string(lo) + ", " + std::to_string(hi) +
                  "], got '" + it->second + "'");
        return static_cast<long>(*v);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        // parseFloat64 also rejects inf/nan, which would otherwise
        // slip through into threshold comparisons.
        const auto v = parseFloat64(it->second);
        if (!v)
            fatal("--" + key + " expects a finite number, got '" +
                  it->second + "'");
        return *v;
    }

    bool has(const std::string &key) const { return values_.count(key); }

  private:
    std::map<std::string, std::string> values_;
};

Metric
parseMetric(const std::string &name)
{
    if (name == "l2")
        return Metric::kL2;
    if (name == "ip")
        return Metric::kInnerProduct;
    fatal("unknown metric '" + name + "' (use l2 or ip)");
}

DatasetKind
parseKind(const std::string &name)
{
    if (name == "deep")
        return DatasetKind::kDeepLike;
    if (name == "sift")
        return DatasetKind::kSiftLike;
    if (name == "tti")
        return DatasetKind::kTtiLike;
    if (name == "uniform")
        return DatasetKind::kUniform;
    fatal("unknown synthetic kind '" + name + "'");
}

/**
 * Loads base/query vectors from --base/--queries or synthesises.
 * The defaults are parameters so serve --smoke can shrink the
 * synthetic set without overriding an explicit --n.
 */
Dataset
loadData(const Args &args, Metric metric, long default_n = 20000,
         long default_dim = 0)
{
    if (args.has("base")) {
        Dataset ds;
        ds.base = readFvecs(args.get("base", ""));
        if (args.has("queries"))
            ds.queries = readFvecs(args.get("queries", ""));
        ds.metric = metric;
        ds.name = args.get("base", "");
        return ds;
    }
    SyntheticSpec spec;
    spec.kind = parseKind(args.get("synthetic", "deep"));
    spec.num_points = args.getInt("n", default_n, 1, 100000000);
    spec.num_queries = args.getInt("queries-n", 64, 1, 10000000);
    spec.dim = args.getInt("dim", default_dim, 0, 65536);
    spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    return makeDataset(spec);
}

/** Batched-search options from --k/--threads/--batch. */
SearchOptions
optionsFrom(const Args &args)
{
    SearchOptions options;
    options.k = args.getInt("k", 100, 1, 1000000);
    options.threads = static_cast<int>(args.getInt("threads", 1, 0, 4096));
    options.batch_size = args.getInt("batch", 0, 0, 100000000);
    return options;
}

/**
 * The spec to build: --spec verbatim, else the legacy JUNO flags
 * composed into "juno:..." (the pre-factory behaviour).
 */
std::string
specFrom(const Args &args)
{
    if (args.has("spec"))
        return args.get("spec", "");
    IndexSpec spec;
    spec.type = "juno";
    spec.setInt("nlist", args.getInt("clusters", 256, 1, 10000000));
    spec.setInt("entries", args.getInt("entries", 128, 1, 10000000));
    spec.setInt("nprobe", args.getInt("nprobs", 32, 1, 10000000));
    spec.set("mode", args.get("mode", "h"));
    spec.setDouble("scale", args.getDouble("scale", 1.0));
    spec.setInt("seed", args.getInt("seed", 42));
    spec.setInt("train", args.getInt("train-points", 10000, 1, 100000000));
    return spec.toString();
}

SnapshotOptions
snapshotOptionsFrom(const Args &args)
{
    SnapshotOptions options;
    options.use_mmap = args.getInt("mmap", 1, 0, 1) != 0;
    return options;
}

/** The snapshot path of --load (with --index as the legacy alias). */
std::string
loadPath(const Args &args)
{
    return args.get("load", args.get("index", ""));
}

/** Applies search-time knobs to whatever index type was loaded. */
void
applyKnobs(AnnIndex &index, const Args &args)
{
    if (auto *j = dynamic_cast<JunoIndex *>(&index)) {
        if (args.has("nprobs"))
            j->setNprobs(args.getInt("nprobs", 32, 1, 10000000));
        if (args.has("mode")) {
            const std::string m = args.get("mode", "h");
            if (m == "h")
                j->setSearchMode(SearchMode::kExactDistance);
            else if (m == "m")
                j->setSearchMode(SearchMode::kRewardPenalty);
            else if (m == "l")
                j->setSearchMode(SearchMode::kHitCount);
            else
                fatal("unknown mode '" + m + "' (use h, m or l)");
        }
        if (args.has("scale"))
            j->setThresholdScale(args.getDouble("scale", 1.0));
        return;
    }
    if (auto *f = dynamic_cast<IvfFlatIndex *>(&index)) {
        if (args.has("nprobs"))
            f->setNprobs(args.getInt("nprobs", 8, 1, 10000000));
        return;
    }
    if (auto *p = dynamic_cast<IvfPqIndex *>(&index)) {
        if (args.has("nprobs"))
            p->setNprobs(args.getInt("nprobs", 8, 1, 10000000));
        return;
    }
    if (auto *h = dynamic_cast<Hnsw *>(&index)) {
        if (args.has("ef"))
            h->setEfSearch(static_cast<int>(args.getInt("ef", 64, 1, 10000000)));
        return;
    }
}

int
cmdBuild(const Args &args)
{
    const Metric metric = parseMetric(args.get("metric", "l2"));
    const std::string out = args.get("save", args.get("out", ""));
    JUNO_REQUIRE(!out.empty(), "build requires --save <path>");
    const auto data = loadData(args, metric);
    const std::string spec = specFrom(args);
    std::printf("building %s over %lld vectors (D=%lld, %s)...\n",
                spec.c_str(),
                static_cast<long long>(data.base.rows()),
                static_cast<long long>(data.base.cols()),
                metricName(metric));
    Timer timer;
    auto index = buildIndex(metric, data.base.view(), spec);
    std::printf("built %s in %.1fs\n", index->name().c_str(),
                timer.seconds());
    Timer save_timer;
    index->save(out);
    std::printf("saved snapshot %s in %.0f ms (spec %s)\n", out.c_str(),
                save_timer.millis(), index->spec().c_str());
    return 0;
}

int
cmdSearch(const Args &args)
{
    const std::string path = loadPath(args);
    JUNO_REQUIRE(!path.empty(), "search requires --load <path>");
    Timer load_timer;
    auto index = openIndex(path, snapshotOptionsFrom(args));
    std::printf("loaded %s in %.0f ms (%lld points, spec %s)\n",
                index->name().c_str(), load_timer.millis(),
                static_cast<long long>(index->size()),
                index->spec().c_str());

    const auto data = loadData(args, index->metric());
    FloatMatrixView queries =
        data.queries.rows() > 0 ? data.queries.view() : data.base.view();

    applyKnobs(*index, args);
    Timer timer;
    const auto results =
        index->search(SearchRequest(queries, optionsFrom(args)));
    const double secs = timer.seconds();
    std::printf("searched %lld queries on %d threads in %.1f ms "
                "(%.0f QPS)\n",
                static_cast<long long>(queries.rows()),
                index->lastSearchThreads(), secs * 1e3,
                static_cast<double>(queries.rows()) / secs);
    const idx_t show = std::min<idx_t>(queries.rows(), 3);
    for (idx_t q = 0; q < show; ++q) {
        std::printf("query %lld:", static_cast<long long>(q));
        for (std::size_t i = 0;
             i < std::min<std::size_t>(results[static_cast<std::size_t>(q)]
                                           .size(),
                                       5);
             ++i)
            std::printf(" %lld(%.3f)",
                        static_cast<long long>(
                            results[static_cast<std::size_t>(q)][i].id),
                        results[static_cast<std::size_t>(q)][i].score);
        std::printf(" ...\n");
    }
    return 0;
}

int
cmdEval(const Args &args)
{
    std::unique_ptr<AnnIndex> index;
    Dataset data;
    if (!loadPath(args).empty()) {
        index = openIndex(loadPath(args), snapshotOptionsFrom(args));
        data = loadData(args, index->metric());
        // Recall against ground truth over a *different* base set
        // than the snapshot indexed would be silently meaningless.
        JUNO_REQUIRE(index->size() == data.base.rows() &&
                         index->dim() == data.base.cols(),
                     "snapshot shape (" << index->size() << " x "
                                        << index->dim()
                                        << ") does not match the "
                                           "dataset ("
                                        << data.base.rows() << " x "
                                        << data.base.cols()
                                        << "); pass the build's data "
                                           "flags");
        std::printf("loaded %s (spec %s)\n", index->name().c_str(),
                    index->spec().c_str());
    } else {
        const Metric metric = parseMetric(args.get("metric", "l2"));
        data = loadData(args, metric);
        Timer build_timer;
        index = buildIndex(metric, data.base.view(), specFrom(args));
        std::printf("build: %.1fs (%s)\n", build_timer.seconds(),
                    index->name().c_str());
    }
    JUNO_REQUIRE(data.queries.rows() > 0,
                 "eval needs queries (--queries or --queries-n)");
    std::printf("dataset %s: %lld points, %lld queries, D=%lld\n",
                data.name.c_str(),
                static_cast<long long>(data.base.rows()),
                static_cast<long long>(data.queries.rows()),
                static_cast<long long>(data.base.cols()));

    const idx_t k = args.getInt("k", 100, 1, 1000000);
    const auto gt = computeGroundTruth(index->metric(), data.base.view(),
                                       data.queries.view(), k);
    applyKnobs(*index, args);

    Timer timer;
    const auto results =
        index->search(SearchRequest(data.queries.view(), optionsFrom(args)));
    const double secs = timer.seconds();
    std::printf("QPS (%d threads): %.0f\n", index->lastSearchThreads(),
                static_cast<double>(data.queries.rows()) / secs);
    std::printf("R1@%lld: %.4f\n", static_cast<long long>(k),
                recall1AtK(gt, results));
    return 0;
}

/**
 * CI persistence gate: re-open a snapshot in this (fresh) process,
 * rebuild the identical spec from scratch over the same dataset, and
 * require bitwise-identical search results from both.
 */
int
cmdParity(const Args &args)
{
    const std::string path = loadPath(args);
    JUNO_REQUIRE(!path.empty(), "parity requires --load <path>");
    auto loaded = openIndex(path, snapshotOptionsFrom(args));
    std::printf("loaded %s (spec %s, %s)\n", loaded->name().c_str(),
                loaded->spec().c_str(),
                snapshotOptionsFrom(args).use_mmap ? "mmap" : "buffered");

    const auto data = loadData(args, loaded->metric());
    FloatMatrixView queries =
        data.queries.rows() > 0 ? data.queries.view() : data.base.view();
    JUNO_REQUIRE(loaded->size() == data.base.rows() &&
                     loaded->dim() == data.base.cols(),
                 "snapshot shape (" << loaded->size() << " x "
                                    << loaded->dim()
                                    << ") does not match the dataset ("
                                    << data.base.rows() << " x "
                                    << data.base.cols()
                                    << "); pass the build's data flags");

    std::printf("rebuilding %s from scratch for comparison...\n",
                loaded->spec().c_str());
    auto rebuilt =
        buildIndex(loaded->metric(), data.base.view(), loaded->spec());

    const auto options = optionsFrom(args);
    const auto from_snapshot =
        loaded->search(SearchRequest(queries, options));
    const auto from_scratch =
        rebuilt->search(SearchRequest(queries, options));
    std::size_t mismatches = 0;
    for (std::size_t q = 0; q < from_snapshot.size(); ++q)
        if (from_snapshot[q] != from_scratch[q])
            ++mismatches;
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "PARITY FAIL: %zu of %zu queries differ between "
                     "the re-opened snapshot and the fresh build\n",
                     mismatches, from_snapshot.size());
        return 1;
    }
    std::printf("PARITY PASS: %zu queries bitwise identical between "
                "snapshot and fresh build (k=%lld, threads=%d)\n",
                from_snapshot.size(),
                static_cast<long long>(options.k), options.threads);
    return 0;
}

/**
 * Serves single-query traffic through the micro-batching
 * SearchService: client threads submit one query at a time, the
 * service assembles engine batches, and the run ends with the SLO
 * accounting table (queue/batch/search latency split at p50/p95/p99).
 * With --load the service warm-starts from a snapshot.
 */
int
cmdServe(const Args &args)
{
    // --smoke: a seconds-long end-to-end run (tiny synthetic set,
    // fast ivfflat build, few thousand requests) for CI legs that
    // exercise the full serve path with observability enabled.
    // Explicit flags still win over every smoke default.
    const bool smoke = args.has("smoke");
    ServiceConfig config;
    config.max_batch = args.getInt("batch-max", 32, 1, 1000000);
    config.linger =
        std::chrono::microseconds(args.getInt("linger-us", 200, 0, 60000000));
    const long queue_cap = args.getInt("queue-cap", 4096, 1, 100000000);
    // A negative value would wrap to a near-SIZE_MAX capacity and
    // silently disable the admission control serve demonstrates.
    JUNO_REQUIRE(queue_cap > 0, "queue-cap must be positive");
    config.queue_capacity = static_cast<std::size_t>(queue_cap);
    config.search_threads =
        static_cast<int>(args.getInt("threads", 1, 0, 4096));
    // Overload resilience: --deadline-ms stamps a default per-request
    // deadline (0 = none), --degrade 1 arms the tiered degradation
    // policy. Both off is bitwise-identical to a service without them.
    config.default_deadline_ms = args.getDouble("deadline-ms", 0.0);
    JUNO_REQUIRE(config.default_deadline_ms >= 0.0,
                 "--deadline-ms must be >= 0");
    config.degradation.enabled = args.getInt("degrade", 0, 0, 1) != 0;
    // --mem-budget 64m attaches the out-of-core hot-list cache
    // (0 forces pure mmap even when JUNO_MEM_BUDGET is set).
    const std::string mem_budget = args.get("mem-budget", "");
    if (!mem_budget.empty()) {
        config.memory_budget_bytes =
            HotListCache::parseByteSize(mem_budget);
        JUNO_REQUIRE(config.memory_budget_bytes >= 0,
                     "bad --mem-budget '"
                         << mem_budget
                         << "' (want bytes with optional k/m/g)");
    }

    // Observability: flight recorder + tracing (DESIGN.md
    // "Observability"). --metrics-out gets the final Prometheus
    // snapshot; with --stats-every the recorder also appends JSONL
    // ticks next to it.
    config.stats_every_s = args.getDouble("stats-every", 0.0);
    config.trace_sample = args.getDouble("trace-sample", 0.0);
    config.slow_trace_us = args.getDouble("trace-slow-us", 0.0);
    const std::string metrics_out = args.get("metrics-out", "");
    if (!metrics_out.empty() && config.stats_every_s > 0.0)
        config.metrics_jsonl = metrics_out + ".jsonl";
    const std::string trace_out = args.get("trace-out", "");

    // Live mutability (DESIGN.md "Live mutability"): a nonzero write
    // rate (or an explicit --live 1) serves a LiveIndex so inserts and
    // deletes land on the running service. The writer below paces the
    // synthetic traffic; the freshness gate at the end is the CI
    // contract.
    const double insert_rate = args.getDouble("insert-rate", 0.0);
    const double delete_rate = args.getDouble("delete-rate", 0.0);
    JUNO_REQUIRE(insert_rate >= 0.0 && delete_rate >= 0.0,
                 "--insert-rate/--delete-rate must be >= 0");
    const bool live_mode = args.getInt("live", 0, 0, 1) != 0 ||
                           insert_rate > 0.0 || delete_rate > 0.0;

    std::unique_ptr<SearchService> service;
    Dataset data;
    Timer ready_timer;
    if (!loadPath(args).empty()) {
        // A snapshot holds only the built index, not the raw vectors a
        // LiveIndex needs to seed generation 0 and re-merge from.
        JUNO_REQUIRE(!live_mode,
                     "--live/--insert-rate/--delete-rate need a built "
                     "index (drop --load)");
        // Warm start: the service owns the index it opens; with mmap
        // enabled the large payloads fault in on first use, so
        // readiness is not gated on a parse of the whole file.
        service = std::make_unique<SearchService>(
            loadPath(args), config, snapshotOptionsFrom(args));
        std::printf("first-query-ready in %.0f ms (%s)\n",
                    ready_timer.millis(),
                    service->index().name().c_str());
        data = loadData(args, service->index().metric());
    } else {
        const Metric metric = parseMetric(args.get("metric", "l2"));
        // One dataset serves both the build and the query traffic —
        // synthetic generation (or fvecs IO) must not run twice.
        data = loadData(args, metric, smoke ? 2000 : 20000,
                        smoke ? 32 : 0);
        const std::string spec =
            smoke && !args.has("spec")
                ? "ivfflat:nlist=32,nprobe=8,iters=4,train=2000"
                : specFrom(args);
        std::printf("building over %lld vectors...\n",
                    static_cast<long long>(data.base.rows()));
        if (live_mode) {
            LiveConfig lcfg;
            lcfg.fresh_capacity = static_cast<idx_t>(
                args.getInt("fresh-cap", 4096, 1, 100000000));
            // Smoke runs last seconds; a low threshold makes the
            // background merge publish generations inside the run so
            // the CI leg actually exercises a reader swap.
            lcfg.merge_threshold = static_cast<idx_t>(args.getInt(
                "merge-threshold", smoke ? 128 : 1024, 1, 100000000));
            service = std::make_unique<SearchService>(
                std::make_unique<LiveIndex>(metric, data.base.view(),
                                            spec, std::move(lcfg)),
                config);
        } else {
            service = std::make_unique<SearchService>(
                buildIndex(metric, data.base.view(), spec), config);
        }
        std::printf("first-query-ready in %.0f ms (%s)\n",
                    ready_timer.millis(),
                    service->index().name().c_str());
    }
    AnnIndex &index = service->index();
    FloatMatrixView queries =
        data.queries.rows() > 0 ? data.queries.view() : data.base.view();
    JUNO_REQUIRE(queries.rows() > 0, "serve needs queries");
    // submit(const float*) trusts the caller on length; check here so
    // a d-mismatched query file cannot make the service read past row
    // ends.
    JUNO_REQUIRE(queries.cols() == index.dim(),
                 "dimension mismatch: queries have "
                     << queries.cols() << " columns, index has "
                     << index.dim());

    const idx_t k = args.getInt("k", 10, 1, 1000000);
    const int clients = static_cast<int>(
        args.getInt("clients", smoke ? 2 : 4, 1, 4096));
    const int window = static_cast<int>(args.getInt("window", 8, 1, 1000000));
    const long total =
        args.getInt("requests", smoke ? 3000 : 20000, 0, 1000000000);
    JUNO_REQUIRE(clients > 0 && window > 0 && total > 0,
                 "clients, window and requests must be positive");

    std::printf("serving %ld requests from %d clients (window %d), "
                "batch<=%lld linger=%lldus over %s\n",
                total, clients, window,
                static_cast<long long>(config.max_batch),
                static_cast<long long>(config.linger.count()),
                index.name().c_str());
    g_interrupted.store(false);
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    service->start();
    Timer timer;
    // Synthetic write traffic: one writer paces inserts and deletes
    // at the requested rates, recycling base vectors under fresh ids.
    // It only ever deletes ids it inserted itself, so the readers'
    // ground set never shrinks and every removed id is known-dead.
    // kBufferFull is backpressure by design (a merge is behind), so
    // it is counted, not fatal.
    std::atomic<bool> writer_stop{false};
    std::atomic<long long> writer_inserts{0};
    std::atomic<long long> writer_removes{0};
    std::atomic<long long> writer_rejected{0};
    std::thread writer;
    if (insert_rate > 0.0 || delete_rate > 0.0)
        writer = std::thread([&] {
            std::deque<idx_t> mine;
            idx_t next_id = data.base.rows() + 1000000;
            using Clock = std::chrono::steady_clock;
            const auto start = Clock::now();
            double ins_due = 0.0, del_due = 0.0;
            while (!writer_stop.load()) {
                const double t =
                    std::chrono::duration<double>(Clock::now() - start)
                        .count();
                bool worked = false;
                if (insert_rate > 0.0 && t >= ins_due) {
                    const float *src = data.base.row(
                        next_id % data.base.rows());
                    if (service->insert(src, next_id) ==
                        MutateStatus::kOk) {
                        mine.push_back(next_id);
                        writer_inserts.fetch_add(1);
                    } else {
                        writer_rejected.fetch_add(1);
                    }
                    ++next_id;
                    ins_due += 1.0 / insert_rate;
                    worked = true;
                }
                if (delete_rate > 0.0 && t >= del_due) {
                    if (!mine.empty()) {
                        if (service->remove(mine.front()) ==
                            MutateStatus::kOk)
                            writer_removes.fetch_add(1);
                        mine.pop_front();
                        worked = true;
                    }
                    // An empty backlog still consumes the tick, or a
                    // delete burst would fire the moment inserts land.
                    del_due += 1.0 / delete_rate;
                }
                if (!worked)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }
        });
    std::atomic<int> client_failures{0};
    std::atomic<long long> client_shed{0};
    std::atomic<long long> client_degraded{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            // An engine failure surfaces through future.get(); catch
            // it here — an exception escaping a std::thread would
            // std::terminate past main()'s exit-code handling.
            try {
                std::deque<std::future<ResultList>> inflight;
                // Typed shedding (expired in queue, stopped during an
                // interrupt drain) is overload behaving as designed,
                // not a client failure.
                auto reap = [&](std::future<ResultList> &f) {
                    try {
                        if (f.get().degraded)
                            client_degraded.fetch_add(1);
                    } catch (const RejectedError &) {
                        client_shed.fetch_add(1);
                    }
                };
                idx_t qi = static_cast<idx_t>(c) % queries.rows();
                // Spread the remainder so exactly --requests are
                // served (integer division alone would drop
                // total % clients, or everything when
                // requests < clients).
                const long mine =
                    total / clients + (c < total % clients ? 1 : 0);
                for (long i = 0; i < mine; ++i) {
                    if (g_interrupted.load())
                        break;
                    if (inflight.size() >=
                        static_cast<std::size_t>(window)) {
                        reap(inflight.front());
                        inflight.pop_front();
                    }
                    RejectReason reason = RejectReason::kNone;
                    auto f = service->submit(queries.row(qi), k,
                                             &reason);
                    // Closed-loop backpressure: a full queue means
                    // the dispatcher is behind — yield and retry so
                    // exactly --requests get served instead of
                    // silently shrinking the run. Other reject
                    // reasons (stopped, expired) are terminal for
                    // this request; its future carries the typed
                    // error and reap() accounts it.
                    while (reason == RejectReason::kQueueFull &&
                           service->running() &&
                           !g_interrupted.load()) {
                        std::this_thread::yield();
                        f = service->submit(queries.row(qi), k,
                                            &reason);
                    }
                    qi = (qi + 1) % queries.rows();
                    inflight.push_back(std::move(f));
                }
                while (!inflight.empty()) {
                    reap(inflight.front());
                    inflight.pop_front();
                }
            } catch (const std::exception &err) {
                std::fprintf(stderr, "juno_cli: client %d: %s\n", c,
                             err.what());
                client_failures.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    const double secs = timer.seconds();
    writer_stop.store(true);
    if (writer.joinable())
        writer.join();
    if (g_interrupted.load())
        std::printf("interrupted: draining accepted requests, final "
                    "snapshots still written\n");

    // Freshness gate (the CI leg greps "freshness: OK"): against the
    // still-running service, an inserted vector must be returned by
    // the very next query, and a deleted one must stay gone — both
    // immediately and across the next merge publish (the window where
    // a lost tombstone would resurrect it).
    bool freshness_ok = true;
    if (live_mode && !g_interrupted.load()) {
        auto *live = dynamic_cast<LiveIndex *>(&index);
        JUNO_REQUIRE(live != nullptr, "live mode without a LiveIndex");
        const idx_t probe_id = data.base.rows() + 500000000;
        // A copy of the query is the guaranteed nearest neighbour
        // under L2 (distance 0); under inner product rank follows
        // norm, so scale the copy until it dominates.
        std::vector<float> probe_vec(queries.row(0),
                                     queries.row(0) + index.dim());
        if (index.metric() == Metric::kInnerProduct)
            for (float &v : probe_vec)
                v *= 16.0f;
        const float *probe = probe_vec.data();
        MutateStatus st = service->insert(probe, probe_id);
        if (st == MutateStatus::kBufferFull) {
            // The writer may have left a full buffer behind; fold it
            // so the probe gets the admission a caught-up merge gives.
            live->mergeNow();
            st = service->insert(probe, probe_id);
        }
        auto sees = [&](idx_t id) {
            const ResultList r = service->submit(probe, 10).get();
            for (const Neighbor &n : r)
                if (n.id == id)
                    return true;
            return false;
        };
        const bool insert_seen = st == MutateStatus::kOk &&
                                 sees(probe_id);
        const bool remove_applied =
            service->remove(probe_id) == MutateStatus::kOk;
        const bool gone_now = !sees(probe_id);
        live->mergeNow();
        const bool gone_after_merge = !sees(probe_id);
        freshness_ok = insert_seen && remove_applied && gone_now &&
                       gone_after_merge;
        if (freshness_ok)
            std::printf("freshness: OK\n");
        else
            std::printf("freshness: VIOLATION (insert %s seen=%d, "
                        "remove applied=%d gone=%d gone-after-merge="
                        "%d)\n",
                        mutateStatusName(st),
                        static_cast<int>(insert_seen),
                        static_cast<int>(remove_applied),
                        static_cast<int>(gone_now),
                        static_cast<int>(gone_after_merge));
    }
    service->stop();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    JUNO_REQUIRE(client_failures.load() == 0,
                 client_failures.load() << " serving clients failed");

    const auto snap = service->snapshot();
    std::printf("served %llu requests in %.2fs: %.0f QPS, mean batch "
                "%.1f, rejected %llu\n",
                static_cast<unsigned long long>(snap.completed), secs,
                static_cast<double>(snap.completed) / secs,
                snap.mean_batch,
                static_cast<unsigned long long>(snap.rejected_full));
    std::printf("overload: shed %lld (client view), degraded %llu "
                "(%lld seen), degraded batches %llu, tier %d\n",
                client_shed.load(),
                static_cast<unsigned long long>(snap.degraded),
                client_degraded.load(),
                static_cast<unsigned long long>(snap.degraded_batches),
                snap.degradation_tier);
    // Conservation gate: every accepted request settled exactly once —
    // completed with a value, failed with the engine's exception, or
    // expired at dequeue. A violation is a lost or double-counted
    // future; the chaos CI leg greps for the trailing OK.
    const bool conserved =
        snap.submitted == snap.completed + snap.failed + snap.expired;
    std::printf("conservation: submitted=%llu completed=%llu "
                "failed=%llu expired=%llu rejected_full=%llu "
                "rejected_expired=%llu rejected_stopped=%llu %s\n",
                static_cast<unsigned long long>(snap.submitted),
                static_cast<unsigned long long>(snap.completed),
                static_cast<unsigned long long>(snap.failed),
                static_cast<unsigned long long>(snap.expired),
                static_cast<unsigned long long>(snap.rejected_full),
                static_cast<unsigned long long>(snap.rejected_expired),
                static_cast<unsigned long long>(snap.rejected_stopped),
                conserved ? "OK" : "VIOLATION");
    const struct {
        const char *name;
        const LatencySummary &lat;
    } rows[] = {{"queue", snap.queue_us},
                {"batch", snap.batch_us},
                {"search", snap.search_us},
                {"total", snap.total_us}};
    std::printf("%-8s %10s %10s %10s %10s\n", "stage", "mean_us",
                "p50_us", "p95_us", "p99_us");
    for (const auto &row : rows)
        std::printf("%-8s %10.1f %10.1f %10.1f %10.1f\n", row.name,
                    row.lat.mean, row.lat.p50, row.lat.p95,
                    row.lat.p99);
    std::printf("memory: rss %.1f MiB, faults major %llu minor %llu\n",
                static_cast<double>(snap.usage.rss_bytes) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(snap.usage.major_faults),
                static_cast<unsigned long long>(snap.usage.minor_faults));
    if (snap.cache.budget_bytes > 0) {
        const double hit_rate =
            snap.cache.lookups > 0
                ? static_cast<double>(snap.cache.hits) /
                      static_cast<double>(snap.cache.lookups)
                : 0.0;
        std::printf("hot-list cache: %zu lists pinned (%.1f/%.1f MiB), "
                    "hit rate %.1f%%, admitted %llu evicted %llu "
                    "rejected %llu\n",
                    snap.cache.resident_lists,
                    static_cast<double>(snap.cache.pinned_bytes) /
                        (1024.0 * 1024.0),
                    static_cast<double>(snap.cache.budget_bytes) /
                        (1024.0 * 1024.0),
                    100.0 * hit_rate,
                    static_cast<unsigned long long>(snap.cache.admitted),
                    static_cast<unsigned long long>(snap.cache.evicted),
                    static_cast<unsigned long long>(
                        snap.cache.rejected_capacity +
                        snap.cache.rejected_policy));
    }
    if (snap.live_enabled) {
        std::printf(
            "live: generation %llu (%llu published, %llu merges), "
            "fresh rows %lld, tombstones %lld, live %lld\n",
            static_cast<unsigned long long>(snap.live.generation),
            static_cast<unsigned long long>(
                snap.live.generations_published),
            static_cast<unsigned long long>(snap.live.merges),
            static_cast<long long>(snap.live.fresh_rows),
            static_cast<long long>(snap.live.tombstones),
            static_cast<long long>(snap.live.live_count));
        std::printf(
            "live ops: inserts %llu removes %llu upserts %llu "
            "rejected %llu (writer: +%lld -%lld, %lld refused)\n",
            static_cast<unsigned long long>(snap.live_inserts),
            static_cast<unsigned long long>(snap.live_removes),
            static_cast<unsigned long long>(snap.live_upserts),
            static_cast<unsigned long long>(snap.live_rejected),
            writer_inserts.load(), writer_removes.load(),
            writer_rejected.load());
    }

    // Final observability dumps: the service is still alive, so its
    // registry callbacks (and the tracer's captures) are intact.
    if (!metrics_out.empty()) {
        MetricsRegistry &reg = config.registry != nullptr
                                   ? *config.registry
                                   : MetricsRegistry::global();
        const std::string text = reg.renderPrometheus();
        if (std::FILE *f = std::fopen(metrics_out.c_str(), "w")) {
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::printf("metrics: wrote %s%s\n", metrics_out.c_str(),
                        config.metrics_jsonl.empty()
                            ? ""
                            : (" (recorder: " + config.metrics_jsonl +
                               ")")
                                  .c_str());
        } else {
            std::fprintf(stderr, "juno_cli: cannot write %s\n",
                         metrics_out.c_str());
        }
    }
    if (!trace_out.empty()) {
        const Tracer &tracer = service->tracer();
        const std::string text = tracer.renderJson();
        if (std::FILE *f = std::fopen(trace_out.c_str(), "w")) {
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::printf(
                "traces: %llu sampled (%llu dropped), %llu slow -> "
                "%s\n",
                static_cast<unsigned long long>(tracer.sampledCount()),
                static_cast<unsigned long long>(tracer.droppedCount()),
                static_cast<unsigned long long>(tracer.slowCount()),
                trace_out.c_str());
        } else {
            std::fprintf(stderr, "juno_cli: cannot write %s\n",
                         trace_out.c_str());
        }
    }
    return conserved && freshness_ok ? 0 : 1;
}

void
usage()
{
    std::string types;
    for (const auto &t : IndexFactory::instance().types()) {
        if (!types.empty())
            types += ", ";
        types += t;
    }
    std::fprintf(
        stderr,
        "usage: juno_cli <build|search|eval|serve|parity> "
        "[--option value]...\n"
        "\n"
        "  build   train an index and save a snapshot:\n"
        "          --save idx.juno [--spec \"type:k=v,...\"] "
        "[data flags]\n"
        "  search  open a snapshot and run a query batch:\n"
        "          --load idx.juno [--k K] [--threads T] [--mmap 0|1]\n"
        "  eval    build or load, then report QPS and recall\n"
        "  serve   drive the micro-batching service; --load idx.juno\n"
        "          warm-starts from a snapshot (build-once/serve-many);\n"
        "          --mem-budget 64m pins the hottest inverted lists in\n"
        "          RAM for out-of-core serving (JUNO_MEM_BUDGET env\n"
        "          works too; 0 = pure mmap paging); observability:\n"
        "          --stats-every S --metrics-out m.prom (+ m.prom.jsonl\n"
        "          recorder) --trace-out t.json --trace-sample 0.01\n"
        "          --trace-slow-us 5000 --smoke (tiny CI-sized run);\n"
        "          overload: --deadline-ms D stamps per-request\n"
        "          deadlines (expired work is shed, not served) and\n"
        "          --degrade 1 arms tiered probe-budget degradation;\n"
        "          chaos: JUNO_FAULT=site:prob:seed[:delay_ms] (needs\n"
        "          a -DJUNO_FAULT_INJECTION=ON build);\n"
        "          live writes: --insert-rate/--delete-rate ops/sec\n"
        "          (or --live 1) serve a mutable LiveIndex, print a\n"
        "          live stats line and end with a freshness gate\n"
        "          (grep \"freshness: OK\");\n"
        "          SIGINT/SIGTERM drain cleanly and still dump\n"
        "  parity  gate: snapshot results == fresh-build results\n"
        "\n"
        "  index types for --spec: %s\n"
        "  data flags: --base/--queries (fvecs) or --synthetic "
        "deep|sift|tti|uniform with --n/--dim/--queries-n/--seed\n"
        "\n"
        "see the file header of tools/juno_cli.cc for all flags\n",
        types.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    try {
        const Args args(argc, argv, 2);
        const std::string cmd = argv[1];
        if (cmd == "build")
            return cmdBuild(args);
        if (cmd == "search")
            return cmdSearch(args);
        if (cmd == "eval")
            return cmdEval(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "parity")
            return cmdParity(args);
        std::fprintf(stderr, "juno_cli: unknown subcommand '%s'\n",
                     cmd.c_str());
        usage();
        return 2;
    } catch (const ConfigError &err) {
        std::fprintf(stderr, "juno_cli: %s\n", err.what());
        return 1;
    } catch (const std::exception &err) {
        // Anything else (I/O failure, bad_alloc, ...) still exits
        // nonzero with a message instead of std::terminate.
        std::fprintf(stderr, "juno_cli: unexpected error: %s\n",
                     err.what());
        return 1;
    }
}
