/**
 * @file
 * Batched search API types: what a caller asks of an index.
 *
 * A SearchRequest bundles the query batch with SearchOptions (k, worker
 * threads, chunk granularity, stats toggle). The query engine shards
 * the batch into SearchChunk work items, each executed by one worker
 * against its own SearchContext, so the paper's batch-level parallelism
 * (Sec. 5.3: many queries in flight across execution units) has a
 * first-class CPU expression instead of a per-query loop.
 */
#ifndef JUNO_ENGINE_SEARCH_REQUEST_H
#define JUNO_ENGINE_SEARCH_REQUEST_H

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

class Trace;

/** Retrieved results: one best-first Neighbor list per query. */
using SearchResults = std::vector<std::vector<Neighbor>>;

/** Tunables of one batched search. */
struct SearchOptions {
    /** Neighbours returned per query (> 0). */
    idx_t k = 10;
    /**
     * Worker threads sharing the batch. 1 executes on the calling
     * thread; 0 picks hardware_concurrency(). Results are bitwise
     * identical for every thread count (queries are independent).
     */
    int threads = 1;
    /**
     * Queries per work chunk; 0 derives a chunk size from the batch
     * size and thread count with a minimum grain. Chunking never
     * affects results, only load balance.
     */
    idx_t batch_size = 0;
    /**
     * When false the batch does not contribute to the index's
     * stageTimers() ledger (serving mode: skip the bookkeeping).
     */
    bool collect_stats = true;
    /**
     * Hot-list cache budget for out-of-core serving
     * (serve/hot_list_cache.h): > 0 attaches (or resizes) an
     * admission-controlled cache that pins the hottest inverted
     * lists' scan payloads in RAM and turns the probe loop
     * IO-aware (resident-first order + madvise prefetch of cold
     * lists); 0 detaches it (the pure-mmap paging path); < 0 (the
     * default) keeps whatever is attached, falling back to the
     * JUNO_MEM_BUDGET environment variable on first use. Results
     * are bitwise identical under every budget — only residency,
     * fault counts and speed change.
     */
    std::int64_t memory_budget_bytes = -1;
    /**
     * Observability hook: when non-null, the engine and the index's
     * stage instrumentation append spans for this batch to the trace
     * (obs/trace.h). Not owned; must outlive the search call. Null
     * (the default) costs one pointer test per stage.
     */
    Trace *trace = nullptr;

    // ---- Overload resilience (DESIGN.md "Overload resilience") ----

    /**
     * Cooperative deadline: IVF-family scan loops check it between
     * probe-list iterations and cut the remaining probes off once it
     * passes, returning the partial-but-valid top-k accumulated so far
     * (every returned neighbour was exactly scored; the list is just
     * drawn from fewer lists) and flagging the query in @ref degraded.
     * At least the first probe list is always scanned, so results stay
     * non-empty. time_point::max() (the default) means no deadline and
     * costs zero clock reads on the scan path.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /**
     * Probe-budget scale in (0, 1]: the effective nprobe becomes
     * max(1, lround(nprobe * scale)). Exactly 1.0 (the default) leaves
     * the configured nprobe untouched — bitwise-identical results —
     * which is what lets a DegradationPolicy step budgets per batch
     * without a parallel code path.
     */
    double nprobe_scale = 1.0;
    /**
     * Fast-scan prefilter tightening in [0, 1): widens the 4-bit block
     * skip margin by this fraction of the current heap threshold, so a
     * degraded scan discards near-threshold blocks it would otherwise
     * rescore. 0 (the default) keeps the exact skip rule.
     */
    double scan_tighten = 0.0;
    /**
     * Per-query degradation flags, sized/zeroed by the engine to the
     * batch's row count when non-null: scan loops set slot qi when
     * query qi's scan was cut short by @ref deadline. Not owned; must
     * outlive the search call.
     */
    std::vector<std::uint8_t> *degraded = nullptr;
};

/** A query batch plus its options; the unit the engine executes. */
struct SearchRequest {
    FloatMatrixView queries;
    SearchOptions options;

    SearchRequest() = default;
    SearchRequest(FloatMatrixView q, SearchOptions o)
        : queries(q), options(o)
    {
    }
    /** Convenience: batch with default options except @p k. */
    SearchRequest(FloatMatrixView q, idx_t k) : queries(q)
    {
        options.k = k;
    }
};

/**
 * A contiguous shard of a batched search handed to one worker.
 * Implementations answer queries [begin, end) of @p queries and write
 * each result into (*results)[qi]; slots never overlap across chunks.
 */
struct SearchChunk {
    FloatMatrixView queries;
    idx_t begin = 0;
    idx_t end = 0;
    idx_t k = 0;
    SearchResults *results = nullptr;
};

} // namespace juno

#endif // JUNO_ENGINE_SEARCH_REQUEST_H
