#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"

namespace juno {

namespace {
/** Smallest chunk worth dispatching (amortises the queue hop). */
constexpr idx_t kMinChunk = 4;
/** Auto-chunking targets this many chunks per worker (load balance). */
constexpr idx_t kChunksPerWorker = 4;
} // namespace

int
QueryEngine::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

idx_t
QueryEngine::resolveChunk(idx_t rows, int threads, idx_t requested)
{
    if (requested > 0)
        return requested;
    const idx_t target = static_cast<idx_t>(threads) * kChunksPerWorker;
    return std::max(kMinChunk, (rows + target - 1) / target);
}

SearchResults
QueryEngine::run(FloatMatrixView queries, const SearchOptions &options,
                 const SearchChunkFn &fn, StageTimers &stage_sink)
{
    JUNO_REQUIRE(options.k > 0, "k must be positive");
    const idx_t rows = queries.rows();
    SearchResults results(static_cast<std::size_t>(rows));
    if (rows == 0)
        return results;

    int threads = resolveThreads(options.threads);
    threads = static_cast<int>(
        std::min<idx_t>(static_cast<idx_t>(threads), rows));
    const idx_t chunk =
        resolveChunk(rows, threads, options.batch_size);
    const idx_t num_chunks = (rows + chunk - 1) / chunk;
    // Never keep more workers than chunks: the surplus could not
    // receive work, and lastThreadCount() must report reality.
    threads = static_cast<int>(
        std::min<idx_t>(static_cast<idx_t>(threads), num_chunks));
    last_threads_ = threads;

    while (contexts_.size() < static_cast<std::size_t>(threads))
        contexts_.push_back(std::make_unique<SearchContext>());

    auto run_chunk = [&](idx_t c, SearchContext &ctx) {
        SearchChunk sc;
        sc.queries = queries;
        sc.begin = c * chunk;
        sc.end = std::min(rows, sc.begin + chunk);
        sc.k = options.k;
        sc.results = &results;
        fn(sc, ctx);
    };

    if (threads == 1) {
        for (idx_t c = 0; c < num_chunks; ++c)
            run_chunk(c, *contexts_[0]);
    } else {
        if (!pool_ || pool_->threadCount() != threads)
            pool_ = std::make_unique<ThreadPool>(threads);
        // One task per worker; tasks drain a shared chunk counter so a
        // slow chunk never strands the rest of the batch behind it.
        std::atomic<idx_t> next{0};
        ThreadPool::Batch batch(*pool_);
        for (int t = 0; t < threads; ++t) {
            SearchContext *ctx = contexts_[static_cast<std::size_t>(t)].get();
            batch.submit([&, ctx] {
                for (idx_t c = next.fetch_add(1); c < num_chunks;
                     c = next.fetch_add(1))
                    run_chunk(c, *ctx);
            });
        }
        batch.join();
    }

    // Merge-on-completion keeps StageTimers lock-free on the hot path:
    // workers only ever touch their private ledger, and the caller
    // folds them in deterministic worker order once the batch is done.
    for (int t = 0; t < threads; ++t) {
        auto &ctx = *contexts_[static_cast<std::size_t>(t)];
        if (options.collect_stats)
            stage_sink.merge(ctx.timers());
        ctx.timers().reset();
    }
    return results;
}

} // namespace juno
