#include "engine/query_engine.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace juno {

namespace {
/** Smallest chunk worth dispatching (amortises the queue hop). */
constexpr idx_t kMinChunk = 4;
/** Auto-chunking targets this many chunks per worker (load balance). */
constexpr idx_t kChunksPerWorker = 4;
} // namespace

int
QueryEngine::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

idx_t
QueryEngine::resolveChunk(idx_t rows, int threads, idx_t requested)
{
    if (requested > 0)
        return requested;
    const idx_t target = static_cast<idx_t>(threads) * kChunksPerWorker;
    return std::max(kMinChunk, (rows + target - 1) / target);
}

SearchContext *
QueryEngine::acquireContext()
{
    MutexLock lock(ctx_mutex_);
    if (!free_.empty()) {
        SearchContext *ctx = free_.back();
        free_.pop_back();
        return ctx;
    }
    owned_.push_back(std::make_unique<SearchContext>());
    return owned_.back().get();
}

void
QueryEngine::releaseContext(SearchContext *ctx)
{
    MutexLock lock(ctx_mutex_);
    free_.push_back(ctx);
}

void
QueryEngine::mergeAndRelease(std::vector<SearchContext *> &held,
                             bool collect_stats, StageTimers &stage_sink)
{
    // Merge-on-completion keeps StageTimers lock-free on the hot path:
    // workers only ever touch their private ledger; the sink lock is
    // taken once per batch, here, never per query.
    if (collect_stats) {
        MutexLock lock(sink_mutex_);
        for (SearchContext *ctx : held)
            stage_sink.merge(ctx->timers());
    }
    for (SearchContext *ctx : held) {
        ctx->timers().reset();
        releaseContext(ctx);
    }
    held.clear();
}

SearchResults
QueryEngine::run(FloatMatrixView queries, const SearchOptions &options,
                 const SearchChunkFn &fn, StageTimers &stage_sink)
{
    SearchResults results;
    run(queries, options, fn, stage_sink, results);
    return results;
}

void
QueryEngine::run(FloatMatrixView queries, const SearchOptions &options,
                 const SearchChunkFn &fn, StageTimers &stage_sink,
                 SearchResults &results)
{
    JUNO_REQUIRE(options.k > 0, "k must be positive");
    JUNO_REQUIRE(options.nprobe_scale > 0.0 &&
                     options.nprobe_scale <= 1.0,
                 "nprobe_scale must be in (0, 1]");
    JUNO_REQUIRE(options.scan_tighten >= 0.0 &&
                     options.scan_tighten < 1.0,
                 "scan_tighten must be in [0, 1)");
    const idx_t rows = queries.rows();
    results.resize(static_cast<std::size_t>(rows));
    // Degradation flags start clean for the whole batch; scan loops
    // only ever set slots, so an untouched batch reads all-zero.
    if (options.degraded != nullptr)
        options.degraded->assign(static_cast<std::size_t>(rows), 0);
    if (rows == 0)
        return;

    int threads = resolveThreads(options.threads);
    threads = static_cast<int>(
        std::min<idx_t>(static_cast<idx_t>(threads), rows));
    const idx_t chunk =
        resolveChunk(rows, threads, options.batch_size);
    const idx_t num_chunks = (rows + chunk - 1) / chunk;
    // Never keep more workers than chunks: the surplus could not
    // receive work, and lastThreadCount() must report reality.
    threads = static_cast<int>(
        std::min<idx_t>(static_cast<idx_t>(threads), num_chunks));
    last_threads_.store(threads);

    auto run_chunk = [&](idx_t c, SearchContext &ctx) {
        SearchChunk sc;
        sc.queries = queries;
        sc.begin = c * chunk;
        sc.end = std::min(rows, sc.begin + chunk);
        sc.k = options.k;
        sc.results = &results;
        // Contexts are pooled across batches, so the trace — and the
        // overload-resilience state riding with it — is stamped per
        // chunk and cleared after: a later batch must inherit neither
        // a stale trace nor a stale deadline/degraded budget.
        ctx.trace = options.trace;
        ctx.deadline = options.deadline;
        ctx.nprobe_scale = options.nprobe_scale;
        ctx.scan_tighten = options.scan_tighten;
        ctx.degraded = options.degraded;
        {
            TraceSpan span(ctx.trace, "chunk");
            span.arg("begin", static_cast<double>(sc.begin));
            span.arg("end", static_cast<double>(sc.end));
            fn(sc, ctx);
        }
        ctx.trace = nullptr;
        ctx.deadline = std::chrono::steady_clock::time_point::max();
        ctx.nprobe_scale = 1.0;
        ctx.scan_tighten = 0.0;
        ctx.degraded = nullptr;
    };

    // Checked-out contexts, returned (and their timers folded into the
    // sink) even when a chunk throws mid-batch.
    std::vector<SearchContext *> held;
    struct Return {
        QueryEngine *engine;
        std::vector<SearchContext *> *held;
        ~Return()
        {
            for (SearchContext *ctx : *held) {
                ctx->timers().reset();
                engine->releaseContext(ctx);
            }
        }
    } guard{this, &held};

    TraceSpan engine_span(options.trace, "engine");
    engine_span.arg("queries", static_cast<double>(rows));
    engine_span.arg("threads", static_cast<double>(threads));

    if (threads == 1) {
        // Inline path: fully re-entrant, any number of concurrent
        // callers each drive their own checked-out context.
        held.push_back(acquireContext());
        for (idx_t c = 0; c < num_chunks; ++c)
            run_chunk(c, *held[0]);
    } else {
        // Multi-threaded runs share one worker pool; serialise them
        // against each other (inline callers are unaffected).
        MutexLock pool_lock(pool_mutex_);
        if (!pool_ || pool_->threadCount() != threads)
            pool_ = std::make_unique<ThreadPool>(threads);
        for (int t = 0; t < threads; ++t)
            held.push_back(acquireContext());
        // One task per worker; tasks drain a shared chunk counter so a
        // slow chunk never strands the rest of the batch behind it.
        std::atomic<idx_t> next{0};
        ThreadPool::Batch batch(*pool_);
        for (int t = 0; t < threads; ++t) {
            SearchContext *ctx = held[static_cast<std::size_t>(t)];
            batch.submit([&, ctx] {
                for (idx_t c = next.fetch_add(1); c < num_chunks;
                     c = next.fetch_add(1))
                    run_chunk(c, *ctx);
            });
        }
        batch.join();
    }

    mergeAndRelease(held, options.collect_stats, stage_sink);
}

} // namespace juno
