/**
 * @file
 * Per-worker search scratch: every worker thread of a batched search
 * owns one SearchContext and reuses its buffers across queries and
 * across batches, so the hot loops never allocate per query.
 *
 * Thread-safety contract: a context is only ever touched by the worker
 * it is assigned to; its StageTimers accumulate privately and are
 * merged into the index-wide ledger on the calling thread after the
 * batch completes (merge-on-completion, no locks on the hot path).
 */
#ifndef JUNO_ENGINE_SEARCH_CONTEXT_H
#define JUNO_ENGINE_SEARCH_CONTEXT_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/timer.h"
#include "common/topk.h"
#include "common/types.h"
#include "obs/trace.h"

namespace juno {

/**
 * Epoch-stamped visited set over ids [0, n): clear() is O(1) amortised
 * (bump the epoch) instead of O(n), which is what makes it a per-query
 * reusable buffer for graph traversals (HNSW beam search).
 */
class VisitedSet {
  public:
    /** Prepares the set for ids in [0, n) and clears it. */
    void
    reset(idx_t n)
    {
        const auto sz = static_cast<std::size_t>(n);
        if (marks_.size() < sz)
            marks_.assign(sz, 0);
        clear();
    }

    /** Forgets all visited ids (O(1) unless the epoch wraps). */
    void
    clear()
    {
        if (++epoch_ == 0) { // wrapped: marks are stale, scrub them
            std::fill(marks_.begin(), marks_.end(), 0);
            epoch_ = 1;
        }
    }

    /** Marks @p id visited; true when it was not visited before. */
    bool
    insert(idx_t id)
    {
        auto &m = marks_[static_cast<std::size_t>(id)];
        if (m == epoch_)
            return false;
        m = epoch_;
        return true;
    }

    bool
    contains(idx_t id) const
    {
        return marks_[static_cast<std::size_t>(id)] == epoch_;
    }

  private:
    std::vector<std::uint32_t> marks_;
    std::uint32_t epoch_ = 0;
};

/** Reusable per-worker state for one index's search hot loop. */
class SearchContext {
  public:
    SearchContext() = default;
    SearchContext(const SearchContext &) = delete;
    SearchContext &operator=(const SearchContext &) = delete;

    /** Private timing ledger, merged into the index after the batch. */
    StageTimers &timers() { return timers_; }

    /**
     * Trace of the batch this worker is currently executing, stamped
     * by the engine around each chunk (null when the batch is not
     * sampled). Stage instrumentation reads it through StageScope.
     */
    Trace *trace = nullptr;

    // -- Overload-resilience state, stamped by the engine around each
    // chunk exactly like `trace` (see SearchOptions for semantics) --

    /** Cooperative deadline; time_point::max() = none. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /** Probe-budget scale in (0, 1]; 1.0 = full budget. */
    double nprobe_scale = 1.0;
    /** Fast-scan prefilter tightening in [0, 1); 0 = exact rule. */
    double scan_tighten = 0.0;
    /** Per-query degraded flags of the whole batch (null = untracked).
     * Each slot has one writer (chunks never overlap), so marking
     * needs no synchronisation. */
    std::vector<std::uint8_t> *degraded = nullptr;

    bool
    hasDeadline() const
    {
        return deadline !=
               std::chrono::steady_clock::time_point::max();
    }

    /** One clock read — callers short-circuit via hasDeadline() so an
     * undeadlined scan never pays it. */
    bool
    pastDeadline() const
    {
        return hasDeadline() &&
               std::chrono::steady_clock::now() >= deadline;
    }

    /** Effective probe budget under the current scale; scale == 1.0
     * returns @p nprobs unchanged (the bitwise-parity branch). */
    idx_t
    scaledNprobes(idx_t nprobs) const
    {
        if (nprobe_scale == 1.0)
            return nprobs;
        const auto scaled = static_cast<idx_t>(
            std::lround(static_cast<double>(nprobs) * nprobe_scale));
        return std::max<idx_t>(1, scaled);
    }

    /** Flags query @p qi as degraded (no-op when untracked). */
    void
    markDegraded(idx_t qi) const
    {
        if (degraded != nullptr)
            (*degraded)[static_cast<std::size_t>(qi)] = 1;
    }

    // -- Common scratch buffers shared by several index types --

    /** Filtering-stage output (probed clusters). */
    std::vector<Neighbor> probes;
    /** Residual / projection buffer (D floats). */
    std::vector<float> residual;
    /** Dense per-candidate score buffer for the batched SIMD kernels. */
    std::vector<float> scores;
    /** Dense LUT scratch (subspaces x entries), reused across probes. */
    FloatMatrix lut;
    /** Graph-traversal visited set (HNSW). */
    VisitedSet visited;

    /**
     * Index-specific scratch: created on first use by @p make (which
     * must return std::unique_ptr<T>) and kept for the lifetime of the
     * context, so expensive per-worker state (RT-LUT builders, sparse
     * LUTs, accumulators) persists across batches.
     */
    template <typename T, typename MakeFn>
    T &
    scratch(MakeFn &&make)
    {
        auto &slot = extras_[std::type_index(typeid(T))];
        if (!slot) {
            auto holder = std::make_unique<Holder<T>>();
            holder->value = make();
            slot = std::move(holder);
        }
        return *static_cast<Holder<T> &>(*slot).value;
    }

  private:
    struct HolderBase {
        virtual ~HolderBase() = default;
    };
    template <typename T> struct Holder : HolderBase {
        std::unique_ptr<T> value;
    };

    StageTimers timers_;
    std::unordered_map<std::type_index, std::unique_ptr<HolderBase>>
        extras_;
};

/**
 * Stage instrumentation in one RAII handle: always accumulates into
 * the context's StageTimers; additionally emits a trace span when the
 * batch is sampled. With no trace attached the extra cost over a bare
 * ScopedStageTimer is one pointer test.
 */
class StageScope {
  public:
    StageScope(SearchContext &ctx, Stage stage)
        : span_(ctx.trace, stageName(stage)), timer_(ctx.timers(), stage)
    {
    }

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    TraceSpan span_;
    ScopedStageTimer timer_;
};

} // namespace juno

#endif // JUNO_ENGINE_SEARCH_CONTEXT_H
