/**
 * @file
 * The batched query engine: shards a SearchRequest across a thread
 * pool and hands each shard to a per-chunk callback together with a
 * per-worker SearchContext.
 *
 * This is the CPU substitution for the paper's batch dispatcher
 * (Sec. 5.3): the GPU keeps many queries in flight across RT and
 * Tensor units; here a worker team drains a chunk queue so QPS scales
 * with the thread count while per-query results stay bitwise identical
 * to the serial order (queries are independent and each result slot
 * has exactly one writer).
 */
#ifndef JUNO_ENGINE_QUERY_ENGINE_H
#define JUNO_ENGINE_QUERY_ENGINE_H

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/search_context.h"
#include "engine/search_request.h"

namespace juno {

/** Executes one chunk of queries against a worker's context. */
using SearchChunkFn =
    std::function<void(const SearchChunk &, SearchContext &)>;

/**
 * Owns the worker pool and the per-worker contexts of one index.
 * Contexts (and their scratch) persist across run() calls in a
 * check-out/check-in pool, so the hot loops never allocate per batch;
 * the thread pool is rebuilt only when the requested count changes.
 *
 * Concurrency: run() is re-entrant for single-threaded requests
 * (options.threads == 1, the serving layer's read path) — concurrent
 * callers each check out their own context and only contend on the
 * context free-list and the stage-timer sink. Multi-threaded requests
 * serialise against each other on the shared worker pool (they would
 * oversubscribe the machine anyway) but still run concurrently with
 * inline callers.
 */
class QueryEngine {
  public:
    QueryEngine() = default;
    QueryEngine(const QueryEngine &) = delete;
    QueryEngine &operator=(const QueryEngine &) = delete;

    /**
     * Shards @p queries into chunks and runs @p fn over all of them
     * with @p options.threads workers. Per-context stage timers are
     * merged into @p stage_sink (under the engine's sink lock) when
     * options.collect_stats is set.
     */
    SearchResults run(FloatMatrixView queries, const SearchOptions &options,
                      const SearchChunkFn &fn, StageTimers &stage_sink);

    /**
     * Batch-submit hook: identical to run() but writes into
     * @p results, which is resized to the batch and whose storage is
     * reused across calls — the serving layer's micro-batcher keeps
     * one results buffer per dispatcher so steady-state dispatch does
     * not reallocate the outer result table per batch.
     */
    void run(FloatMatrixView queries, const SearchOptions &options,
             const SearchChunkFn &fn, StageTimers &stage_sink,
             SearchResults &results);

    /** Workers used by the last run() (for reporting/tests). */
    int lastThreadCount() const { return last_threads_.load(); }

    /** Resolves options.threads (0 -> hardware concurrency). */
    static int resolveThreads(int requested);

    /** Chunk size used for @p rows queries on @p threads workers. */
    static idx_t resolveChunk(idx_t rows, int threads, idx_t requested);

  private:
    SearchContext *acquireContext() JUNO_EXCLUDES(ctx_mutex_);
    void releaseContext(SearchContext *ctx) JUNO_EXCLUDES(ctx_mutex_);
    void mergeAndRelease(std::vector<SearchContext *> &held,
                         bool collect_stats, StageTimers &stage_sink)
        JUNO_EXCLUDES(sink_mutex_);

    Mutex ctx_mutex_; ///< guards owned_/free_
    std::vector<std::unique_ptr<SearchContext>> owned_
        JUNO_GUARDED_BY(ctx_mutex_);
    std::vector<SearchContext *> free_ JUNO_GUARDED_BY(ctx_mutex_);

    Mutex pool_mutex_; ///< serialises multi-threaded runs
    /** Rebuilt (and dispatched into) only with pool_mutex_ held. */
    std::unique_ptr<ThreadPool> pool_ JUNO_GUARDED_BY(pool_mutex_);

    /** Guards the caller-owned stage_sink during merges (the sink
     * itself is a parameter, so the analysis can only see the lock). */
    Mutex sink_mutex_;
    std::atomic<int> last_threads_{1};
};

} // namespace juno

#endif // JUNO_ENGINE_QUERY_ENGINE_H
