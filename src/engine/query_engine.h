/**
 * @file
 * The batched query engine: shards a SearchRequest across a thread
 * pool and hands each shard to a per-chunk callback together with a
 * per-worker SearchContext.
 *
 * This is the CPU substitution for the paper's batch dispatcher
 * (Sec. 5.3): the GPU keeps many queries in flight across RT and
 * Tensor units; here a worker team drains a chunk queue so QPS scales
 * with the thread count while per-query results stay bitwise identical
 * to the serial order (queries are independent and each result slot
 * has exactly one writer).
 */
#ifndef JUNO_ENGINE_QUERY_ENGINE_H
#define JUNO_ENGINE_QUERY_ENGINE_H

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/search_context.h"
#include "engine/search_request.h"

namespace juno {

/** Executes one chunk of queries against a worker's context. */
using SearchChunkFn =
    std::function<void(const SearchChunk &, SearchContext &)>;

/**
 * Owns the worker pool and the per-worker contexts of one index.
 * Contexts (and their scratch) persist across run() calls; the pool is
 * rebuilt only when the requested thread count changes.
 *
 * run() itself is not re-entrant: an index is searched from one caller
 * thread at a time (parallelism lives *inside* the engine).
 */
class QueryEngine {
  public:
    QueryEngine() = default;
    QueryEngine(const QueryEngine &) = delete;
    QueryEngine &operator=(const QueryEngine &) = delete;

    /**
     * Shards @p queries into chunks and runs @p fn over all of them
     * with @p options.threads workers. Per-context stage timers are
     * merged into @p stage_sink (in worker order, on the calling
     * thread) when options.collect_stats is set.
     */
    SearchResults run(FloatMatrixView queries, const SearchOptions &options,
                      const SearchChunkFn &fn, StageTimers &stage_sink);

    /** Workers used by the last run() (for reporting/tests). */
    int lastThreadCount() const { return last_threads_; }

    /** Resolves options.threads (0 -> hardware concurrency). */
    static int resolveThreads(int requested);

    /** Chunk size used for @p rows queries on @p threads workers. */
    static idx_t resolveChunk(idx_t rows, int threads, idx_t requested);

  private:
    std::unique_ptr<ThreadPool> pool_;
    std::vector<std::unique_ptr<SearchContext>> contexts_;
    int last_threads_ = 1;
};

} // namespace juno

#endif // JUNO_ENGINE_QUERY_ENGINE_H
