/**
 * @file
 * Process-wide metrics registry: counters, gauges and histograms with
 * Prometheus text exposition and JSON export.
 *
 * Two registration styles, one export door:
 *
 *  - Owned instruments (counter()/gauge()/histogram()): get-or-create
 *    by name; callers hold a shared_ptr and record into it directly.
 *    Counters/gauges are lock-free atomics; histograms reuse the
 *    sharded QuantileSketch pattern from ServiceStats so concurrent
 *    observe() calls from worker threads rarely contend.
 *
 *  - Pull callbacks (counterCallback()/gaugeCallback()/
 *    summaryCallback()/info()): for subsystems that already keep their
 *    own counters (ServiceStats, HotListCache::Counters,
 *    ResourceUsage) — the registry calls the lambda at export time
 *    instead of duplicating state. Registration is RAII: drop the
 *    returned handle and the callback is gone, so a stopped service
 *    cannot leave dangling lambdas behind.
 *
 * Export never runs callbacks under the registry lock (a callback that
 * itself touches the registry, or a lock held across a slow snapshot,
 * would deadlock or stall recorders).
 */
#ifndef JUNO_OBS_METRICS_H
#define JUNO_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"

namespace juno {

/** Point-in-time digest of a histogram / latency distribution. */
struct HistogramSummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Monotonically increasing counter (relaxed atomic increments). */
class Counter {
  public:
    void inc(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins scalar (set/add from any thread). */
class Gauge {
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Quantile-tracking histogram: observations land in one of kShards
 * thread-hashed QuantileSketch shards (each behind its own mutex, on
 * its own cache line), merged only at summary() time. Same layout as
 * ServiceStats' latency shards — contention-free recording, exact
 * union quantiles.
 */
class HistogramMetric {
  public:
    void observe(double v);
    void observe(const std::vector<double> &vs);

    /** Merges all shards and digests them (count/mean/p50/p95/p99/max). */
    HistogramSummary summary() const;

  private:
    static constexpr std::size_t kShards = 8;
    struct alignas(64) Shard {
        mutable Mutex mutex;
        QuantileSketch sketch JUNO_GUARDED_BY(mutex);
    };

    Shard &localShard();

    std::array<Shard, kShards> shards_;
};

/**
 * Name-keyed metric registry with Prometheus text and JSON export.
 * All methods are thread-safe. Use global() for the process-wide
 * instance; tests can instantiate their own.
 */
class MetricsRegistry {
  public:
    /**
     * RAII callback registration: destruction (or release()) removes
     * the callback. Re-registering the same name replaces the entry;
     * the superseded handle's destruction then no-ops, so handles are
     * safe to hold across service restarts in any order.
     */
    class Registration {
      public:
        Registration() = default;
        Registration(Registration &&other) noexcept { *this = std::move(other); }
        Registration &operator=(Registration &&other) noexcept;
        ~Registration() { release(); }

        Registration(const Registration &) = delete;
        Registration &operator=(const Registration &) = delete;

        /** Unregisters now (idempotent). */
        void release();

      private:
        friend class MetricsRegistry;
        Registration(MetricsRegistry *owner, std::string name,
                     std::uint64_t id)
            : owner_(owner), name_(std::move(name)), id_(id)
        {
        }

        MetricsRegistry *owner_ = nullptr;
        std::string name_;
        std::uint64_t id_ = 0;
    };

    /** The process-wide registry (intentionally leaked singleton). */
    static MetricsRegistry &global();

    /**
     * Get-or-create an owned instrument. Throws ConfigError when the
     * name is invalid or already registered with a different kind.
     */
    std::shared_ptr<Counter> counter(const std::string &name,
                                     const std::string &help);
    std::shared_ptr<Gauge> gauge(const std::string &name,
                                 const std::string &help);
    std::shared_ptr<HistogramMetric> histogram(const std::string &name,
                                               const std::string &help);

    /**
     * Pull-mode registration: @p fn runs at every export. The callback
     * must stay valid until the returned Registration is destroyed.
     * Registering an existing name replaces it.
     */
    Registration counterCallback(const std::string &name,
                                 const std::string &help,
                                 std::function<std::uint64_t()> fn);

    /**
     * Labeled counter callback: registered under the full sample key
     * `name{k="v",...}`, so one metric family can carry several label
     * sets (e.g. juno_serve_shed_total{reason="queue_full"}). Entries
     * of the same family sort adjacently and share one HELP/TYPE block
     * in the Prometheus exposition.
     */
    Registration
    counterCallback(const std::string &name,
                    std::vector<std::pair<std::string, std::string>> labels,
                    const std::string &help,
                    std::function<std::uint64_t()> fn);

    Registration gaugeCallback(const std::string &name,
                               const std::string &help,
                               std::function<double()> fn);
    Registration summaryCallback(const std::string &name,
                                 const std::string &help,
                                 std::function<HistogramSummary()> fn);

    /**
     * Constant info metric: exported as `name{k="v",...} 1` — the
     * Prometheus idiom for build/version metadata.
     */
    Registration
    info(const std::string &name, const std::string &help,
         std::vector<std::pair<std::string, std::string>> labels);

    /** Prometheus text exposition (one HELP/TYPE block per metric). */
    std::string renderPrometheus() const;

    /** One JSON object: metric name -> value or summary object. */
    std::string renderJson() const;

    /** Number of registered metrics. */
    std::size_t size() const;

    /** Drops every entry (tests). Outstanding handles then no-op. */
    void clear();

  private:
    enum class Kind {
        kCounter,
        kGauge,
        kHistogram,
        kCounterFn,
        kGaugeFn,
        kSummaryFn,
        kInfo,
    };

    struct Entry {
        Kind kind = Kind::kCounter;
        std::string help;
        std::uint64_t id = 0;
        std::shared_ptr<Counter> counter;
        std::shared_ptr<Gauge> gauge;
        std::shared_ptr<HistogramMetric> histogram;
        std::function<std::uint64_t()> counter_fn;
        std::function<double()> gauge_fn;
        std::function<HistogramSummary()> summary_fn;
        std::vector<std::pair<std::string, std::string>> labels;
    };

    Registration registerCallback(const std::string &name, Entry entry);
    void unregister(const std::string &name, std::uint64_t id);
    /** Copies all entries so export can run callbacks lock-free. */
    std::vector<std::pair<std::string, Entry>> snapshotEntries() const;

    mutable Mutex mutex_;
    std::map<std::string, Entry> entries_ JUNO_GUARDED_BY(mutex_);
    std::uint64_t next_id_ JUNO_GUARDED_BY(mutex_) = 1;
};

} // namespace juno

#endif // JUNO_OBS_METRICS_H
