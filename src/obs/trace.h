/**
 * @file
 * Sampled per-query tracing: Chrome trace-event output for Perfetto.
 *
 * A Trace is one query's (or one dispatched batch's) event ledger:
 * complete spans ("X" phase) and instant markers ("i" phase) appended
 * by whichever thread happens to be executing the query at the time.
 * TraceSpan is the RAII handle code sprinkles around pipeline stages —
 * it compiles down to a null check when no trace is attached, which is
 * what makes tracing free when sampling is off.
 *
 * The Tracer owns the sampling decision and the retention policy: a
 * 1-in-N atomic-counter sampler (rate 0 reads one constant and
 * branches — no atomics touched), a bounded set of sampled traces, and
 * a ring of the most recent slow-query traces. renderJson() emits the
 * whole collection as Chrome trace-event JSON; each trace gets its own
 * pid so Perfetto shows one track group per captured query/batch.
 */
#ifndef JUNO_OBS_TRACE_H
#define JUNO_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace juno {

/** One Chrome trace event: a complete span or an instant marker. */
struct TraceEvent {
    const char *name = "";    ///< static string (stage/phase name)
    char phase = 'X';         ///< 'X' complete span, 'i' instant
    std::uint32_t tid = 0;    ///< small per-thread id (traceThreadId)
    std::int64_t ts_us = 0;   ///< start, microseconds since tracer epoch
    std::int64_t dur_us = 0;  ///< span duration (0 for instants)
    /** Up to two numeric args rendered into the event's "args" map. */
    const char *arg_name[2] = {nullptr, nullptr};
    double arg_value[2] = {0.0, 0.0};
};

/** Small dense id for the calling thread (stable for its lifetime). */
std::uint32_t traceThreadId();

/**
 * One captured query/batch: an id, a human label, and the events its
 * execution appended. Thread-safe: worker threads of one engine run
 * may append concurrently. The mutex only exists on traced requests,
 * so it costs nothing at sample rate 0.
 */
class Trace {
  public:
    using Clock = std::chrono::steady_clock;

    Trace(std::uint64_t id, Clock::time_point epoch)
        : id_(id), epoch_(epoch)
    {
    }

    std::uint64_t id() const { return id_; }
    Clock::time_point epoch() const { return epoch_; }

    /** Sets the label shown as the Perfetto process name. */
    void setLabel(std::string label) JUNO_EXCLUDES(mutex_);
    std::string label() const JUNO_EXCLUDES(mutex_);

    /** Appends a complete span [begin, end) on the calling thread. */
    void complete(const char *name, Clock::time_point begin,
                  Clock::time_point end) JUNO_EXCLUDES(mutex_)
    {
        completeArgs(name, begin, end, nullptr, 0.0, nullptr, 0.0);
    }

    /** complete() with one numeric arg attached. */
    void complete1(const char *name, Clock::time_point begin,
                   Clock::time_point end, const char *k1,
                   double v1) JUNO_EXCLUDES(mutex_)
    {
        completeArgs(name, begin, end, k1, v1, nullptr, 0.0);
    }

    /** complete() with two numeric args attached. */
    void complete2(const char *name, Clock::time_point begin,
                   Clock::time_point end, const char *k1, double v1,
                   const char *k2, double v2) JUNO_EXCLUDES(mutex_)
    {
        completeArgs(name, begin, end, k1, v1, k2, v2);
    }

    /** Appends an instant marker with up to two numeric args. */
    void instant(const char *name, const char *k1 = nullptr,
                 double v1 = 0.0, const char *k2 = nullptr,
                 double v2 = 0.0) JUNO_EXCLUDES(mutex_);

    /** Snapshot of the events appended so far. */
    std::vector<TraceEvent> events() const JUNO_EXCLUDES(mutex_);

  private:
    void completeArgs(const char *name, Clock::time_point begin,
                      Clock::time_point end, const char *k1, double v1,
                      const char *k2, double v2) JUNO_EXCLUDES(mutex_);

    std::int64_t toUs(Clock::time_point tp) const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   tp - epoch_)
            .count();
    }

    const std::uint64_t id_;
    const Clock::time_point epoch_;
    mutable Mutex mutex_;
    std::string label_ JUNO_GUARDED_BY(mutex_);
    std::vector<TraceEvent> events_ JUNO_GUARDED_BY(mutex_);
};

/**
 * RAII span: records a complete event on destruction when a trace is
 * attached; a single pointer test otherwise. Copy it nowhere.
 */
class TraceSpan {
  public:
    TraceSpan(Trace *trace, const char *name) : trace_(trace), name_(name)
    {
        if (trace_ != nullptr)
            begin_ = Trace::Clock::now();
    }

    /** Attaches a numeric arg emitted with the span (max two). */
    void arg(const char *key, double value)
    {
        if (trace_ != nullptr && nargs_ < 2) {
            arg_name_[nargs_] = key;
            arg_value_[nargs_] = value;
            ++nargs_;
        }
    }

    ~TraceSpan()
    {
        if (trace_ != nullptr) {
            trace_->complete2(name_, begin_, Trace::Clock::now(),
                              arg_name_[0], arg_value_[0], arg_name_[1],
                              arg_value_[1]);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Trace *trace_;
    const char *name_;
    Trace::Clock::time_point begin_{};
    const char *arg_name_[2] = {nullptr, nullptr};
    double arg_value_[2] = {0.0, 0.0};
    int nargs_ = 0;
};

/** Tracer retention/sampling policy. */
struct TracerConfig {
    /**
     * Fraction of requests sampled, [0, 1]. Internally 1-in-N with
     * N = round(1/rate); 0 disables sampling entirely (the hot-path
     * check is one constant read).
     */
    double sample_rate = 0.0;
    /** Capture any request whose total latency exceeds this (0 = off). */
    double slow_us = 0.0;
    /** Max retained sampled traces (further samples are dropped). */
    std::size_t max_sampled = 64;
    /** Slow-trace ring size (keeps the most recent). */
    std::size_t slow_ring = 16;
};

/**
 * Owns sampling decisions and captured traces for one service.
 * All methods are thread-safe.
 */
class Tracer {
  public:
    explicit Tracer(TracerConfig config = {});

    /** True when sampled tracing is on (sample_rate > 0). */
    bool samplingEnabled() const { return period_ > 0; }

    /** Slow-query capture threshold in microseconds (0 = off). */
    double slowThresholdUs() const { return config_.slow_us; }

    /**
     * The per-request sampling gate: one relaxed fetch_add when
     * sampling is on, a constant read + branch when off.
     */
    bool shouldSample()
    {
        if (period_ == 0)
            return false;
        return counter_.fetch_add(1, std::memory_order_relaxed) %
                   period_ ==
               0;
    }

    /** Creates a trace stamped with the tracer's shared epoch. */
    std::shared_ptr<Trace> makeTrace(std::string label = {});

    /** Retains a sampled trace (dropped when max_sampled reached). */
    void collect(std::shared_ptr<Trace> trace) JUNO_EXCLUDES(mutex_);

    /** Retains a slow-query trace (ring of the most recent). */
    void collectSlow(std::shared_ptr<Trace> trace) JUNO_EXCLUDES(mutex_);

    std::uint64_t sampledCount() const { return sampled_.load(); }
    std::uint64_t slowCount() const { return slow_.load(); }
    std::uint64_t droppedCount() const { return dropped_.load(); }

    /** Snapshot of retained sampled traces. */
    std::vector<std::shared_ptr<Trace>> sampledTraces() const
        JUNO_EXCLUDES(mutex_);
    /** Snapshot of the slow-trace ring (oldest first). */
    std::vector<std::shared_ptr<Trace>> slowTraces() const
        JUNO_EXCLUDES(mutex_);

    /**
     * Renders every retained trace as one Chrome trace-event JSON
     * document ({"traceEvents": [...]}); load it in Perfetto or
     * chrome://tracing. Each trace renders under its own pid with a
     * process_name metadata record carrying its label.
     */
    std::string renderJson() const JUNO_EXCLUDES(mutex_);

    Trace::Clock::time_point epoch() const { return epoch_; }

  private:
    const TracerConfig config_;
    const std::uint64_t period_; ///< 1-in-N sample period; 0 = off
    const Trace::Clock::time_point epoch_;
    std::atomic<std::uint64_t> counter_{0};
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> sampled_{0};
    std::atomic<std::uint64_t> slow_{0};
    std::atomic<std::uint64_t> dropped_{0};
    mutable Mutex mutex_;
    std::vector<std::shared_ptr<Trace>> sampled_traces_
        JUNO_GUARDED_BY(mutex_);
    std::deque<std::shared_ptr<Trace>> slow_traces_ JUNO_GUARDED_BY(mutex_);
};

} // namespace juno

#endif // JUNO_OBS_TRACE_H
