#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <thread>

#include "common/logging.h"

namespace juno {

namespace {

/** Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. */
bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (const char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

/** Escapes HELP text / label values per the text exposition format. */
std::string
promEscape(const std::string &s, bool label_value)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else if (label_value && c == '"')
            out += "\\\"";
        else
            out += c;
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

/** Prometheus sample value (NaN/Inf render in their text form). */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** JSON number (non-finite values are not valid JSON; emit 0). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
summaryJson(const HistogramSummary &s)
{
    std::string out = "{\"count\":" + std::to_string(s.count);
    out += ",\"mean\":" + jsonNumber(s.mean);
    out += ",\"p50\":" + jsonNumber(s.p50);
    out += ",\"p95\":" + jsonNumber(s.p95);
    out += ",\"p99\":" + jsonNumber(s.p99);
    out += ",\"max\":" + jsonNumber(s.max);
    out += "}";
    return out;
}

} // namespace

void
HistogramMetric::observe(double v)
{
    Shard &shard = localShard();
    MutexLock lock(shard.mutex);
    shard.sketch.add(v);
}

void
HistogramMetric::observe(const std::vector<double> &vs)
{
    if (vs.empty())
        return;
    Shard &shard = localShard();
    MutexLock lock(shard.mutex);
    shard.sketch.add(vs);
}

HistogramSummary
HistogramMetric::summary() const
{
    QuantileSketch merged;
    for (const Shard &shard : shards_) {
        MutexLock lock(shard.mutex);
        merged.merge(shard.sketch);
    }
    HistogramSummary out;
    out.count = merged.count();
    if (merged.empty())
        return out;
    out.mean = merged.mean();
    out.p50 = merged.quantile(0.5);
    out.p95 = merged.quantile(0.95);
    out.p99 = merged.quantile(0.99);
    out.max = merged.quantile(1.0);
    return out;
}

HistogramMetric::Shard &
HistogramMetric::localShard()
{
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
}

MetricsRegistry::Registration &
MetricsRegistry::Registration::operator=(Registration &&other) noexcept
{
    if (this != &other) {
        release();
        owner_ = other.owner_;
        name_ = std::move(other.name_);
        id_ = other.id_;
        other.owner_ = nullptr;
        other.id_ = 0;
    }
    return *this;
}

void
MetricsRegistry::Registration::release()
{
    if (owner_ != nullptr) {
        owner_->unregister(name_, id_);
        owner_ = nullptr;
        id_ = 0;
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked on purpose: callbacks unregister through RAII handles at
    // shutdown, and a destructed registry racing static teardown is a
    // worse failure mode than a leak the OS reclaims anyway.
    static MetricsRegistry *instance = new MetricsRegistry();
    return *instance;
}

std::shared_ptr<Counter>
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    JUNO_REQUIRE(validMetricName(name),
                 "invalid metric name '" << name << "'");
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        JUNO_REQUIRE(it->second.kind == Kind::kCounter,
                     "metric '" << name
                                << "' already registered with a "
                                   "different kind");
        return it->second.counter;
    }
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.help = help;
    entry.id = next_id_++;
    entry.counter = std::make_shared<Counter>();
    auto ptr = entry.counter;
    entries_.emplace(name, std::move(entry));
    return ptr;
}

std::shared_ptr<Gauge>
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    JUNO_REQUIRE(validMetricName(name),
                 "invalid metric name '" << name << "'");
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        JUNO_REQUIRE(it->second.kind == Kind::kGauge,
                     "metric '" << name
                                << "' already registered with a "
                                   "different kind");
        return it->second.gauge;
    }
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.help = help;
    entry.id = next_id_++;
    entry.gauge = std::make_shared<Gauge>();
    auto ptr = entry.gauge;
    entries_.emplace(name, std::move(entry));
    return ptr;
}

std::shared_ptr<HistogramMetric>
MetricsRegistry::histogram(const std::string &name, const std::string &help)
{
    JUNO_REQUIRE(validMetricName(name),
                 "invalid metric name '" << name << "'");
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        JUNO_REQUIRE(it->second.kind == Kind::kHistogram,
                     "metric '" << name
                                << "' already registered with a "
                                   "different kind");
        return it->second.histogram;
    }
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.help = help;
    entry.id = next_id_++;
    entry.histogram = std::make_shared<HistogramMetric>();
    auto ptr = entry.histogram;
    entries_.emplace(name, std::move(entry));
    return ptr;
}

MetricsRegistry::Registration
MetricsRegistry::registerCallback(const std::string &name, Entry entry)
{
    // Labeled entries are keyed by their full sample string
    // `base{k="v"}`; only the base must be a valid metric name.
    const auto brace = name.find('{');
    const std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    JUNO_REQUIRE(validMetricName(base),
                 "invalid metric name '" << name << "'");
    MutexLock lock(mutex_);
    entry.id = next_id_++;
    const std::uint64_t id = entry.id;
    entries_[name] = std::move(entry); // replace-on-collision
    return Registration(this, name, id);
}

MetricsRegistry::Registration
MetricsRegistry::counterCallback(const std::string &name,
                                 const std::string &help,
                                 std::function<std::uint64_t()> fn)
{
    Entry entry;
    entry.kind = Kind::kCounterFn;
    entry.help = help;
    entry.counter_fn = std::move(fn);
    return registerCallback(name, std::move(entry));
}

MetricsRegistry::Registration
MetricsRegistry::counterCallback(
    const std::string &name,
    std::vector<std::pair<std::string, std::string>> labels,
    const std::string &help, std::function<std::uint64_t()> fn)
{
    std::string key = name + "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            key += ",";
        first = false;
        key += k + "=\"" + promEscape(v, true) + "\"";
    }
    key += "}";
    Entry entry;
    entry.kind = Kind::kCounterFn;
    entry.help = help;
    entry.counter_fn = std::move(fn);
    entry.labels = std::move(labels);
    return registerCallback(key, std::move(entry));
}

MetricsRegistry::Registration
MetricsRegistry::gaugeCallback(const std::string &name,
                               const std::string &help,
                               std::function<double()> fn)
{
    Entry entry;
    entry.kind = Kind::kGaugeFn;
    entry.help = help;
    entry.gauge_fn = std::move(fn);
    return registerCallback(name, std::move(entry));
}

MetricsRegistry::Registration
MetricsRegistry::summaryCallback(const std::string &name,
                                 const std::string &help,
                                 std::function<HistogramSummary()> fn)
{
    Entry entry;
    entry.kind = Kind::kSummaryFn;
    entry.help = help;
    entry.summary_fn = std::move(fn);
    return registerCallback(name, std::move(entry));
}

MetricsRegistry::Registration
MetricsRegistry::info(const std::string &name, const std::string &help,
                      std::vector<std::pair<std::string, std::string>> labels)
{
    Entry entry;
    entry.kind = Kind::kInfo;
    entry.help = help;
    entry.labels = std::move(labels);
    return registerCallback(name, std::move(entry));
}

void
MetricsRegistry::unregister(const std::string &name, std::uint64_t id)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    // Only remove the entry this handle created: a replace-on-collision
    // bumps the id, so a stale handle's destruction must not tear down
    // its successor.
    if (it != entries_.end() && it->second.id == id)
        entries_.erase(it);
}

std::vector<std::pair<std::string, MetricsRegistry::Entry>>
MetricsRegistry::snapshotEntries() const
{
    MutexLock lock(mutex_);
    return {entries_.begin(), entries_.end()};
}

std::size_t
MetricsRegistry::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

void
MetricsRegistry::clear()
{
    MutexLock lock(mutex_);
    entries_.clear();
}

std::string
MetricsRegistry::renderPrometheus() const
{
    // Callbacks run on the copied entries, outside the registry lock.
    const auto entries = snapshotEntries();
    std::string out;
    // Labeled samples of one family (`base{...}` keys) sort adjacently
    // in the name-ordered snapshot ('{' follows every identifier
    // character), so one HELP/TYPE block per base suffices — emitting
    // it per sample would be an invalid exposition.
    std::string last_base;
    for (const auto &[name, entry] : entries) {
        const auto brace = name.find('{');
        const std::string base =
            brace == std::string::npos ? name : name.substr(0, brace);
        if (base != last_base) {
            last_base = base;
            if (!entry.help.empty())
                out += "# HELP " + base + " " +
                       promEscape(entry.help, false) + "\n";
            const char *type = "gauge";
            switch (entry.kind) {
            case Kind::kCounter:
            case Kind::kCounterFn:
                type = "counter";
                break;
            case Kind::kGauge:
            case Kind::kGaugeFn:
            case Kind::kInfo:
                type = "gauge";
                break;
            case Kind::kHistogram:
            case Kind::kSummaryFn:
                type = "summary";
                break;
            }
            out += "# TYPE " + base + " " + type + "\n";
        }
        switch (entry.kind) {
        case Kind::kCounter:
            out += name + " " + std::to_string(entry.counter->value()) +
                   "\n";
            break;
        case Kind::kCounterFn:
            out += name + " " + std::to_string(entry.counter_fn()) + "\n";
            break;
        case Kind::kGauge:
            out += name + " " + promNumber(entry.gauge->value()) + "\n";
            break;
        case Kind::kGaugeFn:
            out += name + " " + promNumber(entry.gauge_fn()) + "\n";
            break;
        case Kind::kHistogram:
        case Kind::kSummaryFn: {
            const HistogramSummary s = entry.kind == Kind::kHistogram
                                           ? entry.histogram->summary()
                                           : entry.summary_fn();
            out += name + "{quantile=\"0.5\"} " + promNumber(s.p50) + "\n";
            out += name + "{quantile=\"0.95\"} " + promNumber(s.p95) + "\n";
            out += name + "{quantile=\"0.99\"} " + promNumber(s.p99) + "\n";
            out += name + "_sum " +
                   promNumber(s.mean * static_cast<double>(s.count)) + "\n";
            out += name + "_count " + std::to_string(s.count) + "\n";
            break;
        }
        case Kind::kInfo: {
            out += name + "{";
            bool first = true;
            for (const auto &[k, v] : entry.labels) {
                if (!first)
                    out += ",";
                first = false;
                out += k + "=\"" + promEscape(v, true) + "\"";
            }
            out += "} 1\n";
            break;
        }
        }
    }
    return out;
}

std::string
MetricsRegistry::renderJson() const
{
    const auto entries = snapshotEntries();
    std::string out = "{";
    bool first = true;
    for (const auto &[name, entry] : entries) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":";
        switch (entry.kind) {
        case Kind::kCounter:
            out += std::to_string(entry.counter->value());
            break;
        case Kind::kCounterFn:
            out += std::to_string(entry.counter_fn());
            break;
        case Kind::kGauge:
            out += jsonNumber(entry.gauge->value());
            break;
        case Kind::kGaugeFn:
            out += jsonNumber(entry.gauge_fn());
            break;
        case Kind::kHistogram:
            out += summaryJson(entry.histogram->summary());
            break;
        case Kind::kSummaryFn:
            out += summaryJson(entry.summary_fn());
            break;
        case Kind::kInfo: {
            out += "{";
            bool first_label = true;
            for (const auto &[k, v] : entry.labels) {
                if (!first_label)
                    out += ",";
                first_label = false;
                out += "\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) +
                       "\"";
            }
            out += "}";
            break;
        }
        }
    }
    out += "}";
    return out;
}

} // namespace juno
