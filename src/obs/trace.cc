#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace juno {

std::uint32_t
traceThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

namespace {

/** Escapes a string for inclusion in a JSON string literal. */
void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** Formats a double as a JSON number (non-finite values become 0). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** 1-in-N period for a sampling fraction; 0 disables sampling. */
std::uint64_t
samplePeriod(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return 1;
    return static_cast<std::uint64_t>(std::llround(1.0 / rate));
}

} // namespace

void
Trace::setLabel(std::string label)
{
    MutexLock lock(mutex_);
    label_ = std::move(label);
}

std::string
Trace::label() const
{
    MutexLock lock(mutex_);
    return label_;
}

void
Trace::instant(const char *name, const char *k1, double v1, const char *k2,
               double v2)
{
    TraceEvent ev;
    ev.name = name;
    ev.phase = 'i';
    ev.tid = traceThreadId();
    ev.ts_us = toUs(Clock::now());
    ev.arg_name[0] = k1;
    ev.arg_value[0] = v1;
    ev.arg_name[1] = k2;
    ev.arg_value[1] = v2;
    MutexLock lock(mutex_);
    events_.push_back(ev);
}

std::vector<TraceEvent>
Trace::events() const
{
    MutexLock lock(mutex_);
    return events_;
}

void
Trace::completeArgs(const char *name, Clock::time_point begin,
                    Clock::time_point end, const char *k1, double v1,
                    const char *k2, double v2)
{
    TraceEvent ev;
    ev.name = name;
    ev.phase = 'X';
    ev.tid = traceThreadId();
    ev.ts_us = toUs(begin);
    ev.dur_us = std::max<std::int64_t>(0, toUs(end) - ev.ts_us);
    ev.arg_name[0] = k1;
    ev.arg_value[0] = v1;
    ev.arg_name[1] = k2;
    ev.arg_value[1] = v2;
    MutexLock lock(mutex_);
    events_.push_back(ev);
}

Tracer::Tracer(TracerConfig config)
    : config_(config), period_(samplePeriod(config.sample_rate)),
      epoch_(Trace::Clock::now())
{
}

std::shared_ptr<Trace>
Tracer::makeTrace(std::string label)
{
    auto trace = std::make_shared<Trace>(
        next_id_.fetch_add(1, std::memory_order_relaxed), epoch_);
    if (!label.empty())
        trace->setLabel(std::move(label));
    return trace;
}

void
Tracer::collect(std::shared_ptr<Trace> trace)
{
    if (trace == nullptr)
        return;
    MutexLock lock(mutex_);
    if (sampled_traces_.size() >= config_.max_sampled) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    sampled_traces_.push_back(std::move(trace));
    sampled_.fetch_add(1, std::memory_order_relaxed);
}

void
Tracer::collectSlow(std::shared_ptr<Trace> trace)
{
    if (trace == nullptr)
        return;
    MutexLock lock(mutex_);
    slow_traces_.push_back(std::move(trace));
    while (slow_traces_.size() > config_.slow_ring)
        slow_traces_.pop_front();
    slow_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<Trace>>
Tracer::sampledTraces() const
{
    MutexLock lock(mutex_);
    return sampled_traces_;
}

std::vector<std::shared_ptr<Trace>>
Tracer::slowTraces() const
{
    MutexLock lock(mutex_);
    return {slow_traces_.begin(), slow_traces_.end()};
}

namespace {

void
appendEventJson(std::string &out, const TraceEvent &ev, std::uint64_t pid,
                bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "  {\"name\":\"";
    appendJsonEscaped(out, ev.name);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":" + std::to_string(pid);
    out += ",\"tid\":" + std::to_string(ev.tid);
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    if (ev.phase == 'X')
        out += ",\"dur\":" + std::to_string(ev.dur_us);
    if (ev.phase == 'i')
        out += ",\"s\":\"t\""; // instant scope: thread
    if (ev.arg_name[0] != nullptr || ev.arg_name[1] != nullptr) {
        out += ",\"args\":{";
        bool first_arg = true;
        for (int a = 0; a < 2; ++a) {
            if (ev.arg_name[a] == nullptr)
                continue;
            if (!first_arg)
                out += ",";
            first_arg = false;
            out += "\"";
            appendJsonEscaped(out, ev.arg_name[a]);
            out += "\":" + jsonNumber(ev.arg_value[a]);
        }
        out += "}";
    }
    out += "}";
}

void
appendTraceJson(std::string &out, const Trace &trace, bool &first)
{
    const std::uint64_t pid = trace.id();
    // Process-name metadata record: Perfetto shows each captured
    // query/batch as its own named track group.
    std::string label = trace.label();
    if (label.empty())
        label = "trace " + std::to_string(pid);
    if (!first)
        out += ",\n";
    first = false;
    out += "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"args\":{\"name\":\"";
    appendJsonEscaped(out, label);
    out += "\"}}";
    for (const TraceEvent &ev : trace.events())
        appendEventJson(out, ev, pid, first);
}

} // namespace

std::string
Tracer::renderJson() const
{
    std::vector<std::shared_ptr<Trace>> sampled = sampledTraces();
    std::vector<std::shared_ptr<Trace>> slow = slowTraces();
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &trace : sampled)
        appendTraceJson(out, *trace, first);
    for (const auto &trace : slow)
        appendTraceJson(out, *trace, first);
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

} // namespace juno
