/**
 * @file
 * Lossless RT search (paper Sec. 6.5, "Accuracy Guarantee").
 *
 * The paper notes JUNO can deliver exact search by (i) probing every
 * IVF cluster, (ii) projecting the *original search points* — not the
 * PQ codebook entries — into the 2-D subspaces, and (iii) using ray
 * tracing to recover the exact per-subspace distances, whose sum is
 * the exact full-dimensional L2 distance.
 *
 * RtExactIndex implements exactly that: one sphere per (point,
 * subspace) at z = spacing*s + 1, a ray per subspace per query with
 * tmax = 1 (every point within the scene's normalised radius is hit),
 * and an accumulation of R^2 - (1 - thit)^2 over subspaces. Because
 * sum_s L2^2(q_s, p_s) == L2^2(q, p), the result matches brute force
 * up to floating-point rounding — the accuracy-guarantee configuration
 * rather than a throughput-oriented one.
 */
#ifndef JUNO_CORE_RT_EXACT_INDEX_H
#define JUNO_CORE_RT_EXACT_INDEX_H

#include <memory>
#include <vector>

#include "baseline/index.h"
#include "common/mmap_blob.h"
#include "common/thread_annotations.h"
#include "rtcore/device.h"

namespace juno {

class SnapshotReader;

/** Exact L2 search executed entirely on the RT substrate. */
class RtExactIndex : public AnnIndex {
  public:
    /**
     * Builds the per-point sphere scene. Only the L2 metric is
     * supported (the exactness argument relies on the L2 subspace
     * decomposition). Dimension must be even.
     */
    RtExactIndex(FloatMatrixView points);

    /**
     * Loader for openIndex(): the sphere scene and coordinate scales
     * re-derive deterministically from the persisted points (which
     * view the mapping in mmap mode).
     */
    static std::unique_ptr<RtExactIndex> open(SnapshotReader &reader);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return Metric::kL2; }
    idx_t size() const override { return num_points_; }
    idx_t dim() const override { return dim_; }

    const rt::TraversalStats &rtStats() const { return device_.totalStats(); }

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    /** For open(): members are filled by the loader. */
    RtExactIndex() = default;

    /** Per-worker scratch (accumulators sized to the point count). */
    struct Worker;

    /** Derives coord_scale_ and the sphere scene from points_. */
    void buildScene();

    static constexpr float kZSpacing = 4.0f;
    static constexpr float kRadius = 1.0f;

    idx_t num_points_ = 0;
    idx_t dim_ = 0;
    int subspaces_ = 0;
    /** Persisted copy of the indexed points (save/open). */
    PinnedMatrix points_;
    /** Per-subspace coordinate scale keeping all distances under R. */
    std::vector<float> coord_scale_;
    rt::Scene scene_;
    /** Canonical stats ledger; workers merge their launches into it. */
    rt::RtDevice device_;
    /** Guards device_ stat merges from parallel search workers
     * (device_ unannotated: the build path drives it single-threaded
     * before the object is shared). */
    Mutex stats_mutex_;
};

} // namespace juno

#endif // JUNO_CORE_RT_EXACT_INDEX_H
