/**
 * @file
 * Subspace-level inverted index from codebook entries to search points
 * (paper Alg. 1 lines 12-14): Map[c][s][e] lists every point that
 * belongs to coarse cluster c *and* whose subspace-s projection is
 * encoded with entry e. The distance-calculation stage iterates only
 * these lists for the entries the RT pass selected.
 *
 * Representation: per (cluster, subspace), a CSR layout — point
 * *ordinals* (positions within the cluster's IVF list) sorted by entry
 * id plus an offsets array of E+1 entries — giving O(1) lookups on the
 * scan stage's critical path.
 */
#ifndef JUNO_CORE_INTEREST_INDEX_H
#define JUNO_CORE_INTEREST_INDEX_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "ivf/ivf.h"
#include "quant/product_quantizer.h"

namespace juno {

/** entry -> points inverted index, per cluster and subspace. */
class InterestIndex {
  public:
    /** Contiguous run of point ordinals sharing one entry. */
    struct Range {
        const std::uint32_t *begin = nullptr;
        const std::uint32_t *end = nullptr;

        std::size_t size() const { return static_cast<std::size_t>(end - begin); }
        bool empty() const { return begin == end; }
    };

    /**
     * Builds from the IVF assignment and the PQ codes of all points.
     * @param entries codebook entry count E (codes must be < E).
     */
    void build(const InvertedFileIndex &ivf, const PQCodes &codes,
               int entries);

    bool built() const { return num_subspaces_ > 0; }
    int numSubspaces() const { return num_subspaces_; }
    /** Codebook entry count E the index was built with. */
    int entries() const { return entries_; }
    idx_t numClusters() const { return static_cast<idx_t>(buckets_.size()); }

    /** Size of the largest IVF cluster (scratch sizing for the scan). */
    idx_t maxClusterSize() const { return max_cluster_size_; }

    /**
     * Ordinals (positions within ivf.list(c)) of the points encoded by
     * @p e in subspace @p s of cluster @p c. O(1).
     */
    Range
    lookup(cluster_t c, int s, entry_t e) const
    {
        const Bucket &b = bucket(c, s);
        Range range;
        if (e >= entries_) {
            range.begin = range.end = b.ords.data();
            return range;
        }
        range.begin =
            b.ords.data() + b.offsets[static_cast<std::size_t>(e)];
        range.end =
            b.ords.data() + b.offsets[static_cast<std::size_t>(e) + 1];
        return range;
    }

  private:
    struct Bucket {
        /** offsets[e]..offsets[e+1] delimit entry e's ordinals. */
        std::vector<std::uint32_t> offsets;
        /** Point ordinals within the cluster's IVF list. */
        std::vector<std::uint32_t> ords;
    };

    const Bucket &
    bucket(cluster_t c, int s) const
    {
        JUNO_ASSERT(built(), "interest index not built");
        JUNO_ASSERT(c >= 0 && c < numClusters(), "cluster " << c);
        JUNO_ASSERT(s >= 0 && s < num_subspaces_, "subspace " << s);
        return buckets_[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(s)];
    }

    int num_subspaces_ = 0;
    int entries_ = 0;
    idx_t max_cluster_size_ = 0;
    /** buckets_[c][s]. */
    std::vector<std::vector<Bucket>> buckets_;
};

} // namespace juno

#endif // JUNO_CORE_INTEREST_INDEX_H
