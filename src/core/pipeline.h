/**
 * @file
 * Two-stage producer/consumer pipeline modelling the paper's RT-core /
 * Tensor-core co-run (Sec. 5.3, Fig. 11(a)).
 *
 * On the paper's GPU, the L2-LUT construction (RT cores) of batch i
 * overlaps the distance calculation (Tensor cores) of batch i-1 under
 * a 9:1 MPS partition. Here the two stages run on two threads with a
 * bounded hand-off queue. The harness reports measured wall time plus
 * per-stage busy time so the analytic bound max(stage1, stage2) vs.
 * stage1 + stage2 can be compared even on single-core hosts (see
 * DESIGN.md substitution table).
 */
#ifndef JUNO_CORE_PIPELINE_H
#define JUNO_CORE_PIPELINE_H

#include <functional>

#include "common/types.h"

namespace juno {

/** Timing outcome of a pipeline run. */
struct PipelineResult {
    double stage1_seconds = 0.0; ///< cumulative busy time of stage 1
    double stage2_seconds = 0.0; ///< cumulative busy time of stage 2
    double wall_seconds = 0.0;   ///< end-to-end wall time
    /** Analytic co-run lower bound: max of stage busy times. */
    double
    modelledPipelinedSeconds() const
    {
        return stage1_seconds > stage2_seconds ? stage1_seconds
                                               : stage2_seconds;
    }
    /** Analytic solo-run time: sum of stage busy times. */
    double
    modelledSequentialSeconds() const
    {
        return stage1_seconds + stage2_seconds;
    }
};

/**
 * Runs items [0, n) through stage1 then stage2.
 *
 * Pipelined mode executes stage1 on the caller thread and stage2 on a
 * worker, connected by a bounded queue (depth 2), so stage2(i) overlaps
 * stage1(i+1). Sequential mode interleaves them on one thread. Both
 * stages must be safe to run concurrently with each other (stage1(i)
 * never runs concurrently with stage1(j), likewise stage2).
 */
PipelineResult runTwoStagePipeline(idx_t n,
                                   const std::function<void(idx_t)> &stage1,
                                   const std::function<void(idx_t)> &stage2,
                                   bool pipelined);

} // namespace juno

#endif // JUNO_CORE_PIPELINE_H
