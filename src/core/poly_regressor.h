/**
 * @file
 * Polynomial regression of the per-subspace distance threshold against
 * local point density (paper Sec. 4.1, Fig. 7(a)).
 *
 * The paper observes a negative correlation between the radius needed
 * to contain the top-100 projections and the density of the region a
 * query falls into, and fits "a simple polynomial regression model".
 * We regress threshold on log1p(density) with a configurable degree
 * and solve the normal equations directly (the problem is tiny).
 */
#ifndef JUNO_CORE_POLY_REGRESSOR_H
#define JUNO_CORE_POLY_REGRESSOR_H

#include <vector>

#include "common/serialize.h"

namespace juno {

/** Least-squares polynomial y = sum_i coef[i] * x^i with x=log1p(d). */
class PolyRegressor {
  public:
    /**
     * Fits a degree-@p degree polynomial through (density, threshold)
     * samples. Requires at least degree+1 samples.
     */
    void fit(const std::vector<double> &densities,
             const std::vector<double> &thresholds, int degree = 3);

    bool fitted() const { return !coef_.empty(); }
    int degree() const { return static_cast<int>(coef_.size()) - 1; }
    const std::vector<double> &coefficients() const { return coef_; }

    /**
     * Predicted threshold for @p density, clamped to the [min, max]
     * threshold range seen during fitting (polynomials misbehave when
     * extrapolating).
     */
    double predict(double density) const;

    /** Mean squared error on a sample set (for tests/diagnostics). */
    double mse(const std::vector<double> &densities,
               const std::vector<double> &thresholds) const;

    /** Serializes a fitted regressor. */
    void save(Writer &writer) const;

    /** Restores a fitted regressor. */
    void load(Reader &reader);

  private:
    static double transform(double density);

    std::vector<double> coef_;
    double clamp_lo_ = 0.0;
    double clamp_hi_ = 0.0;
};

} // namespace juno

#endif // JUNO_CORE_POLY_REGRESSOR_H
