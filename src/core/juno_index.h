/**
 * @file
 * JUNO: the end-to-end ANN search engine (paper Sec. 5, Fig. 10).
 *
 * Offline (constructor):
 *  1. coarse k-means -> IVF (identical to the baseline);
 *  2. per-subspace codebooks on residuals (PQ with M = 2);
 *  3. subspace-level inverted index entry -> points;
 *  4. density map + per-subspace threshold regressors;
 *  5. traversable RT scene of entry spheres.
 *
 * Online (search):
 *  A. filtering identical to IVFPQ;
 *  B. threshold-based selective LUT construction on the RT device
 *     (rays with dynamic tmax; thit -> score recovery);
 *  C. distance calculation over interested points only, in one of the
 *     three quality presets (JUNO-H / -M / -L).
 *
 * The stage pair (B, C) optionally runs as a two-stage pipeline across
 * query batches, modelling the paper's RT/Tensor core co-run.
 */
#ifndef JUNO_CORE_JUNO_INDEX_H
#define JUNO_CORE_JUNO_INDEX_H

#include <memory>

#include "baseline/index.h"
#include "common/thread_annotations.h"
#include "core/density_map.h"
#include "core/distance_calc.h"
#include "core/interest_index.h"
#include "core/pipeline.h"
#include "core/scene_builder.h"
#include "core/selective_lut.h"
#include "core/threshold_policy.h"
#include "ivf/ivf.h"
#include "quant/product_quantizer.h"
#include "rtcore/device.h"

namespace juno {

class SnapshotReader;

/** Build- and search-time configuration of a JunoIndex. */
struct JunoParams {
    int clusters = 256;                    ///< C coarse clusters
    int pq_entries = 256;                  ///< E entries per subspace
    idx_t nprobs = 8;                      ///< probed clusters
    SearchMode mode = SearchMode::kExactDistance;
    double threshold_scale = 1.0;          ///< user knob (Fig. 7(b))
    ThresholdMode threshold_mode = ThresholdMode::kDynamic;
    double miss_penalty = 1.0;             ///< miss-score multiplier
    bool use_rt_core = true;               ///< false = linear fallback
    bool pipelined = false;                ///< overlap LUT and scan
    /**
     * Keep a list-resident interleaved copy of the codes so the
     * distance calculator can stream dense-regime clusters; costs one
     * extra codes-sized allocation. Off = always the sparse walk.
     */
    bool use_interleaved = true;
    int density_grid = 100;                ///< density map resolution
    ThresholdPolicy::Params policy;        ///< regressor training
    JunoScene::Params scene;               ///< sphere radius / BVH
    std::uint64_t seed = 31;
    idx_t max_training_points = 0;         ///< k-means subsampling
};

/** Convenience presets matching the paper's three configurations. */
JunoParams junoPresetH(JunoParams base = {});
JunoParams junoPresetM(JunoParams base = {});
JunoParams junoPresetL(JunoParams base = {});

/** The JUNO search engine. */
class JunoIndex : public AnnIndex {
  public:
    JunoIndex(Metric metric, FloatMatrixView points,
              const JunoParams &params);

    /**
     * Restores an index from @p path. Accepts both the unified
     * snapshot container (AnnIndex::save()/openIndex()) and, as a
     * deprecated migration shim, the legacy "JUNOIDX1" format earlier
     * releases wrote (loads with a one-time warning; re-save to
     * upgrade).
     */
    static std::unique_ptr<JunoIndex> load(const std::string &path);

    /**
     * Loader for openIndex(): restores IVF, codebooks, codes, density
     * maps, regressors, the interleaved plane and search parameters.
     * The RT scene and interest index rebuild deterministically.
     */
    static std::unique_ptr<JunoIndex> open(SnapshotReader &reader);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return num_points_; }
    idx_t dim() const override { return dim_; }

    /**
     * Single-query search (no pipelining). Uses the index-owned solo
     * scratch; call from one thread at a time.
     */
    std::vector<Neighbor> searchOne(const float *query, idx_t k);

    // ---- Search-time knobs (no rebuild required) ----
    void setNprobs(idx_t nprobs);
    void setSearchMode(SearchMode mode) { params_.mode = mode; }
    void setThresholdScale(double scale);
    void setThresholdMode(ThresholdMode mode);
    void setUseRtCore(bool use_rt);
    void setPipelined(bool pipelined) { params_.pipelined = pipelined; }
    void setMissPenalty(double penalty);

    const JunoParams &params() const { return params_; }

    // ---- Component access (benches, tests, diagnostics) ----
    const InvertedFileIndex &ivf() const { return ivf_; }
    const ProductQuantizer &pq() const { return pq_; }
    const PQCodes &codes() const { return codes_; }
    const DensityMap &densityMap() const { return density_; }
    const ThresholdPolicy &thresholdPolicy() const { return policy_; }
    const JunoScene &junoScene() const { return scene_; }
    const InterestIndex &interestIndex() const { return interest_; }
    rt::RtDevice &device() { return device_; }
    const rt::TraversalStats &rtStats() const { return device_.totalStats(); }

    /** Filtering stage (stage A) for one query. */
    std::vector<Neighbor> probe(const float *query) const;

    /** Same with an explicit probe budget (degraded serving scales
     * the configured nprobs down per batch). */
    std::vector<Neighbor> probe(const float *query, idx_t nprobs) const;

    /** RT pass (stage B) for one query against given probes. */
    SparseLut buildLut(const float *query,
                       const std::vector<Neighbor> &probes) const;

    /** Scoring stage (stage C); exposed for the analysis benches. */
    DistanceCalculator &calculator() { return *calc_; }

  protected:
    /**
     * Batched path: one Worker (RT device + LUT builder + calculator
     * + sparse-LUT buffers) lives in each SearchContext, so the RT
     * pass and scoring run concurrently across chunks; traversal
     * counters merge into the canonical device under a mutex.
     */
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    struct Worker;

    /** For load(): members are filled by the loader. */
    JunoIndex() : metric_(Metric::kL2) {}

    /** Legacy "JUNOIDX1" single-stream loader (migration shim). */
    static std::unique_ptr<JunoIndex> loadLegacy(const std::string &path);

    /** Rebuilds the derived structures (interest index, scene, ...). */
    void finishConstruction();

    SelectiveLutParams lutParams() const;

    /**
     * Issues WILLNEED madvise hints for the probed clusters'
     * interleaved extents when they view a memory-mapped snapshot, so
     * an out-of-core scan's page-ins overlap the RT-LUT stage that
     * runs between probe and scan. Pure IO hint: no-op on heap-built
     * planes, never affects results.
     */
    void prefetchProbedLists(const std::vector<Neighbor> &probes) const;

    Metric metric_;
    idx_t num_points_ = 0;
    idx_t dim_ = 0;
    JunoParams params_;

    InvertedFileIndex ivf_;
    ProductQuantizer pq_;
    PQCodes codes_;
    /**
     * List-resident interleaved copy of codes_; the distance
     * calculator streams it for clusters whose selected-entry
     * fraction makes the sparse interest-index walk slower than a
     * dense sequential scan.
     */
    InterleavedLists interleaved_;
    InterestIndex interest_;
    DensityMap density_;
    ThresholdPolicy policy_;
    JunoScene scene_;
    mutable rt::RtDevice device_;
    std::unique_ptr<SelectiveLutBuilder> lut_builder_;
    std::unique_ptr<DistanceCalculator> calc_;
    /** Reused per-query sparse LUT (hot-path allocation avoidance). */
    SparseLut lut_scratch_;
    /**
     * Guards device_ stat merges from parallel search workers.
     * device_ itself stays unannotated: the single-query legacy paths
     * (probe()/buildLut()) drive it lock-free by documented contract
     * (one caller), a conditional discipline the static analysis
     * cannot express without false positives.
     */
    Mutex stats_mutex_;
};

} // namespace juno

#endif // JUNO_CORE_JUNO_INDEX_H
