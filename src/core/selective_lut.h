/**
 * @file
 * Threshold-based selective L2-LUT construction on the RT substrate
 * (paper Sec. 4.2, Alg. 2).
 *
 * For each probed cluster and each 2-D subspace, a ray is cast from
 * the query's (residual) projection towards the entry spheres of that
 * subspace; tmax encodes the dynamic threshold, and the any-hit shader
 * converts thit to the exact entry/projection score without touching
 * the sphere coordinates. The result is a *sparse* LUT: only entries
 * inside the region of interest carry values.
 */
#ifndef JUNO_CORE_SELECTIVE_LUT_H
#define JUNO_CORE_SELECTIVE_LUT_H

#include <vector>

#include "common/topk.h"
#include "core/scene_builder.h"
#include "core/threshold_policy.h"
#include "ivf/ivf.h"
#include "rtcore/device.h"

namespace juno {

/** One selected entry with its recovered score and hit metadata. */
struct LutHit {
    entry_t entry = 0;
    /** L2^2 or IP score in original units, recovered from thit. */
    float value = 0.0f;
    /** Raw hit time (kept for analysis benches). */
    float thit = 0.0f;
    /** True when the hit also passes the inner (half) gate (JUNO-M). */
    bool inner = false;
};

/** Sparse per-query LUT produced by the RT pass. */
struct SparseLut {
    /**
     * hits[p][s]: selected entries of subspace s for probe ordinal p.
     * When shared_across_probes (inner-product mode: the LUT does not
     * depend on the probed cluster), only hits[0] is populated.
     */
    std::vector<std::vector<std::vector<LutHit>>> hits;
    /** miss_value[p][s]: score assigned to a subspace with no hit. */
    std::vector<std::vector<float>> miss_value;
    /** base[p]: cluster-level score offset (IP centroid term). */
    std::vector<float> base;
    bool shared_across_probes = false;

    const std::vector<std::vector<LutHit>> &
    forProbe(std::size_t p) const
    {
        return hits[shared_across_probes ? 0 : p];
    }

    float
    missFor(std::size_t p, int s) const
    {
        return miss_value[shared_across_probes ? 0 : p]
                         [static_cast<std::size_t>(s)];
    }
};

/** Tuning of the selective construction. */
struct SelectiveLutParams {
    /** User scaling factor in [0, 1] (paper Fig. 7(b) knob). */
    double threshold_scale = 1.0;
    /**
     * Multiplier on the miss score: L2 misses are charged
     * (threshold * penalty)^2, IP misses get the floor value.
     */
    double miss_penalty = 1.0;
    /** Record the inner half-gate flag (needed by JUNO-M). */
    bool inner_gate = true;
};

/** Builds sparse LUTs by launching rays on an RtDevice. */
class SelectiveLutBuilder {
  public:
    /** All referenced objects must outlive the builder. */
    SelectiveLutBuilder(const JunoScene &scene, const ThresholdPolicy &policy,
                        const InvertedFileIndex &ivf, rt::RtDevice &device);

    /**
     * Runs the RT pass for one query.
     * @param query the raw query vector (D floats);
     * @param probes filtering-stage output (best-first clusters);
     * @param params scale/penalty knobs.
     */
    SparseLut build(const float *query, const std::vector<Neighbor> &probes,
                    const SelectiveLutParams &params) const;

    /**
     * Allocation-free variant: fills @p out in place, reusing its
     * nested buffers (the search hot path calls this once per query).
     */
    void buildInto(const float *query, const std::vector<Neighbor> &probes,
                   const SelectiveLutParams &params, SparseLut &out) const;

  private:
    /** Per-ray context addressed by the ray payload. */
    struct RayCtx {
        std::uint32_t probe = 0;
        std::int32_t subspace = 0;
        /** ||scaled origin xy||^2; inverts thit into an IP. */
        float qnorm_scaled_sqr = 0.0f;
        /** Inner (half) gate in thit units (JUNO-M reward sphere). */
        float tmax_inner = 0.0f;
    };

    const JunoScene &scene_;
    const ThresholdPolicy &policy_;
    const InvertedFileIndex &ivf_;
    rt::RtDevice &device_;
    // Scratch reused across queries (single-threaded hot path).
    mutable std::vector<rt::Ray> rays_;
    mutable std::vector<RayCtx> ctxs_;
    mutable std::vector<float> residual_;
};

} // namespace juno

#endif // JUNO_CORE_SELECTIVE_LUT_H
