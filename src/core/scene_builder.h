/**
 * @file
 * Builds the traversable RT scene from the PQ codebooks and provides
 * the coordinate mapping between ANN quantities and ray-tracing
 * quantities (paper Sec. 4.2, Alg. 1 lines 10-11, Fig. 8/9).
 *
 * Layout:
 *  - every codebook entry of subspace s becomes a sphere at
 *    (kappa_s * x_e, kappa_s * y_e, Z_SPACING * s + 1);
 *  - L2 metric: all spheres share the constant radius R, and the
 *    dynamic threshold r maps to tmax = 1 - sqrt(R^2 - (kappa*r)^2);
 *  - inner product: radii are inflated offline to
 *    R'_e = sqrt(R^2 + ||e||^2 kappa^2) so IP(e, q) is recoverable
 *    from thit alone, and a similarity floor tau maps to
 *    tmax = 1 - sqrt(R^2 - ||q||^2 kappa^2 + 2 tau kappa^2).
 *
 * kappa_s is a per-subspace coordinate scale chosen so every useful
 * threshold fits under the constant radius R (L2), keeping runtime
 * scene edits unnecessary exactly as the paper requires.
 *
 * Note: the paper spaces subspace planes at z = 2s + 1 with R <= 1.
 * We use a spacing of 4 so that inner-product radius inflation
 * (R' up to sqrt(2)R) can never leak across neighbouring subspaces,
 * and additionally verify the subspace id in the hit shader.
 */
#ifndef JUNO_CORE_SCENE_BUILDER_H
#define JUNO_CORE_SCENE_BUILDER_H

#include <cstdint>
#include <vector>

#include "core/threshold_policy.h"
#include "quant/product_quantizer.h"
#include "rtcore/scene.h"

namespace juno {

/** Codebook-entry scene plus the ANN <-> RT coordinate mapping. */
class JunoScene {
  public:
    /** Distance between consecutive subspace planes along z. */
    static constexpr float kZSpacing = 4.0f;

    struct Params {
        /** Constant sphere radius R (L2 mode); must be <= 1. */
        float gate_radius = 1.0f;
        /** Thresholds are clamped to this fraction of R after scaling. */
        float max_gate_fraction = 0.95f;
        rt::BvhBuildParams bvh;
    };

    /**
     * Places one sphere per (subspace, entry) and builds the BVH.
     * @p policy supplies the per-subspace threshold ranges that
     * determine the coordinate scales kappa_s.
     */
    void build(Metric metric, const ProductQuantizer &pq,
               const ThresholdPolicy &policy, const Params &params);

    /** build() with default Params. */
    void
    build(Metric metric, const ProductQuantizer &pq,
          const ThresholdPolicy &policy)
    {
        build(metric, pq, policy, Params());
    }

    bool built() const { return scene_.built(); }
    Metric metric() const { return metric_; }
    int numSubspaces() const { return num_subspaces_; }
    float radius() const { return radius_; }
    const rt::Scene &scene() const { return scene_; }

    /** Coordinate scale kappa of subspace @p s. */
    float coordScale(int s) const;

    /** Ray tmin for subspace @p s (negative in IP mode). */
    float rayTmin(int s) const;

    /** Packs (subspace, entry) into a sphere user id. */
    static std::uint64_t
    packId(int s, entry_t e)
    {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s))
                << 32) |
               e;
    }

    static void
    unpackId(std::uint64_t id, int &s, entry_t &e)
    {
        s = static_cast<int>(id >> 32);
        e = static_cast<entry_t>(id & 0xFFFFu);
    }

    /**
     * Builds the ray for a query projection (x, y) in *original* units
     * in subspace @p s, gated by @p threshold (L2 radius or IP floor,
     * original units). Returns false when the gate admits no hits.
     */
    bool makeRay(int s, float x, float y, double threshold,
                 rt::Ray &out) const;

    /**
     * tmax value corresponding to @p threshold for a ray already made
     * by makeRay (used for the reward/penalty inner gate). Returns
     * -inf when the gate is empty.
     */
    float gateTmax(int s, float x, float y, double threshold) const;

    /** L2^2(entry, projection) in original units from a hit time. */
    float
    lutValueL2(int s, float thit) const
    {
        const float k = coordScale(s);
        const float one_minus = 1.0f - thit;
        const float d2_scaled = radius_ * radius_ - one_minus * one_minus;
        return d2_scaled / (k * k);
    }

    /**
     * IP(entry, projection) in original units from a hit time;
     * @p qnorm_scaled_sqr is ||(kx, ky)||^2 of the ray's origin.
     */
    float
    lutValueIp(int s, float qnorm_scaled_sqr, float thit) const
    {
        const float k = coordScale(s);
        const float one_minus = 1.0f - thit;
        const float ip_scaled = 0.5f * (qnorm_scaled_sqr -
                                        radius_ * radius_ +
                                        one_minus * one_minus);
        return ip_scaled / (k * k);
    }

  private:
    Metric metric_ = Metric::kL2;
    int num_subspaces_ = 0;
    float radius_ = 1.0f;
    float max_gate_fraction_ = 0.95f;
    std::vector<float> coord_scale_;
    std::vector<float> tmin_;
    rt::Scene scene_;
};

} // namespace juno

#endif // JUNO_CORE_SCENE_BUILDER_H
