#include "core/rt_exact_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace juno {

RtExactIndex::RtExactIndex(FloatMatrixView points)
    : num_points_(points.rows()), dim_(points.cols())
{
    JUNO_REQUIRE(num_points_ > 0, "empty point set");
    JUNO_REQUIRE(dim_ % 2 == 0,
                 "RT exact search requires an even dimension");
    subspaces_ = static_cast<int>(dim_ / 2);
    coord_scale_.resize(static_cast<std::size_t>(subspaces_));

    for (int s = 0; s < subspaces_; ++s) {
        // Coordinate scale: the subspace bounding-box diameter times a
        // generous margin must map under the sphere radius, so any
        // query within several data diameters still hits every point.
        float min_x = points.at(0, 2 * s), max_x = min_x;
        float min_y = points.at(0, 2 * s + 1), max_y = min_y;
        for (idx_t p = 1; p < num_points_; ++p) {
            min_x = std::min(min_x, points.at(p, 2 * s));
            max_x = std::max(max_x, points.at(p, 2 * s));
            min_y = std::min(min_y, points.at(p, 2 * s + 1));
            max_y = std::max(max_y, points.at(p, 2 * s + 1));
        }
        const float dx = max_x - min_x, dy = max_y - min_y;
        const float diameter =
            std::max(1e-6f, std::sqrt(dx * dx + dy * dy));
        const float margin = 8.0f;
        coord_scale_[static_cast<std::size_t>(s)] =
            kRadius * 0.98f / (diameter * margin);

        const float kappa = coord_scale_[static_cast<std::size_t>(s)];
        const float z = kZSpacing * static_cast<float>(s) + 1.0f;
        for (idx_t p = 0; p < num_points_; ++p) {
            rt::Sphere sphere;
            sphere.center = {points.at(p, 2 * s) * kappa,
                             points.at(p, 2 * s + 1) * kappa, z};
            sphere.radius = kRadius;
            sphere.user_id =
                (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s))
                 << 32) |
                static_cast<std::uint32_t>(p);
            scene_.addSphere(sphere);
        }
    }
    scene_.build();
    acc_.assign(static_cast<std::size_t>(num_points_), 0.0f);
    seen_.assign(static_cast<std::size_t>(num_points_), 0);
}

std::string
RtExactIndex::name() const
{
    return "RT-Exact(L2)";
}

SearchResults
RtExactIndex::search(FloatMatrixView queries, idx_t k)
{
    JUNO_REQUIRE(queries.cols() == dim_, "dimension mismatch");
    JUNO_REQUIRE(k > 0, "k must be positive");
    SearchResults results(static_cast<std::size_t>(queries.rows()));

    ScopedStageTimer timer(timers_, "rt_exact");
    std::vector<rt::Ray> rays(static_cast<std::size_t>(subspaces_));
    for (idx_t qi = 0; qi < queries.rows(); ++qi) {
        const float *q = queries.row(qi);
        for (int s = 0; s < subspaces_; ++s) {
            const float kappa = coord_scale_[static_cast<std::size_t>(s)];
            auto &ray = rays[static_cast<std::size_t>(s)];
            ray.origin = {q[2 * s] * kappa, q[2 * s + 1] * kappa,
                          kZSpacing * static_cast<float>(s)};
            ray.dir = {0, 0, 1};
            ray.tmin = 0.0f;
            ray.tmax = 1.0f; // hit everything in the subspace plane
            ray.payload = static_cast<std::uint64_t>(s);
        }

        std::fill(acc_.begin(), acc_.end(), 0.0f);
        std::fill(seen_.begin(), seen_.end(), 0);
        device_.launch(scene_, rays, [&](const rt::Ray &,
                                         const rt::Hit &hit) {
            const int s = static_cast<int>(hit.user_id >> 32);
            const auto p =
                static_cast<std::uint32_t>(hit.user_id & 0xFFFFFFFFu);
            const float kappa = coord_scale_[static_cast<std::size_t>(s)];
            const float one_minus = 1.0f - hit.thit;
            // Exact subspace distance from the hit time (Fig. 9 left).
            acc_[p] += (kRadius * kRadius - one_minus * one_minus) /
                       (kappa * kappa);
            ++seen_[p];
            return true;
        });

        TopK top(std::min(k, num_points_), Metric::kL2);
        for (idx_t p = 0; p < num_points_; ++p) {
            // A query too far outside the data's bounding region can
            // miss points entirely; those cannot be scored exactly and
            // are excluded (the accuracy guarantee covers in-domain
            // queries; see the header).
            if (seen_[static_cast<std::size_t>(p)] == subspaces_)
                top.push(p, acc_[static_cast<std::size_t>(p)]);
        }
        results[static_cast<std::size_t>(qi)] = top.take();
    }
    return results;
}

} // namespace juno
