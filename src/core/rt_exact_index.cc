#include "core/rt_exact_index.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

RtExactIndex::RtExactIndex(FloatMatrixView points)
    : num_points_(points.rows()), dim_(points.cols())
{
    JUNO_REQUIRE(num_points_ > 0, "empty point set");
    JUNO_REQUIRE(dim_ % 2 == 0,
                 "RT exact search requires an even dimension");
    FloatMatrix copy(points.rows(), points.cols());
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                copy.data());
    points_ = std::move(copy);
    buildScene();
}

void
RtExactIndex::buildScene()
{
    const FloatMatrixView points = points_.view();
    subspaces_ = static_cast<int>(dim_ / 2);
    coord_scale_.assign(static_cast<std::size_t>(subspaces_), 0.0f);
    scene_ = rt::Scene();

    for (int s = 0; s < subspaces_; ++s) {
        // Coordinate scale: the subspace bounding-box diameter times a
        // generous margin must map under the sphere radius, so any
        // query within several data diameters still hits every point.
        float min_x = points.at(0, 2 * s), max_x = min_x;
        float min_y = points.at(0, 2 * s + 1), max_y = min_y;
        for (idx_t p = 1; p < num_points_; ++p) {
            min_x = std::min(min_x, points.at(p, 2 * s));
            max_x = std::max(max_x, points.at(p, 2 * s));
            min_y = std::min(min_y, points.at(p, 2 * s + 1));
            max_y = std::max(max_y, points.at(p, 2 * s + 1));
        }
        const float dx = max_x - min_x, dy = max_y - min_y;
        const float diameter =
            std::max(1e-6f, std::sqrt(dx * dx + dy * dy));
        const float margin = 8.0f;
        coord_scale_[static_cast<std::size_t>(s)] =
            kRadius * 0.98f / (diameter * margin);

        const float kappa = coord_scale_[static_cast<std::size_t>(s)];
        const float z = kZSpacing * static_cast<float>(s) + 1.0f;
        for (idx_t p = 0; p < num_points_; ++p) {
            rt::Sphere sphere;
            sphere.center = {points.at(p, 2 * s) * kappa,
                             points.at(p, 2 * s + 1) * kappa, z};
            sphere.radius = kRadius;
            sphere.user_id =
                (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s))
                 << 32) |
                static_cast<std::uint32_t>(p);
            scene_.addSphere(sphere);
        }
    }
    scene_.build();
}

/** Per-worker accumulators; persist across chunks via the context. */
struct RtExactIndex::Worker {
    std::vector<rt::Ray> rays;
    std::vector<float> acc;
    std::vector<std::int32_t> seen;
    rt::RtDevice device;
};

std::string
RtExactIndex::name() const
{
    return "RT-Exact(L2)";
}

std::string
RtExactIndex::spec() const
{
    return "rtexact";
}

void
RtExactIndex::saveSections(SnapshotWriter &writer) const
{
    Writer &meta = writer.section("meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    meta.writePod<std::int64_t>(num_points_);
    meta.writePod<std::int64_t>(dim_);
    writer.addBlob("points", points_.data(),
                   static_cast<std::size_t>(num_points_) *
                       static_cast<std::size_t>(dim_) * sizeof(float));
}

std::unique_ptr<RtExactIndex>
RtExactIndex::open(SnapshotReader &reader)
{
    auto meta = reader.stream("meta");
    checkFormatVersion(meta, kFormatVersion,
                       reader.path() + " [rtexact]");
    std::unique_ptr<RtExactIndex> index(new RtExactIndex());
    index->num_points_ = meta.readPod<std::int64_t>();
    index->dim_ = meta.readPod<std::int64_t>();
    JUNO_REQUIRE(index->num_points_ > 0 && index->dim_ > 0 &&
                     index->dim_ % 2 == 0,
                 reader.path() << ": corrupt rtexact index header");
    index->points_ = reader.blob("points").matrix(
        index->num_points_, index->dim_, reader.path() + " [points]");
    index->buildScene();
    return index;
}

void
RtExactIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    auto &w = ctx.scratch<Worker>(
        [] { return std::make_unique<Worker>(); });
    w.rays.resize(static_cast<std::size_t>(subspaces_));
    w.acc.resize(static_cast<std::size_t>(num_points_));
    w.seen.resize(static_cast<std::size_t>(num_points_));
    w.device.setMode(device_.mode());

    StageScope timer(ctx, Stage::kRtExact);
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);
        for (int s = 0; s < subspaces_; ++s) {
            const float kappa = coord_scale_[static_cast<std::size_t>(s)];
            auto &ray = w.rays[static_cast<std::size_t>(s)];
            ray.origin = {q[2 * s] * kappa, q[2 * s + 1] * kappa,
                          kZSpacing * static_cast<float>(s)};
            ray.dir = {0, 0, 1};
            ray.tmin = 0.0f;
            ray.tmax = 1.0f; // hit everything in the subspace plane
            ray.payload = static_cast<std::uint64_t>(s);
        }

        std::fill(w.acc.begin(), w.acc.end(), 0.0f);
        std::fill(w.seen.begin(), w.seen.end(), 0);
        w.device.launch(scene_, w.rays, [&](const rt::Ray &,
                                            const rt::Hit &hit) {
            const int s = static_cast<int>(hit.user_id >> 32);
            const auto p =
                static_cast<std::uint32_t>(hit.user_id & 0xFFFFFFFFu);
            const float kappa = coord_scale_[static_cast<std::size_t>(s)];
            const float one_minus = 1.0f - hit.thit;
            // Exact subspace distance from the hit time (Fig. 9 left).
            w.acc[p] += (kRadius * kRadius - one_minus * one_minus) /
                        (kappa * kappa);
            ++w.seen[p];
            return true;
        });

        TopK top(std::min(chunk.k, num_points_), Metric::kL2);
        for (idx_t p = 0; p < num_points_; ++p) {
            // A query too far outside the data's bounding region can
            // miss points entirely; those cannot be scored exactly and
            // are excluded (the accuracy guarantee covers in-domain
            // queries; see the header).
            if (w.seen[static_cast<std::size_t>(p)] == subspaces_)
                top.push(p, w.acc[static_cast<std::size_t>(p)]);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }

    MutexLock lock(stats_mutex_);
    device_.mergeStats(w.device.totalStats());
    w.device.resetStats();
}

} // namespace juno
