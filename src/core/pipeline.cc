#include "core/pipeline.h"

#include <condition_variable>
#include <deque>
#include <thread>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace juno {

PipelineResult
runTwoStagePipeline(idx_t n, const std::function<void(idx_t)> &stage1,
                    const std::function<void(idx_t)> &stage2, bool pipelined)
{
    PipelineResult result;
    Timer wall;

    if (!pipelined || n <= 1) {
        for (idx_t i = 0; i < n; ++i) {
            Timer t1;
            stage1(i);
            result.stage1_seconds += t1.seconds();
            Timer t2;
            stage2(i);
            result.stage2_seconds += t2.seconds();
        }
        result.wall_seconds = wall.seconds();
        return result;
    }

    // Bounded hand-off queue of ready items (depth 2 keeps at most one
    // batch in flight per stage, like the MPS co-run). Local state, so
    // the capability analysis cannot attach guarded_by annotations;
    // the explicit wait loops still keep every access inside a lock
    // scope TSan can vouch for.
    Mutex mutex;
    std::condition_variable cv;
    std::deque<idx_t> ready;
    bool done = false;
    constexpr std::size_t kDepth = 2;

    double stage2_busy = 0.0;
    std::thread consumer([&] {
        while (true) {
            idx_t item;
            {
                CvLock lock(mutex);
                while (ready.empty() && !done)
                    cv.wait(lock.native());
                if (ready.empty())
                    return;
                item = ready.front();
                ready.pop_front();
            }
            cv.notify_all();
            Timer t2;
            stage2(item);
            stage2_busy += t2.seconds();
        }
    });

    for (idx_t i = 0; i < n; ++i) {
        Timer t1;
        stage1(i);
        result.stage1_seconds += t1.seconds();
        {
            CvLock lock(mutex);
            while (ready.size() >= kDepth)
                cv.wait(lock.native());
            ready.push_back(i);
        }
        cv.notify_all();
    }
    {
        MutexLock lock(mutex);
        done = true;
    }
    cv.notify_all();
    consumer.join();
    result.stage2_seconds = stage2_busy;
    result.wall_seconds = wall.seconds();
    return result;
}

} // namespace juno
