#include "core/density_map.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace juno {

void
SubspaceDensity::build(FloatMatrixView points_xy, int grid)
{
    JUNO_REQUIRE(grid > 0, "grid must be positive");
    JUNO_REQUIRE(points_xy.cols() == 2, "subspace projections must be 2-D");
    JUNO_REQUIRE(points_xy.rows() > 0, "empty projection set");

    grid_ = grid;
    min_x_ = max_x_ = points_xy.at(0, 0);
    min_y_ = max_y_ = points_xy.at(0, 1);
    for (idx_t i = 1; i < points_xy.rows(); ++i) {
        min_x_ = std::min(min_x_, points_xy.at(i, 0));
        max_x_ = std::max(max_x_, points_xy.at(i, 0));
        min_y_ = std::min(min_y_, points_xy.at(i, 1));
        max_y_ = std::max(max_y_, points_xy.at(i, 1));
    }
    // Pad 1% so boundary points fall strictly inside the last cell.
    const float pad_x = std::max(1e-6f, (max_x_ - min_x_) * 0.01f);
    const float pad_y = std::max(1e-6f, (max_y_ - min_y_) * 0.01f);
    min_x_ -= pad_x;
    max_x_ += pad_x;
    min_y_ -= pad_y;
    max_y_ += pad_y;

    const double width = static_cast<double>(max_x_) - min_x_;
    const double height = static_cast<double>(max_y_) - min_y_;
    cell_area_ = (width / grid_) * (height / grid_);

    counts_.assign(static_cast<std::size_t>(grid_) * grid_, 0);
    for (idx_t i = 0; i < points_xy.rows(); ++i) {
        const int cx = cellIndex(points_xy.at(i, 0), min_x_, max_x_);
        const int cy = cellIndex(points_xy.at(i, 1), min_y_, max_y_);
        ++counts_[static_cast<std::size_t>(cy) * grid_ + cx];
    }
}

int
SubspaceDensity::cellIndex(float v, float lo, float hi) const
{
    const double t = (static_cast<double>(v) - lo) / (hi - lo);
    int c = static_cast<int>(t * grid_);
    return std::clamp(c, 0, grid_ - 1);
}

idx_t
SubspaceDensity::countAt(float x, float y) const
{
    JUNO_ASSERT(built(), "density map not built");
    const int cx = cellIndex(x, min_x_, max_x_);
    const int cy = cellIndex(y, min_y_, max_y_);
    return counts_[static_cast<std::size_t>(cy) * grid_ + cx];
}

double
SubspaceDensity::densityAt(float x, float y) const
{
    return static_cast<double>(countAt(x, y)) / cell_area_;
}

void
DensityMap::build(FloatMatrixView residuals, int num_subspaces, int grid)
{
    JUNO_REQUIRE(num_subspaces > 0, "num_subspaces must be positive");
    JUNO_REQUIRE(residuals.cols() == 2 * num_subspaces,
                 "residual dim " << residuals.cols()
                 << " != 2 * " << num_subspaces);
    maps_.assign(static_cast<std::size_t>(num_subspaces), {});

    FloatMatrix proj(residuals.rows(), 2);
    for (int s = 0; s < num_subspaces; ++s) {
        for (idx_t i = 0; i < residuals.rows(); ++i) {
            proj.at(i, 0) = residuals.at(i, 2 * s);
            proj.at(i, 1) = residuals.at(i, 2 * s + 1);
        }
        maps_[static_cast<std::size_t>(s)].build(proj.view(), grid);
    }
}

void
SubspaceDensity::save(Writer &writer) const
{
    JUNO_REQUIRE(built(), "save before build");
    writer.writePod<std::int32_t>(grid_);
    writer.writePod(min_x_);
    writer.writePod(max_x_);
    writer.writePod(min_y_);
    writer.writePod(max_y_);
    writer.writePod(cell_area_);
    writer.writeVector(counts_);
}

void
SubspaceDensity::load(Reader &reader)
{
    grid_ = reader.readPod<std::int32_t>();
    min_x_ = reader.readPod<float>();
    max_x_ = reader.readPod<float>();
    min_y_ = reader.readPod<float>();
    max_y_ = reader.readPod<float>();
    cell_area_ = reader.readPod<double>();
    counts_ = reader.readVector<idx_t>();
    JUNO_REQUIRE(grid_ > 0 &&
                     counts_.size() ==
                         static_cast<std::size_t>(grid_) * grid_,
                 "corrupt density map");
}

void
DensityMap::save(Writer &writer) const
{
    writer.writePod<std::int32_t>(numSubspaces());
    for (const auto &map : maps_)
        map.save(writer);
}

void
DensityMap::load(Reader &reader)
{
    const auto count = reader.readPod<std::int32_t>();
    JUNO_REQUIRE(count > 0, "corrupt density map header");
    maps_.assign(static_cast<std::size_t>(count), {});
    for (auto &map : maps_)
        map.load(reader);
}

const SubspaceDensity &
DensityMap::subspace(int s) const
{
    JUNO_REQUIRE(s >= 0 && s < numSubspaces(), "subspace " << s);
    return maps_[static_cast<std::size_t>(s)];
}

} // namespace juno
