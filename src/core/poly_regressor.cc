#include "core/poly_regressor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace juno {
namespace {

/**
 * Solves the symmetric positive-definite system a*x = b in place via
 * Gaussian elimination with partial pivoting. a is (n x n) row-major.
 */
std::vector<double>
solveLinear(std::vector<double> a, std::vector<double> b, int n)
{
    for (int col = 0; col < n; ++col) {
        // Partial pivot.
        int pivot = col;
        for (int r = col + 1; r < n; ++r)
            if (std::abs(a[static_cast<std::size_t>(r) * n + col]) >
                std::abs(a[static_cast<std::size_t>(pivot) * n + col]))
                pivot = r;
        if (pivot != col) {
            for (int c = 0; c < n; ++c)
                std::swap(a[static_cast<std::size_t>(col) * n + c],
                          a[static_cast<std::size_t>(pivot) * n + c]);
            std::swap(b[static_cast<std::size_t>(col)],
                      b[static_cast<std::size_t>(pivot)]);
        }
        const double diag = a[static_cast<std::size_t>(col) * n + col];
        JUNO_REQUIRE(std::abs(diag) > 1e-12,
                     "singular normal equations; add more samples or "
                     "lower the polynomial degree");
        for (int r = col + 1; r < n; ++r) {
            const double f =
                a[static_cast<std::size_t>(r) * n + col] / diag;
            if (f == 0.0)
                continue;
            for (int c = col; c < n; ++c)
                a[static_cast<std::size_t>(r) * n + c] -=
                    f * a[static_cast<std::size_t>(col) * n + c];
            b[static_cast<std::size_t>(r)] -=
                f * b[static_cast<std::size_t>(col)];
        }
    }
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    for (int r = n - 1; r >= 0; --r) {
        double acc = b[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < n; ++c)
            acc -= a[static_cast<std::size_t>(r) * n + c] *
                   x[static_cast<std::size_t>(c)];
        x[static_cast<std::size_t>(r)] =
            acc / a[static_cast<std::size_t>(r) * n + r];
    }
    return x;
}

} // namespace

double
PolyRegressor::transform(double density)
{
    // Densities span orders of magnitude (paper Fig. 7(a) is log-x);
    // log1p keeps zero-density cells finite.
    return std::log1p(std::max(0.0, density));
}

void
PolyRegressor::fit(const std::vector<double> &densities,
                   const std::vector<double> &thresholds, int degree)
{
    JUNO_REQUIRE(degree >= 0, "degree must be non-negative");
    JUNO_REQUIRE(densities.size() == thresholds.size(),
                 "sample size mismatch");
    const int n = degree + 1;
    JUNO_REQUIRE(static_cast<int>(densities.size()) >= n,
                 "need at least " << n << " samples, got "
                                  << densities.size());

    // Normal equations: (X^T X) c = X^T y with X the Vandermonde matrix.
    std::vector<double> xtx(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> xty(static_cast<std::size_t>(n), 0.0);
    for (std::size_t i = 0; i < densities.size(); ++i) {
        const double x = transform(densities[i]);
        std::vector<double> powers(static_cast<std::size_t>(n), 1.0);
        for (int p = 1; p < n; ++p)
            powers[static_cast<std::size_t>(p)] =
                powers[static_cast<std::size_t>(p - 1)] * x;
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c)
                xtx[static_cast<std::size_t>(r) * n + c] +=
                    powers[static_cast<std::size_t>(r)] *
                    powers[static_cast<std::size_t>(c)];
            xty[static_cast<std::size_t>(r)] +=
                powers[static_cast<std::size_t>(r)] * thresholds[i];
        }
    }
    coef_ = solveLinear(std::move(xtx), std::move(xty), n);

    clamp_lo_ = *std::min_element(thresholds.begin(), thresholds.end());
    clamp_hi_ = *std::max_element(thresholds.begin(), thresholds.end());
}

double
PolyRegressor::predict(double density) const
{
    JUNO_REQUIRE(fitted(), "predict before fit");
    const double x = transform(density);
    double acc = 0.0;
    // Horner evaluation.
    for (int p = degree(); p >= 0; --p)
        acc = acc * x + coef_[static_cast<std::size_t>(p)];
    return std::clamp(acc, clamp_lo_, clamp_hi_);
}

void
PolyRegressor::save(Writer &writer) const
{
    JUNO_REQUIRE(fitted(), "save before fit");
    writer.writeVector(coef_);
    writer.writePod(clamp_lo_);
    writer.writePod(clamp_hi_);
}

void
PolyRegressor::load(Reader &reader)
{
    coef_ = reader.readVector<double>();
    clamp_lo_ = reader.readPod<double>();
    clamp_hi_ = reader.readPod<double>();
    JUNO_REQUIRE(!coef_.empty(), "corrupt regressor (no coefficients)");
}

double
PolyRegressor::mse(const std::vector<double> &densities,
                   const std::vector<double> &thresholds) const
{
    JUNO_REQUIRE(densities.size() == thresholds.size() && !densities.empty(),
                 "bad sample set");
    double acc = 0.0;
    for (std::size_t i = 0; i < densities.size(); ++i) {
        const double err = predict(densities[i]) - thresholds[i];
        acc += err * err;
    }
    return acc / static_cast<double>(densities.size());
}

} // namespace juno
