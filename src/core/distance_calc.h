/**
 * @file
 * Distance-calculation stage over the sparse LUT (paper Sec. 5.3-5.4).
 *
 * Given the entries the RT pass selected, the calculator walks the
 * subspace-level inverted index and accumulates scores only for the
 * *interested* points. Three scoring modes implement the paper's
 * quality presets:
 *
 *  - kExactDistance (JUNO-H): accumulate the recovered per-subspace
 *    scores; subspaces where a point's entry was not selected are
 *    charged the gate-boundary miss score.
 *  - kHitCount (JUNO-L): score = number of subspaces whose entry
 *    sphere was hit; no floating-point distance at all.
 *  - kRewardPenalty (JUNO-M): +1 if the inner (half) sphere was hit,
 *    0 if only the outer, -1 if neither (Fig. 11(b) blue triangles).
 */
#ifndef JUNO_CORE_DISTANCE_CALC_H
#define JUNO_CORE_DISTANCE_CALC_H

#include <vector>

#include "common/topk.h"
#include "core/interest_index.h"
#include "core/selective_lut.h"
#include "quant/interleaved_codes.h"

namespace juno {

/** Scoring mode; selects the JUNO-H/M/L behaviour. */
enum class SearchMode {
    kExactDistance,
    kHitCount,
    kRewardPenalty,
};

/** Short preset name ("JUNO-H" etc.) for reports. */
const char *searchModeName(SearchMode mode);

/** Accumulates sparse-LUT scores into a top-k per query. */
class DistanceCalculator {
  public:
    /**
     * @p ivf and @p interest must outlive the calculator. When an
     * @p interleaved layout is supplied (and built), clusters whose
     * selected-entry fraction exceeds the dense threshold are scored
     * by streaming the list-resident interleaved codes against a
     * dense delta LUT expanded from the sparse hits, instead of
     * walking the interest-index ranges point by scattered point.
     * Both paths produce bitwise-identical accumulators (one add per
     * selected subspace, in subspace order; untouched subspaces add
     * an exact 0.0f in the dense path).
     */
    DistanceCalculator(const InvertedFileIndex &ivf,
                       const InterestIndex &interest,
                       const InterleavedLists *interleaved = nullptr);

    /**
     * Selected-entry fraction above which a cluster switches to the
     * dense interleaved scan: the sparse walk touches ~fraction * S
     * scattered ordinals per point, the dense scan S sequential
     * lookups. 0 forces dense (tests), > 1 disables it.
     */
    void setDenseThreshold(double fraction)
    {
        dense_threshold_ = fraction;
    }
    double denseThreshold() const { return dense_threshold_; }

    /**
     * Scores the points of the probed clusters and returns the best-k.
     *
     * In kExactDistance mode results carry approximate distances under
     * @p metric; in the hit-count modes results carry counts (higher
     * is better regardless of metric).
     */
    std::vector<Neighbor> run(Metric metric, SearchMode mode,
                              const std::vector<Neighbor> &probes,
                              const SparseLut &lut, idx_t k);

    /**
     * Per-point scores of one cluster (for the Fig. 11(b) correlation
     * bench): returns pairs of (point id, score) for every point of
     * @p probe_ordinal's cluster that was touched at least once.
     */
    std::vector<Neighbor> scoreCluster(Metric metric, SearchMode mode,
                                       const std::vector<Neighbor> &probes,
                                       std::size_t probe_ordinal,
                                       const SparseLut &lut);

  private:
    /** Accumulates one cluster into scratch; appends to @p out. */
    void accumulateCluster(Metric metric, SearchMode mode,
                           const std::vector<Neighbor> &probes,
                           std::size_t probe_ordinal, const SparseLut &lut,
                           std::vector<Neighbor> &out);

    const InvertedFileIndex &ivf_;
    const InterestIndex &interest_;
    const InterleavedLists *interleaved_ = nullptr;
    double dense_threshold_ = 0.5;

    // Scratch sized to the largest cluster; densely reset per cluster.
    std::vector<float> acc_;
    std::vector<std::int32_t> hit_count_;
    // Dense-path scratch: delta/flag LUTs (subspaces x entries) and a
    // float hit-count buffer (the interleaved kernel accumulates
    // floats; counts of 0/1 flags are exact).
    std::vector<float> delta_lut_;
    std::vector<float> flag_lut_;
    std::vector<float> flag_acc_;
};

} // namespace juno

#endif // JUNO_CORE_DISTANCE_CALC_H
