/**
 * @file
 * Dynamic per-query distance threshold (paper Sec. 4.1).
 *
 * Offline: sample projections, measure the radius that contains the
 * top-k projections around each sample, and fit a per-subspace
 * polynomial regression of that radius on local density. Online:
 * density lookup + regression + user scaling factor gives the
 * query-specific threshold in O(1).
 *
 * Metric semantics:
 *  - L2: threshold(s, x, y) is a *radius*; smaller = tighter.
 *  - Inner product: threshold is a *similarity floor* tau; entries with
 *    IP below tau are pruned (higher = tighter). The user scaling
 *    factor in [0,1] loosens/tightens consistently in both cases:
 *    1.0 targets "contains the top-k", smaller values trade recall for
 *    throughput (paper Fig. 7(b)).
 */
#ifndef JUNO_CORE_THRESHOLD_POLICY_H
#define JUNO_CORE_THRESHOLD_POLICY_H

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/density_map.h"
#include "core/poly_regressor.h"

namespace juno {

/** How the threshold is chosen at query time (Fig. 13(b) ablation). */
enum class ThresholdMode {
    /** Density-regressed per-query threshold (the paper's design). */
    kDynamic,
    /** Constant: the smallest threshold seen during training. */
    kStaticSmall,
    /** Constant: the largest threshold seen during training. */
    kStaticLarge,
};

/** Trains and serves per-subspace thresholds. */
class ThresholdPolicy {
  public:
    struct Params {
        /** Sampled training projections per subspace. */
        idx_t train_samples = 200;
        /** Reference projections the radius is measured against. */
        idx_t ref_samples = 4000;
        /** The k of "radius containing the top-k" (paper uses 100). */
        idx_t contain_topk = 100;
        int poly_degree = 3;
        std::uint64_t seed = 1234;
    };

    /**
     * Trains one regressor per subspace.
     * @param metric L2 trains radii, IP trains similarity floors;
     * @param vectors N x D matrix whose 2-D projections define each
     *        subspace (residuals for L2, raw points for IP);
     * @param density map built over the same matrix.
     */
    void train(Metric metric, FloatMatrixView vectors, int num_subspaces,
               const DensityMap &density, const Params &params);

    bool trained() const { return !regressors_.empty(); }
    int numSubspaces() const { return static_cast<int>(regressors_.size()); }
    Metric metric() const { return metric_; }

    ThresholdMode mode() const { return mode_; }
    void setMode(ThresholdMode mode) { mode_ = mode; }

    /**
     * Threshold for a projection at (x, y) in subspace @p s under the
     * current mode, before user scaling.
     */
    double threshold(int s, float x, float y) const;

    /**
     * Applies the user scaling factor in [0, 1]: for L2, radius*scale;
     * for IP, interpolates the floor towards the training maximum so
     * smaller scale always prunes more.
     */
    double scaled(int s, double threshold, double scale) const;

    /** Smallest / largest threshold observed at training (per subspace). */
    double minThreshold(int s) const;
    double maxThreshold(int s) const;

    const PolyRegressor &regressor(int s) const;

    /** Serializes a trained policy (not including the density map). */
    void save(Writer &writer) const;

    /**
     * Restores a trained policy bound to @p density, which must match
     * the map the policy was trained with and outlive the policy.
     */
    void load(Reader &reader, const DensityMap &density);

  private:
    void checkSubspace(int s) const;

    Metric metric_ = Metric::kL2;
    ThresholdMode mode_ = ThresholdMode::kDynamic;
    const DensityMap *density_ = nullptr;
    std::vector<PolyRegressor> regressors_;
    std::vector<double> min_thr_;
    std::vector<double> max_thr_;
};

} // namespace juno

#endif // JUNO_CORE_THRESHOLD_POLICY_H
