#include "core/interest_index.h"

#include <algorithm>

#include "common/logging.h"

namespace juno {

void
InterestIndex::build(const InvertedFileIndex &ivf, const PQCodes &codes,
                     int entries)
{
    JUNO_REQUIRE(ivf.built(), "IVF not built");
    JUNO_REQUIRE(codes.num_points > 0, "no PQ codes");
    JUNO_REQUIRE(entries > 0, "entries must be positive");

    num_subspaces_ = codes.num_subspaces;
    entries_ = entries;
    max_cluster_size_ = 0;
    buckets_.assign(static_cast<std::size_t>(ivf.numClusters()), {});

    for (cluster_t c = 0; c < ivf.numClusters(); ++c) {
        const auto &list = ivf.list(c);
        max_cluster_size_ = std::max(max_cluster_size_,
                                     static_cast<idx_t>(list.size()));
        auto &per_subspace = buckets_[static_cast<std::size_t>(c)];
        per_subspace.assign(static_cast<std::size_t>(num_subspaces_), {});

        const std::uint32_t n = static_cast<std::uint32_t>(list.size());
        for (int s = 0; s < num_subspaces_; ++s) {
            auto &bucket = per_subspace[static_cast<std::size_t>(s)];
            // Counting sort of ordinals by entry id: one pass to count,
            // prefix-sum to offsets, one pass to scatter.
            bucket.offsets.assign(static_cast<std::size_t>(entries_) + 1,
                                  0);
            for (std::uint32_t ord = 0; ord < n; ++ord) {
                const entry_t e = codes.at(list[ord], s);
                JUNO_REQUIRE(e < entries_,
                             "code " << e << " out of range E=" << entries_);
                ++bucket.offsets[static_cast<std::size_t>(e) + 1];
            }
            for (int e = 0; e < entries_; ++e)
                bucket.offsets[static_cast<std::size_t>(e) + 1] +=
                    bucket.offsets[static_cast<std::size_t>(e)];
            bucket.ords.resize(n);
            std::vector<std::uint32_t> cursor(bucket.offsets.begin(),
                                              bucket.offsets.end() - 1);
            for (std::uint32_t ord = 0; ord < n; ++ord) {
                const entry_t e = codes.at(list[ord], s);
                bucket.ords[cursor[static_cast<std::size_t>(e)]++] = ord;
            }
        }
    }
}

} // namespace juno
