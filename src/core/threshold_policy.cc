#include "core/threshold_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"
#include "common/topk.h"

namespace juno {

void
ThresholdPolicy::train(Metric metric, FloatMatrixView vectors,
                       int num_subspaces, const DensityMap &density,
                       const Params &params)
{
    JUNO_REQUIRE(num_subspaces > 0, "num_subspaces must be positive");
    JUNO_REQUIRE(vectors.cols() == 2 * num_subspaces,
                 "vector dim " << vectors.cols() << " != 2 * "
                               << num_subspaces);
    JUNO_REQUIRE(density.numSubspaces() == num_subspaces,
                 "density map subspace count mismatch");
    JUNO_REQUIRE(params.contain_topk > 0, "contain_topk must be positive");

    metric_ = metric;
    density_ = &density;
    regressors_.assign(static_cast<std::size_t>(num_subspaces), {});
    min_thr_.assign(static_cast<std::size_t>(num_subspaces), 0.0);
    max_thr_.assign(static_cast<std::size_t>(num_subspaces), 0.0);

    Rng rng(params.seed);
    const idx_t n = vectors.rows();
    const idx_t num_train = std::min(params.train_samples, n);
    const idx_t num_ref = std::min(params.ref_samples, n);
    // When measuring top-k neighbours on a reference subsample, scale k
    // by the sampling ratio so the measured radius estimates the
    // full-corpus top-k radius.
    idx_t k_eff = params.contain_topk;
    if (num_ref < n) {
        k_eff = std::max<idx_t>(
            1, static_cast<idx_t>(
                   std::llround(static_cast<double>(params.contain_topk) *
                                static_cast<double>(num_ref) /
                                static_cast<double>(n))));
    }
    k_eff = std::min(k_eff, num_ref);

    const auto train_ids = rng.sampleWithoutReplacement(n, num_train);
    const auto ref_ids = rng.sampleWithoutReplacement(n, num_ref);
    const idx_t dim = vectors.cols();

    // Pass 1: for each training sample, its top-k *full-dimension*
    // neighbours among the references. The per-subspace threshold is
    // the radius that contains the *projections of these neighbours*
    // (paper Sec. 4.1: "the threshold to contain the top-100 search
    // points"), which is wider than the radius containing the top-k
    // subspace projections — this is exactly why Fig. 4(b) needs ~50%
    // of the closest entries for 90% of the true top-100.
    std::vector<std::vector<idx_t>> topk_ids(
        static_cast<std::size_t>(num_train));
    for (idx_t ti = 0; ti < num_train; ++ti) {
        const idx_t t = train_ids[static_cast<std::size_t>(ti)];
        TopK top(k_eff, metric);
        for (idx_t r : ref_ids) {
            if (r == t)
                continue; // the sample itself is not its own neighbour
            top.push(r, score(metric, vectors.row(t), vectors.row(r), dim));
        }
        auto &ids = topk_ids[static_cast<std::size_t>(ti)];
        for (const auto &nb : top.take())
            ids.push_back(nb.id);
    }

    // Pass 2: per subspace, measure the covering radius / floor and
    // regress it on density.
    for (int s = 0; s < num_subspaces; ++s) {
        std::vector<double> densities, thresholds;
        densities.reserve(static_cast<std::size_t>(num_train));
        thresholds.reserve(static_cast<std::size_t>(num_train));

        for (idx_t ti = 0; ti < num_train; ++ti) {
            const idx_t t = train_ids[static_cast<std::size_t>(ti)];
            const float qx = vectors.at(t, 2 * s);
            const float qy = vectors.at(t, 2 * s + 1);

            double thr;
            if (metric == Metric::kL2) {
                // Radius containing every top-k neighbour's projection.
                double max_d2 = 0.0;
                for (idx_t r : topk_ids[static_cast<std::size_t>(ti)]) {
                    const double dx = vectors.at(r, 2 * s) - qx;
                    const double dy = vectors.at(r, 2 * s + 1) - qy;
                    max_d2 = std::max(max_d2, dx * dx + dy * dy);
                }
                thr = std::sqrt(max_d2);
            } else {
                // Similarity floor admitting every top-k neighbour's
                // projection.
                double min_ip = std::numeric_limits<double>::max();
                for (idx_t r : topk_ids[static_cast<std::size_t>(ti)]) {
                    const double ip =
                        static_cast<double>(vectors.at(r, 2 * s)) * qx +
                        static_cast<double>(vectors.at(r, 2 * s + 1)) * qy;
                    min_ip = std::min(min_ip, ip);
                }
                thr = min_ip;
            }
            densities.push_back(density.densityAt(s, qx, qy));
            thresholds.push_back(thr);
        }

        regressors_[static_cast<std::size_t>(s)].fit(densities, thresholds,
                                                     params.poly_degree);
        min_thr_[static_cast<std::size_t>(s)] =
            *std::min_element(thresholds.begin(), thresholds.end());
        max_thr_[static_cast<std::size_t>(s)] =
            *std::max_element(thresholds.begin(), thresholds.end());
    }
}

void
ThresholdPolicy::checkSubspace(int s) const
{
    JUNO_REQUIRE(trained(), "policy not trained");
    JUNO_REQUIRE(s >= 0 && s < numSubspaces(), "subspace " << s);
}

double
ThresholdPolicy::threshold(int s, float x, float y) const
{
    checkSubspace(s);
    switch (mode_) {
      case ThresholdMode::kStaticSmall:
        return min_thr_[static_cast<std::size_t>(s)];
      case ThresholdMode::kStaticLarge:
        return max_thr_[static_cast<std::size_t>(s)];
      case ThresholdMode::kDynamic:
        break;
    }
    const double d = density_->densityAt(s, x, y);
    return regressors_[static_cast<std::size_t>(s)].predict(d);
}

double
ThresholdPolicy::scaled(int s, double threshold, double scale) const
{
    checkSubspace(s);
    scale = std::clamp(scale, 0.0, 1.0);
    if (metric_ == Metric::kL2)
        return threshold * scale;
    // IP: scale 1 keeps the predicted floor; smaller scale raises it
    // towards the training maximum, pruning more entries.
    const double hi = max_thr_[static_cast<std::size_t>(s)];
    return threshold + (1.0 - scale) * std::max(0.0, hi - threshold);
}

double
ThresholdPolicy::minThreshold(int s) const
{
    checkSubspace(s);
    return min_thr_[static_cast<std::size_t>(s)];
}

double
ThresholdPolicy::maxThreshold(int s) const
{
    checkSubspace(s);
    return max_thr_[static_cast<std::size_t>(s)];
}

const PolyRegressor &
ThresholdPolicy::regressor(int s) const
{
    checkSubspace(s);
    return regressors_[static_cast<std::size_t>(s)];
}

void
ThresholdPolicy::save(Writer &writer) const
{
    JUNO_REQUIRE(trained(), "save before train");
    writer.writePod<std::int32_t>(metric_ == Metric::kL2 ? 0 : 1);
    writer.writePod<std::int32_t>(static_cast<std::int32_t>(mode_));
    writer.writePod<std::int32_t>(numSubspaces());
    for (const auto &reg : regressors_)
        reg.save(writer);
    writer.writeVector(min_thr_);
    writer.writeVector(max_thr_);
}

void
ThresholdPolicy::load(Reader &reader, const DensityMap &density)
{
    metric_ = reader.readPod<std::int32_t>() == 0
                  ? Metric::kL2
                  : Metric::kInnerProduct;
    mode_ = static_cast<ThresholdMode>(reader.readPod<std::int32_t>());
    const auto count = reader.readPod<std::int32_t>();
    JUNO_REQUIRE(count > 0 && count == density.numSubspaces(),
                 "policy/density subspace count mismatch");
    regressors_.assign(static_cast<std::size_t>(count), {});
    for (auto &reg : regressors_)
        reg.load(reader);
    min_thr_ = reader.readVector<double>();
    max_thr_ = reader.readVector<double>();
    JUNO_REQUIRE(min_thr_.size() == static_cast<std::size_t>(count) &&
                     max_thr_.size() == static_cast<std::size_t>(count),
                 "corrupt threshold ranges");
    density_ = &density;
}

} // namespace juno
