#include "core/scene_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace juno {

void
JunoScene::build(Metric metric, const ProductQuantizer &pq,
                 const ThresholdPolicy &policy, const Params &params)
{
    JUNO_REQUIRE(pq.trained(), "product quantizer not trained");
    JUNO_REQUIRE(pq.subDim() == 2,
                 "the RT mapping requires 2-D subspaces (M = 2), got M = "
                     << pq.subDim());
    JUNO_REQUIRE(policy.trained(), "threshold policy not trained");
    JUNO_REQUIRE(policy.numSubspaces() == pq.numSubspaces(),
                 "policy/pq subspace count mismatch");
    JUNO_REQUIRE(params.gate_radius > 0.0f && params.gate_radius <= 1.0f,
                 "gate_radius must be in (0, 1]");
    JUNO_REQUIRE(params.max_gate_fraction > 0.0f &&
                     params.max_gate_fraction < 1.0f,
                 "max_gate_fraction must be in (0, 1)");

    metric_ = metric;
    num_subspaces_ = pq.numSubspaces();
    radius_ = params.gate_radius;
    max_gate_fraction_ = params.max_gate_fraction;
    coord_scale_.assign(static_cast<std::size_t>(num_subspaces_), 1.0f);
    tmin_.assign(static_cast<std::size_t>(num_subspaces_), 0.0f);
    scene_ = rt::Scene();

    for (int s = 0; s < num_subspaces_; ++s) {
        const FloatMatrix &cb = pq.codebook(s);

        // Choose kappa_s.
        float kappa;
        if (metric == Metric::kL2) {
            // The largest threshold the policy can emit must map under
            // R * max_gate_fraction.
            const double max_thr = std::max(policy.maxThreshold(s), 1e-9);
            kappa = static_cast<float>(
                radius_ * max_gate_fraction_ / max_thr);
        } else {
            // IP gates via tmax, not the sphere surface; kappa only
            // conditions the geometry. Normalise by the largest entry
            // norm so inflated radii stay near sqrt(2) * R.
            float max_norm = 1e-9f;
            for (idx_t e = 0; e < cb.rows(); ++e) {
                const float nx = cb.at(e, 0), ny = cb.at(e, 1);
                max_norm = std::max(max_norm,
                                    std::sqrt(nx * nx + ny * ny));
            }
            kappa = 1.0f / max_norm;
        }
        coord_scale_[static_cast<std::size_t>(s)] = kappa;

        // Place the spheres of subspace s at z = kZSpacing * s + 1.
        const float z = kZSpacing * static_cast<float>(s) + 1.0f;
        float max_radius = radius_;
        for (idx_t e = 0; e < cb.rows(); ++e) {
            rt::Sphere sphere;
            sphere.center = {cb.at(e, 0) * kappa, cb.at(e, 1) * kappa, z};
            if (metric == Metric::kL2) {
                sphere.radius = radius_;
            } else {
                // Offline radius inflation (paper Sec. 4.2, IP support).
                const float norm2 = sphere.center.x * sphere.center.x +
                                    sphere.center.y * sphere.center.y;
                sphere.radius = std::sqrt(radius_ * radius_ + norm2);
            }
            max_radius = std::max(max_radius, sphere.radius);
            sphere.user_id = packId(s, static_cast<entry_t>(e));
            scene_.addSphere(sphere);
        }

        // The earliest possible entry-root hit time is 1 - max_radius;
        // rays must admit it (negative in IP mode).
        tmin_[static_cast<std::size_t>(s)] = 1.0f - max_radius - 1e-4f;
    }

    scene_.build(params.bvh);
}

float
JunoScene::coordScale(int s) const
{
    JUNO_REQUIRE(s >= 0 && s < num_subspaces_, "subspace " << s);
    return coord_scale_[static_cast<std::size_t>(s)];
}

float
JunoScene::rayTmin(int s) const
{
    JUNO_REQUIRE(s >= 0 && s < num_subspaces_, "subspace " << s);
    return tmin_[static_cast<std::size_t>(s)];
}

float
JunoScene::gateTmax(int s, float x, float y, double threshold) const
{
    const float k = coordScale(s);
    const float r2 = radius_ * radius_;
    if (metric_ == Metric::kL2) {
        if (threshold <= 0.0)
            return -std::numeric_limits<float>::infinity();
        // Clamp the scaled radius under R so tmax stays real; the
        // clamp only binds when the user asks for a looser gate than
        // the scene was sized for.
        double r = std::min(threshold * k,
                            static_cast<double>(radius_ *
                                                max_gate_fraction_));
        return static_cast<float>(1.0 - std::sqrt(r2 - r * r));
    }
    // IP floor tau: thit <= tmax <=> IP >= tau (see header derivation).
    const double qn2 = static_cast<double>(x) * x * k * k +
                       static_cast<double>(y) * y * k * k;
    const double arg = r2 - qn2 + 2.0 * threshold * k * k;
    if (arg <= 0.0) {
        // Floor so low that every hit on the inflated spheres passes.
        return 1.0f;
    }
    return static_cast<float>(1.0 - std::sqrt(arg));
}

bool
JunoScene::makeRay(int s, float x, float y, double threshold,
                   rt::Ray &out) const
{
    JUNO_REQUIRE(built(), "scene not built");
    const float k = coordScale(s);
    const float tmax = gateTmax(s, x, y, threshold);
    if (std::isinf(tmax) && tmax < 0.0f)
        return false;
    out.origin = {x * k, y * k, kZSpacing * static_cast<float>(s)};
    out.dir = {0.0f, 0.0f, 1.0f};
    out.tmin = rayTmin(s);
    out.tmax = tmax;
    return true;
}

} // namespace juno
