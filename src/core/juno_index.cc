#include "core/juno_index.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "common/mmap_blob.h"
#include "registry/index_spec.h"
#include "registry/snapshot.h"

namespace juno {

JunoParams
junoPresetH(JunoParams base)
{
    base.mode = SearchMode::kExactDistance;
    base.threshold_scale = 1.0;
    return base;
}

JunoParams
junoPresetM(JunoParams base)
{
    base.mode = SearchMode::kRewardPenalty;
    base.threshold_scale = 1.0;
    return base;
}

JunoParams
junoPresetL(JunoParams base)
{
    base.mode = SearchMode::kHitCount;
    base.threshold_scale = 0.8;
    return base;
}

JunoIndex::JunoIndex(Metric metric, FloatMatrixView points,
                     const JunoParams &params)
    : metric_(metric), num_points_(points.rows()), dim_(points.cols()),
      params_(params),
      device_(params.use_rt_core ? rt::ExecMode::kRtCore
                                 : rt::ExecMode::kCudaFallback)
{
    JUNO_REQUIRE(dim_ % 2 == 0,
                 "JUNO requires an even dimension (2-D subspaces), got "
                     << dim_);
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    JUNO_REQUIRE(params.threshold_scale > 0.0 &&
                     params.threshold_scale <= 1.0,
                 "threshold_scale must be in (0, 1]");

    const int subspaces = static_cast<int>(dim_ / 2);

    // Offline step 1: coarse clustering + inverted lists (Alg. 1, 2-3).
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points, ivf_params);

    // Offline steps 2-3: residuals + per-subspace codebooks (Alg. 1,
    // 4-9). M = 2 is mandatory for the RT mapping.
    FloatMatrix residuals(num_points_, dim_);
    for (idx_t p = 0; p < num_points_; ++p)
        ivf_.residual(points.row(p), ivf_.label(p), residuals.row(p));

    PQParams pq_params;
    pq_params.num_subspaces = subspaces;
    pq_params.entries = params.pq_entries;
    pq_params.seed = params.seed + 1;
    pq_params.max_training_points = params.max_training_points;
    pq_.train(residuals.view(), pq_params);
    codes_ = pq_.encode(residuals.view());

    // Offline step 4: density map + threshold regressors. L2 thresholds
    // live in residual space (rays start at residual projections); IP
    // thresholds live in raw query space (the LUT is probe-invariant).
    const FloatMatrixView policy_domain =
        metric_ == Metric::kL2 ? residuals.view() : points;
    density_.build(policy_domain, subspaces, params.density_grid);
    ThresholdPolicy::Params policy_params = params.policy;
    policy_params.seed = params.seed + 2;
    policy_.train(metric_, policy_domain, subspaces, density_,
                  policy_params);
    policy_.setMode(params.threshold_mode);

    finishConstruction();
}

void
JunoIndex::finishConstruction()
{
    // Subspace-level inverted index (Alg. 1, 12-14) and the traversable
    // scene (Alg. 1, 10-11); both derive deterministically from the
    // trained state, so load() rebuilds them instead of storing them.
    interest_.build(ivf_, codes_, params_.pq_entries);
    if (params_.use_interleaved && !interleaved_.built()) {
        // Float-scan plane only: JUNO's dense regime never runs the
        // 4-bit fast scan, so the nibble plane would be dead weight.
        // A snapshot open() restores the plane instead (fast-scan
        // state is persisted, not re-laid-out).
        interleaved_.build(ivf_.lists(), codes_, params_.pq_entries,
                           /*with_packed4=*/false);
    }
    scene_.build(metric_, pq_, policy_, params_.scene);
    device_.setMode(params_.use_rt_core ? rt::ExecMode::kRtCore
                                        : rt::ExecMode::kCudaFallback);
    lut_builder_ = std::make_unique<SelectiveLutBuilder>(scene_, policy_,
                                                         ivf_, device_);
    calc_ = std::make_unique<DistanceCalculator>(ivf_, interest_,
                                                 &interleaved_);
}

namespace {
constexpr char kLegacyMagic[8] = {'J', 'U', 'N', 'O', 'I', 'D', 'X', '1'};
constexpr std::uint32_t kLegacyVersion = 1;
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;

/** Shared by save and spec(): every build/search knob, in order. */
void
writeParams(Writer &meta, const JunoParams &params)
{
    meta.writePod<std::int32_t>(params.clusters);
    meta.writePod<std::int32_t>(params.pq_entries);
    meta.writePod<std::int64_t>(params.nprobs);
    meta.writePod<std::int32_t>(static_cast<std::int32_t>(params.mode));
    meta.writePod(params.threshold_scale);
    meta.writePod<std::int32_t>(
        static_cast<std::int32_t>(params.threshold_mode));
    meta.writePod(params.miss_penalty);
    meta.writePod<std::uint8_t>(params.use_rt_core ? 1 : 0);
    meta.writePod<std::uint8_t>(params.pipelined ? 1 : 0);
    meta.writePod<std::uint8_t>(params.use_interleaved ? 1 : 0);
    meta.writePod<std::int32_t>(params.density_grid);
    meta.writePod<std::int64_t>(params.policy.train_samples);
    meta.writePod<std::int64_t>(params.policy.ref_samples);
    meta.writePod<std::int64_t>(params.policy.contain_topk);
    meta.writePod<std::int32_t>(params.policy.poly_degree);
    meta.writePod<std::uint64_t>(params.policy.seed);
    meta.writePod(params.scene.gate_radius);
    meta.writePod(params.scene.max_gate_fraction);
    meta.writePod<std::uint64_t>(params.seed);
    meta.writePod<std::int64_t>(params.max_training_points);
}

JunoParams
readParams(Reader &meta)
{
    JunoParams params;
    params.clusters = meta.readPod<std::int32_t>();
    params.pq_entries = meta.readPod<std::int32_t>();
    params.nprobs = meta.readPod<std::int64_t>();
    const auto mode = meta.readPod<std::int32_t>();
    JUNO_REQUIRE(mode >= 0 && mode <= 2, "corrupt search mode tag");
    params.mode = static_cast<SearchMode>(mode);
    params.threshold_scale = meta.readPod<double>();
    const auto tmode = meta.readPod<std::int32_t>();
    JUNO_REQUIRE(tmode >= 0 && tmode <= 2,
                 "corrupt threshold mode tag");
    params.threshold_mode = static_cast<ThresholdMode>(tmode);
    params.miss_penalty = meta.readPod<double>();
    params.use_rt_core = meta.readPod<std::uint8_t>() != 0;
    params.pipelined = meta.readPod<std::uint8_t>() != 0;
    params.use_interleaved = meta.readPod<std::uint8_t>() != 0;
    params.density_grid = meta.readPod<std::int32_t>();
    params.policy.train_samples = meta.readPod<std::int64_t>();
    params.policy.ref_samples = meta.readPod<std::int64_t>();
    params.policy.contain_topk = meta.readPod<std::int64_t>();
    params.policy.poly_degree = meta.readPod<std::int32_t>();
    params.policy.seed = meta.readPod<std::uint64_t>();
    params.scene.gate_radius = meta.readPod<float>();
    params.scene.max_gate_fraction = meta.readPod<float>();
    params.seed = meta.readPod<std::uint64_t>();
    params.max_training_points = meta.readPod<std::int64_t>();
    return params;
}

const char *
modeKey(SearchMode mode)
{
    switch (mode) {
    case SearchMode::kExactDistance:
        return "h";
    case SearchMode::kRewardPenalty:
        return "m";
    case SearchMode::kHitCount:
        return "l";
    }
    return "h";
}

const char *
thresholdModeKey(ThresholdMode mode)
{
    switch (mode) {
    case ThresholdMode::kDynamic:
        return "dyn";
    case ThresholdMode::kStaticSmall:
        return "small";
    case ThresholdMode::kStaticLarge:
        return "large";
    }
    return "dyn";
}

} // namespace

std::string
JunoIndex::spec() const
{
    IndexSpec spec;
    spec.type = "juno";
    spec.setInt("nlist", params_.clusters);
    spec.setInt("entries", params_.pq_entries);
    spec.setInt("nprobe", params_.nprobs);
    spec.set("mode", modeKey(params_.mode));
    spec.setDouble("scale", params_.threshold_scale);
    spec.set("tmode", thresholdModeKey(params_.threshold_mode));
    spec.setDouble("penalty", params_.miss_penalty);
    spec.setBool("rt", params_.use_rt_core);
    spec.setBool("pipelined", params_.pipelined);
    spec.setBool("interleaved", params_.use_interleaved);
    spec.setInt("grid", params_.density_grid);
    spec.setInt("psamples", params_.policy.train_samples);
    spec.setInt("prefs", params_.policy.ref_samples);
    spec.setInt("ptopk", params_.policy.contain_topk);
    spec.setInt("pdeg", params_.policy.poly_degree);
    spec.setDouble("radius", params_.scene.gate_radius);
    spec.setDouble("gatefrac", params_.scene.max_gate_fraction);
    spec.setInt("seed", static_cast<long>(params_.seed));
    spec.setInt("train", params_.max_training_points);
    // policy.seed is intentionally absent: the constructor always
    // derives it from seed (+2), so it cannot diverge.
    return spec.toString();
}

void
JunoIndex::saveSections(SnapshotWriter &writer) const
{
    Writer &meta = writer.section("meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    writeMetricTag(meta, metric_);
    meta.writePod<std::int64_t>(num_points_);
    meta.writePod<std::int64_t>(dim_);
    writeParams(meta, params_);
    meta.writePod<std::int64_t>(codes_.num_points);
    meta.writePod<std::int32_t>(codes_.num_subspaces);
    meta.writePod<std::uint8_t>(interleaved_.built() ? 1 : 0);

    ivf_.save(writer.section("ivf"));
    pq_.save(writer.section("pq"));
    writer.addBlob("codes", codes_.data(),
                   codes_.count() * sizeof(entry_t));
    density_.save(writer.section("density"));
    policy_.save(writer.section("policy"));
    if (interleaved_.built())
        interleaved_.save(writer, "ileav.");
}

std::unique_ptr<JunoIndex>
JunoIndex::open(SnapshotReader &reader)
{
    const std::string what = reader.path() + " [juno]";
    auto meta = reader.stream("meta");
    checkFormatVersion(meta, kFormatVersion, what);
    std::unique_ptr<JunoIndex> index(new JunoIndex());
    index->metric_ = readMetricTag(meta);
    index->num_points_ = meta.readPod<std::int64_t>();
    index->dim_ = meta.readPod<std::int64_t>();
    JUNO_REQUIRE(index->num_points_ > 0 && index->dim_ > 0 &&
                     index->dim_ % 2 == 0,
                 what << ": corrupt index header");
    index->params_ = readParams(meta);
    index->codes_.num_points = meta.readPod<std::int64_t>();
    index->codes_.num_subspaces = meta.readPod<std::int32_t>();
    const bool has_interleaved = meta.readPod<std::uint8_t>() != 0;
    JUNO_REQUIRE(index->codes_.num_points == index->num_points_ &&
                     index->codes_.num_subspaces > 0 &&
                     index->codes_.num_subspaces ==
                         static_cast<int>(index->dim_ / 2),
                 what << ": corrupt PQ codes shape");
    // Overflow guard: the code-plane product must not wrap before the
    // blob-size comparison below.
    JUNO_REQUIRE(static_cast<std::uint64_t>(index->codes_.num_points) <=
                     kMaxSerializedPayloadBytes / sizeof(entry_t) /
                         static_cast<std::uint64_t>(
                             index->codes_.num_subspaces),
                 what << ": implausible code plane (corrupt file)");

    auto ivf_stream = reader.stream("ivf");
    index->ivf_.load(ivf_stream);
    auto pq_stream = reader.stream("pq");
    index->pq_.load(pq_stream);
    const auto codes_blob = reader.blob("codes");
    if (codes_blob.bytes != index->codes_.count() * sizeof(entry_t))
        fatal(what + ": PQ code payload size mismatch (corrupt file)");
    index->codes_.adoptView(
        reinterpret_cast<const entry_t *>(codes_blob.data),
        codes_blob.keepalive);
    auto density_stream = reader.stream("density");
    index->density_.load(density_stream);
    auto policy_stream = reader.stream("policy");
    index->policy_.load(policy_stream, index->density_);
    index->policy_.setMode(index->params_.threshold_mode);
    if (has_interleaved) {
        index->interleaved_.load(reader, "ileav.");
        JUNO_REQUIRE(index->interleaved_.numLists() ==
                             index->ivf_.numClusters() &&
                         index->interleaved_.subspaces() ==
                             index->codes_.num_subspaces,
                     what << ": interleaved layout shape mismatch");
    }

    index->finishConstruction();
    return index;
}

std::unique_ptr<JunoIndex>
JunoIndex::load(const std::string &path)
{
    // Sniff the magic: the unified snapshot container and the legacy
    // single-stream format start with different 8-byte tags.
    char magic[8] = {};
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe)
            fatal("cannot open " + path);
        probe.read(magic, 8);
        if (!probe)
            fatal(path + ": not a JUNO index file (too small)");
    }
    if (std::memcmp(magic, kLegacyMagic, 8) == 0) {
        warn(path + ": legacy JUNO index format; re-save to upgrade "
                    "to the snapshot container (legacy support will "
                    "be removed)");
        return loadLegacy(path);
    }
    SnapshotReader reader(path);
    const IndexSpec spec = IndexSpec::parse(reader.spec());
    JUNO_REQUIRE(spec.type == "juno",
                 path << " holds a '" << spec.type
                      << "' index, not a JUNO index (use openIndex)");
    return open(reader);
}

std::unique_ptr<JunoIndex>
JunoIndex::loadLegacy(const std::string &path)
{
    BinaryReader reader(path, kLegacyMagic, kLegacyVersion);
    std::unique_ptr<JunoIndex> index(new JunoIndex());
    index->metric_ = reader.readPod<std::int32_t>() == 0
                         ? Metric::kL2
                         : Metric::kInnerProduct;
    index->num_points_ = reader.readPod<std::int64_t>();
    index->dim_ = reader.readPod<std::int64_t>();
    JUNO_REQUIRE(index->num_points_ > 0 && index->dim_ > 0 &&
                     index->dim_ % 2 == 0,
                 "corrupt index header");

    index->params_.clusters = reader.readPod<std::int32_t>();
    index->params_.pq_entries = reader.readPod<std::int32_t>();
    index->params_.nprobs = reader.readPod<std::int64_t>();
    index->params_.mode =
        static_cast<SearchMode>(reader.readPod<std::int32_t>());
    index->params_.threshold_scale = reader.readPod<double>();
    index->params_.threshold_mode =
        static_cast<ThresholdMode>(reader.readPod<std::int32_t>());
    index->params_.miss_penalty = reader.readPod<double>();
    index->params_.use_rt_core = reader.readPod<std::uint8_t>() != 0;
    index->params_.density_grid = reader.readPod<std::int32_t>();
    index->params_.scene.gate_radius = reader.readPod<float>();
    index->params_.scene.max_gate_fraction = reader.readPod<float>();

    index->ivf_.load(reader);
    index->pq_.load(reader);
    index->codes_.num_points = reader.readPod<std::int64_t>();
    index->codes_.num_subspaces = reader.readPod<std::int32_t>();
    index->codes_.codes = reader.readVector<entry_t>();
    JUNO_REQUIRE(index->codes_.codes.size() ==
                     static_cast<std::size_t>(index->codes_.num_points) *
                         static_cast<std::size_t>(
                             index->codes_.num_subspaces),
                 "corrupt PQ codes payload");
    index->density_.load(reader);
    index->policy_.load(reader, index->density_);
    index->policy_.setMode(index->params_.threshold_mode);

    index->finishConstruction();
    return index;
}

std::string
JunoIndex::name() const
{
    std::string n = searchModeName(params_.mode);
    n += "(C=" + std::to_string(ivf_.numClusters());
    n += ",E=" + std::to_string(pq_.entries());
    n += ",scale=" + std::to_string(params_.threshold_scale).substr(0, 4);
    if (!params_.use_rt_core)
        n += ",noRT";
    n += ")";
    return n;
}

void
JunoIndex::setNprobs(idx_t nprobs)
{
    JUNO_REQUIRE(nprobs > 0, "nprobs must be positive");
    params_.nprobs = nprobs;
}

void
JunoIndex::setThresholdScale(double scale)
{
    JUNO_REQUIRE(scale > 0.0 && scale <= 1.0,
                 "threshold_scale must be in (0, 1]");
    params_.threshold_scale = scale;
}

void
JunoIndex::setThresholdMode(ThresholdMode mode)
{
    params_.threshold_mode = mode;
    policy_.setMode(mode);
}

void
JunoIndex::setUseRtCore(bool use_rt)
{
    params_.use_rt_core = use_rt;
    device_.setMode(use_rt ? rt::ExecMode::kRtCore
                           : rt::ExecMode::kCudaFallback);
}

void
JunoIndex::setMissPenalty(double penalty)
{
    JUNO_REQUIRE(penalty >= 0.0, "miss_penalty must be non-negative");
    params_.miss_penalty = penalty;
}

SelectiveLutParams
JunoIndex::lutParams() const
{
    SelectiveLutParams lp;
    lp.threshold_scale = params_.threshold_scale;
    lp.miss_penalty = params_.miss_penalty;
    lp.inner_gate = params_.mode == SearchMode::kRewardPenalty;
    return lp;
}

std::vector<Neighbor>
JunoIndex::probe(const float *query) const
{
    return ivf_.probe(metric_, query, params_.nprobs);
}

std::vector<Neighbor>
JunoIndex::probe(const float *query, idx_t nprobs) const
{
    return ivf_.probe(metric_, query, nprobs);
}

void
JunoIndex::prefetchProbedLists(const std::vector<Neighbor> &probes) const
{
    if (!interleaved_.built() || !interleaved_.planesMapped())
        return;
    for (const auto &pr : probes) {
        const auto c = static_cast<cluster_t>(pr.id);
        memAdvise(interleaved_.listBlocks(c),
                  interleaved_.listBlocksBytes(c), MemAdvice::kWillNeed);
        if (interleaved_.packed4())
            memAdvise(interleaved_.listPacked(c),
                      interleaved_.listPackedBytes(c),
                      MemAdvice::kWillNeed);
    }
}

SparseLut
JunoIndex::buildLut(const float *query,
                    const std::vector<Neighbor> &probes) const
{
    return lut_builder_->build(query, probes, lutParams());
}

std::vector<Neighbor>
JunoIndex::searchOne(const float *query, idx_t k)
{
    std::vector<Neighbor> probes;
    {
        ScopedStageTimer t(timers_, Stage::kFilter);
        probes = probe(query);
        prefetchProbedLists(probes);
    }
    {
        ScopedStageTimer t(timers_, Stage::kRtLut);
        lut_builder_->buildInto(query, probes, lutParams(), lut_scratch_);
    }
    ScopedStageTimer t(timers_, Stage::kScan);
    return calc_->run(metric_, params_.mode, probes, lut_scratch_,
                      std::min(k, num_points_));
}

/**
 * Per-worker search state: a private RT device (so traversal counters
 * accumulate without contention), the RT-LUT builder and distance
 * calculator bound to it, and the reusable sparse-LUT buffers. Lives
 * in a SearchContext, so it persists across chunks and batches.
 */
struct JunoIndex::Worker {
    explicit Worker(JunoIndex &owner)
        : device(owner.device_.mode()),
          builder(owner.scene_, owner.policy_, owner.ivf_, device),
          calc(owner.ivf_, owner.interest_, &owner.interleaved_)
    {
    }

    rt::RtDevice device;
    SelectiveLutBuilder builder;
    DistanceCalculator calc;
    /** Reused per-query sparse LUT. */
    SparseLut lut;
    /** Pipelined mode: per-query intermediates of the current chunk. */
    std::vector<std::vector<Neighbor>> probes_buf;
    std::vector<SparseLut> lut_buf;
};

void
JunoIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    auto &w = ctx.scratch<Worker>(
        [this] { return std::make_unique<Worker>(*this); });
    // Search-time knobs may have flipped since the worker was created.
    w.device.setMode(device_.mode());
    const idx_t k = std::min(chunk.k, num_points_);

    if (!params_.pipelined) {
        for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
            const float *q = chunk.queries.row(qi);
            {
                StageScope t(ctx, Stage::kFilter);
                ctx.probes = probe(q, ctx.scaledNprobes(params_.nprobs));
                // JUNO scores all probed lists in one calculator run,
                // so the cooperative deadline cuts in before the run:
                // a query starting past its deadline keeps only the
                // best cluster — still valid neighbours, just partial.
                if (ctx.probes.size() > 1 && ctx.pastDeadline()) {
                    ctx.probes.resize(1);
                    ctx.markDegraded(qi);
                }
                // Cold lists start paging in while the RT-LUT stage
                // below runs (out-of-core overlap).
                prefetchProbedLists(ctx.probes);
            }
            {
                StageScope t(ctx, Stage::kRtLut);
                w.builder.buildInto(q, ctx.probes, lutParams(), w.lut);
            }
            StageScope t(ctx, Stage::kScan);
            (*chunk.results)[static_cast<std::size_t>(qi)] =
                w.calc.run(metric_, params_.mode, ctx.probes, w.lut, k);
        }
    } else {
        // Pipelined mode: stage 1 = filter + RT LUT (the paper's
        // RT-core side), stage 2 = distance calculation (the
        // Tensor-core side), overlapped across the queries of this
        // chunk. Stages touch disjoint worker members.
        const auto n = static_cast<std::size_t>(chunk.end - chunk.begin);
        if (w.probes_buf.size() < n) {
            w.probes_buf.resize(n);
            w.lut_buf.resize(n);
        }
        auto stage1 = [&](idx_t i) {
            const float *q = chunk.queries.row(chunk.begin + i);
            auto &probes = w.probes_buf[static_cast<std::size_t>(i)];
            probes = probe(q, ctx.scaledNprobes(params_.nprobs));
            // Same deadline cut as the unpipelined path; each degraded
            // slot has this stage as its only writer.
            if (probes.size() > 1 && ctx.pastDeadline()) {
                probes.resize(1);
                ctx.markDegraded(chunk.begin + i);
            }
            prefetchProbedLists(probes); // page-ins overlap stage 2
            w.builder.buildInto(q, probes, lutParams(),
                                w.lut_buf[static_cast<std::size_t>(i)]);
        };
        auto stage2 = [&](idx_t i) {
            (*chunk.results)[static_cast<std::size_t>(chunk.begin + i)] =
                w.calc.run(metric_, params_.mode,
                           w.probes_buf[static_cast<std::size_t>(i)],
                           w.lut_buf[static_cast<std::size_t>(i)], k);
        };
        const auto pipe = runTwoStagePipeline(
            chunk.end - chunk.begin, stage1, stage2, true);
        ctx.timers().add(Stage::kRtLut, pipe.stage1_seconds);
        ctx.timers().add(Stage::kScan, pipe.stage2_seconds);
        ctx.timers().add(Stage::kPipelineWall, pipe.wall_seconds);
    }

    MutexLock lock(stats_mutex_);
    device_.mergeStats(w.device.totalStats());
    w.device.resetStats();
}

} // namespace juno
