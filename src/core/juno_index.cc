#include "core/juno_index.h"

#include <algorithm>

#include "common/logging.h"

namespace juno {

JunoParams
junoPresetH(JunoParams base)
{
    base.mode = SearchMode::kExactDistance;
    base.threshold_scale = 1.0;
    return base;
}

JunoParams
junoPresetM(JunoParams base)
{
    base.mode = SearchMode::kRewardPenalty;
    base.threshold_scale = 1.0;
    return base;
}

JunoParams
junoPresetL(JunoParams base)
{
    base.mode = SearchMode::kHitCount;
    base.threshold_scale = 0.8;
    return base;
}

JunoIndex::JunoIndex(Metric metric, FloatMatrixView points,
                     const JunoParams &params)
    : metric_(metric), num_points_(points.rows()), dim_(points.cols()),
      params_(params),
      device_(params.use_rt_core ? rt::ExecMode::kRtCore
                                 : rt::ExecMode::kCudaFallback)
{
    JUNO_REQUIRE(dim_ % 2 == 0,
                 "JUNO requires an even dimension (2-D subspaces), got "
                     << dim_);
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    JUNO_REQUIRE(params.threshold_scale > 0.0 &&
                     params.threshold_scale <= 1.0,
                 "threshold_scale must be in (0, 1]");

    const int subspaces = static_cast<int>(dim_ / 2);

    // Offline step 1: coarse clustering + inverted lists (Alg. 1, 2-3).
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points, ivf_params);

    // Offline steps 2-3: residuals + per-subspace codebooks (Alg. 1,
    // 4-9). M = 2 is mandatory for the RT mapping.
    FloatMatrix residuals(num_points_, dim_);
    for (idx_t p = 0; p < num_points_; ++p)
        ivf_.residual(points.row(p), ivf_.label(p), residuals.row(p));

    PQParams pq_params;
    pq_params.num_subspaces = subspaces;
    pq_params.entries = params.pq_entries;
    pq_params.seed = params.seed + 1;
    pq_params.max_training_points = params.max_training_points;
    pq_.train(residuals.view(), pq_params);
    codes_ = pq_.encode(residuals.view());

    // Offline step 4: density map + threshold regressors. L2 thresholds
    // live in residual space (rays start at residual projections); IP
    // thresholds live in raw query space (the LUT is probe-invariant).
    const FloatMatrixView policy_domain =
        metric_ == Metric::kL2 ? residuals.view() : points;
    density_.build(policy_domain, subspaces, params.density_grid);
    ThresholdPolicy::Params policy_params = params.policy;
    policy_params.seed = params.seed + 2;
    policy_.train(metric_, policy_domain, subspaces, density_,
                  policy_params);
    policy_.setMode(params.threshold_mode);

    finishConstruction();
}

void
JunoIndex::finishConstruction()
{
    // Subspace-level inverted index (Alg. 1, 12-14) and the traversable
    // scene (Alg. 1, 10-11); both derive deterministically from the
    // trained state, so load() rebuilds them instead of storing them.
    interest_.build(ivf_, codes_, params_.pq_entries);
    if (params_.use_interleaved) {
        // Float-scan plane only: JUNO's dense regime never runs the
        // 4-bit fast scan, so the nibble plane would be dead weight.
        interleaved_.build(ivf_.lists(), codes_, params_.pq_entries,
                           /*with_packed4=*/false);
    }
    scene_.build(metric_, pq_, policy_, params_.scene);
    device_.setMode(params_.use_rt_core ? rt::ExecMode::kRtCore
                                        : rt::ExecMode::kCudaFallback);
    lut_builder_ = std::make_unique<SelectiveLutBuilder>(scene_, policy_,
                                                         ivf_, device_);
    calc_ = std::make_unique<DistanceCalculator>(ivf_, interest_,
                                                 &interleaved_);
}

namespace {
constexpr char kIndexMagic[8] = {'J', 'U', 'N', 'O', 'I', 'D', 'X', '1'};
constexpr std::uint32_t kIndexVersion = 1;
} // namespace

void
JunoIndex::save(const std::string &path) const
{
    BinaryWriter writer(path, kIndexMagic, kIndexVersion);
    writer.writePod<std::int32_t>(metric_ == Metric::kL2 ? 0 : 1);
    writer.writePod<std::int64_t>(num_points_);
    writer.writePod<std::int64_t>(dim_);

    writer.writePod<std::int32_t>(params_.clusters);
    writer.writePod<std::int32_t>(params_.pq_entries);
    writer.writePod<std::int64_t>(params_.nprobs);
    writer.writePod<std::int32_t>(static_cast<std::int32_t>(params_.mode));
    writer.writePod(params_.threshold_scale);
    writer.writePod<std::int32_t>(
        static_cast<std::int32_t>(params_.threshold_mode));
    writer.writePod(params_.miss_penalty);
    writer.writePod<std::uint8_t>(params_.use_rt_core ? 1 : 0);
    writer.writePod<std::int32_t>(params_.density_grid);
    writer.writePod(params_.scene.gate_radius);
    writer.writePod(params_.scene.max_gate_fraction);

    ivf_.save(writer);
    pq_.save(writer);
    writer.writePod<std::int64_t>(codes_.num_points);
    writer.writePod<std::int32_t>(codes_.num_subspaces);
    writer.writeVector(codes_.codes);
    density_.save(writer);
    policy_.save(writer);
}

std::unique_ptr<JunoIndex>
JunoIndex::load(const std::string &path)
{
    BinaryReader reader(path, kIndexMagic, kIndexVersion);
    std::unique_ptr<JunoIndex> index(new JunoIndex());
    index->metric_ = reader.readPod<std::int32_t>() == 0
                         ? Metric::kL2
                         : Metric::kInnerProduct;
    index->num_points_ = reader.readPod<std::int64_t>();
    index->dim_ = reader.readPod<std::int64_t>();
    JUNO_REQUIRE(index->num_points_ > 0 && index->dim_ > 0 &&
                     index->dim_ % 2 == 0,
                 "corrupt index header");

    index->params_.clusters = reader.readPod<std::int32_t>();
    index->params_.pq_entries = reader.readPod<std::int32_t>();
    index->params_.nprobs = reader.readPod<std::int64_t>();
    index->params_.mode =
        static_cast<SearchMode>(reader.readPod<std::int32_t>());
    index->params_.threshold_scale = reader.readPod<double>();
    index->params_.threshold_mode =
        static_cast<ThresholdMode>(reader.readPod<std::int32_t>());
    index->params_.miss_penalty = reader.readPod<double>();
    index->params_.use_rt_core = reader.readPod<std::uint8_t>() != 0;
    index->params_.density_grid = reader.readPod<std::int32_t>();
    index->params_.scene.gate_radius = reader.readPod<float>();
    index->params_.scene.max_gate_fraction = reader.readPod<float>();

    index->ivf_.load(reader);
    index->pq_.load(reader);
    index->codes_.num_points = reader.readPod<std::int64_t>();
    index->codes_.num_subspaces = reader.readPod<std::int32_t>();
    index->codes_.codes = reader.readVector<entry_t>();
    JUNO_REQUIRE(index->codes_.codes.size() ==
                     static_cast<std::size_t>(index->codes_.num_points) *
                         static_cast<std::size_t>(
                             index->codes_.num_subspaces),
                 "corrupt PQ codes payload");
    index->density_.load(reader);
    index->policy_.load(reader, index->density_);
    index->policy_.setMode(index->params_.threshold_mode);

    index->finishConstruction();
    return index;
}

std::string
JunoIndex::name() const
{
    std::string n = searchModeName(params_.mode);
    n += "(C=" + std::to_string(ivf_.numClusters());
    n += ",E=" + std::to_string(pq_.entries());
    n += ",scale=" + std::to_string(params_.threshold_scale).substr(0, 4);
    if (!params_.use_rt_core)
        n += ",noRT";
    n += ")";
    return n;
}

void
JunoIndex::setNprobs(idx_t nprobs)
{
    JUNO_REQUIRE(nprobs > 0, "nprobs must be positive");
    params_.nprobs = nprobs;
}

void
JunoIndex::setThresholdScale(double scale)
{
    JUNO_REQUIRE(scale > 0.0 && scale <= 1.0,
                 "threshold_scale must be in (0, 1]");
    params_.threshold_scale = scale;
}

void
JunoIndex::setThresholdMode(ThresholdMode mode)
{
    params_.threshold_mode = mode;
    policy_.setMode(mode);
}

void
JunoIndex::setUseRtCore(bool use_rt)
{
    params_.use_rt_core = use_rt;
    device_.setMode(use_rt ? rt::ExecMode::kRtCore
                           : rt::ExecMode::kCudaFallback);
}

void
JunoIndex::setMissPenalty(double penalty)
{
    JUNO_REQUIRE(penalty >= 0.0, "miss_penalty must be non-negative");
    params_.miss_penalty = penalty;
}

SelectiveLutParams
JunoIndex::lutParams() const
{
    SelectiveLutParams lp;
    lp.threshold_scale = params_.threshold_scale;
    lp.miss_penalty = params_.miss_penalty;
    lp.inner_gate = params_.mode == SearchMode::kRewardPenalty;
    return lp;
}

std::vector<Neighbor>
JunoIndex::probe(const float *query) const
{
    return ivf_.probe(metric_, query, params_.nprobs);
}

SparseLut
JunoIndex::buildLut(const float *query,
                    const std::vector<Neighbor> &probes) const
{
    return lut_builder_->build(query, probes, lutParams());
}

std::vector<Neighbor>
JunoIndex::searchOne(const float *query, idx_t k)
{
    std::vector<Neighbor> probes;
    {
        ScopedStageTimer t(timers_, "filter");
        probes = probe(query);
    }
    {
        ScopedStageTimer t(timers_, "rt_lut");
        lut_builder_->buildInto(query, probes, lutParams(), lut_scratch_);
    }
    ScopedStageTimer t(timers_, "scan");
    return calc_->run(metric_, params_.mode, probes, lut_scratch_,
                      std::min(k, num_points_));
}

/**
 * Per-worker search state: a private RT device (so traversal counters
 * accumulate without contention), the RT-LUT builder and distance
 * calculator bound to it, and the reusable sparse-LUT buffers. Lives
 * in a SearchContext, so it persists across chunks and batches.
 */
struct JunoIndex::Worker {
    explicit Worker(JunoIndex &owner)
        : device(owner.device_.mode()),
          builder(owner.scene_, owner.policy_, owner.ivf_, device),
          calc(owner.ivf_, owner.interest_, &owner.interleaved_)
    {
    }

    rt::RtDevice device;
    SelectiveLutBuilder builder;
    DistanceCalculator calc;
    /** Reused per-query sparse LUT. */
    SparseLut lut;
    /** Pipelined mode: per-query intermediates of the current chunk. */
    std::vector<std::vector<Neighbor>> probes_buf;
    std::vector<SparseLut> lut_buf;
};

void
JunoIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    auto &w = ctx.scratch<Worker>(
        [this] { return std::make_unique<Worker>(*this); });
    // Search-time knobs may have flipped since the worker was created.
    w.device.setMode(device_.mode());
    const idx_t k = std::min(chunk.k, num_points_);

    if (!params_.pipelined) {
        for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
            const float *q = chunk.queries.row(qi);
            {
                ScopedStageTimer t(ctx.timers(), "filter");
                ctx.probes = probe(q);
            }
            {
                ScopedStageTimer t(ctx.timers(), "rt_lut");
                w.builder.buildInto(q, ctx.probes, lutParams(), w.lut);
            }
            ScopedStageTimer t(ctx.timers(), "scan");
            (*chunk.results)[static_cast<std::size_t>(qi)] =
                w.calc.run(metric_, params_.mode, ctx.probes, w.lut, k);
        }
    } else {
        // Pipelined mode: stage 1 = filter + RT LUT (the paper's
        // RT-core side), stage 2 = distance calculation (the
        // Tensor-core side), overlapped across the queries of this
        // chunk. Stages touch disjoint worker members.
        const auto n = static_cast<std::size_t>(chunk.end - chunk.begin);
        if (w.probes_buf.size() < n) {
            w.probes_buf.resize(n);
            w.lut_buf.resize(n);
        }
        auto stage1 = [&](idx_t i) {
            const float *q = chunk.queries.row(chunk.begin + i);
            auto &probes = w.probes_buf[static_cast<std::size_t>(i)];
            probes = probe(q);
            w.builder.buildInto(q, probes, lutParams(),
                                w.lut_buf[static_cast<std::size_t>(i)]);
        };
        auto stage2 = [&](idx_t i) {
            (*chunk.results)[static_cast<std::size_t>(chunk.begin + i)] =
                w.calc.run(metric_, params_.mode,
                           w.probes_buf[static_cast<std::size_t>(i)],
                           w.lut_buf[static_cast<std::size_t>(i)], k);
        };
        const auto pipe = runTwoStagePipeline(
            chunk.end - chunk.begin, stage1, stage2, true);
        ctx.timers().add("rt_lut", pipe.stage1_seconds);
        ctx.timers().add("scan", pipe.stage2_seconds);
        ctx.timers().add("pipeline_wall", pipe.wall_seconds);
    }

    std::lock_guard<std::mutex> lock(stats_mutex_);
    device_.mergeStats(w.device.totalStats());
    w.device.resetStats();
}

} // namespace juno
