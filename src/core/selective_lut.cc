#include "core/selective_lut.h"

#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

SelectiveLutBuilder::SelectiveLutBuilder(const JunoScene &scene,
                                         const ThresholdPolicy &policy,
                                         const InvertedFileIndex &ivf,
                                         rt::RtDevice &device)
    : scene_(scene), policy_(policy), ivf_(ivf), device_(device)
{
    JUNO_REQUIRE(scene.built(), "scene not built");
    JUNO_REQUIRE(policy.trained(), "policy not trained");
}

SparseLut
SelectiveLutBuilder::build(const float *query,
                           const std::vector<Neighbor> &probes,
                           const SelectiveLutParams &params) const
{
    SparseLut lut;
    buildInto(query, probes, params, lut);
    return lut;
}

void
SelectiveLutBuilder::buildInto(const float *query,
                               const std::vector<Neighbor> &probes,
                               const SelectiveLutParams &params,
                               SparseLut &lut) const
{
    const Metric metric = scene_.metric();
    const int subspaces = scene_.numSubspaces();
    const std::size_t nprobs = probes.size();
    JUNO_REQUIRE(nprobs > 0, "no probed clusters");

    lut.shared_across_probes = metric == Metric::kInnerProduct;
    const std::size_t lut_probes = lut.shared_across_probes ? 1 : nprobs;

    // Resize-preserving-capacity: clear inner hit vectors instead of
    // reallocating the nested structure on every query.
    if (lut.hits.size() != lut_probes ||
        (lut_probes > 0 &&
         lut.hits[0].size() != static_cast<std::size_t>(subspaces))) {
        lut.hits.assign(lut_probes,
                        std::vector<std::vector<LutHit>>(
                            static_cast<std::size_t>(subspaces)));
        lut.miss_value.assign(lut_probes,
                              std::vector<float>(
                                  static_cast<std::size_t>(subspaces),
                                  0.0f));
    } else {
        for (auto &per_probe : lut.hits)
            for (auto &per_subspace : per_probe)
                per_subspace.clear();
    }
    lut.base.assign(nprobs, 0.0f);

    // Assemble the ray batch: one ray per (probe, subspace) for L2
    // (projections are cluster residuals), one per subspace for IP.
    rays_.clear();
    ctxs_.clear();
    residual_.resize(static_cast<std::size_t>(ivf_.dim()));
    for (std::size_t p = 0; p < lut_probes; ++p) {
        const float *proj_src;
        if (metric == Metric::kL2) {
            const cluster_t c = static_cast<cluster_t>(probes[p].id);
            ivf_.residual(query, c, residual_.data());
            proj_src = residual_.data();
        } else {
            proj_src = query;
        }
        for (int s = 0; s < subspaces; ++s) {
            const float x = proj_src[2 * s];
            const float y = proj_src[2 * s + 1];
            const double thr_raw = policy_.threshold(s, x, y);
            const double thr =
                policy_.scaled(s, thr_raw, params.threshold_scale);

            // Miss score for this (probe, subspace): the tightest score
            // an unselected entry could still have (paper: "a large
            // constant"; we charge the gate boundary).
            float miss;
            if (metric == Metric::kL2) {
                const double m = thr * params.miss_penalty;
                miss = static_cast<float>(m * m);
            } else {
                miss = static_cast<float>(thr);
            }
            lut.miss_value[p][static_cast<std::size_t>(s)] = miss;

            rt::Ray ray;
            if (!scene_.makeRay(s, x, y, thr, ray))
                continue; // empty gate: every entry misses
            RayCtx ctx;
            ctx.probe = static_cast<std::uint32_t>(p);
            ctx.subspace = s;
            const float k = scene_.coordScale(s);
            ctx.qnorm_scaled_sqr = (x * k) * (x * k) + (y * k) * (y * k);
            if (params.inner_gate) {
                // Inner gate at half scale: the reward sphere of the
                // JUNO-M reward/penalty scheme (paper Sec. 5.4).
                const double thr_inner = policy_.scaled(
                    s, thr_raw, params.threshold_scale * 0.5);
                ctx.tmax_inner = scene_.gateTmax(s, x, y, thr_inner);
            } else {
                ctx.tmax_inner =
                    -std::numeric_limits<float>::infinity();
            }
            ray.payload = ctxs_.size();
            rays_.push_back(ray);
            ctxs_.push_back(ctx);
        }
    }

    // IP base term: score(q, centroid) added per probed cluster,
    // computed by the dispatched (AVX2 when available) kernel.
    if (metric == Metric::kInnerProduct) {
        for (std::size_t p = 0; p < nprobs; ++p)
            lut.base[p] = simd::innerProduct(
                query, ivf_.centroid(static_cast<cluster_t>(probes[p].id)),
                ivf_.dim());
    }

    // The any-hit shader (paper Alg. 2 RT_HitShader): recover the score
    // from thit, record the entry. Always returns true: JUNO wants
    // every in-gate entry, not the closest hit.
    const bool is_l2 = metric == Metric::kL2;
    device_.launch(scene_.scene(), rays_, [&](const rt::Ray &ray,
                                              const rt::Hit &hit) {
        const RayCtx &ctx = ctxs_[static_cast<std::size_t>(ray.payload)];
        int sphere_s;
        entry_t e;
        JunoScene::unpackId(hit.user_id, sphere_s, e);
        // Geometric isolation makes cross-subspace hits impossible;
        // verify anyway (cheap) and drop any that would appear.
        if (sphere_s != ctx.subspace)
            return true;

        LutHit lh;
        lh.entry = e;
        lh.thit = hit.thit;
        lh.inner = hit.thit <= ctx.tmax_inner;
        if (is_l2)
            lh.value = scene_.lutValueL2(ctx.subspace, hit.thit);
        else
            lh.value = scene_.lutValueIp(ctx.subspace,
                                         ctx.qnorm_scaled_sqr, hit.thit);
        lut.hits[ctx.probe][static_cast<std::size_t>(ctx.subspace)]
            .push_back(lh);
        return true;
    });
}

} // namespace juno
