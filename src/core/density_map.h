/**
 * @file
 * Per-subspace density map (paper Sec. 4.1).
 *
 * Each 2-D subspace is divided into a grid (100x100 in the paper);
 * each cell records the count of search-point projections falling into
 * it divided by the cell area. At query time the density of the cell a
 * query projection falls into is the input feature of the threshold
 * regression model.
 */
#ifndef JUNO_CORE_DENSITY_MAP_H
#define JUNO_CORE_DENSITY_MAP_H

#include <vector>

#include "common/matrix.h"
#include "common/serialize.h"
#include "common/types.h"

namespace juno {

/** Density grid over one 2-D subspace. */
class SubspaceDensity {
  public:
    /**
     * Builds a @p grid x @p grid map over the bounding box of
     * @p points_xy (N x 2). The box is padded slightly so boundary
     * projections land inside.
     */
    void build(FloatMatrixView points_xy, int grid = 100);

    bool built() const { return grid_ > 0; }
    int grid() const { return grid_; }

    /** Density (points per unit area) at projection (x, y). */
    double densityAt(float x, float y) const;

    /** Raw count in the cell containing (x, y). */
    idx_t countAt(float x, float y) const;

    float minX() const { return min_x_; }
    float minY() const { return min_y_; }
    float maxX() const { return max_x_; }
    float maxY() const { return max_y_; }
    double cellArea() const { return cell_area_; }

    void save(Writer &writer) const;
    void load(Reader &reader);

  private:
    int cellIndex(float v, float lo, float hi) const;

    int grid_ = 0;
    float min_x_ = 0, max_x_ = 0, min_y_ = 0, max_y_ = 0;
    double cell_area_ = 0;
    std::vector<idx_t> counts_; // grid_ * grid_, row-major by y
};

/** One SubspaceDensity per subspace, built from residual projections. */
class DensityMap {
  public:
    /**
     * @param residuals N x D residual matrix;
     * @param num_subspaces D/2 two-dimensional subspaces;
     * @param grid cells per axis.
     */
    void build(FloatMatrixView residuals, int num_subspaces, int grid = 100);

    bool built() const { return !maps_.empty(); }
    int numSubspaces() const { return static_cast<int>(maps_.size()); }

    const SubspaceDensity &subspace(int s) const;

    /** Density of projection (x, y) in subspace @p s. */
    double
    densityAt(int s, float x, float y) const
    {
        return subspace(s).densityAt(x, y);
    }

    void save(Writer &writer) const;
    void load(Reader &reader);

  private:
    std::vector<SubspaceDensity> maps_;
};

} // namespace juno

#endif // JUNO_CORE_DENSITY_MAP_H
