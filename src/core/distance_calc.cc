#include "core/distance_calc.h"

#include <algorithm>

#include "common/logging.h"
#include "common/simd.h"

namespace juno {

const char *
searchModeName(SearchMode mode)
{
    switch (mode) {
      case SearchMode::kExactDistance:
        return "JUNO-H";
      case SearchMode::kRewardPenalty:
        return "JUNO-M";
      case SearchMode::kHitCount:
        return "JUNO-L";
    }
    return "JUNO-?";
}

DistanceCalculator::DistanceCalculator(const InvertedFileIndex &ivf,
                                       const InterestIndex &interest,
                                       const InterleavedLists *interleaved)
    : ivf_(ivf), interest_(interest), interleaved_(interleaved)
{
    JUNO_REQUIRE(interest.built(), "interest index not built");
    const std::size_t scratch =
        static_cast<std::size_t>(interest.maxClusterSize());
    acc_.assign(scratch, 0.0f);
    hit_count_.assign(scratch, 0);
    if (interleaved_ != nullptr && !interleaved_->built())
        interleaved_ = nullptr;
    if (interleaved_ != nullptr) {
        flag_acc_.assign(scratch, 0.0f);
        const std::size_t lut_sz =
            static_cast<std::size_t>(interest.numSubspaces()) *
            static_cast<std::size_t>(interest.entries());
        delta_lut_.assign(lut_sz, 0.0f);
        flag_lut_.assign(lut_sz, 0.0f);
    }
}

void
DistanceCalculator::accumulateCluster(Metric metric, SearchMode mode,
                                      const std::vector<Neighbor> &probes,
                                      std::size_t probe_ordinal,
                                      const SparseLut &lut,
                                      std::vector<Neighbor> &out)
{
    const cluster_t c =
        static_cast<cluster_t>(probes[probe_ordinal].id);
    const auto &list = ivf_.list(c);
    if (list.empty())
        return;
    const int subspaces = interest_.numSubspaces();
    const auto &hits = lut.forProbe(probe_ordinal);
    const std::size_t n = list.size();

    const bool exact = mode == SearchMode::kExactDistance;
    const auto deltaOf = [&](const LutHit &lh, float miss) {
        if (exact) {
            // Store value - miss so the final score is simply
            // acc + sum_of_misses, regardless of which subspaces
            // hit (misses vary per subspace).
            return lh.value - miss;
        }
        if (mode == SearchMode::kHitCount)
            return 1.0f;
        // Reward/penalty: +1 inner, 0 outer-only, -1 miss,
        // encoded as acc += (inner ? 2 : 1), final -= S.
        return lh.inner ? 2.0f : 1.0f;
    };

    // Dense regime detection: when most entries were selected, the
    // sparse interest-index walk degenerates into scattered writes
    // over nearly every (point, subspace) pair; expanding the hits
    // into a dense delta LUT and streaming the cluster's interleaved
    // codes does the same adds sequentially and SIMD-wide.
    std::size_t selected = 0;
    for (int s = 0; s < subspaces; ++s)
        selected += hits[static_cast<std::size_t>(s)].size();
    const int entries = interest_.entries();
    const bool dense =
        interleaved_ != nullptr &&
        static_cast<double>(selected) >=
            dense_threshold_ * static_cast<double>(subspaces) *
                static_cast<double>(entries);

    if (dense) {
        // Expand the sparse hits into delta/flag LUTs, then stream the
        // list-resident interleaved codes once per LUT. Per point this
        // performs one add per subspace in subspace order — bitwise
        // identical to the sparse walk (unselected entries contribute
        // an exact 0.0f, which cannot change any partial sum).
        // In hit-count mode every delta is 1.0f, so the delta scan IS
        // the flag scan; skip the second pass.
        const bool counts_equal_acc = mode == SearchMode::kHitCount;
        const auto stride = static_cast<std::size_t>(entries);
        std::fill_n(delta_lut_.begin(),
                    static_cast<std::size_t>(subspaces) * stride, 0.0f);
        if (!counts_equal_acc)
            std::fill_n(flag_lut_.begin(),
                        static_cast<std::size_t>(subspaces) * stride,
                        0.0f);
        for (int s = 0; s < subspaces; ++s) {
            const float miss = lut.missFor(probe_ordinal, s);
            for (const LutHit &lh : hits[static_cast<std::size_t>(s)]) {
                const std::size_t cell =
                    static_cast<std::size_t>(s) * stride + lh.entry;
                delta_lut_[cell] = deltaOf(lh, miss);
                if (!counts_equal_acc)
                    flag_lut_[cell] = 1.0f;
            }
        }
        const entry_t *blocks = interleaved_->listBlocks(c);
        simd::adcScanInterleaved(delta_lut_.data(),
                                 static_cast<idx_t>(entries), subspaces,
                                 blocks, n, 0.0f, acc_.data());
        if (!counts_equal_acc)
            simd::adcScanInterleaved(flag_lut_.data(),
                                     static_cast<idx_t>(entries),
                                     subspaces, blocks, n, 0.0f,
                                     flag_acc_.data());
        const float *counts =
            counts_equal_acc ? acc_.data() : flag_acc_.data();
        for (std::size_t i = 0; i < n; ++i)
            hit_count_[i] = static_cast<std::int32_t>(counts[i]);
    } else {
        // Reset the per-ordinal scratch for this cluster; the dense
        // clear keeps the inner accumulation loop down to two
        // operations per (entry hit, point) pair, which is the
        // stage's critical path.
        std::fill_n(acc_.begin(), n, 0.0f);
        std::fill_n(hit_count_.begin(), n, 0);

        // Walk the selected entries subspace by subspace and
        // accumulate into the scratch (paper: "access the inverted
        // index to retrieve the search points whose entry is
        // matched").
        for (int s = 0; s < subspaces; ++s) {
            const float miss = lut.missFor(probe_ordinal, s);
            for (const LutHit &lh : hits[static_cast<std::size_t>(s)]) {
                const auto range = interest_.lookup(c, s, lh.entry);
                const float delta = deltaOf(lh, miss);
                for (const std::uint32_t *it = range.begin;
                     it != range.end; ++it) {
                    const std::uint32_t ord = *it;
                    ++hit_count_[ord];
                    acc_[ord] += delta;
                }
            }
        }
    }

    // Finalise. Points never touched keep the paper's "large constant"
    // semantics by simply not becoming candidates.
    float offset = 0.0f;
    if (exact) {
        offset = lut.base[probe_ordinal];
        for (int s = 0; s < subspaces; ++s)
            offset += lut.missFor(probe_ordinal, s);
    } else if (mode == SearchMode::kRewardPenalty) {
        offset = -static_cast<float>(subspaces);
    }

    // Candidate compaction through the dispatch table: the AVX2 path
    // skips untouched ordinals eight at a time, which dominates under
    // the selective LUT's sparse hit pattern.
    simd::compactCandidates(acc_.data(), hit_count_.data(), list.data(), n,
                            offset, out);
    (void)metric;
}

std::vector<Neighbor>
DistanceCalculator::run(Metric metric, SearchMode mode,
                        const std::vector<Neighbor> &probes,
                        const SparseLut &lut, idx_t k)
{
    JUNO_REQUIRE(k > 0, "k must be positive");
    std::vector<Neighbor> candidates;
    for (std::size_t p = 0; p < probes.size(); ++p)
        accumulateCluster(metric, mode, probes, p, lut, candidates);

    // Hit counts are higher-is-better under either metric.
    const Metric order = mode == SearchMode::kExactDistance
                             ? metric
                             : Metric::kInnerProduct;
    TopK top(k, order);
    for (const auto &cand : candidates)
        top.push(cand.id, cand.score);
    return top.take();
}

std::vector<Neighbor>
DistanceCalculator::scoreCluster(Metric metric, SearchMode mode,
                                 const std::vector<Neighbor> &probes,
                                 std::size_t probe_ordinal,
                                 const SparseLut &lut)
{
    JUNO_REQUIRE(probe_ordinal < probes.size(), "probe ordinal range");
    std::vector<Neighbor> out;
    accumulateCluster(metric, mode, probes, probe_ordinal, lut, out);
    return out;
}

} // namespace juno
