#include "registry/index_spec.h"

#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace juno {
namespace {

bool
validToken(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char c : s)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

} // namespace

IndexSpec
IndexSpec::parse(const std::string &text)
{
    IndexSpec spec;
    const auto colon = text.find(':');
    spec.type = text.substr(0, colon);
    JUNO_REQUIRE(validToken(spec.type),
                 "bad index spec '" << text
                                    << "': type must be [a-z0-9_]+");
    if (colon == std::string::npos)
        return spec;

    const std::string rest = text.substr(colon + 1);
    JUNO_REQUIRE(!rest.empty(), "bad index spec '"
                                    << text
                                    << "': empty parameter list");
    std::size_t begin = 0;
    while (begin <= rest.size()) {
        auto comma = rest.find(',', begin);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string pair = rest.substr(begin, comma - begin);
        const auto eq = pair.find('=');
        JUNO_REQUIRE(eq != std::string::npos && eq + 1 < pair.size(),
                     "bad index spec '" << text << "': expected "
                                        << "key=value, got '" << pair
                                        << "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        JUNO_REQUIRE(validToken(key), "bad index spec '"
                                          << text << "': key '" << key
                                          << "' must be [a-z0-9_]+");
        JUNO_REQUIRE(!spec.has(key), "bad index spec '"
                                         << text << "': duplicate key '"
                                         << key << "'");
        spec.params.emplace_back(key, value);
        begin = comma + 1;
    }
    return spec;
}

std::string
IndexSpec::toString() const
{
    std::string out = type;
    for (std::size_t i = 0; i < params.size(); ++i) {
        out += i == 0 ? ':' : ',';
        out += params[i].first;
        out += '=';
        out += params[i].second;
    }
    return out;
}

bool
IndexSpec::has(const std::string &key) const
{
    for (const auto &kv : params)
        if (kv.first == key)
            return true;
    return false;
}

std::string
IndexSpec::get(const std::string &key, const std::string &fallback) const
{
    for (const auto &kv : params)
        if (kv.first == key)
            return kv.second;
    return fallback;
}

long
IndexSpec::getInt(const std::string &key, long fallback) const
{
    if (!has(key))
        return fallback;
    const std::string value = get(key);
    try {
        std::size_t used = 0;
        const long v = std::stol(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("index spec key '" + key + "' expects an integer, got '" +
              value + "'");
    }
}

double
IndexSpec::getDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    const std::string value = get(key);
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("index spec key '" + key + "' expects a number, got '" +
              value + "'");
    }
}

bool
IndexSpec::getBool(const std::string &key, bool fallback) const
{
    if (!has(key))
        return fallback;
    const std::string value = get(key);
    if (value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    fatal("index spec key '" + key + "' expects 0/1, got '" + value +
          "'");
}

void
IndexSpec::set(const std::string &key, const std::string &value)
{
    JUNO_REQUIRE(validToken(key), "bad spec key '" << key << "'");
    JUNO_REQUIRE(!value.empty() &&
                     value.find(',') == std::string::npos &&
                     value.find('=') == std::string::npos,
                 "bad spec value '" << value << "' for key '" << key
                                    << "'");
    for (auto &kv : params)
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    params.emplace_back(key, value);
}

void
IndexSpec::setInt(const std::string &key, long value)
{
    set(key, std::to_string(value));
}

void
IndexSpec::setDouble(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(std::numeric_limits<double>::max_digits10);
    oss << value;
    set(key, oss.str());
}

void
IndexSpec::setBool(const std::string &key, bool value)
{
    set(key, value ? "1" : "0");
}

void
IndexSpec::requireKnown(std::initializer_list<const char *> known) const
{
    for (const auto &kv : params) {
        bool ok = false;
        for (const char *k : known)
            if (kv.first == k) {
                ok = true;
                break;
            }
        if (!ok) {
            std::string accepted;
            for (const char *k : known) {
                if (!accepted.empty())
                    accepted += ", ";
                accepted += k;
            }
            fatal("index spec '" + toString() + "': unknown key '" +
                  kv.first + "' for type '" + type + "' (accepted: " +
                  accepted + ")");
        }
    }
}

} // namespace juno
