#include "registry/index_factory.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "baseline/flat_index.h"
#include "baseline/hnsw.h"
#include "baseline/ivfflat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/logging.h"
#include "core/juno_index.h"
#include "core/rt_exact_index.h"

namespace juno {
namespace {

SearchMode
parseSearchMode(const std::string &key)
{
    if (key == "h")
        return SearchMode::kExactDistance;
    if (key == "m")
        return SearchMode::kRewardPenalty;
    if (key == "l")
        return SearchMode::kHitCount;
    fatal("unknown JUNO mode '" + key + "' (use h, m or l)");
}

ThresholdMode
parseThresholdMode(const std::string &key)
{
    if (key == "dyn")
        return ThresholdMode::kDynamic;
    if (key == "small")
        return ThresholdMode::kStaticSmall;
    if (key == "large")
        return ThresholdMode::kStaticLarge;
    fatal("unknown threshold mode '" + key +
          "' (use dyn, small or large)");
}

std::unique_ptr<AnnIndex>
buildFlat(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({});
    return std::make_unique<FlatIndex>(metric, points);
}

std::unique_ptr<AnnIndex>
buildIvfFlat(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({"nlist", "nprobe", "seed", "iters", "train"});
    IvfFlatIndex::Params params;
    params.clusters = static_cast<int>(spec.getInt("nlist", 256));
    params.nprobs = spec.getInt("nprobe", 8);
    params.seed = static_cast<std::uint64_t>(spec.getInt("seed", 31));
    params.max_iters = static_cast<int>(spec.getInt("iters", 20));
    params.max_training_points = spec.getInt("train", 0);
    return std::make_unique<IvfFlatIndex>(metric, points, params);
}

std::unique_ptr<AnnIndex>
buildIvfPq(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({"nlist", "m", "entries", "nprobe", "hnsw",
                       "hnsw_m", "ef", "seed", "train", "interleaved"});
    IvfPqIndex::Params params;
    params.clusters = static_cast<int>(spec.getInt("nlist", 256));
    params.pq_subspaces = static_cast<int>(spec.getInt("m", 48));
    params.pq_entries = static_cast<int>(spec.getInt("entries", 256));
    params.nprobs = spec.getInt("nprobe", 8);
    params.use_hnsw_router = spec.getBool("hnsw", false);
    params.hnsw_m = static_cast<int>(spec.getInt("hnsw_m", 16));
    params.hnsw_ef_search = static_cast<int>(spec.getInt("ef", 64));
    params.seed = static_cast<std::uint64_t>(spec.getInt("seed", 31));
    params.max_training_points = spec.getInt("train", 0);
    params.use_interleaved = spec.getBool("interleaved", true);
    return std::make_unique<IvfPqIndex>(metric, points, params);
}

std::unique_ptr<AnnIndex>
buildHnsw(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({"m", "efc", "ef", "seed"});
    Hnsw::Params params;
    params.m = static_cast<int>(spec.getInt("m", 16));
    params.ef_construction = static_cast<int>(spec.getInt("efc", 100));
    params.seed = static_cast<std::uint64_t>(spec.getInt("seed", 97));
    auto index = std::make_unique<Hnsw>();
    index->build(metric, points, params);
    index->setEfSearch(static_cast<int>(spec.getInt("ef", 64)));
    return index;
}

std::unique_ptr<AnnIndex>
buildJuno(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({"nlist", "entries", "nprobe", "mode", "scale",
                       "tmode", "penalty", "rt", "pipelined",
                       "interleaved", "grid", "psamples", "prefs",
                       "ptopk", "pdeg", "radius", "gatefrac", "seed",
                       "train"});
    JunoParams params;
    params.clusters = static_cast<int>(spec.getInt("nlist", 256));
    params.pq_entries = static_cast<int>(spec.getInt("entries", 256));
    params.nprobs = spec.getInt("nprobe", 8);
    params.mode = parseSearchMode(spec.get("mode", "h"));
    params.threshold_scale = spec.getDouble("scale", 1.0);
    params.threshold_mode = parseThresholdMode(spec.get("tmode", "dyn"));
    params.miss_penalty = spec.getDouble("penalty", 1.0);
    params.use_rt_core = spec.getBool("rt", true);
    params.pipelined = spec.getBool("pipelined", false);
    params.use_interleaved = spec.getBool("interleaved", true);
    params.density_grid = static_cast<int>(spec.getInt("grid", 100));
    params.policy.train_samples = spec.getInt("psamples", 200);
    params.policy.ref_samples = spec.getInt("prefs", 4000);
    params.policy.contain_topk = spec.getInt("ptopk", 100);
    params.policy.poly_degree = static_cast<int>(spec.getInt("pdeg", 3));
    params.scene.gate_radius = static_cast<float>(
        spec.getDouble("radius", params.scene.gate_radius));
    params.scene.max_gate_fraction = static_cast<float>(
        spec.getDouble("gatefrac", params.scene.max_gate_fraction));
    params.seed = static_cast<std::uint64_t>(spec.getInt("seed", 31));
    params.max_training_points = spec.getInt("train", 0);
    return std::make_unique<JunoIndex>(metric, points, params);
}

std::unique_ptr<AnnIndex>
buildRtExact(Metric metric, FloatMatrixView points, const IndexSpec &spec)
{
    spec.requireKnown({});
    JUNO_REQUIRE(metric == Metric::kL2,
                 "rtexact supports only the L2 metric");
    return std::make_unique<RtExactIndex>(points);
}

} // namespace

IndexFactory::IndexFactory()
{
    registerType("flat", buildFlat, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(FlatIndex::open(r));
    });
    registerType("ivfflat", buildIvfFlat, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(IvfFlatIndex::open(r));
    });
    registerType("ivfpq", buildIvfPq, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(IvfPqIndex::open(r));
    });
    registerType("hnsw", buildHnsw, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(Hnsw::open(r));
    });
    registerType("juno", buildJuno, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(JunoIndex::open(r));
    });
    registerType("rtexact", buildRtExact, [](SnapshotReader &r) {
        return std::unique_ptr<AnnIndex>(RtExactIndex::open(r));
    });
}

IndexFactory &
IndexFactory::instance()
{
    static IndexFactory factory;
    return factory;
}

void
IndexFactory::registerType(const std::string &type, BuildFn build,
                           OpenFn open)
{
    for (auto &entry : entries_)
        if (entry.type == type) {
            entry.build = std::move(build);
            entry.open = std::move(open);
            return;
        }
    entries_.push_back({type, std::move(build), std::move(open)});
}

const IndexFactory::Entry &
IndexFactory::find(const std::string &type) const
{
    for (const auto &entry : entries_)
        if (entry.type == type)
            return entry;
    std::string known;
    for (const auto &t : types()) {
        if (!known.empty())
            known += ", ";
        known += t;
    }
    fatal("unknown index type '" + type + "' (registered: " + known +
          ")");
}

std::unique_ptr<AnnIndex>
IndexFactory::build(Metric metric, FloatMatrixView points,
                    const IndexSpec &spec) const
{
    return find(spec.type).build(metric, points, spec);
}

std::unique_ptr<AnnIndex>
IndexFactory::open(SnapshotReader &reader) const
{
    const IndexSpec spec = IndexSpec::parse(reader.spec());
    return find(spec.type).open(reader);
}

std::vector<std::string>
IndexFactory::types() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.type);
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<AnnIndex>
buildIndex(Metric metric, FloatMatrixView points, const std::string &spec)
{
    return IndexFactory::instance().build(metric, points,
                                          IndexSpec::parse(spec));
}

std::unique_ptr<AnnIndex>
openIndex(const std::string &path, const SnapshotOptions &options)
{
    // Legacy single-stream JUNO files predate the container; route
    // them through the migration shim so every caller keeps working.
    char magic[8] = {};
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe)
            fatal("cannot open " + path);
        probe.read(magic, 8);
    }
    if (std::memcmp(magic, "JUNOIDX1", 8) == 0)
        return JunoIndex::load(path);
    SnapshotReader reader(path, options);
    return IndexFactory::instance().open(reader);
}

} // namespace juno
