#include "registry/snapshot.h"

#include <array>
#include <cstring>

#include "common/fault_injection.h"

namespace juno {
namespace {

constexpr char kSnapshotMagic[8] = {'J', 'U', 'N', 'O',
                                    'S', 'N', 'A', 'P'};
constexpr std::uint32_t kContainerVersion = 1;
constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kSectionAlign = 64;
/** TOC sanity bound: no real snapshot has more sections than this. */
constexpr std::uint32_t kMaxSections = 4096;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t bytes, std::uint32_t seed)
{
    static const auto table = makeCrcTable();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < bytes; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(const std::string &path,
                               const std::string &spec)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        fatal("cannot open " + path + " for writing");
    JUNO_REQUIRE(!spec.empty(), "snapshot requires a non-empty spec");
    // Header with zeroed patch fields; finish() fills them in.
    char header[kHeaderBytes] = {};
    std::memcpy(header, kSnapshotMagic, 8);
    std::memcpy(header + 8, &kContainerVersion, 4);
    out_.write(header, static_cast<std::streamsize>(kHeaderBytes));
    if (!out_)
        fatal("short write to " + path_);
    addBlob("spec", spec.data(), spec.size());
}

SnapshotWriter::~SnapshotWriter()
{
    if (!finished_)
        warn("snapshot " + path_ +
             " discarded without finish(); file is not loadable");
}

void
SnapshotWriter::checkName(const std::string &name) const
{
    JUNO_REQUIRE(!name.empty(), "snapshot section needs a name");
    for (const auto &e : toc_)
        JUNO_REQUIRE(e.name != name,
                     "duplicate snapshot section '" << name << "'");
}

std::uint64_t
SnapshotWriter::alignTo64()
{
    auto pos = static_cast<std::uint64_t>(out_.tellp());
    if (pos % kSectionAlign != 0) {
        const char zeros[kSectionAlign] = {};
        const auto pad = kSectionAlign - pos % kSectionAlign;
        out_.write(zeros, static_cast<std::streamsize>(pad));
        pos += pad;
    }
    if (!out_)
        fatal("short write to " + path_);
    return pos;
}

Writer &
SnapshotWriter::section(const std::string &name)
{
    JUNO_REQUIRE(!finished_, "snapshot already finished");
    flushPending();
    checkName(name);
    pending_name_ = name;
    pending_open_ = true;
    pending_.clear();
    return pending_;
}

void
SnapshotWriter::flushPending()
{
    if (!pending_open_)
        return;
    pending_open_ = false;
    addBlob(pending_name_, pending_.buffer().data(),
            pending_.buffer().size());
    pending_.clear();
}

void
SnapshotWriter::addBlob(const std::string &name, const void *data,
                        std::size_t bytes)
{
    JUNO_REQUIRE(!finished_, "snapshot already finished");
    // addBlob() may be re-entered from flushPending(): only flush when
    // a *different* staged section is still open.
    if (pending_open_ && pending_name_ != name)
        flushPending();
    checkName(name);
    Entry entry;
    entry.name = name;
    entry.offset = alignTo64();
    entry.bytes = bytes;
    entry.crc = crc32(data, bytes);
    if (bytes != 0) {
        out_.write(static_cast<const char *>(data),
                   static_cast<std::streamsize>(bytes));
        if (!out_)
            fatal("short write to " + path_);
    }
    toc_.push_back(std::move(entry));
}

void
SnapshotWriter::finish()
{
    JUNO_REQUIRE(!finished_, "snapshot already finished");
    flushPending();
    finished_ = true;

    const auto toc_offset = static_cast<std::uint64_t>(out_.tellp());
    BufferWriter toc;
    for (const auto &e : toc_) {
        toc.writeString(e.name);
        toc.writePod<std::uint64_t>(e.offset);
        toc.writePod<std::uint64_t>(e.bytes);
        toc.writePod<std::uint32_t>(e.crc);
    }
    const std::uint32_t toc_crc =
        crc32(toc.buffer().data(), toc.buffer().size());
    out_.write(toc.buffer().data(),
               static_cast<std::streamsize>(toc.buffer().size()));
    out_.write(reinterpret_cast<const char *>(&toc_crc), 4);

    const std::uint64_t file_bytes =
        toc_offset + toc.buffer().size() + 4;
    const auto section_count = static_cast<std::uint32_t>(toc_.size());
    out_.seekp(12);
    out_.write(reinterpret_cast<const char *>(&section_count), 4);
    out_.write(reinterpret_cast<const char *>(&toc_offset), 8);
    out_.write(reinterpret_cast<const char *>(&file_bytes), 8);
    out_.flush();
    if (!out_)
        fatal("short write to " + path_);
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

SnapshotReader::SnapshotReader(const std::string &path,
                               const SnapshotOptions &options)
    : path_(path), options_(options)
{
    if (options_.use_mmap)
        blob_ = MappedBlob::map(path);

    std::vector<std::uint8_t> owned; // header + TOC in buffered mode
    const std::uint8_t *file = nullptr;
    std::uint64_t actual_bytes = 0;
    std::ifstream in;
    if (blob_ != nullptr) {
        file = blob_->data();
        actual_bytes = blob_->size();
    } else {
        in.open(path, std::ios::binary);
        if (!in)
            fatal("cannot open " + path);
        in.seekg(0, std::ios::end);
        actual_bytes = static_cast<std::uint64_t>(in.tellg());
        in.seekg(0);
    }

    if (actual_bytes < kHeaderBytes)
        fatal(path + ": not a JUNO snapshot (file too small)");

    std::uint8_t header[kHeaderBytes];
    if (blob_ != nullptr) {
        std::memcpy(header, file, kHeaderBytes);
    } else {
        in.read(reinterpret_cast<char *>(header), kHeaderBytes);
        if (!in)
            fatal(path + ": truncated snapshot header");
    }
    if (std::memcmp(header, kSnapshotMagic, 8) != 0)
        fatal(path + ": bad magic (not a JUNO snapshot)");
    std::uint32_t version, section_count;
    std::uint64_t toc_offset, file_bytes;
    std::memcpy(&version, header + 8, 4);
    std::memcpy(&section_count, header + 12, 4);
    std::memcpy(&toc_offset, header + 16, 8);
    std::memcpy(&file_bytes, header + 24, 8);
    if (version != kContainerVersion)
        fatal(path + ": snapshot container version " +
              std::to_string(version) + " unsupported (expected " +
              std::to_string(kContainerVersion) + ")");
    if (file_bytes != actual_bytes)
        fatal(path + ": truncated snapshot (" +
              std::to_string(actual_bytes) + " bytes, expected " +
              std::to_string(file_bytes) + ")");
    // Subtraction forms only: additions on attacker-controlled u64
    // offsets can wrap and defeat the range checks.
    if (section_count == 0 || section_count > kMaxSections ||
        toc_offset < kHeaderBytes || toc_offset > file_bytes - 4)
        fatal(path + ": corrupt snapshot header");

    // TOC + trailing crc32.
    const auto toc_bytes =
        static_cast<std::size_t>(file_bytes - toc_offset - 4);
    std::vector<std::uint8_t> toc_buf;
    const std::uint8_t *toc_data = nullptr;
    std::uint32_t stored_crc = 0;
    if (blob_ != nullptr) {
        toc_data = file + toc_offset;
        std::memcpy(&stored_crc, file + file_bytes - 4, 4);
    } else {
        toc_buf.resize(toc_bytes + 4);
        in.seekg(static_cast<std::streamoff>(toc_offset));
        in.read(reinterpret_cast<char *>(toc_buf.data()),
                static_cast<std::streamsize>(toc_buf.size()));
        if (!in)
            fatal(path + ": truncated snapshot TOC");
        toc_data = toc_buf.data();
        std::memcpy(&stored_crc, toc_buf.data() + toc_bytes, 4);
    }
    if (crc32(toc_data, toc_bytes) != stored_crc)
        fatal(path + ": snapshot TOC checksum mismatch (corrupt file)");

    BoundedMemReader toc(toc_data, toc_bytes, path + " [toc]");
    toc_.reserve(section_count);
    for (std::uint32_t i = 0; i < section_count; ++i) {
        Entry e;
        e.name = toc.readString();
        e.offset = toc.readPod<std::uint64_t>();
        e.bytes = toc.readPod<std::uint64_t>();
        e.crc = toc.readPod<std::uint32_t>();
        if (e.offset < kHeaderBytes || e.offset % kSectionAlign != 0 ||
            e.offset > toc_offset || e.bytes > toc_offset - e.offset)
            fatal(path + ": corrupt snapshot TOC entry '" + e.name +
                  "'");
        toc_.push_back(std::move(e));
    }
    if (toc.remaining() != 0)
        fatal(path + ": corrupt snapshot TOC (trailing bytes)");
    if (!has("spec"))
        fatal(path + ": snapshot has no spec section");

    // stream() verifies the checksum in both modes — a corrupt spec
    // must never dispatch to the wrong loader.
    auto spec_stream = stream("spec");
    spec_.resize(spec_stream.remaining());
    if (!spec_.empty())
        spec_stream.readRaw(spec_.data(), spec_.size());
    if (spec_.empty())
        fatal(path + ": snapshot has an empty spec");
}

bool
SnapshotReader::has(const std::string &name) const
{
    for (const auto &e : toc_)
        if (e.name == name)
            return true;
    return false;
}

const SnapshotReader::Entry &
SnapshotReader::find(const std::string &name) const
{
    for (const auto &e : toc_)
        if (e.name == name)
            return e;
    fatal(path_ + ": snapshot has no '" + name +
          "' section (incompatible or corrupt file)");
}

std::shared_ptr<std::vector<std::uint8_t>>
SnapshotReader::readCopy(const Entry &e)
{
    // Chaos hook: injected delays model slow/contended snapshot IO;
    // injected errors surface as the same exception path a real read
    // failure would take.
    fault::inject("snapshot.read");
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(e.bytes));
    if (e.bytes != 0) {
        std::ifstream in(path_, std::ios::binary);
        if (!in)
            fatal("cannot open " + path_);
        in.seekg(static_cast<std::streamoff>(e.offset));
        in.read(reinterpret_cast<char *>(buf->data()),
                static_cast<std::streamsize>(e.bytes));
        if (!in)
            fatal(path_ + ": truncated snapshot section '" + e.name +
                  "'");
    }
    if (crc32(buf->data(), buf->size()) != e.crc)
        fatal(path_ + ": checksum mismatch in section '" + e.name +
              "' (corrupt file)");
    return buf;
}

BoundedMemReader
SnapshotReader::stream(const std::string &name)
{
    const Entry &e = find(name);
    const std::string label = path_ + " [" + name + "]";
    if (blob_ != nullptr) {
        const std::uint8_t *data = blob_->data() + e.offset;
        // Stream sections are small; verifying them even in mmap mode
        // costs a few pages and catches corrupt metadata up front.
        if (crc32(data, static_cast<std::size_t>(e.bytes)) != e.crc)
            fatal(label + ": checksum mismatch (corrupt file)");
        return BoundedMemReader(data, static_cast<std::size_t>(e.bytes),
                                label);
    }
    auto copy = readCopy(e);
    retained_.push_back(copy);
    return BoundedMemReader(copy->data(), copy->size(), label);
}

SnapshotReader::Blob
SnapshotReader::blob(const std::string &name)
{
    const Entry &e = find(name);
    Blob out;
    out.bytes = static_cast<std::size_t>(e.bytes);
    if (blob_ != nullptr) {
        out.data = blob_->data() + e.offset;
        out.keepalive =
            std::shared_ptr<const void>(blob_, blob_->data());
        if (options_.paranoid_checksums &&
            crc32(out.data, out.bytes) != e.crc)
            fatal(path_ + ": checksum mismatch in section '" + name +
                  "' (corrupt file)");
        return out;
    }
    auto copy = readCopy(e);
    out.data = copy->data();
    out.keepalive = copy;
    return out;
}

} // namespace juno
