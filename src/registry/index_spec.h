/**
 * @file
 * Textual index specification (faiss index_factory-style key strings).
 *
 * A spec names an index type and its build parameters in one
 * round-trippable line:
 *
 *   "flat"
 *   "ivfflat:nlist=256,nprobe=8"
 *   "ivfpq:nlist=1024,m=16,entries=16,nprobe=8,hnsw=1"
 *   "hnsw:m=16,efc=100,ef=64"
 *   "juno:nlist=256,entries=128,nprobe=32,mode=h,scale=1.0"
 *   "rtexact"
 *
 * Grammar: `type[:key=value[,key=value]...]`. Types and keys are
 * lower-case [a-z0-9_]; values are any non-empty text free of ','.
 * parse(toString(spec)) == spec — key order is preserved, so every
 * spec has one canonical text form and text diffs stay readable.
 *
 * IndexSpec is the input of IndexFactory::build() and the provenance
 * record stored in every snapshot's "spec" section; AnnIndex::spec()
 * emits the canonical string that rebuilds an equivalent index.
 */
#ifndef JUNO_REGISTRY_INDEX_SPEC_H
#define JUNO_REGISTRY_INDEX_SPEC_H

#include <string>
#include <utility>
#include <vector>

namespace juno {

/** Parsed index spec: a type plus ordered key=value parameters. */
struct IndexSpec {
    std::string type;
    /** Insertion-ordered; keys are unique. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Parses `type[:k=v,...]`; throws ConfigError on malformed text. */
    static IndexSpec parse(const std::string &text);

    /** Canonical text form; parse(toString()) reproduces *this. */
    std::string toString() const;

    bool has(const std::string &key) const;
    /** Raw value; @p fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;
    /** Typed getters; throw ConfigError on unparsable values. */
    long getInt(const std::string &key, long fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Appends a key=value pair (builder-side convenience). */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, long value);
    /** Round-trip-exact double formatting (max_digits10). */
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /**
     * Rejects any key outside @p known with a ConfigError listing the
     * accepted keys — a typo in a spec fails loudly instead of
     * silently building a default-configured index.
     */
    void requireKnown(std::initializer_list<const char *> known) const;

    bool operator==(const IndexSpec &other) const
    {
        return type == other.type && params == other.params;
    }
    bool operator!=(const IndexSpec &other) const
    {
        return !(*this == other);
    }
};

} // namespace juno

#endif // JUNO_REGISTRY_INDEX_SPEC_H
