/**
 * @file
 * The index lifecycle front door: describe -> build -> save -> open.
 *
 *   auto index = buildIndex(metric, points, "ivfpq:nlist=256,m=16");
 *   index->save("idx.juno");
 *   ...
 *   auto served = openIndex("idx.juno");   // no re-training
 *
 * IndexFactory maps every IndexSpec type to its builder and its
 * snapshot loader. All six shipping index types register here (flat,
 * ivfflat, ivfpq, hnsw, juno, rtexact); new types add one
 * registerType() call. openIndex() dispatches on the spec string
 * stored in the snapshot, so one code path re-opens any index — this
 * is what serving warm-start, the bench snapshot cache and the CLI
 * build on.
 */
#ifndef JUNO_REGISTRY_INDEX_FACTORY_H
#define JUNO_REGISTRY_INDEX_FACTORY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/index.h"
#include "registry/index_spec.h"
#include "registry/snapshot.h"

namespace juno {

/** Registry of index types: spec type -> build / open functions. */
class IndexFactory {
  public:
    using BuildFn = std::function<std::unique_ptr<AnnIndex>(
        Metric, FloatMatrixView, const IndexSpec &)>;
    using OpenFn =
        std::function<std::unique_ptr<AnnIndex>(SnapshotReader &)>;

    /** The process-wide factory (built-in types pre-registered). */
    static IndexFactory &instance();

    /** Registers (or replaces) a type. */
    void registerType(const std::string &type, BuildFn build,
                      OpenFn open);

    /** Trains a new index over @p points as described by @p spec. */
    std::unique_ptr<AnnIndex> build(Metric metric, FloatMatrixView points,
                                    const IndexSpec &spec) const;

    /** Restores the index whose spec is stored in @p reader. */
    std::unique_ptr<AnnIndex> open(SnapshotReader &reader) const;

    /** Registered type names, sorted (CLI help / error messages). */
    std::vector<std::string> types() const;

  private:
    IndexFactory();

    struct Entry {
        std::string type;
        BuildFn build;
        OpenFn open;
    };

    const Entry &find(const std::string &type) const;

    std::vector<Entry> entries_;
};

/** Convenience: parse @p spec and build through the factory. */
std::unique_ptr<AnnIndex> buildIndex(Metric metric, FloatMatrixView points,
                                     const std::string &spec);

/**
 * Convenience: open the snapshot at @p path (any registered index
 * type). With options.use_mmap the large payloads are viewed straight
 * from the mapping, so first-query-ready cost is page-in, not parse.
 */
std::unique_ptr<AnnIndex> openIndex(const std::string &path,
                                    const SnapshotOptions &options = {});

} // namespace juno

#endif // JUNO_REGISTRY_INDEX_FACTORY_H
