/**
 * @file
 * Versioned snapshot container: the one on-disk format every index
 * type persists through (DESIGN.md "Index lifecycle & persistence").
 *
 * Layout (all integers little-endian):
 *
 *   0    "JUNOSNAP"                      8-byte magic
 *   8    u32  container_version (= 1)
 *   12   u32  section_count
 *   16   u64  toc_offset
 *   24   u64  file_bytes                 (fast truncation check)
 *   32   zero padding to 64
 *   64   section payloads, each padded so its payload starts on a
 *        64-byte boundary (mmap views of float/code planes are
 *        cache-line- and SIMD-aligned for free)
 *   ...  TOC: per section { string name, u64 offset, u64 bytes,
 *        u32 crc32 }, then u32 crc32 of the TOC bytes themselves
 *
 * Two section flavours by convention:
 *  - "meta"-style streams: small typed payloads staged through a
 *    BufferWriter (params, shapes, list offsets). Always read through
 *    a buffered, crc-checked copy.
 *  - bulk blobs: large flat payloads (raw vectors, PQ code planes,
 *    adjacency) written directly from index memory. In mmap mode
 *    open() hands out pointers into the mapping (zero-copy; checksum
 *    verification is optional there, since eagerly touching every
 *    page would defeat lazy page-in).
 *
 * The first section of every index snapshot is "spec": the
 * IndexSpec string (registry/index_spec.h) naming the index type and
 * its build parameters; openIndex() dispatches on it.
 */
#ifndef JUNO_REGISTRY_SNAPSHOT_H
#define JUNO_REGISTRY_SNAPSHOT_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/mmap_blob.h"
#include "common/serialize.h"

namespace juno {

/** crc32 (IEEE 802.3 polynomial) of @p bytes. */
std::uint32_t crc32(const void *data, std::size_t bytes,
                    std::uint32_t seed = 0);

/** How openIndex()/SnapshotReader bring sections into memory. */
struct SnapshotOptions {
    /**
     * Map the file and view bulk sections in place (zero-copy) when
     * the platform allows; false reads every section into owned
     * buffers. Loaders fall back to buffered reads automatically when
     * mapping fails.
     */
    bool use_mmap = true;
    /**
     * Verify bulk-blob checksums even in mmap mode (touches every
     * page up front). Stream sections are always verified.
     */
    bool paranoid_checksums = false;
};

/**
 * Writes one snapshot file. Usage:
 *
 *   SnapshotWriter w(path, spec_string);
 *   Writer &meta = w.section("meta");   // staged typed stream
 *   meta.writePod(...);
 *   w.addBlob("points", data, bytes);   // bulk payload, 64-aligned
 *   w.finish();                         // TOC + header patch
 *
 * section() auto-closes the previously open stream; finish() is
 * mandatory (a snapshot without a TOC is rejected by the reader).
 */
class SnapshotWriter {
  public:
    SnapshotWriter(const std::string &path, const std::string &spec);
    ~SnapshotWriter();

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /** Begins a staged stream section; valid until the next call. */
    Writer &section(const std::string &name);

    /** Writes a bulk section directly from caller memory. */
    void addBlob(const std::string &name, const void *data,
                 std::size_t bytes);

    /** Writes the TOC and patches the header. Call exactly once. */
    void finish();

  private:
    struct Entry {
        std::string name;
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint32_t crc = 0;
    };

    void flushPending();
    std::uint64_t alignTo64();
    void checkName(const std::string &name) const;

    std::ofstream out_;
    std::string path_;
    std::vector<Entry> toc_;
    BufferWriter pending_;
    std::string pending_name_;
    bool pending_open_ = false;
    bool finished_ = false;
};

/** Read access to one snapshot file (buffered or memory-mapped). */
class SnapshotReader {
  public:
    /**
     * Opens and validates @p path: magic, container version, file
     * size, TOC checksum. Throws ConfigError on anything suspicious
     * (missing file, foreign magic, truncation, bad checksum).
     */
    SnapshotReader(const std::string &path,
                   const SnapshotOptions &options = {});

    /** The IndexSpec string stored at save time. */
    const std::string &spec() const { return spec_; }

    const std::string &path() const { return path_; }

    /** True when the file is memory-mapped (zero-copy blobs). */
    bool mapped() const { return blob_ != nullptr; }

    bool has(const std::string &name) const;

    /**
     * Typed stream over section @p name. The payload is crc-verified;
     * the returned reader borrows storage owned by this
     * SnapshotReader, so it must not outlive it (index loaders
     * consume streams inside open()).
     */
    BoundedMemReader stream(const std::string &name);

    /** One bulk section: pointer + keepalive for zero-copy views. */
    struct Blob {
        const std::uint8_t *data = nullptr;
        std::size_t bytes = 0;
        /** Keeps the mapping (or the buffered copy) alive. */
        std::shared_ptr<const void> keepalive;

        /**
         * Typed view; throws if the payload size does not match.
         * @p count is usually read from a (possibly forged) meta
         * section, so the byte-count comparison must not be reachable
         * through a wrapped multiplication.
         */
        template <typename T>
        PinnedArray<T>
        array(std::size_t count, const std::string &what) const
        {
            if (count > kMaxSerializedPayloadBytes / sizeof(T) ||
                bytes != count * sizeof(T))
                fatal(what + ": payload size mismatch (corrupt file)");
            return PinnedArray<T>(reinterpret_cast<const T *>(data),
                                  count, keepalive);
        }

        /** Typed matrix view; throws on size mismatch (overflow-safe). */
        PinnedMatrix
        matrix(idx_t rows, idx_t cols, const std::string &what) const
        {
            if (rows < 0 || cols < 0 ||
                (cols != 0 &&
                 static_cast<std::uint64_t>(rows) >
                     kMaxSerializedPayloadBytes /
                         static_cast<std::uint64_t>(cols)))
                fatal(what + ": payload size mismatch (corrupt file)");
            const auto count = static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(cols);
            if (count > kMaxSerializedPayloadBytes / sizeof(float) ||
                bytes != count * sizeof(float))
                fatal(what + ": payload size mismatch (corrupt file)");
            return PinnedMatrix(
                FloatMatrixView(reinterpret_cast<const float *>(data),
                                rows, cols),
                keepalive);
        }
    };

    /**
     * Bulk access to section @p name: a pointer into the mapping in
     * mmap mode (page-in on first touch), an owned copy otherwise.
     */
    Blob blob(const std::string &name);

  private:
    struct Entry {
        std::string name;
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint32_t crc = 0;
    };

    const Entry &find(const std::string &name) const;
    /** Reads a section into an owned buffer (buffered mode). */
    std::shared_ptr<std::vector<std::uint8_t>> readCopy(const Entry &e);

    std::string path_;
    SnapshotOptions options_;
    std::shared_ptr<MappedBlob> blob_; ///< null in buffered mode
    std::vector<Entry> toc_;
    std::string spec_;
    /** Buffered stream() payloads kept alive for borrowing readers. */
    std::vector<std::shared_ptr<std::vector<std::uint8_t>>> retained_;
};

/** Meta-section helper: metric as a validated i32 tag. */
inline void
writeMetricTag(Writer &writer, Metric metric)
{
    writer.writePod<std::int32_t>(metric == Metric::kL2 ? 0 : 1);
}

inline Metric
readMetricTag(Reader &reader)
{
    const auto tag = reader.readPod<std::int32_t>();
    if (tag != 0 && tag != 1)
        fatal("corrupt metric tag in snapshot");
    return tag == 0 ? Metric::kL2 : Metric::kInnerProduct;
}

/** Meta-section helper: per-index format version gate. */
inline void
checkFormatVersion(Reader &reader, std::uint32_t expected,
                   const std::string &what)
{
    const auto version = reader.readPod<std::uint32_t>();
    if (version != expected)
        fatal(what + ": format version " + std::to_string(version) +
              " unsupported (expected " + std::to_string(expected) +
              ")");
}

} // namespace juno

#endif // JUNO_REGISTRY_SNAPSHOT_H
