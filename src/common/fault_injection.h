/**
 * @file
 * Deterministic fault-injection harness for chaos testing the serving
 * stack: seeded, site-named injection points wired into the paths an
 * overloaded or degraded machine actually breaks first (snapshot IO
 * reads, cache admission, queue notify, batch dispatch).
 *
 * A site is a string literal at the call site — `fault::inject(
 * "snapshot.read")` — and fires only when armed, either through the
 * environment (`JUNO_FAULT=site:prob:seed[:delay_ms]`, comma-separated
 * specs) or programmatically via arm() in tests. An armed site draws a
 * deterministic pseudo-random decision per evaluation: the n-th
 * evaluation hashes (seed, n) through a splitmix64 finalizer, so a
 * given (prob, seed) pair fires on exactly the same evaluations every
 * run — chaos failures reproduce from their spec string alone.
 *
 * Two firing modes per spec:
 *  - delay (spec carries :delay_ms): inject() sleeps that long — an IO
 *    stall / scheduler hiccup double;
 *  - error (no delay field): inject() throws FaultInjectedError, and
 *    fired() returns true without throwing (for sites whose failure is
 *    a lost side effect rather than an exception, e.g. a swallowed
 *    condition-variable notify).
 *
 * The whole harness compiles to constant-false no-ops unless the build
 * sets -DJUNO_FAULT_INJECTION=1 (CMake option JUNO_FAULT_INJECTION=ON),
 * so production binaries carry zero cost and zero new failure modes.
 */
#ifndef JUNO_COMMON_FAULT_INJECTION_H
#define JUNO_COMMON_FAULT_INJECTION_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace juno {

/** Thrown by an armed error-mode injection site. */
class FaultInjectedError : public std::runtime_error {
  public:
    explicit FaultInjectedError(const std::string &site)
        : std::runtime_error("injected fault at site '" + site + "'"),
          site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

namespace fault {

/** Per-site evaluation counters (what a chaos run reports). */
struct SiteStats {
    std::uint64_t evaluations = 0; ///< times the point was reached
    std::uint64_t delays = 0;      ///< firings that slept
    std::uint64_t errors = 0;      ///< firings that threw / returned true
};

#if defined(JUNO_FAULT_INJECTION)

/** True in builds with the harness compiled in. */
constexpr bool kEnabled = true;

/**
 * Evaluates @p site: no-op when unarmed or the deterministic draw
 * misses; sleeps in delay mode; throws FaultInjectedError in error
 * mode.
 */
void inject(const char *site);

/**
 * Error-mode evaluation without throwing: true when the site fired.
 * For failures that are lost side effects (a dropped notify) rather
 * than exceptions. Delay-mode specs still sleep here and return false.
 */
bool fired(const char *site);

/** Arms @p site programmatically (tests). @p probability in [0, 1];
 * @p delay_ms < 0 selects error mode, >= 0 delay mode. */
void arm(const char *site, double probability, std::uint64_t seed,
         double delay_ms = -1.0);

/** Disarms one site (its counters reset too). */
void disarm(const char *site);

/** Disarms every site and re-reads JUNO_FAULT on next evaluation. */
void resetAll();

/** Counters of @p site (zeroes when never armed). */
SiteStats stats(const char *site);

#else // !JUNO_FAULT_INJECTION

constexpr bool kEnabled = false;

inline void
inject(const char *)
{
}

inline bool
fired(const char *)
{
    return false;
}

inline void
arm(const char *, double, std::uint64_t, double = -1.0)
{
}

inline void
disarm(const char *)
{
}

inline void
resetAll()
{
}

inline SiteStats
stats(const char *)
{
    return {};
}

#endif // JUNO_FAULT_INJECTION

} // namespace fault
} // namespace juno

#endif // JUNO_COMMON_FAULT_INJECTION_H
