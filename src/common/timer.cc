#include "common/timer.h"

namespace juno {

double
Timer::seconds() const
{
    const auto now = Clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

const char *
stageName(Stage stage)
{
    switch (stage) {
    case Stage::kFilter:
        return "filter";
    case Stage::kLut:
        return "lut";
    case Stage::kRtLut:
        return "rt_lut";
    case Stage::kScan:
        return "scan";
    case Stage::kGraph:
        return "graph";
    case Stage::kRtExact:
        return "rt_exact";
    case Stage::kPipelineWall:
        return "pipeline_wall";
    case Stage::kCount:
        break;
    }
    return "unknown";
}

double
StageTimers::seconds(const std::string &name) const
{
    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (name == stageName(static_cast<Stage>(i)))
            return acc_[i];
    }
    return 0.0;
}

double
StageTimers::totalSeconds() const
{
    double total = 0.0;
    for (const double secs : acc_)
        total += secs;
    return total;
}

std::vector<std::string>
StageTimers::names() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (seen_[i])
            out.emplace_back(stageName(static_cast<Stage>(i)));
    }
    return out;
}

void
StageTimers::reset()
{
    acc_.fill(0.0);
    seen_.fill(false);
}

void
StageTimers::merge(const StageTimers &other)
{
    for (std::size_t i = 0; i < kNumStages; ++i) {
        acc_[i] += other.acc_[i];
        seen_[i] = seen_[i] || other.seen_[i];
    }
}

} // namespace juno
