#include "common/timer.h"

namespace juno {

double
Timer::seconds() const
{
    const auto now = Clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

void
StageTimers::add(const std::string &name, double seconds)
{
    auto it = acc_.find(name);
    if (it == acc_.end()) {
        acc_.emplace(name, seconds);
        order_.push_back(name);
    } else {
        it->second += seconds;
    }
}

double
StageTimers::seconds(const std::string &name) const
{
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
}

double
StageTimers::totalSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : acc_)
        total += secs;
    return total;
}

void
StageTimers::reset()
{
    acc_.clear();
    order_.clear();
}

void
StageTimers::merge(const StageTimers &other)
{
    for (const auto &name : other.names())
        add(name, other.seconds(name));
}

} // namespace juno
