/**
 * @file
 * Clang Thread Safety Analysis macros and the annotated mutex wrappers
 * the concurrent subsystems are written against.
 *
 * The serving stack holds its locking discipline in invariants like
 * "queue_ is only touched under mutex_" and "ageLocked() requires the
 * cache lock". This header turns those comments into declarations the
 * compiler enforces: under Clang, `-Wthread-safety` (promoted to an
 * error by the JUNO_THREAD_SAFETY CMake option) rejects any access to
 * a JUNO_GUARDED_BY member outside its mutex and any call to a
 * JUNO_REQUIRES function without the capability held. Under GCC (and
 * any compiler without the attributes) every macro expands to nothing,
 * so the annotations are free documentation.
 *
 * Because libstdc++'s std::mutex carries no capability attributes, the
 * analysis needs thin wrappers:
 *
 *  - Mutex: std::mutex as a named capability;
 *  - MutexLock: scoped lock/unlock (std::lock_guard equivalent);
 *  - CvLock: scoped lock exposing the std::unique_lock a
 *    condition_variable wait needs via native().
 *
 * Condition waits are written as explicit `while (!pred) wait();`
 * loops rather than the predicate-lambda overloads: the analysis
 * treats a lambda body as a separate function that does not hold the
 * capability, so predicates reading guarded state would all need
 * per-lambda suppressions. The loop form reads guarded state in the
 * enclosing (capability-holding) scope and is exactly equivalent.
 *
 * Sanitizer feature-detection macros (JUNO_TSAN_ENABLED,
 * JUNO_ASAN_ENABLED) live here too so stress tests can scale their
 * iteration counts to sanitizer overheads.
 */
#ifndef JUNO_COMMON_THREAD_ANNOTATIONS_H
#define JUNO_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define JUNO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define JUNO_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Declares a type to be a lockable capability (on the class). */
#define JUNO_CAPABILITY(x) JUNO_THREAD_ANNOTATION(capability(x))

/** Declares an RAII type that acquires in its ctor, releases in dtor. */
#define JUNO_SCOPED_CAPABILITY JUNO_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define JUNO_GUARDED_BY(x) JUNO_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define JUNO_PT_GUARDED_BY(x) JUNO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that acquires the capability and returns it held. */
#define JUNO_ACQUIRE(...)                                                   \
    JUNO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that acquires the capability in shared (reader) mode. */
#define JUNO_ACQUIRE_SHARED(...)                                            \
    JUNO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define JUNO_RELEASE(...)                                                   \
    JUNO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that releases a shared (reader) hold of the capability. */
#define JUNO_RELEASE_SHARED(...)                                            \
    JUNO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns @p true. */
#define JUNO_TRY_ACQUIRE(...)                                               \
    JUNO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must be called with the capability already held. */
#define JUNO_REQUIRES(...)                                                  \
    JUNO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with at least a shared hold. */
#define JUNO_REQUIRES_SHARED(...)                                           \
    JUNO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that must NOT be called with the capability held
 * (self-deadlock guard on public entry points that lock internally). */
#define JUNO_EXCLUDES(...) JUNO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Documents lock-ordering between two mutexes. */
#define JUNO_ACQUIRED_BEFORE(...)                                           \
    JUNO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define JUNO_ACQUIRED_AFTER(...)                                            \
    JUNO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returning a reference to the capability guarding @p x. */
#define JUNO_RETURN_CAPABILITY(x) JUNO_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables the analysis inside one function. */
#define JUNO_NO_THREAD_SAFETY_ANALYSIS                                      \
    JUNO_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- Sanitizer feature detection (GCC and Clang spellings) ----

#if defined(__SANITIZE_THREAD__)
#define JUNO_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define JUNO_TSAN_ENABLED 1
#endif
#endif
#ifndef JUNO_TSAN_ENABLED
#define JUNO_TSAN_ENABLED 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define JUNO_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define JUNO_ASAN_ENABLED 1
#endif
#endif
#ifndef JUNO_ASAN_ENABLED
#define JUNO_ASAN_ENABLED 0
#endif

namespace juno {

/**
 * std::mutex as a Clang capability. Everything mutex-protected in the
 * tree locks one of these; the raw std::mutex is reachable only
 * through CvLock for condition_variable waits.
 */
class JUNO_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() JUNO_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() JUNO_RELEASE()
    {
        mutex_.unlock();
    }

    bool
    try_lock() JUNO_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

    /**
     * The wrapped mutex, for condition_variable waits only (the wait
     * unlocks/relocks outside the analysis; CvLock scopes the
     * capability around it).
     */
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** std::lock_guard over a Mutex, visible to the analysis. */
class JUNO_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex &mutex) JUNO_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() JUNO_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * std::shared_mutex as a Clang capability: exclusive mode for writers,
 * shared mode for readers. The live-index layer holds a reader lock
 * for the whole of a search chunk (one coherent generation view) while
 * mutations and generation publishes take brief exclusive holds.
 */
class JUNO_CAPABILITY("mutex") SharedMutex {
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void
    lock() JUNO_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() JUNO_RELEASE()
    {
        mutex_.unlock();
    }

    void
    lock_shared() JUNO_ACQUIRE_SHARED()
    {
        mutex_.lock_shared();
    }

    void
    unlock_shared() JUNO_RELEASE_SHARED()
    {
        mutex_.unlock_shared();
    }

  private:
    std::shared_mutex mutex_;
};

/** Scoped exclusive (writer) lock over a SharedMutex. */
class JUNO_SCOPED_CAPABILITY WriterLock {
  public:
    explicit WriterLock(SharedMutex &mutex) JUNO_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~WriterLock() JUNO_RELEASE() { mutex_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mutex_;
};

/** Scoped shared (reader) lock over a SharedMutex. */
class JUNO_SCOPED_CAPABILITY ReaderLock {
  public:
    explicit ReaderLock(SharedMutex &mutex) JUNO_ACQUIRE_SHARED(mutex)
        : mutex_(mutex)
    {
        mutex_.lock_shared();
    }

    ~ReaderLock() JUNO_RELEASE() { mutex_.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mutex_;
};

/**
 * std::unique_lock over a Mutex for scopes that wait on a
 * condition_variable: `cv.wait(lock.native())` inside an explicit
 * `while (!pred)` loop. The capability is held for the whole scope —
 * the wait's internal unlock/relock re-establishes it before any
 * guarded read, which is precisely the invariant the analysis needs.
 */
class JUNO_SCOPED_CAPABILITY CvLock {
  public:
    explicit CvLock(Mutex &mutex) JUNO_ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }

    ~CvLock() JUNO_RELEASE() {}

    CvLock(const CvLock &) = delete;
    CvLock &operator=(const CvLock &) = delete;

    /** The underlying lock a condition_variable wait consumes. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace juno

#endif // JUNO_COMMON_THREAD_ANNOTATIONS_H
