#include "common/rng.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace juno {
namespace {

/** SplitMix64 step; used only to expand the user seed into state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
    // All-zero state is the one invalid xoshiro state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + static_cast<float>(uniform()) * (hi - lo);
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    JUNO_ASSERT(n > 0, "below(0) is undefined");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cached_gauss_ = mag * std::sin(2.0 * M_PI * u2);
    has_cached_gauss_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<idx_t>
Rng::sampleWithoutReplacement(idx_t n, idx_t k)
{
    JUNO_REQUIRE(k <= n, "cannot sample " << k << " from " << n);
    // Robert Floyd's algorithm: k iterations, each inserts one index.
    std::unordered_set<idx_t> chosen;
    std::vector<idx_t> out;
    out.reserve(static_cast<std::size_t>(k));
    for (idx_t j = n - k; j < n; ++j) {
        idx_t t = static_cast<idx_t>(below(static_cast<std::uint64_t>(j) + 1));
        if (chosen.count(t)) {
            chosen.insert(j);
            out.push_back(j);
        } else {
            chosen.insert(t);
            out.push_back(t);
        }
    }
    return out;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace juno
