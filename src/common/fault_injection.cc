#include "common/fault_injection.h"

#if defined(JUNO_FAULT_INJECTION)

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace juno {
namespace fault {

namespace {

/** splitmix64 finalizer: the per-evaluation decision hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

struct Site {
    bool armed = false;
    double probability = 0.0;
    std::uint64_t seed = 0;
    double delay_ms = -1.0; ///< < 0: error mode
    std::uint64_t evaluations = 0;
    std::uint64_t delays = 0;
    std::uint64_t errors = 0;
};

struct Registry {
    std::mutex mutex;
    std::unordered_map<std::string, Site> sites;
    bool env_loaded = false;
};

Registry &
registry()
{
    // Leaked on purpose (same rationale as MetricsRegistry::global):
    // injection sites may evaluate during static teardown.
    static Registry *instance = new Registry();
    return *instance;
}

/**
 * Parses one `site:prob:seed[:delay_ms]` spec into @p sites. Malformed
 * specs abort via fatal(): a chaos run silently missing its faults
 * would report a vacuous pass.
 */
void
parseSpec(const std::string &spec,
          std::unordered_map<std::string, Site> &sites)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
        const std::size_t colon = spec.find(':', start);
        fields.push_back(spec.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    JUNO_REQUIRE(fields.size() == 3 || fields.size() == 4,
                 "JUNO_FAULT spec '"
                     << spec
                     << "' is not site:prob:seed[:delay_ms]");
    Site site;
    site.armed = true;
    try {
        site.probability = std::stod(fields[1]);
        site.seed = std::stoull(fields[2]);
        if (fields.size() == 4)
            site.delay_ms = std::stod(fields[3]);
    } catch (const std::exception &) {
        fatal("JUNO_FAULT spec '" + spec + "' has non-numeric fields");
    }
    JUNO_REQUIRE(site.probability >= 0.0 && site.probability <= 1.0,
                 "JUNO_FAULT probability must be in [0, 1], got "
                     << site.probability);
    JUNO_REQUIRE(fields.size() == 3 || site.delay_ms >= 0.0,
                 "JUNO_FAULT delay_ms must be >= 0");
    sites[fields[0]] = site;
}

void
loadEnvLocked(Registry &reg)
{
    if (reg.env_loaded)
        return;
    reg.env_loaded = true;
    const char *env = std::getenv("JUNO_FAULT");
    if (env == nullptr || env[0] == '\0')
        return;
    const std::string all(env);
    std::size_t start = 0;
    for (;;) {
        const std::size_t comma = all.find(',', start);
        const std::string spec = all.substr(start, comma - start);
        if (!spec.empty())
            parseSpec(spec, reg.sites);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

enum class Outcome { kMiss, kDelay, kError };

/** One evaluation: counters bump, the deterministic draw decides. */
Outcome
evaluate(const char *name, double &delay_ms)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    loadEnvLocked(reg);
    const auto it = reg.sites.find(name);
    if (it == reg.sites.end() || !it->second.armed)
        return Outcome::kMiss;
    Site &site = it->second;
    const std::uint64_t n = site.evaluations++;
    // Top 53 bits -> uniform double in [0, 1): the draw for this
    // evaluation is a pure function of (seed, n).
    const double draw =
        static_cast<double>(mix64(site.seed ^ (n * 0x2545f4914f6cdd1dULL)) >>
                            11) *
        0x1.0p-53;
    if (draw >= site.probability)
        return Outcome::kMiss;
    if (site.delay_ms >= 0.0) {
        ++site.delays;
        delay_ms = site.delay_ms;
        return Outcome::kDelay;
    }
    ++site.errors;
    return Outcome::kError;
}

} // namespace

void
inject(const char *site)
{
    double delay_ms = 0.0;
    switch (evaluate(site, delay_ms)) {
    case Outcome::kMiss:
        return;
    case Outcome::kDelay:
        // Sleep outside the registry lock (evaluate released it).
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
        return;
    case Outcome::kError:
        throw FaultInjectedError(site);
    }
}

bool
fired(const char *site)
{
    double delay_ms = 0.0;
    switch (evaluate(site, delay_ms)) {
    case Outcome::kMiss:
        return false;
    case Outcome::kDelay:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
        return false;
    case Outcome::kError:
        return true;
    }
    return false; // unreachable
}

void
arm(const char *site, double probability, std::uint64_t seed,
    double delay_ms)
{
    JUNO_REQUIRE(probability >= 0.0 && probability <= 1.0,
                 "fault probability must be in [0, 1]");
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    loadEnvLocked(reg); // settle env state so arm() wins deterministically
    Site s;
    s.armed = true;
    s.probability = probability;
    s.seed = seed;
    s.delay_ms = delay_ms;
    reg.sites[site] = s;
}

void
disarm(const char *site)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    loadEnvLocked(reg);
    reg.sites.erase(site);
}

void
resetAll()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.sites.clear();
    reg.env_loaded = false;
}

SiteStats
stats(const char *site)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.sites.find(site);
    SiteStats out;
    if (it != reg.sites.end()) {
        out.evaluations = it->second.evaluations;
        out.delays = it->second.delays;
        out.errors = it->second.errors;
    }
    return out;
}

} // namespace fault
} // namespace juno

#endif // JUNO_FAULT_INJECTION
