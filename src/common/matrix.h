/**
 * @file
 * Row-major float matrix used for point sets, centroids and LUTs.
 *
 * A FloatMatrix owns its storage; FloatMatrixView is a cheap non-owning
 * (rows x cols) window used to pass sub-ranges without copying.
 */
#ifndef JUNO_COMMON_MATRIX_H
#define JUNO_COMMON_MATRIX_H

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace juno {

/** Non-owning view of a row-major float matrix. */
class FloatMatrixView {
  public:
    FloatMatrixView() = default;

    FloatMatrixView(const float *data, idx_t rows, idx_t cols)
        : data_(data), rows_(rows), cols_(cols)
    {
        JUNO_ASSERT(rows >= 0 && cols >= 0, "negative shape");
    }

    idx_t rows() const { return rows_; }
    idx_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }
    const float *data() const { return data_; }

    /**
     * Pointer to the first element of row @p r. Bounds are a
     * debug-only invariant (JUNO_DCHECK): this sits on every scan hot
     * path, so release builds compile the check out entirely.
     */
    const float *
    row(idx_t r) const
    {
        JUNO_DCHECK(r >= 0 && r < rows_, "row " << r << " of " << rows_);
        // Widen before multiplying: r * cols_ stays in std::size_t.
        return data_ + static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(cols_);
    }

    float
    at(idx_t r, idx_t c) const
    {
        JUNO_DCHECK(c >= 0 && c < cols_, "col " << c << " of " << cols_);
        return row(r)[c];
    }

    /** View of rows [begin, begin+count). */
    FloatMatrixView
    slice(idx_t begin, idx_t count) const
    {
        JUNO_DCHECK(begin >= 0 && begin + count <= rows_, "bad slice");
        return FloatMatrixView(data_ + static_cast<std::size_t>(begin) *
                                           static_cast<std::size_t>(cols_),
                               count, cols_);
    }

  private:
    const float *data_ = nullptr;
    idx_t rows_ = 0;
    idx_t cols_ = 0;
};

/** Owning row-major float matrix. */
class FloatMatrix {
  public:
    FloatMatrix() = default;

    FloatMatrix(idx_t rows, idx_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows < 0 ? 0 : rows) *
                    static_cast<std::size_t>(cols < 0 ? 0 : cols),
                fill)
    {
        JUNO_REQUIRE(rows >= 0 && cols >= 0, "negative matrix shape");
    }

    idx_t rows() const { return rows_; }
    idx_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float *
    row(idx_t r)
    {
        JUNO_DCHECK(r >= 0 && r < rows_, "row " << r << " of " << rows_);
        return data_.data() + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(cols_);
    }

    const float *
    row(idx_t r) const
    {
        JUNO_DCHECK(r >= 0 && r < rows_, "row " << r << " of " << rows_);
        return data_.data() + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(cols_);
    }

    float &at(idx_t r, idx_t c) { return row(r)[c]; }
    float at(idx_t r, idx_t c) const { return row(r)[c]; }

    /** Implicit view of the whole matrix. */
    operator FloatMatrixView() const
    {
        return FloatMatrixView(data_.data(), rows_, cols_);
    }

    FloatMatrixView
    view() const
    {
        return FloatMatrixView(data_.data(), rows_, cols_);
    }

    /** Reshapes in place; total element count must be preserved. */
    void
    reshape(idx_t rows, idx_t cols)
    {
        JUNO_REQUIRE(rows * cols == rows_ * cols_,
                     "reshape must preserve element count");
        rows_ = rows;
        cols_ = cols;
    }

  private:
    idx_t rows_ = 0;
    idx_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace juno

#endif // JUNO_COMMON_MATRIX_H
