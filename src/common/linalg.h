/**
 * @file
 * Small dense linear-algebra routines needed by OPQ (quant/opq.h):
 * matrix transpose/multiply on FloatMatrix, and a one-sided Jacobi SVD
 * for the orthogonal Procrustes step. Sizes are D x D with D <= a few
 * hundred, so simplicity beats sophistication here.
 */
#ifndef JUNO_COMMON_LINALG_H
#define JUNO_COMMON_LINALG_H

#include "common/matrix.h"

namespace juno {

/** Returns a^T. */
FloatMatrix transpose(FloatMatrixView a);

/** Returns a * b (shapes must agree). */
FloatMatrix matmul(FloatMatrixView a, FloatMatrixView b);

/** Returns the n x n identity. */
FloatMatrix identity(idx_t n);

/** Max |a - b| over all elements; shapes must match. */
float maxAbsDiff(FloatMatrixView a, FloatMatrixView b);

/** True when q^T q is within @p tol of the identity. */
bool isOrthonormal(FloatMatrixView q, float tol = 1e-3f);

/** Result of a singular value decomposition a = u * diag(s) * v^T. */
struct Svd {
    FloatMatrix u; ///< m x n, orthonormal columns
    std::vector<float> s; ///< n singular values, descending
    FloatMatrix v; ///< n x n orthogonal
};

/**
 * One-sided Jacobi SVD of a (m x n, m >= n). Iterates plane rotations
 * until column pairs are orthogonal. Accurate and simple; O(n^2 m) per
 * sweep, fine for the D x D matrices OPQ produces.
 */
Svd jacobiSvd(FloatMatrixView a, int max_sweeps = 30, float tol = 1e-7f);

/**
 * Orthogonal Procrustes: the orthogonal matrix R minimising
 * ||X R - Y||_F, namely R = U V^T for svd(X^T Y) = U S V^T.
 * X, Y are (n x d); returns a (d x d) orthogonal matrix.
 */
FloatMatrix procrustes(FloatMatrixView x, FloatMatrixView y);

} // namespace juno

#endif // JUNO_COMMON_LINALG_H
