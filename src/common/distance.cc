#include "common/distance.h"

#include <cmath>

#include "common/logging.h"

namespace juno {

float
l2Sqr(const float *a, const float *b, idx_t d)
{
    // Four accumulators give the autovectoriser room without changing
    // results beyond normal FP reassociation tolerances.
    float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    idx_t i = 0;
    for (; i + 4 <= d; i += 4) {
        const float d0 = a[i] - b[i];
        const float d1 = a[i + 1] - b[i + 1];
        const float d2 = a[i + 2] - b[i + 2];
        const float d3 = a[i + 3] - b[i + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (; i < d; ++i) {
        const float diff = a[i] - b[i];
        acc0 += diff * diff;
    }
    return (acc0 + acc1) + (acc2 + acc3);
}

float
innerProduct(const float *a, const float *b, idx_t d)
{
    float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    idx_t i = 0;
    for (; i + 4 <= d; i += 4) {
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    for (; i < d; ++i)
        acc0 += a[i] * b[i];
    return (acc0 + acc1) + (acc2 + acc3);
}

float
l2NormSqr(const float *a, idx_t d)
{
    return innerProduct(a, a, d);
}

float
score(Metric metric, const float *a, const float *b, idx_t d)
{
    return metric == Metric::kL2 ? l2Sqr(a, b, d) : innerProduct(a, b, d);
}

std::vector<float>
rowNormsSqr(FloatMatrixView points)
{
    std::vector<float> norms(static_cast<std::size_t>(points.rows()));
    for (idx_t i = 0; i < points.rows(); ++i)
        norms[static_cast<std::size_t>(i)] =
            l2NormSqr(points.row(i), points.cols());
    return norms;
}

void
pairwiseScores(Metric metric, FloatMatrixView queries,
               FloatMatrixView points,
               const std::vector<float> &point_norms_sqr, FloatMatrix &out)
{
    JUNO_REQUIRE(queries.cols() == points.cols(),
                 "dimension mismatch " << queries.cols() << " vs "
                                       << points.cols());
    const idx_t q_count = queries.rows();
    const idx_t n = points.rows();
    const idx_t d = queries.cols();
    if (out.rows() != q_count || out.cols() != n)
        out = FloatMatrix(q_count, n);

    if (metric == Metric::kInnerProduct) {
        for (idx_t qi = 0; qi < q_count; ++qi) {
            const float *q = queries.row(qi);
            float *dst = out.row(qi);
            for (idx_t pi = 0; pi < n; ++pi)
                dst[pi] = innerProduct(q, points.row(pi), d);
        }
        return;
    }

    // L2 via ||x||^2 - 2<x,q> + ||q||^2 (paper Sec. 5.3 filtering).
    const bool have_norms =
        point_norms_sqr.size() == static_cast<std::size_t>(n);
    for (idx_t qi = 0; qi < q_count; ++qi) {
        const float *q = queries.row(qi);
        const float q_norm = l2NormSqr(q, d);
        float *dst = out.row(qi);
        for (idx_t pi = 0; pi < n; ++pi) {
            const float *x = points.row(pi);
            const float x_norm = have_norms
                ? point_norms_sqr[static_cast<std::size_t>(pi)]
                : l2NormSqr(x, d);
            float v = x_norm - 2.0f * innerProduct(q, x, d) + q_norm;
            // FP cancellation can produce tiny negatives; clamp.
            dst[pi] = v < 0.0f ? 0.0f : v;
        }
    }
}

void
gemm(FloatMatrixView a, FloatMatrixView b, FloatMatrix &c)
{
    JUNO_REQUIRE(a.cols() == b.rows(), "gemm shape mismatch");
    const idx_t m = a.rows(), k = a.cols(), n = b.cols();
    if (c.rows() != m || c.cols() != n)
        c = FloatMatrix(m, n);
    else
        for (idx_t i = 0; i < m; ++i)
            for (idx_t j = 0; j < n; ++j)
                c.at(i, j) = 0.0f;

    // i-k-j loop order: streams B rows, accumulates into C rows.
    for (idx_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (idx_t kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(kk);
            for (idx_t j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
}

} // namespace juno
