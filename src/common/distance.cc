#include "common/distance.h"

#include <cmath>

#include "common/logging.h"
#include "common/simd.h"

namespace juno {

// The scalar kernels that used to live here are now the scalar
// reference table of common/simd.cc; these entry points call through
// the runtime-dispatched table (AVX2+FMA when the host supports it).

float
l2Sqr(const float *a, const float *b, idx_t d)
{
    return simd::l2Sqr(a, b, d);
}

float
innerProduct(const float *a, const float *b, idx_t d)
{
    return simd::innerProduct(a, b, d);
}

float
l2NormSqr(const float *a, idx_t d)
{
    return simd::l2NormSqr(a, d);
}

float
score(Metric metric, const float *a, const float *b, idx_t d)
{
    return metric == Metric::kL2 ? l2Sqr(a, b, d) : innerProduct(a, b, d);
}

std::vector<float>
rowNormsSqr(FloatMatrixView points)
{
    std::vector<float> norms(static_cast<std::size_t>(points.rows()));
    for (idx_t i = 0; i < points.rows(); ++i)
        norms[static_cast<std::size_t>(i)] =
            l2NormSqr(points.row(i), points.cols());
    return norms;
}

void
pairwiseScores(Metric metric, FloatMatrixView queries,
               FloatMatrixView points,
               const std::vector<float> &point_norms_sqr, FloatMatrix &out)
{
    JUNO_REQUIRE(queries.cols() == points.cols(),
                 "dimension mismatch " << queries.cols() << " vs "
                                       << points.cols());
    const idx_t q_count = queries.rows();
    const idx_t n = points.rows();
    const idx_t d = queries.cols();
    if (out.rows() != q_count || out.cols() != n)
        out = FloatMatrix(q_count, n);
    if (n == 0)
        return;

    if (metric == Metric::kInnerProduct) {
        for (idx_t qi = 0; qi < q_count; ++qi)
            simd::active().inner_product_batch(queries.row(qi),
                                               points.data(), n, d,
                                               out.row(qi));
        return;
    }

    // L2. With precomputed point norms, use the decomposition
    // ||x||^2 - 2<x,q> + ||q||^2 (paper Sec. 5.3 filtering); without
    // them, the direct batched kernel is one pass instead of two.
    const bool have_norms =
        point_norms_sqr.size() == static_cast<std::size_t>(n);
    if (!have_norms) {
        for (idx_t qi = 0; qi < q_count; ++qi)
            simd::active().l2_sqr_batch(queries.row(qi), points.data(), n,
                                        d, out.row(qi));
        return;
    }
    for (idx_t qi = 0; qi < q_count; ++qi) {
        const float *q = queries.row(qi);
        const float q_norm = l2NormSqr(q, d);
        float *dst = out.row(qi);
        simd::active().inner_product_batch(q, points.data(), n, d, dst);
        for (idx_t pi = 0; pi < n; ++pi) {
            const float v =
                point_norms_sqr[static_cast<std::size_t>(pi)] -
                2.0f * dst[pi] + q_norm;
            // FP cancellation can produce tiny negatives; clamp.
            dst[pi] = v < 0.0f ? 0.0f : v;
        }
    }
}

void
gemm(FloatMatrixView a, FloatMatrixView b, FloatMatrix &c)
{
    JUNO_REQUIRE(a.cols() == b.rows(), "gemm shape mismatch");
    const idx_t m = a.rows(), k = a.cols(), n = b.cols();
    if (c.rows() != m || c.cols() != n)
        c = FloatMatrix(m, n);
    simd::active().gemm(a.data(), b.data(), c.data(), m, k, n);
}

} // namespace juno
