#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace juno {

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "juno: panic: %s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatal(const std::string &msg)
{
    throw ConfigError(msg);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "juno: warn: %s\n", msg.c_str());
}

namespace detail {

std::string
checkMessage(const char *cond, const char *file, int line,
             const std::string &extra)
{
    std::ostringstream oss;
    oss << cond << " failed at " << file << ":" << line;
    if (!extra.empty())
        oss << ": " << extra;
    return oss.str();
}

} // namespace detail
} // namespace juno
