/**
 * @file
 * Memory-mapped file support for zero-copy snapshot loading.
 *
 * A MappedBlob is one read-only mmap of a whole snapshot file, shared
 * (via shared_ptr) by every structure that views into it: the mapping
 * is released only when the last viewer is destroyed, so an index can
 * outlive the SnapshotReader that opened it.
 *
 * PinnedArray / PinnedMatrix are the view-or-own containers the index
 * types hold their large flat payloads in: an index built in memory
 * adopts owning storage, an index opened from a snapshot in mmap mode
 * views the mapping directly (cold-start cost is page-in, not parse).
 * Both present the same read-only accessors, so the hot paths are
 * unaware which mode they run in.
 */
#ifndef JUNO_COMMON_MMAP_BLOB_H
#define JUNO_COMMON_MMAP_BLOB_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/matrix.h"

namespace juno {

/** One read-only memory-mapped file. */
class MappedBlob {
  public:
    /**
     * Maps @p path read-only. Returns nullptr when mapping is
     * unavailable (unsupported platform, empty file, mmap failure);
     * callers fall back to buffered reads.
     */
    static std::shared_ptr<MappedBlob> map(const std::string &path);

    ~MappedBlob();

    MappedBlob(const MappedBlob &) = delete;
    MappedBlob &operator=(const MappedBlob &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    const std::string &path() const { return path_; }

  private:
    MappedBlob(const std::uint8_t *data, std::size_t size,
               std::string path)
        : data_(data), size_(size), path_(std::move(path))
    {
    }

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::string path_;
};

/**
 * Flat array that either owns a vector or views external memory kept
 * alive by an arbitrary keepalive handle (typically a MappedBlob).
 */
template <typename T>
class PinnedArray {
  public:
    PinnedArray() = default;

    /** Adopts owning storage (the in-memory build path). */
    PinnedArray(std::vector<T> values) : owned_(std::move(values))
    {
        data_ = owned_.data();
        size_ = owned_.size();
    }

    PinnedArray &
    operator=(std::vector<T> values)
    {
        return *this = PinnedArray(std::move(values));
    }

    /** Views @p count elements of external memory (the mmap path). */
    PinnedArray(const T *data, std::size_t count,
                std::shared_ptr<const void> keepalive)
        : data_(data), size_(count), keepalive_(std::move(keepalive))
    {
    }

    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T &
    operator[](std::size_t i) const
    {
        JUNO_ASSERT(i < size_, "pinned index " << i << " of " << size_);
        return data_[i];
    }

  private:
    std::vector<T> owned_;
    const T *data_ = nullptr;
    std::size_t size_ = 0;
    std::shared_ptr<const void> keepalive_;
};

/** Row-major float matrix that either owns storage or views a blob. */
class PinnedMatrix {
  public:
    PinnedMatrix() = default;

    PinnedMatrix(FloatMatrix m) : owned_(std::move(m))
    {
        view_ = owned_.view();
    }

    PinnedMatrix &
    operator=(FloatMatrix m)
    {
        return *this = PinnedMatrix(std::move(m));
    }

    PinnedMatrix(FloatMatrixView view,
                 std::shared_ptr<const void> keepalive)
        : view_(view), keepalive_(std::move(keepalive))
    {
    }

    idx_t rows() const { return view_.rows(); }
    idx_t cols() const { return view_.cols(); }
    bool empty() const { return view_.empty(); }
    const float *data() const { return view_.data(); }
    const float *row(idx_t r) const { return view_.row(r); }
    float at(idx_t r, idx_t c) const { return view_.at(r, c); }

    FloatMatrixView view() const { return view_; }
    operator FloatMatrixView() const { return view_; }

  private:
    FloatMatrix owned_;
    FloatMatrixView view_;
    std::shared_ptr<const void> keepalive_;
};

} // namespace juno

#endif // JUNO_COMMON_MMAP_BLOB_H
