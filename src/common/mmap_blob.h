/**
 * @file
 * Memory-mapped file support for zero-copy snapshot loading.
 *
 * A MappedBlob is one read-only mmap of a whole snapshot file, shared
 * (via shared_ptr) by every structure that views into it: the mapping
 * is released only when the last viewer is destroyed, so an index can
 * outlive the SnapshotReader that opened it.
 *
 * PinnedArray / PinnedMatrix are the view-or-own containers the index
 * types hold their large flat payloads in: an index built in memory
 * adopts owning storage, an index opened from a snapshot in mmap mode
 * views the mapping directly (cold-start cost is page-in, not parse).
 * Both present the same read-only accessors, so the hot paths are
 * unaware which mode they run in.
 */
#ifndef JUNO_COMMON_MMAP_BLOB_H
#define JUNO_COMMON_MMAP_BLOB_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/matrix.h"

namespace juno {

/** Access-pattern hints forwarded to posix_madvise / madvise. */
enum class MemAdvice {
    kNormal,     ///< reset to the default kernel policy
    kWillNeed,   ///< prefetch: start paging the range in now
    kDontNeed,   ///< evict: the range's pages may leave RAM
    kRandom,     ///< random access expected (disable readahead)
    kSequential, ///< sequential access expected (aggressive readahead)
};

/**
 * Advises the kernel about the expected access pattern of
 * [p, p + len). The range is widened to page boundaries internally.
 * Returns false — and does nothing — on platforms without madvise,
 * for empty ranges, or when the kernel rejects the hint. Advice is
 * always best-effort; no caller needs to check the result for
 * correctness.
 */
bool memAdvise(const void *p, std::size_t len, MemAdvice advice);

/**
 * Fraction of [p, p + len) currently resident in RAM, probed with
 * mincore. Returns -1.0 when residency cannot be probed (unsupported
 * platform, unmapped range, empty range); a value in [0, 1] otherwise.
 */
double memResidentFraction(const void *p, std::size_t len);

/** One read-only memory-mapped file. */
class MappedBlob {
  public:
    /**
     * Maps @p path read-only. Returns nullptr when mapping is
     * unavailable (unsupported platform, empty file, mmap failure);
     * callers fall back to buffered reads. Failures are logged at
     * warn level with the path and errno so a silent buffered
     * fallback stays diagnosable.
     */
    static std::shared_ptr<MappedBlob> map(const std::string &path);

    ~MappedBlob();

    MappedBlob(const MappedBlob &) = delete;
    MappedBlob &operator=(const MappedBlob &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    const std::string &path() const { return path_; }

    /**
     * Advises the kernel about section [offset, offset + len) of the
     * mapping (out-of-range parts are clamped away). Best-effort;
     * see memAdvise().
     */
    bool advise(std::size_t offset, std::size_t len,
                MemAdvice advice) const;

    /**
     * Residency of section [offset, offset + len) of the mapping;
     * -1.0 when unsupported, else the resident fraction in [0, 1].
     */
    double residentFraction(std::size_t offset, std::size_t len) const;

  private:
    MappedBlob(const std::uint8_t *data, std::size_t size,
               std::string path)
        : data_(data), size_(size), path_(std::move(path))
    {
    }

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::string path_;
};

/**
 * Flat array that either owns a vector or views external memory kept
 * alive by an arbitrary keepalive handle (typically a MappedBlob).
 */
template <typename T>
class PinnedArray {
  public:
    PinnedArray() = default;

    /** Adopts owning storage (the in-memory build path). */
    PinnedArray(std::vector<T> values) : owned_(std::move(values))
    {
        data_ = owned_.data();
        size_ = owned_.size();
    }

    PinnedArray &
    operator=(std::vector<T> values)
    {
        return *this = PinnedArray(std::move(values));
    }

    /** Views @p count elements of external memory (the mmap path). */
    PinnedArray(const T *data, std::size_t count,
                std::shared_ptr<const void> keepalive)
        : data_(data), size_(count), keepalive_(std::move(keepalive))
    {
    }

    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** True when this array views external (keepalive-held) memory. */
    bool isView() const { return keepalive_ != nullptr; }

    const T &
    operator[](std::size_t i) const
    {
        JUNO_ASSERT(i < size_, "pinned index " << i << " of " << size_);
        return data_[i];
    }

  private:
    std::vector<T> owned_;
    const T *data_ = nullptr;
    std::size_t size_ = 0;
    std::shared_ptr<const void> keepalive_;
};

/** Row-major float matrix that either owns storage or views a blob. */
class PinnedMatrix {
  public:
    PinnedMatrix() = default;

    PinnedMatrix(FloatMatrix m) : owned_(std::move(m))
    {
        view_ = owned_.view();
    }

    PinnedMatrix &
    operator=(FloatMatrix m)
    {
        return *this = PinnedMatrix(std::move(m));
    }

    PinnedMatrix(FloatMatrixView view,
                 std::shared_ptr<const void> keepalive)
        : view_(view), keepalive_(std::move(keepalive))
    {
    }

    idx_t rows() const { return view_.rows(); }
    idx_t cols() const { return view_.cols(); }
    bool empty() const { return view_.empty(); }
    const float *data() const { return view_.data(); }
    const float *row(idx_t r) const { return view_.row(r); }
    float at(idx_t r, idx_t c) const { return view_.at(r, c); }

    FloatMatrixView view() const { return view_; }
    operator FloatMatrixView() const { return view_; }

  private:
    FloatMatrix owned_;
    FloatMatrixView view_;
    std::shared_ptr<const void> keepalive_;
};

} // namespace juno

#endif // JUNO_COMMON_MMAP_BLOB_H
