#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace juno {

namespace {

/** Leading whitespace means a quoting bug upstream; fail loudly. */
bool
startsWithSpace(const std::string &text)
{
    return !text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

} // namespace

std::optional<std::int64_t>
parseInt64(const std::string &text)
{
    if (text.empty() || startsWithSpace(text))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE)
        return std::nullopt; // overflow/underflow, not a wrapped value
    if (end == text.c_str() || *end != '\0')
        return std::nullopt; // nothing parsed, or trailing junk
    return static_cast<std::int64_t>(value);
}

std::optional<std::int64_t>
parseInt64InRange(const std::string &text, std::int64_t lo, std::int64_t hi)
{
    const auto value = parseInt64(text);
    if (!value || *value < lo || *value > hi)
        return std::nullopt;
    return value;
}

std::optional<double>
parseFloat64(const std::string &text)
{
    if (text.empty() || startsWithSpace(text))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL))
        return std::nullopt; // overflow; denormal underflow is fine
    if (end == text.c_str() || *end != '\0')
        return std::nullopt;
    if (!std::isfinite(value))
        return std::nullopt; // "inf"/"nan" spellings strtod accepts
    return value;
}

std::optional<std::int64_t>
parseByteSize(const std::string &text)
{
    if (text.empty() || startsWithSpace(text))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end == text.c_str() || value < 0)
        return std::nullopt;
    std::int64_t scale = 1;
    if (*end != '\0') {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
        case 'k':
            scale = std::int64_t(1) << 10;
            break;
        case 'm':
            scale = std::int64_t(1) << 20;
            break;
        case 'g':
            scale = std::int64_t(1) << 30;
            break;
        default:
            return std::nullopt;
        }
        if (end[1] != '\0')
            return std::nullopt;
    }
    // Check before multiplying: value * scale in int64 is UB on
    // overflow, and UBSan builds turn that into an abort.
    if (value > std::numeric_limits<std::int64_t>::max() / scale)
        return std::nullopt;
    return static_cast<std::int64_t>(value) * scale;
}

} // namespace juno
