#include "common/build_info.h"

#include "common/simd.h"

// CMake stamps these as per-file compile definitions (see the
// build_info block in CMakeLists.txt). The sha is captured at
// configure time, so it can lag HEAD until the next cmake run — good
// enough for attributing bench snapshots, not a release fingerprint.
#ifndef JUNO_GIT_SHA
#define JUNO_GIT_SHA "unknown"
#endif
#ifndef JUNO_BUILD_TYPE
#define JUNO_BUILD_TYPE "unknown"
#endif

namespace juno {

namespace {

std::string
compilerString()
{
#if defined(__clang__)
    return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

BuildInfo
buildInfo()
{
    BuildInfo info;
    info.git_sha = JUNO_GIT_SHA;
    info.compiler = compilerString();
    info.build_type = JUNO_BUILD_TYPE;
    info.simd_level = simd::levelName(simd::level());
    return info;
}

std::string
buildInfoJson()
{
    const BuildInfo info = buildInfo();
    std::string out = "{";
    out += "\"git_sha\": \"" + jsonEscape(info.git_sha) + "\", ";
    out += "\"compiler\": \"" + jsonEscape(info.compiler) + "\", ";
    out += "\"build_type\": \"" + jsonEscape(info.build_type) + "\", ";
    out += "\"simd_level\": \"" + jsonEscape(info.simd_level) + "\"";
    out += "}";
    return out;
}

std::vector<std::pair<std::string, std::string>>
buildInfoLabels()
{
    const BuildInfo info = buildInfo();
    return {{"git_sha", info.git_sha},
            {"compiler", info.compiler},
            {"build_type", info.build_type},
            {"simd_level", info.simd_level}};
}

} // namespace juno
