/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic(): an internal invariant was violated (a JUNO bug) -> abort.
 * fatal(): the user supplied an impossible configuration -> exception.
 */
#ifndef JUNO_COMMON_LOGGING_H
#define JUNO_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace juno {

/** Thrown by fatal() and JUNO_REQUIRE on invalid user configuration. */
class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Aborts the process after printing @p msg; use for internal bugs. */
[[noreturn]] void panic(const std::string &msg);

/** Throws ConfigError; use for invalid user-provided configuration. */
[[noreturn]] void fatal(const std::string &msg);

/** Prints a one-time warning to stderr. */
void warn(const std::string &msg);

namespace detail {

/** Builds the "cond failed at file:line: extra" message for the macros. */
std::string checkMessage(const char *cond, const char *file, int line,
                         const std::string &extra);

} // namespace detail

/**
 * Validates a user-facing precondition; throws ConfigError on failure.
 * The message expression is only evaluated when the check fails.
 */
#define JUNO_REQUIRE(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream juno_require_oss_;                           \
            juno_require_oss_ << msg;                                       \
            ::juno::fatal(::juno::detail::checkMessage(                     \
                #cond, __FILE__, __LINE__, juno_require_oss_.str()));       \
        }                                                                   \
    } while (false)

/** Validates an internal invariant; aborts on failure (a JUNO bug). */
#define JUNO_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream juno_assert_oss_;                            \
            juno_assert_oss_ << msg;                                        \
            ::juno::panic(::juno::detail::checkMessage(                     \
                #cond, __FILE__, __LINE__, juno_assert_oss_.str()));        \
        }                                                                   \
    } while (false)

/**
 * 1 when JUNO_DCHECK performs its check (debug builds, or any build
 * with JUNO_FORCE_DCHECKS defined), 0 when it compiles out entirely.
 * Tests gate their death-test expectations on this.
 */
#if !defined(NDEBUG) || defined(JUNO_FORCE_DCHECKS)
#define JUNO_DCHECK_IS_ON 1
#else
#define JUNO_DCHECK_IS_ON 0
#endif

/**
 * Debug-only invariant: JUNO_ASSERT in debug builds, zero code in
 * release builds — the accessor bounds checks on the scan hot paths
 * (Matrix/PQCodes/InterleavedLists) ride on this so release scans pay
 * nothing (bench_micro_kernels verifies). The condition must be
 * side-effect free: release builds never evaluate it (it is only
 * type-checked behind an `if (false)` so the expression cannot rot).
 */
#if JUNO_DCHECK_IS_ON
#define JUNO_DCHECK(cond, msg) JUNO_ASSERT(cond, msg)
#else
#define JUNO_DCHECK(cond, msg)                                              \
    do {                                                                    \
        if (false) {                                                        \
            (void)(cond);                                                   \
        }                                                                   \
    } while (false)
#endif

} // namespace juno

#endif // JUNO_COMMON_LOGGING_H
