/**
 * @file
 * Minimal versioned binary serialization for index persistence.
 *
 * The typed surface (PODs, vectors, strings, matrices) lives in the
 * abstract Writer/Reader pair; concrete subclasses choose the sink or
 * source:
 *  - BinaryWriter / BinaryReader: whole files prefixed by a
 *    caller-chosen 8-byte magic and a u32 version (the legacy index
 *    format and standalone artefacts);
 *  - BufferWriter: an in-memory byte buffer (snapshot sections are
 *    staged through it before landing in the container);
 *  - BoundedMemReader: a bounds-checked window over caller memory
 *    (a buffered section copy or a memory-mapped snapshot region).
 *
 * Primitives are little-endian PODs; containers are a u64 count
 * followed by elements. Readers validate counts against a sanity bound
 * before allocating, so corrupt files fail fast with ConfigError
 * instead of attempting gigabyte allocations, and every short read
 * surfaces as ConfigError rather than silent zero-fill.
 */
#ifndef JUNO_COMMON_SERIALIZE_H
#define JUNO_COMMON_SERIALIZE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/matrix.h"

namespace juno {

/** Upper bound on any single container payload: 16 GiB. */
constexpr std::uint64_t kMaxSerializedPayloadBytes = 16ull << 30;

/** Abstract streaming binary writer. */
class Writer {
  public:
    virtual ~Writer() = default;

    template <typename T>
    void
    writePod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeRaw(&value, sizeof(T));
    }

    template <typename T>
    void
    writeVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeArray(values.data(), values.size());
    }

    /** u64 count followed by @p count raw elements (nullptr-safe at 0). */
    template <typename T>
    void
    writeArray(const T *data, std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writePod<std::uint64_t>(count);
        // An empty vector's data() may be null; write(nullptr, 0) is
        // undefined behaviour for ostreams, so never forward it.
        if (count != 0)
            writeRaw(data, count * sizeof(T));
    }

    void writeString(const std::string &s);
    void writeMatrix(FloatMatrixView m);

    /** Appends @p bytes raw bytes; throws ConfigError on failure. */
    virtual void writeRaw(const void *data, std::size_t bytes) = 0;
};

/** Abstract streaming binary reader with validation. */
class Reader {
  public:
    virtual ~Reader() = default;

    template <typename T>
    T
    readPod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        readRaw(&value, sizeof(T));
        return value;
    }

    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto count = readPod<std::uint64_t>();
        boundCheck(count, sizeof(T));
        std::vector<T> values(static_cast<std::size_t>(count));
        if (count != 0)
            readRaw(values.data(),
                    static_cast<std::size_t>(count) * sizeof(T));
        return values;
    }

    std::string readString();
    FloatMatrix readMatrix();

    /** Fills @p bytes raw bytes; throws ConfigError on short reads. */
    virtual void readRaw(void *data, std::size_t bytes) = 0;

  protected:
    /**
     * Rejects implausible element counts before any allocation; the
     * multiplication is overflow-checked so a forged 2^60 count cannot
     * wrap into a small byte total.
     */
    void boundCheck(std::uint64_t count, std::uint64_t elem_bytes) const;

    /** Human-readable source name for error messages. */
    virtual std::string where() const = 0;
};

/** Writer over a file, prefixed by magic + version (legacy format). */
class BinaryWriter : public Writer {
  public:
    /** Opens @p path and writes the header. Throws on failure. */
    BinaryWriter(const std::string &path, const char magic[8],
                 std::uint32_t version);

    void writeRaw(const void *data, std::size_t bytes) override;

  private:
    std::ofstream out_;
    std::string path_;
};

/** Reader over a file; validates magic + version up front. */
class BinaryReader : public Reader {
  public:
    BinaryReader(const std::string &path, const char magic[8],
                 std::uint32_t expected_version);

    void readRaw(void *data, std::size_t bytes) override;

  protected:
    std::string where() const override { return path_; }

  private:
    std::ifstream in_;
    std::string path_;
};

/** Writer appending to an in-memory buffer (no magic header). */
class BufferWriter : public Writer {
  public:
    void writeRaw(const void *data, std::size_t bytes) override;

    const std::string &buffer() const { return buffer_; }
    std::string takeBuffer() { return std::move(buffer_); }
    void clear() { buffer_.clear(); }

  private:
    std::string buffer_;
};

/**
 * Bounds-checked reader over caller-owned memory. The window must
 * outlive the reader; reading past the end throws ConfigError (this is
 * how truncated snapshot sections are detected).
 */
class BoundedMemReader : public Reader {
  public:
    BoundedMemReader(const void *data, std::size_t bytes,
                     std::string name);

    void readRaw(void *data, std::size_t bytes) override;

    /**
     * Zero-copy variant: returns a pointer into the window and
     * advances the cursor past @p bytes (bounds-checked).
     */
    const void *viewRaw(std::size_t bytes);

    std::size_t remaining() const { return end_ - cursor_; }

  protected:
    std::string where() const override { return name_; }

  private:
    const std::uint8_t *cursor_ = nullptr;
    const std::uint8_t *end_ = nullptr;
    std::string name_;
};

} // namespace juno

#endif // JUNO_COMMON_SERIALIZE_H
