/**
 * @file
 * Minimal versioned binary serialization for index persistence.
 *
 * Format: every stream starts with a caller-chosen 8-byte magic and a
 * u32 version; primitives are little-endian PODs, containers are a
 * u64 count followed by elements. Readers validate counts against a
 * sanity bound so corrupt files fail fast with ConfigError instead of
 * attempting gigabyte allocations.
 */
#ifndef JUNO_COMMON_SERIALIZE_H
#define JUNO_COMMON_SERIALIZE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/matrix.h"

namespace juno {

/** Streaming binary writer. */
class BinaryWriter {
  public:
    /** Opens @p path and writes the header. Throws on failure. */
    BinaryWriter(const std::string &path, const char magic[8],
                 std::uint32_t version);

    ~BinaryWriter() = default;

    template <typename T>
    void
    writePod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        out_.write(reinterpret_cast<const char *>(&value), sizeof(T));
        check();
    }

    template <typename T>
    void
    writeVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writePod<std::uint64_t>(values.size());
        out_.write(reinterpret_cast<const char *>(values.data()),
                   static_cast<std::streamsize>(values.size() * sizeof(T)));
        check();
    }

    void writeString(const std::string &s);
    void writeMatrix(FloatMatrixView m);

  private:
    void check();

    std::ofstream out_;
    std::string path_;
};

/** Streaming binary reader with validation. */
class BinaryReader {
  public:
    /** Opens @p path and validates magic + version. */
    BinaryReader(const std::string &path, const char magic[8],
                 std::uint32_t expected_version);

    template <typename T>
    T
    readPod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        in_.read(reinterpret_cast<char *>(&value), sizeof(T));
        check();
        return value;
    }

    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto count = readPod<std::uint64_t>();
        boundCheck(count * sizeof(T));
        std::vector<T> values(static_cast<std::size_t>(count));
        in_.read(reinterpret_cast<char *>(values.data()),
                 static_cast<std::streamsize>(count * sizeof(T)));
        check();
        return values;
    }

    std::string readString();
    FloatMatrix readMatrix();

  private:
    void check();
    void boundCheck(std::uint64_t bytes) const;

    std::ifstream in_;
    std::string path_;
};

} // namespace juno

#endif // JUNO_COMMON_SERIALIZE_H
