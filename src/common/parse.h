#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace juno {

/**
 * Strict numeric parsing for CLI flags and environment knobs.
 *
 * std::stol / std::stod are the wrong tool at trust boundaries: they
 * accept trailing junk unless the caller re-checks, report overflow by
 * throwing, and under-flag builds their unchecked cousins (atoi,
 * strtol without errno) turn "9999999999999999999999" into silent UB
 * or a wrapped value. Every helper here:
 *
 *   - consumes the ENTIRE string ("12x", "1 2", "" all fail),
 *   - rejects leading whitespace (flags are machine-written; a stray
 *     space is a quoting bug worth surfacing),
 *   - reports overflow/underflow as parse failure instead of throwing
 *     or saturating silently,
 *   - returns std::nullopt on failure so the caller owns the
 *     diagnostic (CLI fatal(), env-var warn-and-ignore, ...).
 */

/** Base-10 signed integer; nullopt on junk, partial parse or overflow. */
std::optional<std::int64_t> parseInt64(const std::string &text);

/**
 * parseInt64 plus an inclusive [lo, hi] range check. Out-of-range
 * values fail the parse — the caller cannot accidentally keep them.
 */
std::optional<std::int64_t> parseInt64InRange(const std::string &text,
                                              std::int64_t lo,
                                              std::int64_t hi);

/**
 * Finite double; nullopt on junk, partial parse, overflow to +/-inf,
 * or explicit "inf"/"nan" spellings (no knob in this codebase wants a
 * non-finite value, and NaN silently poisons threshold comparisons).
 */
std::optional<double> parseFloat64(const std::string &text);

/**
 * Byte size with optional k/m/g suffix (case-insensitive, powers of
 * 1024): "512", "64m", "2G". Rejects negatives, junk, and values that
 * would overflow std::int64_t after scaling. This is the single
 * parser behind JUNO_MEM_BUDGET (HotListCache::parseByteSize) and any
 * future byte-size flag.
 */
std::optional<std::int64_t> parseByteSize(const std::string &text);

} // namespace juno
