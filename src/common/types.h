/**
 * @file
 * Fundamental scalar and index types shared across all JUNO modules.
 */
#ifndef JUNO_COMMON_TYPES_H
#define JUNO_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace juno {

/** Index of a search point inside a dataset. 32 bits covers our scales. */
using idx_t = std::int64_t;

/** Identifier of a coarse (IVF) cluster. */
using cluster_t = std::int32_t;

/** Identifier of a PQ codebook entry within one subspace (E <= 256). */
using entry_t = std::uint16_t;

/** Identifier of a 2-D PQ subspace (s in the paper, s < D/M). */
using subspace_t = std::int32_t;

/** Similarity metric used throughout the system (Equ. 2.1 in the paper). */
enum class Metric {
    /** Squared Euclidean distance; lower is better. */
    kL2,
    /** Inner product similarity (MIPS); higher is better. */
    kInnerProduct,
};

/** Returns a short human-readable name for @p metric. */
inline const char *
metricName(Metric metric)
{
    return metric == Metric::kL2 ? "L2" : "IP";
}

/**
 * True when @p a is a better score than @p b under @p metric.
 * L2 is lower-is-better, inner product is higher-is-better.
 */
inline bool
isBetter(Metric metric, float a, float b)
{
    return metric == Metric::kL2 ? a < b : a > b;
}

/** The worst possible score under @p metric (used as sentinel). */
float worstScore(Metric metric);

} // namespace juno

#endif // JUNO_COMMON_TYPES_H
