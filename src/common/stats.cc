#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace juno {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
QuantileSketch::add(double x)
{
    data_.push_back(x);
    sorted_ = false;
}

void
QuantileSketch::add(const std::vector<double> &xs)
{
    data_.insert(data_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (other.data_.empty())
        return;
    if (&other == this) { // self-merge: duplicate without iterating a
                          // vector that reallocates under the insert
        const std::size_t n = data_.size();
        data_.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i)
            data_.push_back(data_[i]);
    } else {
        data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    }
    sorted_ = false;
}

void
QuantileSketch::ensureSorted() const
{
    if (!sorted_) {
        std::sort(data_.begin(), data_.end());
        sorted_ = true;
    }
}

double
QuantileSketch::quantile(double q) const
{
    JUNO_REQUIRE(!data_.empty(), "quantile of empty sketch");
    JUNO_REQUIRE(q >= 0.0 && q <= 1.0, "quantile arg " << q);
    ensureSorted();
    if (data_.size() == 1)
        return data_[0];
    const double pos = q * static_cast<double>(data_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, data_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double
QuantileSketch::mean() const
{
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : data_)
        sum += x;
    return sum / static_cast<double>(data_.size());
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(bins), 0)
{
    JUNO_REQUIRE(bins > 0, "histogram needs bins > 0");
    JUNO_REQUIRE(hi > lo, "histogram needs hi > lo");
}

void
Histogram::add(double x)
{
    const int nbins = bins();
    int bin = static_cast<int>((x - lo_) / (hi_ - lo_) *
                               static_cast<double>(nbins));
    bin = std::clamp(bin, 0, nbins - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::cdfAt(int bin) const
{
    if (total_ == 0)
        return 0.0;
    std::size_t acc = 0;
    for (int b = 0; b <= bin && b < bins(); ++b)
        acc += counts_[static_cast<std::size_t>(b)];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double
Histogram::binCenter(int bin) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

} // namespace juno
