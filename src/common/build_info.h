/**
 * @file
 * Build provenance: git sha, compiler, build type and the active SIMD
 * level — stamped into every bench JSON snapshot and the metrics
 * export so a BENCH_*.json trajectory (or a production metrics scrape)
 * is attributable to the exact binary that produced it.
 */
#ifndef JUNO_COMMON_BUILD_INFO_H
#define JUNO_COMMON_BUILD_INFO_H

#include <string>
#include <utility>
#include <vector>

namespace juno {

/** Identity of this binary. simd_level is resolved at runtime. */
struct BuildInfo {
    std::string git_sha;    ///< short sha at configure time ("unknown" off-git)
    std::string compiler;   ///< compiler id + version (__VERSION__)
    std::string build_type; ///< CMAKE_BUILD_TYPE at configure time
    std::string simd_level; ///< active dispatch level (runtime query)
};

/** This binary's build info (simd level sampled per call). */
BuildInfo buildInfo();

/** The same info as a JSON object string (for bench snapshots). */
std::string buildInfoJson();

/** The same info as Prometheus-style info labels. */
std::vector<std::pair<std::string, std::string>> buildInfoLabels();

} // namespace juno

#endif // JUNO_COMMON_BUILD_INFO_H
