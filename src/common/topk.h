/**
 * @file
 * Bounded top-k selection under either metric.
 *
 * Every index's search path funnels candidate (id, score) pairs through
 * a TopK accumulator; `results()` returns them best-first. For L2 the
 * internal heap is a max-heap on distance (evict the worst), for inner
 * product a min-heap on similarity.
 */
#ifndef JUNO_COMMON_TOPK_H
#define JUNO_COMMON_TOPK_H

#include <utility>
#include <vector>

#include "common/types.h"

namespace juno {

/** One search hit: point id plus its score under the active metric. */
struct Neighbor {
    idx_t id = -1;
    float score = 0.0f;

    bool
    operator==(const Neighbor &other) const
    {
        return id == other.id && score == other.score;
    }
};

/** Bounded best-k accumulator. Not thread-safe. */
class TopK {
  public:
    /** @param k capacity (k > 0); @param metric decides the ordering. */
    TopK(idx_t k, Metric metric);

    /** Offers a candidate; keeps it only if it beats the current worst. */
    void push(idx_t id, float score);

    /**
     * Score of the current k-th best, or the metric's worst score while
     * fewer than k candidates have been accepted. Useful as an
     * early-termination bound.
     */
    float worstAccepted() const;

    /** True once k candidates are held. */
    bool full() const { return heap_.size() == static_cast<std::size_t>(k_); }

    idx_t k() const { return k_; }
    idx_t size() const { return static_cast<idx_t>(heap_.size()); }

    /** Extracts results best-first; the accumulator is left empty. */
    std::vector<Neighbor> take();

    /** Copy of the results best-first; accumulator unchanged. */
    std::vector<Neighbor> results() const;

  private:
    bool heapWorse(const Neighbor &a, const Neighbor &b) const;
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    idx_t k_;
    Metric metric_;
    // Binary heap with the *worst* accepted element at heap_[0].
    std::vector<Neighbor> heap_;
};

/**
 * Convenience: select the top-k of a dense score row (size n), e.g. to
 * pick the nprobs closest IVF centroids in the filtering stage.
 */
std::vector<Neighbor> selectTopK(Metric metric, const float *scores, idx_t n,
                                 idx_t k);

} // namespace juno

#endif // JUNO_COMMON_TOPK_H
