/**
 * @file
 * Streaming statistics helpers used by the benches to reproduce the
 * paper's mean / quartile / CDF plots (Figs. 4-7).
 */
#ifndef JUNO_COMMON_STATS_H
#define JUNO_COMMON_STATS_H

#include <string>
#include <vector>

namespace juno {

/** Welford mean/variance plus min/max over a stream of doubles. */
class RunningStat {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Holds all samples to answer arbitrary quantile queries. Quartile
 * accessors match the paper's plots: Q1/Q3 are the 25th/75th
 * percentiles, Q0/Q4 are the Tukey whiskers Q1-1.5*IQR / Q3+1.5*IQR.
 */
class QuantileSketch {
  public:
    void add(double x);
    void add(const std::vector<double> &xs);

    /**
     * Folds @p other's samples into this sketch. Quantiles of the
     * merged sketch are exactly those of the union of both sample
     * streams, so per-thread sketches can accumulate contention-free
     * and be combined at snapshot time (the serving layer's
     * ServiceStats does exactly this instead of serialising every
     * add() behind one mutex).
     */
    void merge(const QuantileSketch &other);

    std::size_t count() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /**
     * Linear-interpolated quantile, q in [0, 1]. Lazily sorts the
     * retained samples on first call after an add(); the mutation is
     * confined to the mutable sample buffer, so the method stays
     * logically const — but it is NOT safe to call concurrently with
     * itself or with add() on the same sketch.
     */
    double quantile(double q) const;

    double median() const { return quantile(0.5); }
    double q1() const { return quantile(0.25); }
    double q3() const { return quantile(0.75); }
    double iqr() const { return q3() - q1(); }
    /** Tukey lower whisker Q1 - 1.5*IQR (paper Fig. 7 notation Q0). */
    double q0() const { return q1() - 1.5 * iqr(); }
    /** Tukey upper whisker Q3 + 1.5*IQR (paper Fig. 7 notation Q4). */
    double q4() const { return q3() + 1.5 * iqr(); }
    double mean() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> data_;
    mutable bool sorted_ = true;
};

/** Histogram with fixed-width bins over [lo, hi); used for CDF plots. */
class Histogram {
  public:
    Histogram(double lo, double hi, int bins);

    void add(double x);

    int bins() const { return static_cast<int>(counts_.size()); }
    std::size_t total() const { return total_; }
    std::size_t countAt(int bin) const { return counts_.at(bin); }

    /** Fraction of samples in bins [0, bin] (the empirical CDF). */
    double cdfAt(int bin) const;

    /** Center x-value of @p bin. */
    double binCenter(int bin) const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace juno

#endif // JUNO_COMMON_STATS_H
