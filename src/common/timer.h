/**
 * @file
 * Wall-clock timers and the per-stage timing ledger used by the
 * three-stage search pipeline (filter / LUT construction / distance
 * calculation) to reproduce the paper's breakdown figures.
 *
 * Stages are interned: the ledger is a fixed array indexed by an enum,
 * so the hot path (every searchChunk brackets its stages) is an array
 * add instead of a string-keyed map lookup. Strings appear only at
 * reporting time via stageName() / the string overload of seconds().
 */
#ifndef JUNO_COMMON_TIMER_H
#define JUNO_COMMON_TIMER_H

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace juno {

/** Simple monotonic wall-clock stopwatch. */
class Timer {
  public:
    Timer() { reset(); }

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const;

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

    /** Microseconds elapsed. */
    double micros() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * The interned pipeline stages. The FAISS-style pipeline reports
 * kFilter / kLut / kScan; JUNO reports kFilter / kRtLut / kScan;
 * kPipelineWall is the overlapped wall time of JUNO's software
 * pipeline. Adding a stage means adding an enumerator before kCount
 * and a name in stageName().
 */
enum class Stage : std::uint8_t {
    kFilter = 0,   ///< stage A: cluster filtering (centroid scoring)
    kLut,          ///< stage B: per-query PQ lookup-table build
    kRtLut,        ///< stage B: RT-core LUT analogue (JUNO)
    kScan,         ///< stage C: list scan / distance accumulation
    kGraph,        ///< HNSW graph traversal
    kRtExact,      ///< RT-exact device-side search
    kPipelineWall, ///< overlapped wall time of the pipelined path
    kCount,        ///< number of stages (array size; not a stage)
};

/** Number of interned stages (size of the ledger array). */
inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kCount);

/** Reporting-time name of @p stage (e.g. "filter", "rt_lut"). */
const char *stageName(Stage stage);

/**
 * Accumulates wall time per stage across many queries.
 *
 * Backed by a fixed array indexed by Stage, so add() on the search hot
 * path costs one bounds-checked array accumulate. StageTimers is how
 * the Fig. 3(a)/11(a)/13(a) benches obtain stage breakdowns.
 */
class StageTimers {
  public:
    /** Adds @p seconds to @p stage. Hot path: a single array add. */
    void add(Stage stage, double seconds)
    {
        const auto i = static_cast<std::size_t>(stage);
        acc_[i] += seconds;
        seen_[i] = true;
    }

    /** Total accumulated seconds for @p stage (0 if never recorded). */
    double seconds(Stage stage) const
    {
        return acc_[static_cast<std::size_t>(stage)];
    }

    /**
     * Reporting-time lookup by stage name; 0 for unknown names or
     * stages never recorded. Keeps string-keyed consumers (benches,
     * examples) working without exposing the map they used to pay for.
     */
    double seconds(const std::string &name) const;

    /** Sum over all stages. */
    double totalSeconds() const;

    /** Names of the stages recorded so far, in enum (pipeline) order. */
    std::vector<std::string> names() const;

    /** Clears all accumulated values. */
    void reset();

    /** Merges another ledger into this one (stage-wise sum). */
    void merge(const StageTimers &other);

  private:
    std::array<double, kNumStages> acc_{};
    std::array<bool, kNumStages> seen_{};
};

/** RAII helper: adds the scope's elapsed time to a StageTimers entry. */
class ScopedStageTimer {
  public:
    ScopedStageTimer(StageTimers &timers, Stage stage)
        : timers_(timers), stage_(stage)
    {
    }

    ~ScopedStageTimer() { timers_.add(stage_, timer_.seconds()); }

    ScopedStageTimer(const ScopedStageTimer &) = delete;
    ScopedStageTimer &operator=(const ScopedStageTimer &) = delete;

  private:
    StageTimers &timers_;
    Stage stage_;
    Timer timer_;
};

} // namespace juno

#endif // JUNO_COMMON_TIMER_H
