/**
 * @file
 * Wall-clock timers and the per-stage timing ledger used by the
 * three-stage search pipeline (filter / LUT construction / distance
 * calculation) to reproduce the paper's breakdown figures.
 */
#ifndef JUNO_COMMON_TIMER_H
#define JUNO_COMMON_TIMER_H

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace juno {

/** Simple monotonic wall-clock stopwatch. */
class Timer {
  public:
    Timer() { reset(); }

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const;

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

    /** Microseconds elapsed. */
    double micros() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulates wall time per named stage across many queries.
 *
 * The FAISS-style pipeline reports `filter`, `lut` and `scan` stages;
 * JUNO reports `filter`, `rt_lut` and `scan`. StageTimers is how the
 * Fig. 3(a)/11(a)/13(a) benches obtain stage breakdowns.
 */
class StageTimers {
  public:
    /** Adds @p seconds to stage @p name. */
    void add(const std::string &name, double seconds);

    /** Total accumulated seconds for @p name (0 if never recorded). */
    double seconds(const std::string &name) const;

    /** Sum over all stages. */
    double totalSeconds() const;

    /** Stage names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Clears all accumulated values. */
    void reset();

    /** Merges another ledger into this one (stage-wise sum). */
    void merge(const StageTimers &other);

  private:
    std::map<std::string, double> acc_;
    std::vector<std::string> order_;
};

/** RAII helper: adds the scope's elapsed time to a StageTimers entry. */
class ScopedStageTimer {
  public:
    ScopedStageTimer(StageTimers &timers, std::string name)
        : timers_(timers), name_(std::move(name))
    {
    }

    ~ScopedStageTimer() { timers_.add(name_, timer_.seconds()); }

    ScopedStageTimer(const ScopedStageTimer &) = delete;
    ScopedStageTimer &operator=(const ScopedStageTimer &) = delete;

  private:
    StageTimers &timers_;
    std::string name_;
    Timer timer_;
};

} // namespace juno

#endif // JUNO_COMMON_TIMER_H
