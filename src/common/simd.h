/**
 * @file
 * SIMD kernel layer with runtime CPU-feature dispatch.
 *
 * The paper's filtering and ADC-scoring kernels run on wide
 * data-parallel GPU hardware; on the CPU substitution they bottom out
 * here. A dispatch table of function pointers is selected once at
 * startup from CPUID (AVX2+FMA when available, a scalar reference
 * otherwise) and every hot kernel — single-pair reductions, batched
 * row scoring, the register-blocked GEMM tile, the batched ADC scan
 * and the sparse candidate compaction — calls through it.
 *
 * Contracts:
 *  - The scalar table is the bit-exact reference: its results never
 *    change across compilers or flags (fixed accumulation order; the
 *    build pins -ffp-contract=off on simd.cc so -mfma builds cannot
 *    fuse its mul+add pairs into FMAs).
 *  - The AVX2 float reductions may differ from scalar within normal
 *    FP reassociation tolerance (tests allow 1e-4 relative).
 *  - The ADC scan is bitwise identical across tables: each point's
 *    accumulation order over subspaces is the same in every path.
 *  - Candidate compaction emits the same candidates in the same
 *    (ascending ordinal) order in every path.
 *
 * Override for testing: set `JUNO_SIMD=scalar`, `JUNO_SIMD=avx2` or
 * `JUNO_SIMD=avx512` in the environment before first use, or call
 * simd::setLevel() at runtime (benches flip levels to print
 * scalar-vs-dispatched rows).
 */
#ifndef JUNO_COMMON_SIMD_H
#define JUNO_COMMON_SIMD_H

#include <cstdint>
#include <vector>

#include "common/topk.h"
#include "common/types.h"

namespace juno {
namespace simd {

/** Instruction-set tier of a dispatch table. */
enum class Level {
    kScalar = 0, ///< portable reference, bit-exact contract
    kAvx2 = 1,   ///< AVX2 + FMA (x86-64)
    kAvx512 = 2, ///< AVX-512 F/BW/VL: AVX2 table + 16-wide ADC gather
};

/**
 * One dispatchable kernel set. All pointers are always non-null; the
 * AVX2 table falls back to scalar entries on hosts without AVX2.
 */
struct Kernels {
    /** Human-readable tier name ("scalar", "avx2"). */
    const char *name;

    /** Squared L2 distance between two d-dim vectors. */
    float (*l2_sqr)(const float *a, const float *b, idx_t d);
    /** Inner product between two d-dim vectors. */
    float (*inner_product)(const float *a, const float *b, idx_t d);
    /** Squared L2 norm of a d-dim vector. */
    float (*l2_norm_sqr)(const float *a, idx_t d);

    /**
     * Batched row scoring against one query: out[i] = kernel(q,
     * rows + i*d) for n contiguous d-dim rows. Register-blocks the
     * query loads across several rows (the pairwiseScores /
     * computeLut inner tile).
     */
    void (*l2_sqr_batch)(const float *q, const float *rows, idx_t n,
                         idx_t d, float *out);
    void (*inner_product_batch)(const float *q, const float *rows, idx_t n,
                                idx_t d, float *out);

    /**
     * Row-major GEMM c = a * b with a (m x k), b (k x n), c (m x n),
     * all dense and non-overlapping; c is fully overwritten. The AVX2
     * version uses a 4x16 register-blocked FMA tile.
     */
    void (*gemm)(const float *a, const float *b, float *c, idx_t m,
                 idx_t k, idx_t n);

    /**
     * Batched ADC scan (paper stage D): for each of n point ids,
     * out[i] = base + sum_s lut[s*lut_stride + code_row(ids[i])[s]],
     * where code_row(p) = codes + p*code_stride. The AVX2 path
     * gathers LUT entries for 8 codes at a time; accumulation order
     * per point is identical to scalar, so results are bitwise equal.
     */
    void (*adc_scan)(const float *lut, idx_t lut_stride, int subspaces,
                     const entry_t *codes, std::size_t code_stride,
                     const idx_t *ids, std::size_t n, float base,
                     float *out);

    /**
     * Streaming ADC scan over a list-resident interleaved code layout
     * (quant/interleaved_codes.h): points live in blocks of 32,
     * subspace-major within a block (blocks[s * 32 + j] is point
     * block_base + j's subspace-s code), so the scan walks memory
     * sequentially with no id gather. out[i] = base +
     * sum_s lut[s * lut_stride + code(i, s)] for i < n; accumulation
     * order per point is one add per subspace in subspace order, so
     * results are bitwise identical to adc_scan on the same codes in
     * every table. Tail blocks are zero-padded by the layout builder.
     */
    void (*adc_scan_interleaved)(const float *lut, idx_t lut_stride,
                                 int subspaces, const entry_t *blocks,
                                 std::size_t n, float base, float *out);

    /**
     * 4-bit fast scan (FAISS-style): nibble-packed interleaved codes
     * (16 bytes per block and subspace; byte j = point j low nibble,
     * point j+16 high nibble) scored against a u8 quantised LUT
     * (subspaces x 16), accumulated in u16 lanes:
     * qsums[i] = sum_s lut[s * 16 + code(i, s)]. Integer arithmetic,
     * so every table returns identical sums; the AVX2/AVX-512 paths
     * keep the LUT in registers and scan via byte shuffles. The
     * caller reconstructs float scores as bias + scale * qsum
     * (quant/interleaved_codes.h) and owns overflow avoidance
     * (subspaces <= 256).
     */
    void (*fastscan_pq4)(const std::uint8_t *packed, int subspaces,
                         const std::uint8_t *lut, std::size_t n,
                         std::uint16_t *qsums);

    /**
     * Sparse candidate compaction (distance-calculation finalise):
     * appends {list[i], acc[i] + offset} to @p out for every i < n
     * with hits[i] != 0, in ascending i. The AVX2 path skips
     * untouched ordinals eight at a time, which is the common case
     * under JUNO's selective LUT.
     */
    void (*compact_candidates)(const float *acc, const std::int32_t *hits,
                               const idx_t *list, std::size_t n,
                               float offset, std::vector<Neighbor> &out);
};

/** True when this host can execute the @p level table natively. */
bool supported(Level level);

/** Best level this host supports (kAvx512 > kAvx2 > kScalar). */
Level bestSupported();

/** Table for an explicit level (benches compare tables directly). */
const Kernels &table(Level level);

/**
 * The active dispatch table. Selected once on first use: the
 * JUNO_SIMD environment override if set and supported, otherwise
 * bestSupported().
 */
const Kernels &active();

/** Level of the active table. */
Level level();

/**
 * Re-points the active table (tests/benches). Returns false — and
 * leaves the dispatch unchanged — when the host can't execute
 * @p level.
 */
bool setLevel(Level level);

/** Name of @p level ("scalar"/"avx2"). */
const char *levelName(Level level);

/**
 * Parses a JUNO_SIMD-style spec ("scalar", "avx2", "" / "auto" for
 * best-supported). Returns bestSupported() on unknown spec (with a
 * warning) so a typo can't silently change results.
 */
Level parseLevel(const char *spec);

// ---- Convenience wrappers over the active table ----

inline float
l2Sqr(const float *a, const float *b, idx_t d)
{
    return active().l2_sqr(a, b, d);
}

inline float
innerProduct(const float *a, const float *b, idx_t d)
{
    return active().inner_product(a, b, d);
}

inline float
l2NormSqr(const float *a, idx_t d)
{
    return active().l2_norm_sqr(a, d);
}

/** Dispatched score under @p metric (see common/types.h ordering). */
inline float
score(Metric metric, const float *a, const float *b, idx_t d)
{
    return metric == Metric::kL2 ? l2Sqr(a, b, d) : innerProduct(a, b, d);
}

/** Batched dispatched score over n contiguous rows. */
inline void
scoreBatch(Metric metric, const float *q, const float *rows, idx_t n,
           idx_t d, float *out)
{
    if (metric == Metric::kL2)
        active().l2_sqr_batch(q, rows, n, d, out);
    else
        active().inner_product_batch(q, rows, n, d, out);
}

inline void
adcScan(const float *lut, idx_t lut_stride, int subspaces,
        const entry_t *codes, std::size_t code_stride, const idx_t *ids,
        std::size_t n, float base, float *out)
{
    active().adc_scan(lut, lut_stride, subspaces, codes, code_stride, ids,
                      n, base, out);
}

inline void
adcScanInterleaved(const float *lut, idx_t lut_stride, int subspaces,
                   const entry_t *blocks, std::size_t n, float base,
                   float *out)
{
    active().adc_scan_interleaved(lut, lut_stride, subspaces, blocks, n,
                                  base, out);
}

inline void
fastScanPq4(const std::uint8_t *packed, int subspaces,
            const std::uint8_t *lut, std::size_t n, std::uint16_t *qsums)
{
    active().fastscan_pq4(packed, subspaces, lut, n, qsums);
}

inline void
compactCandidates(const float *acc, const std::int32_t *hits,
                  const idx_t *list, std::size_t n, float offset,
                  std::vector<Neighbor> &out)
{
    active().compact_candidates(acc, hits, list, n, offset, out);
}

} // namespace simd
} // namespace juno

#endif // JUNO_COMMON_SIMD_H
