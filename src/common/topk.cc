#include "common/topk.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace juno {

float
worstScore(Metric metric)
{
    return metric == Metric::kL2 ? std::numeric_limits<float>::max()
                                 : std::numeric_limits<float>::lowest();
}

TopK::TopK(idx_t k, Metric metric) : k_(k), metric_(metric)
{
    JUNO_REQUIRE(k > 0, "top-k requires k > 0, got " << k);
    heap_.reserve(static_cast<std::size_t>(k));
}

bool
TopK::heapWorse(const Neighbor &a, const Neighbor &b) const
{
    // True when a is strictly worse than b (belongs nearer the root).
    if (a.score != b.score)
        return isBetter(metric_, b.score, a.score);
    // Tie-break on id for deterministic results across insert orders.
    return a.id > b.id;
}

void
TopK::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!heapWorse(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
TopK::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t worst = i;
        const std::size_t l = 2 * i + 1, r = 2 * i + 2;
        if (l < n && heapWorse(heap_[l], heap_[worst]))
            worst = l;
        if (r < n && heapWorse(heap_[r], heap_[worst]))
            worst = r;
        if (worst == i)
            break;
        std::swap(heap_[i], heap_[worst]);
        i = worst;
    }
}

void
TopK::push(idx_t id, float score)
{
    if (!full()) {
        heap_.push_back({id, score});
        siftUp(heap_.size() - 1);
        return;
    }
    const Neighbor cand{id, score};
    // Replace the root (current worst) only if the candidate is better.
    if (heapWorse(cand, heap_[0]))
        return;
    heap_[0] = cand;
    siftDown(0);
}

float
TopK::worstAccepted() const
{
    if (!full())
        return worstScore(metric_);
    return heap_[0].score;
}

std::vector<Neighbor>
TopK::take()
{
    std::vector<Neighbor> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(),
              [this](const Neighbor &a, const Neighbor &b) {
                  if (a.score != b.score)
                      return isBetter(metric_, a.score, b.score);
                  return a.id < b.id;
              });
    return out;
}

std::vector<Neighbor>
TopK::results() const
{
    TopK copy = *this;
    return copy.take();
}

std::vector<Neighbor>
selectTopK(Metric metric, const float *scores, idx_t n, idx_t k)
{
    if (k == 1 && n > 0) {
        // Dense argbest without the heap: two branch-light passes the
        // compiler can vectorise. Equivalent to the TopK path for
        // finite scores — the best score wins and ties go to the
        // smallest index, which is exactly the first occurrence found
        // in pass two. Matters because nprobs=1 filtering calls this
        // once per query over the full centroid row (the serving
        // layer's hottest selection).
        float best = scores[0];
        if (metric == Metric::kL2) {
            for (idx_t i = 1; i < n; ++i)
                best = std::min(best, scores[i]);
        } else {
            for (idx_t i = 1; i < n; ++i)
                best = std::max(best, scores[i]);
        }
        // A non-NaN fold result is literally one of the elements, so
        // the scan below must terminate before n. A NaN result (only
        // possible when scores[0] is NaN) never compares equal to
        // anything — drop to the heap path instead of scanning off
        // the end of the row.
        if (best == best) {
            idx_t arg = 0;
            while (scores[arg] != best)
                ++arg;
            return {{arg, best}};
        }
    }
    TopK top(std::min(k, std::max<idx_t>(n, 1)), metric);
    for (idx_t i = 0; i < n; ++i)
        top.push(i, scores[i]);
    return top.take();
}

} // namespace juno
