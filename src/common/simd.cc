#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define JUNO_SIMD_X86 1
#include <immintrin.h>
/** Compiles one function for AVX2+FMA without -mavx2 on the whole TU. */
#define JUNO_TARGET_AVX2 __attribute__((target("avx2,fma")))
/** Same for the AVX-512 subset the 16-wide ADC gather needs. */
#define JUNO_TARGET_AVX512                                                  \
    __attribute__((target("avx512f,avx512bw,avx512vl,avx2,fma")))
#else
#define JUNO_SIMD_X86 0
#endif

namespace juno {
namespace simd {
namespace {

// ====================================================================
// Scalar reference table. Fixed accumulation order: four independent
// accumulators over 4-wide strips, combined as (a0+a1)+(a2+a3). This
// is the bit-exact contract every other table is tested against.
// ====================================================================

float
l2SqrScalar(const float *a, const float *b, idx_t d)
{
    float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    idx_t i = 0;
    for (; i + 4 <= d; i += 4) {
        const float d0 = a[i] - b[i];
        const float d1 = a[i + 1] - b[i + 1];
        const float d2 = a[i + 2] - b[i + 2];
        const float d3 = a[i + 3] - b[i + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (; i < d; ++i) {
        const float diff = a[i] - b[i];
        acc0 += diff * diff;
    }
    return (acc0 + acc1) + (acc2 + acc3);
}

float
innerProductScalar(const float *a, const float *b, idx_t d)
{
    float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    idx_t i = 0;
    for (; i + 4 <= d; i += 4) {
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    for (; i < d; ++i)
        acc0 += a[i] * b[i];
    return (acc0 + acc1) + (acc2 + acc3);
}

float
l2NormSqrScalar(const float *a, idx_t d)
{
    return innerProductScalar(a, a, d);
}

void
l2SqrBatchScalar(const float *q, const float *rows, idx_t n, idx_t d,
                 float *out)
{
    for (idx_t i = 0; i < n; ++i)
        out[i] = l2SqrScalar(q, rows + static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(d),
                             d);
}

void
innerProductBatchScalar(const float *q, const float *rows, idx_t n, idx_t d,
                        float *out)
{
    for (idx_t i = 0; i < n; ++i)
        out[i] = innerProductScalar(
            q,
            rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d),
            d);
}

void
gemmScalar(const float *a, const float *b, float *c, idx_t m, idx_t k,
           idx_t n)
{
    std::memset(c, 0,
                static_cast<std::size_t>(m) * static_cast<std::size_t>(n) *
                    sizeof(float));
    // i-k-j loop order: streams B rows, accumulates into C rows.
    for (idx_t i = 0; i < m; ++i) {
        const float *arow = a + static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(k);
        float *crow = c + static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(n);
        for (idx_t kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f)
                continue;
            const float *brow = b + static_cast<std::size_t>(kk) *
                                        static_cast<std::size_t>(n);
            for (idx_t j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
}

void
adcScanScalar(const float *lut, idx_t lut_stride, int subspaces,
              const entry_t *codes, std::size_t code_stride,
              const idx_t *ids, std::size_t n, float base, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        // The id gather makes every code row a data-dependent random
        // load; prefetching a few ids ahead hides most of that miss.
        if (i + 4 < n)
            __builtin_prefetch(
                codes + static_cast<std::size_t>(ids[i + 4]) *
                            code_stride);
        const entry_t *pc =
            codes + static_cast<std::size_t>(ids[i]) * code_stride;
        float acc = base;
        for (int s = 0; s < subspaces; ++s)
            acc += lut[static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(lut_stride) +
                       pc[s]];
        out[i] = acc;
    }
}

void
adcScanInterleavedScalar(const float *lut, idx_t lut_stride, int subspaces,
                         const entry_t *blocks, std::size_t n, float base,
                         float *out)
{
    const auto stride = static_cast<std::size_t>(lut_stride);
    const std::size_t block_stride =
        32u * static_cast<std::size_t>(subspaces);
    for (std::size_t i = 0; i < n; ++i) {
        const entry_t *blk = blocks + (i / 32) * block_stride;
        const std::size_t j = i % 32;
        float acc = base;
        for (int s = 0; s < subspaces; ++s)
            acc += lut[static_cast<std::size_t>(s) * stride +
                       blk[static_cast<std::size_t>(s) * 32 + j]];
        out[i] = acc;
    }
}

void
fastScanPq4Scalar(const std::uint8_t *packed, int subspaces,
                  const std::uint8_t *lut, std::size_t n,
                  std::uint16_t *qsums)
{
    const std::size_t block_stride =
        16u * static_cast<std::size_t>(subspaces);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *blk = packed + (i / 32) * block_stride;
        const std::size_t lane = i & 15;
        const bool high = (i % 32) >= 16;
        std::uint16_t acc = 0;
        for (int s = 0; s < subspaces; ++s) {
            const std::uint8_t byte =
                blk[static_cast<std::size_t>(s) * 16 + lane];
            const std::uint8_t code =
                high ? byte >> 4 : byte & 0x0F;
            acc = static_cast<std::uint16_t>(
                acc + lut[static_cast<std::size_t>(s) * 16 + code]);
        }
        qsums[i] = acc;
    }
}

void
compactCandidatesScalar(const float *acc, const std::int32_t *hits,
                        const idx_t *list, std::size_t n, float offset,
                        std::vector<Neighbor> &out)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (hits[i] != 0)
            out.push_back({list[i], acc[i] + offset});
    }
}

const Kernels kScalarTable = {
    "scalar",
    &l2SqrScalar,
    &innerProductScalar,
    &l2NormSqrScalar,
    &l2SqrBatchScalar,
    &innerProductBatchScalar,
    &gemmScalar,
    &adcScanScalar,
    &adcScanInterleavedScalar,
    &fastScanPq4Scalar,
    &compactCandidatesScalar,
};

#if JUNO_SIMD_X86
// ====================================================================
// AVX2 + FMA table. Compiled with per-function target attributes so
// the library still builds and runs on pre-AVX2 hosts; the dispatch
// below only installs it after a CPUID check.
// ====================================================================

JUNO_TARGET_AVX2 inline float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    __m128 shuf = _mm_movehdup_ps(lo);
    __m128 sums = _mm_add_ps(lo, shuf);
    shuf = _mm_movehl_ps(shuf, sums);
    sums = _mm_add_ss(sums, shuf);
    return _mm_cvtss_f32(sums);
}

JUNO_TARGET_AVX2 float
l2SqrAvx2(const float *a, const float *b, idx_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    idx_t i = 0;
    for (; i + 16 <= d; i += 16) {
        const __m256 d0 =
            _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                        _mm256_loadu_ps(b + i + 8));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    }
    for (; i + 8 <= d; i += 8) {
        const __m256 d0 =
            _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    }
    float acc = hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < d; ++i) {
        const float diff = a[i] - b[i];
        acc += diff * diff;
    }
    return acc;
}

JUNO_TARGET_AVX2 float
innerProductAvx2(const float *a, const float *b, idx_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    idx_t i = 0;
    for (; i + 16 <= d; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    for (; i + 8 <= d; i += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    float acc = hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < d; ++i)
        acc += a[i] * b[i];
    return acc;
}

JUNO_TARGET_AVX2 float
l2NormSqrAvx2(const float *a, idx_t d)
{
    return innerProductAvx2(a, a, d);
}

/**
 * Batched L2 over contiguous rows. d == 2 (JUNO's mandatory subspace
 * width) packs four rows per vector; the general path register-blocks
 * four rows so each query cacheline load is reused fourfold.
 */
JUNO_TARGET_AVX2 void
l2SqrBatchAvx2(const float *q, const float *rows, idx_t n, idx_t d,
               float *out)
{
    idx_t i = 0;
    if (d == 2) {
        const __m256 qq = _mm256_setr_ps(q[0], q[1], q[0], q[1], q[0], q[1],
                                         q[0], q[1]);
        const __m256i even =
            _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
        for (; i + 4 <= n; i += 4) {
            const __m256 r = _mm256_loadu_ps(rows + 2 * i);
            const __m256 diff = _mm256_sub_ps(r, qq);
            const __m256 sq = _mm256_mul_ps(diff, diff);
            // Pair-sum: add the lane-swapped copy, keep even lanes.
            const __m256 sum = _mm256_add_ps(
                sq, _mm256_permute_ps(sq, 0xB1));
            const __m256 packed = _mm256_permutevar8x32_ps(sum, even);
            _mm_storeu_ps(out + i, _mm256_castps256_ps128(packed));
        }
        for (; i < n; ++i) {
            const float dx = rows[2 * i] - q[0];
            const float dy = rows[2 * i + 1] - q[1];
            out[i] = dx * dx + dy * dy;
        }
        return;
    }
    // Two-row register blocking; each row runs the *same* strip/tail
    // accumulation schedule as l2SqrAvx2, so a batch row is bitwise
    // identical to the single-pair kernel of this table (consumers mix
    // the two freely: brute-force scans batch, inverted lists do not).
    for (; i + 2 <= n; i += 2) {
        const float *r0 = rows + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(d);
        const float *r1 = r0 + d;
        __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
        __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
        idx_t j = 0;
        for (; j + 16 <= d; j += 16) {
            const __m256 qv0 = _mm256_loadu_ps(q + j);
            const __m256 qv1 = _mm256_loadu_ps(q + j + 8);
            const __m256 d00 =
                _mm256_sub_ps(qv0, _mm256_loadu_ps(r0 + j));
            const __m256 d01 =
                _mm256_sub_ps(qv1, _mm256_loadu_ps(r0 + j + 8));
            const __m256 d10 =
                _mm256_sub_ps(qv0, _mm256_loadu_ps(r1 + j));
            const __m256 d11 =
                _mm256_sub_ps(qv1, _mm256_loadu_ps(r1 + j + 8));
            a00 = _mm256_fmadd_ps(d00, d00, a00);
            a01 = _mm256_fmadd_ps(d01, d01, a01);
            a10 = _mm256_fmadd_ps(d10, d10, a10);
            a11 = _mm256_fmadd_ps(d11, d11, a11);
        }
        for (; j + 8 <= d; j += 8) {
            const __m256 qv = _mm256_loadu_ps(q + j);
            const __m256 d00 =
                _mm256_sub_ps(qv, _mm256_loadu_ps(r0 + j));
            const __m256 d10 =
                _mm256_sub_ps(qv, _mm256_loadu_ps(r1 + j));
            a00 = _mm256_fmadd_ps(d00, d00, a00);
            a10 = _mm256_fmadd_ps(d10, d10, a10);
        }
        float s0 = hsum8(_mm256_add_ps(a00, a01));
        float s1 = hsum8(_mm256_add_ps(a10, a11));
        for (; j < d; ++j) {
            const float d0 = q[j] - r0[j];
            const float d1 = q[j] - r1[j];
            s0 += d0 * d0;
            s1 += d1 * d1;
        }
        out[i] = s0;
        out[i + 1] = s1;
    }
    for (; i < n; ++i)
        out[i] = l2SqrAvx2(q,
                           rows + static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(d),
                           d);
}

JUNO_TARGET_AVX2 void
innerProductBatchAvx2(const float *q, const float *rows, idx_t n, idx_t d,
                      float *out)
{
    idx_t i = 0;
    if (d == 2) {
        const __m256 qq = _mm256_setr_ps(q[0], q[1], q[0], q[1], q[0], q[1],
                                         q[0], q[1]);
        const __m256i even =
            _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
        for (; i + 4 <= n; i += 4) {
            const __m256 prod =
                _mm256_mul_ps(_mm256_loadu_ps(rows + 2 * i), qq);
            const __m256 sum = _mm256_add_ps(
                prod, _mm256_permute_ps(prod, 0xB1));
            const __m256 packed = _mm256_permutevar8x32_ps(sum, even);
            _mm_storeu_ps(out + i, _mm256_castps256_ps128(packed));
        }
        for (; i < n; ++i)
            out[i] = rows[2 * i] * q[0] + rows[2 * i + 1] * q[1];
        return;
    }
    // Mirrors innerProductAvx2's accumulation schedule per row (see
    // the l2 batch kernel for why bitwise row equality matters).
    for (; i + 2 <= n; i += 2) {
        const float *r0 = rows + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(d);
        const float *r1 = r0 + d;
        __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
        __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
        idx_t j = 0;
        for (; j + 16 <= d; j += 16) {
            const __m256 qv0 = _mm256_loadu_ps(q + j);
            const __m256 qv1 = _mm256_loadu_ps(q + j + 8);
            a00 = _mm256_fmadd_ps(qv0, _mm256_loadu_ps(r0 + j), a00);
            a01 = _mm256_fmadd_ps(qv1, _mm256_loadu_ps(r0 + j + 8), a01);
            a10 = _mm256_fmadd_ps(qv0, _mm256_loadu_ps(r1 + j), a10);
            a11 = _mm256_fmadd_ps(qv1, _mm256_loadu_ps(r1 + j + 8), a11);
        }
        for (; j + 8 <= d; j += 8) {
            const __m256 qv = _mm256_loadu_ps(q + j);
            a00 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0 + j), a00);
            a10 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1 + j), a10);
        }
        float s0 = hsum8(_mm256_add_ps(a00, a01));
        float s1 = hsum8(_mm256_add_ps(a10, a11));
        for (; j < d; ++j) {
            s0 += q[j] * r0[j];
            s1 += q[j] * r1[j];
        }
        out[i] = s0;
        out[i + 1] = s1;
    }
    for (; i < n; ++i)
        out[i] = innerProductAvx2(q,
                                  rows + static_cast<std::size_t>(i) *
                                             static_cast<std::size_t>(d),
                                  d);
}

/** 4x16 register-blocked FMA tile; B rows stream, C stays in registers. */
JUNO_TARGET_AVX2 void
gemmAvx2(const float *a, const float *b, float *c, idx_t m, idx_t k,
         idx_t n)
{
    const auto kk_sz = static_cast<std::size_t>(k);
    const auto n_sz = static_cast<std::size_t>(n);
    std::memset(c, 0, static_cast<std::size_t>(m) * n_sz * sizeof(float));
    idx_t i = 0;
    for (; i + 4 <= m; i += 4) {
        const float *a0 = a + static_cast<std::size_t>(i) * kk_sz;
        const float *a1 = a0 + kk_sz;
        const float *a2 = a1 + kk_sz;
        const float *a3 = a2 + kk_sz;
        float *c0 = c + static_cast<std::size_t>(i) * n_sz;
        float *c1 = c0 + n_sz;
        float *c2 = c1 + n_sz;
        float *c3 = c2 + n_sz;
        idx_t j = 0;
        for (; j + 16 <= n; j += 16) {
            __m256 v00 = _mm256_setzero_ps(), v01 = _mm256_setzero_ps();
            __m256 v10 = _mm256_setzero_ps(), v11 = _mm256_setzero_ps();
            __m256 v20 = _mm256_setzero_ps(), v21 = _mm256_setzero_ps();
            __m256 v30 = _mm256_setzero_ps(), v31 = _mm256_setzero_ps();
            for (idx_t kk = 0; kk < k; ++kk) {
                const float *brow =
                    b + static_cast<std::size_t>(kk) * n_sz + j;
                const __m256 b0 = _mm256_loadu_ps(brow);
                const __m256 b1 = _mm256_loadu_ps(brow + 8);
                const __m256 w0 = _mm256_set1_ps(a0[kk]);
                const __m256 w1 = _mm256_set1_ps(a1[kk]);
                const __m256 w2 = _mm256_set1_ps(a2[kk]);
                const __m256 w3 = _mm256_set1_ps(a3[kk]);
                v00 = _mm256_fmadd_ps(w0, b0, v00);
                v01 = _mm256_fmadd_ps(w0, b1, v01);
                v10 = _mm256_fmadd_ps(w1, b0, v10);
                v11 = _mm256_fmadd_ps(w1, b1, v11);
                v20 = _mm256_fmadd_ps(w2, b0, v20);
                v21 = _mm256_fmadd_ps(w2, b1, v21);
                v30 = _mm256_fmadd_ps(w3, b0, v30);
                v31 = _mm256_fmadd_ps(w3, b1, v31);
            }
            _mm256_storeu_ps(c0 + j, v00);
            _mm256_storeu_ps(c0 + j + 8, v01);
            _mm256_storeu_ps(c1 + j, v10);
            _mm256_storeu_ps(c1 + j + 8, v11);
            _mm256_storeu_ps(c2 + j, v20);
            _mm256_storeu_ps(c2 + j + 8, v21);
            _mm256_storeu_ps(c3 + j, v30);
            _mm256_storeu_ps(c3 + j + 8, v31);
        }
        for (; j < n; ++j) {
            float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
            for (idx_t kk = 0; kk < k; ++kk) {
                const float bv = b[static_cast<std::size_t>(kk) * n_sz + j];
                s0 += a0[kk] * bv;
                s1 += a1[kk] * bv;
                s2 += a2[kk] * bv;
                s3 += a3[kk] * bv;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
        }
    }
    for (; i < m; ++i) {
        const float *arow = a + static_cast<std::size_t>(i) * kk_sz;
        float *crow = c + static_cast<std::size_t>(i) * n_sz;
        for (idx_t kk = 0; kk < k; ++kk) {
            const __m256 w = _mm256_set1_ps(arow[kk]);
            const float *brow = b + static_cast<std::size_t>(kk) * n_sz;
            idx_t j = 0;
            for (; j + 8 <= n; j += 8)
                _mm256_storeu_ps(
                    crow + j,
                    _mm256_fmadd_ps(w, _mm256_loadu_ps(brow + j),
                                    _mm256_loadu_ps(crow + j)));
            for (; j < n; ++j)
                crow[j] += arow[kk] * brow[j];
        }
    }
}

/**
 * Transposes one 8-point x 8-subspace uint16 tile (each point's codes
 * loaded with a single 128-bit load from @p pc at subspace offset
 * @p s) into t[j] = the 8 points' codes for subspace s + j. Shared by
 * the AVX2 and AVX-512 ADC scans so the networks cannot drift apart.
 */
JUNO_TARGET_AVX2 inline void
transposeCodes8x8(const entry_t *const *pc, int s, __m128i t[8])
{
    const __m128i r0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[0] + s));
    const __m128i r1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[1] + s));
    const __m128i r2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[2] + s));
    const __m128i r3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[3] + s));
    const __m128i r4 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[4] + s));
    const __m128i r5 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[5] + s));
    const __m128i r6 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[6] + s));
    const __m128i r7 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(pc[7] + s));
    const __m128i ab_lo = _mm_unpacklo_epi16(r0, r1);
    const __m128i ab_hi = _mm_unpackhi_epi16(r0, r1);
    const __m128i cd_lo = _mm_unpacklo_epi16(r2, r3);
    const __m128i cd_hi = _mm_unpackhi_epi16(r2, r3);
    const __m128i ef_lo = _mm_unpacklo_epi16(r4, r5);
    const __m128i ef_hi = _mm_unpackhi_epi16(r4, r5);
    const __m128i gh_lo = _mm_unpacklo_epi16(r6, r7);
    const __m128i gh_hi = _mm_unpackhi_epi16(r6, r7);
    const __m128i abcd_0 = _mm_unpacklo_epi32(ab_lo, cd_lo);
    const __m128i abcd_1 = _mm_unpackhi_epi32(ab_lo, cd_lo);
    const __m128i abcd_2 = _mm_unpacklo_epi32(ab_hi, cd_hi);
    const __m128i abcd_3 = _mm_unpackhi_epi32(ab_hi, cd_hi);
    const __m128i efgh_0 = _mm_unpacklo_epi32(ef_lo, gh_lo);
    const __m128i efgh_1 = _mm_unpackhi_epi32(ef_lo, gh_lo);
    const __m128i efgh_2 = _mm_unpacklo_epi32(ef_hi, gh_hi);
    const __m128i efgh_3 = _mm_unpackhi_epi32(ef_hi, gh_hi);
    t[0] = _mm_unpacklo_epi64(abcd_0, efgh_0);
    t[1] = _mm_unpackhi_epi64(abcd_0, efgh_0);
    t[2] = _mm_unpacklo_epi64(abcd_1, efgh_1);
    t[3] = _mm_unpackhi_epi64(abcd_1, efgh_1);
    t[4] = _mm_unpacklo_epi64(abcd_2, efgh_2);
    t[5] = _mm_unpackhi_epi64(abcd_2, efgh_2);
    t[6] = _mm_unpacklo_epi64(abcd_3, efgh_3);
    t[7] = _mm_unpackhi_epi64(abcd_3, efgh_3);
}

/**
 * One 8-point x 8-subspace ADC tile: transpose the code tile, then
 * gather one LUT row per subspace. The accumulator receives one add
 * per subspace in subspace order, so per-point (per-lane) results
 * stay bitwise identical to the scalar scan.
 */
JUNO_TARGET_AVX2 inline __m256
adcTile8x8(const entry_t *const *pc, int s, const float *lrow,
           std::size_t stride, __m256 acc)
{
    __m128i t[8];
    transposeCodes8x8(pc, s, t);
    for (int j = 0; j < 8; ++j, lrow += stride)
        acc = _mm256_add_ps(
            acc,
            _mm256_i32gather_ps(lrow, _mm256_cvtepu16_epi32(t[j]), 4));
    return acc;
}

/**
 * Gathers LUT entries for 8 codes per step (8x8 tiles when at least 8
 * subspaces remain, per-subspace transposed gathers for the rest).
 * Per-point accumulation order over subspaces matches scalar exactly
 * (one add per subspace, in subspace order), so the result is bitwise
 * identical.
 */
JUNO_TARGET_AVX2 void
adcScanAvx2(const float *lut, idx_t lut_stride, int subspaces,
            const entry_t *codes, std::size_t code_stride, const idx_t *ids,
            std::size_t n, float base, float *out)
{
    const auto stride = static_cast<std::size_t>(lut_stride);
    std::size_t i = 0;
    // Two independent 8-point blocks per step: each block's
    // accumulator is a serial add chain (the bitwise contract), so a
    // second in-flight chain is what hides the add+gather latency.
    for (; i + 16 <= n; i += 16) {
        const entry_t *pca[8];
        const entry_t *pcb[8];
        for (int j = 0; j < 8; ++j) {
            pca[j] =
                codes +
                static_cast<std::size_t>(
                    ids[i + static_cast<std::size_t>(j)]) *
                    code_stride;
            pcb[j] =
                codes +
                static_cast<std::size_t>(
                    ids[i + 8 + static_cast<std::size_t>(j)]) *
                    code_stride;
        }
        // Pull the next block's gathered code rows towards the caches
        // while this block's transposes and LUT gathers execute.
        if (i + 32 <= n) {
            for (int j = 0; j < 16; ++j)
                __builtin_prefetch(
                    codes +
                    static_cast<std::size_t>(
                        ids[i + 16 + static_cast<std::size_t>(j)]) *
                        code_stride);
        }
        __m256 acca = _mm256_set1_ps(base);
        __m256 accb = _mm256_set1_ps(base);
        int s = 0;
        for (; s + 8 <= subspaces; s += 8) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            acca = adcTile8x8(pca, s, lrow, stride, acca);
            accb = adcTile8x8(pcb, s, lrow, stride, accb);
        }
        for (; s < subspaces; ++s) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            const __m256i eva = _mm256_setr_epi32(
                pca[0][s], pca[1][s], pca[2][s], pca[3][s], pca[4][s],
                pca[5][s], pca[6][s], pca[7][s]);
            const __m256i evb = _mm256_setr_epi32(
                pcb[0][s], pcb[1][s], pcb[2][s], pcb[3][s], pcb[4][s],
                pcb[5][s], pcb[6][s], pcb[7][s]);
            acca = _mm256_add_ps(acca,
                                 _mm256_i32gather_ps(lrow, eva, 4));
            accb = _mm256_add_ps(accb,
                                 _mm256_i32gather_ps(lrow, evb, 4));
        }
        _mm256_storeu_ps(out + i, acca);
        _mm256_storeu_ps(out + i + 8, accb);
    }
    for (; i + 8 <= n; i += 8) {
        const entry_t *pc[8];
        for (int j = 0; j < 8; ++j)
            pc[j] = codes +
                    static_cast<std::size_t>(
                        ids[i + static_cast<std::size_t>(j)]) *
                        code_stride;
        __m256 acc = _mm256_set1_ps(base);
        int s = 0;
        for (; s + 8 <= subspaces; s += 8)
            acc = adcTile8x8(pc, s,
                             lut + static_cast<std::size_t>(s) * stride,
                             stride, acc);
        for (; s < subspaces; ++s) {
            const __m256i ev = _mm256_setr_epi32(
                pc[0][s], pc[1][s], pc[2][s], pc[3][s], pc[4][s],
                pc[5][s], pc[6][s], pc[7][s]);
            acc = _mm256_add_ps(
                acc, _mm256_i32gather_ps(
                         lut + static_cast<std::size_t>(s) * stride, ev,
                         4));
        }
        _mm256_storeu_ps(out + i, acc);
    }
    if (i < n)
        adcScanScalar(lut, lut_stride, subspaces, codes, code_stride,
                      ids + i, n - i, base, out + i);
}

/**
 * Interleaved streaming scan: the subspace-major 32-point blocks put
 * the 8 gather indices of a step in one contiguous 128-bit load, so
 * the 8x8 transpose network of the id-gather path disappears and the
 * code stream is a pure sequential read. Four accumulator chains (one
 * per 8-point group of the block) hide the gather+add latency.
 * Per-point accumulation order matches scalar exactly.
 */
JUNO_TARGET_AVX2 void
adcScanInterleavedAvx2(const float *lut, idx_t lut_stride, int subspaces,
                       const entry_t *blocks, std::size_t n, float base,
                       float *out)
{
    const auto stride = static_cast<std::size_t>(lut_stride);
    const std::size_t block_stride =
        32u * static_cast<std::size_t>(subspaces);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const entry_t *blk = blocks + (i / 32) * block_stride;
        __m256 acc0 = _mm256_set1_ps(base);
        __m256 acc1 = _mm256_set1_ps(base);
        __m256 acc2 = _mm256_set1_ps(base);
        __m256 acc3 = _mm256_set1_ps(base);
        for (int s = 0; s < subspaces; ++s) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            const entry_t *row = blk + static_cast<std::size_t>(s) * 32;
            const __m256i e0 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row)));
            const __m256i e1 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + 8)));
            const __m256i e2 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + 16)));
            const __m256i e3 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + 24)));
            acc0 = _mm256_add_ps(acc0,
                                 _mm256_i32gather_ps(lrow, e0, 4));
            acc1 = _mm256_add_ps(acc1,
                                 _mm256_i32gather_ps(lrow, e1, 4));
            acc2 = _mm256_add_ps(acc2,
                                 _mm256_i32gather_ps(lrow, e2, 4));
            acc3 = _mm256_add_ps(acc3,
                                 _mm256_i32gather_ps(lrow, e3, 4));
        }
        _mm256_storeu_ps(out + i, acc0);
        _mm256_storeu_ps(out + i + 8, acc1);
        _mm256_storeu_ps(out + i + 16, acc2);
        _mm256_storeu_ps(out + i + 24, acc3);
    }
    if (i < n) {
        // Partial tail block: 8-wide groups, then per-point scalar
        // with the same per-point accumulation order.
        const entry_t *blk = blocks + (i / 32) * block_stride;
        const std::size_t rem = n - i;
        std::size_t j = 0;
        for (; j + 8 <= rem; j += 8) {
            __m256 acc = _mm256_set1_ps(base);
            for (int s = 0; s < subspaces; ++s) {
                const float *lrow =
                    lut + static_cast<std::size_t>(s) * stride;
                const __m256i ev =
                    _mm256_cvtepu16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(
                            blk + static_cast<std::size_t>(s) * 32 +
                            j)));
                acc = _mm256_add_ps(acc,
                                    _mm256_i32gather_ps(lrow, ev, 4));
            }
            _mm256_storeu_ps(out + i + j, acc);
        }
        for (; j < rem; ++j) {
            float acc = base;
            for (int s = 0; s < subspaces; ++s)
                acc += lut[static_cast<std::size_t>(s) * stride +
                           blk[static_cast<std::size_t>(s) * 32 + j]];
            out[i + j] = acc;
        }
    }
}

/**
 * 4-bit in-register fast scan: one 16-byte load yields the nibble
 * codes of all 32 points of a (block, subspace) pair, the u8 LUT row
 * is broadcast into both ymm lanes, and a single pshufb scores the
 * whole block. Scores accumulate into u16 even/odd lanes (no
 * overflow for subspaces <= 256) and are re-interleaved into point
 * order on store. Integer arithmetic throughout: results are
 * identical to the scalar reference bit for bit.
 */
JUNO_TARGET_AVX2 void
fastScanPq4Avx2(const std::uint8_t *packed, int subspaces,
                const std::uint8_t *lut, std::size_t n,
                std::uint16_t *qsums)
{
    const __m128i nib = _mm_set1_epi8(0x0F);
    const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
    const std::size_t block_stride =
        16u * static_cast<std::size_t>(subspaces);
    for (std::size_t i = 0; i < n; i += 32) {
        const std::uint8_t *blk = packed + (i / 32) * block_stride;
        __m256i acc_even = _mm256_setzero_si256();
        __m256i acc_odd = _mm256_setzero_si256();
        for (int s = 0; s < subspaces; ++s) {
            const __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    blk + static_cast<std::size_t>(s) * 16));
            const __m256i lutv =
                _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        lut + static_cast<std::size_t>(s) * 16)));
            const __m128i lo = _mm_and_si128(raw, nib);
            const __m128i hi =
                _mm_and_si128(_mm_srli_epi16(raw, 4), nib);
            // Lane 0 indexes points 0-15, lane 1 points 16-31; pshufb
            // shuffles each lane against the same 16-byte LUT row.
            const __m256i scores = _mm256_shuffle_epi8(
                lutv, _mm256_set_m128i(hi, lo));
            acc_even = _mm256_add_epi16(
                acc_even, _mm256_and_si256(scores, byte_mask));
            acc_odd = _mm256_add_epi16(acc_odd,
                                       _mm256_srli_epi16(scores, 8));
        }
        // acc_even u16 lanes hold even-numbered points of each 16-point
        // half, acc_odd the odd ones; unpack restores point order.
        const __m256i lo16 = _mm256_unpacklo_epi16(acc_even, acc_odd);
        const __m256i hi16 = _mm256_unpackhi_epi16(acc_even, acc_odd);
        const __m256i q0 = _mm256_permute2x128_si256(lo16, hi16, 0x20);
        const __m256i q1 = _mm256_permute2x128_si256(lo16, hi16, 0x31);
        if (i + 32 <= n) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(qsums + i), q0);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(qsums + i + 16), q1);
        } else {
            alignas(32) std::uint16_t tmp[32];
            _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), q0);
            _mm256_store_si256(reinterpret_cast<__m256i *>(tmp + 16),
                               q1);
            std::memcpy(qsums + i, tmp,
                        (n - i) * sizeof(std::uint16_t));
        }
    }
}

/** Skips blocks of 8 untouched ordinals with one compare+movemask. */
JUNO_TARGET_AVX2 void
compactCandidatesAvx2(const float *acc, const std::int32_t *hits,
                      const idx_t *list, std::size_t n, float offset,
                      std::vector<Neighbor> &out)
{
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hits + i));
        const int zero_mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(h, zero)));
        unsigned live = static_cast<unsigned>(~zero_mask) & 0xFFu;
        while (live != 0) {
            const unsigned lane =
                static_cast<unsigned>(__builtin_ctz(live));
            live &= live - 1;
            out.push_back({list[i + lane], acc[i + lane] + offset});
        }
    }
    for (; i < n; ++i) {
        if (hits[i] != 0)
            out.push_back({list[i], acc[i] + offset});
    }
}

const Kernels kAvx2Table = {
    "avx2",
    &l2SqrAvx2,
    &innerProductAvx2,
    &l2NormSqrAvx2,
    &l2SqrBatchAvx2,
    &innerProductBatchAvx2,
    &gemmAvx2,
    &adcScanAvx2,
    &adcScanInterleavedAvx2,
    &fastScanPq4Avx2,
    &compactCandidatesAvx2,
};

/**
 * 16 points per step with one 16-wide gather per subspace. Lanes are
 * points, one add per subspace in subspace order, so per-point
 * accumulation stays bitwise identical to the scalar scan. The AVX2
 * path's 8-wide gathers hit their throughput wall right at the scalar
 * load-port bound; the 512-bit gather doubles the elements per issued
 * gather, which is what buys the headroom.
 */
JUNO_TARGET_AVX512 void
adcScanAvx512(const float *lut, idx_t lut_stride, int subspaces,
              const entry_t *codes, std::size_t code_stride,
              const idx_t *ids, std::size_t n, float base, float *out)
{
    const auto stride = static_cast<std::size_t>(lut_stride);
    std::size_t i = 0;
    // Two independent 16-point blocks in flight: their gather+add
    // chains interleave, which keeps the gather ports saturated.
    for (; i + 32 <= n; i += 32) {
        const entry_t *pc[4][8];
        for (int g = 0; g < 4; ++g)
            for (int j = 0; j < 8; ++j)
                pc[g][j] =
                    codes +
                    static_cast<std::size_t>(
                        ids[i + static_cast<std::size_t>(8 * g + j)]) *
                        code_stride;
        // Prefetch the next 32 gathered code rows behind this block's
        // transposes (same rationale as the AVX2 path).
        if (i + 64 <= n) {
            for (int j = 0; j < 32; ++j)
                __builtin_prefetch(
                    codes +
                    static_cast<std::size_t>(
                        ids[i + 32 + static_cast<std::size_t>(j)]) *
                        code_stride);
        }
        __m512 acc0 = _mm512_set1_ps(base);
        __m512 acc1 = _mm512_set1_ps(base);
        int s = 0;
        for (; s + 8 <= subspaces; s += 8) {
            __m128i t[4][8];
            transposeCodes8x8(pc[0], s, t[0]);
            transposeCodes8x8(pc[1], s, t[1]);
            transposeCodes8x8(pc[2], s, t[2]);
            transposeCodes8x8(pc[3], s, t[3]);
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            for (int j = 0; j < 8; ++j, lrow += stride) {
                const __m512i ev0 = _mm512_maskz_cvtepu16_epi32(static_cast<__mmask16>(-1), 
                    _mm256_set_m128i(t[1][j], t[0][j]));
                const __m512i ev1 = _mm512_maskz_cvtepu16_epi32(static_cast<__mmask16>(-1), 
                    _mm256_set_m128i(t[3][j], t[2][j]));
                acc0 = _mm512_add_ps(
                    acc0, _mm512_mask_i32gather_ps(
                              _mm512_setzero_ps(), 0xFFFF, ev0, lrow,
                              4));
                acc1 = _mm512_add_ps(
                    acc1, _mm512_mask_i32gather_ps(
                              _mm512_setzero_ps(), 0xFFFF, ev1, lrow,
                              4));
            }
        }
        for (; s < subspaces; ++s) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            const __m512i ev0 = _mm512_setr_epi32(
                pc[0][0][s], pc[0][1][s], pc[0][2][s], pc[0][3][s],
                pc[0][4][s], pc[0][5][s], pc[0][6][s], pc[0][7][s],
                pc[1][0][s], pc[1][1][s], pc[1][2][s], pc[1][3][s],
                pc[1][4][s], pc[1][5][s], pc[1][6][s], pc[1][7][s]);
            const __m512i ev1 = _mm512_setr_epi32(
                pc[2][0][s], pc[2][1][s], pc[2][2][s], pc[2][3][s],
                pc[2][4][s], pc[2][5][s], pc[2][6][s], pc[2][7][s],
                pc[3][0][s], pc[3][1][s], pc[3][2][s], pc[3][3][s],
                pc[3][4][s], pc[3][5][s], pc[3][6][s], pc[3][7][s]);
            acc0 = _mm512_add_ps(
                acc0, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                               0xFFFF, ev0, lrow, 4));
            acc1 = _mm512_add_ps(
                acc1, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                               0xFFFF, ev1, lrow, 4));
        }
        _mm512_storeu_ps(out + i, acc0);
        _mm512_storeu_ps(out + i + 16, acc1);
    }
    for (; i + 16 <= n; i += 16) {
        const entry_t *pca[8];
        const entry_t *pcb[8];
        for (int j = 0; j < 8; ++j) {
            pca[j] =
                codes +
                static_cast<std::size_t>(
                    ids[i + static_cast<std::size_t>(j)]) *
                    code_stride;
            pcb[j] =
                codes +
                static_cast<std::size_t>(
                    ids[i + 8 + static_cast<std::size_t>(j)]) *
                    code_stride;
        }
        __m512 acc = _mm512_set1_ps(base);
        int s = 0;
        for (; s + 8 <= subspaces; s += 8) {
            __m128i ta[8];
            __m128i tb[8];
            transposeCodes8x8(pca, s, ta);
            transposeCodes8x8(pcb, s, tb);
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            for (int j = 0; j < 8; ++j, lrow += stride) {
                const __m512i ev = _mm512_maskz_cvtepu16_epi32(static_cast<__mmask16>(-1), 
                    _mm256_set_m128i(tb[j], ta[j]));
                acc = _mm512_add_ps(
                    acc, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                                  0xFFFF, ev, lrow, 4));
            }
        }
        for (; s < subspaces; ++s) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            const __m512i ev = _mm512_setr_epi32(
                pca[0][s], pca[1][s], pca[2][s], pca[3][s], pca[4][s],
                pca[5][s], pca[6][s], pca[7][s], pcb[0][s], pcb[1][s],
                pcb[2][s], pcb[3][s], pcb[4][s], pcb[5][s], pcb[6][s],
                pcb[7][s]);
            acc = _mm512_add_ps(
                acc, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                              0xFFFF, ev, lrow, 4));
        }
        _mm512_storeu_ps(out + i, acc);
    }
    if (i < n)
        adcScanAvx2(lut, lut_stride, subspaces, codes, code_stride,
                    ids + i, n - i, base, out + i);
}

/**
 * Interleaved streaming scan, 16 points per gather: the block layout
 * feeds each 16-wide gather's indices with one 256-bit load, and two
 * independent chains cover a whole 32-point block per subspace step.
 */
JUNO_TARGET_AVX512 void
adcScanInterleavedAvx512(const float *lut, idx_t lut_stride,
                         int subspaces, const entry_t *blocks,
                         std::size_t n, float base, float *out)
{
    const auto stride = static_cast<std::size_t>(lut_stride);
    const std::size_t block_stride =
        32u * static_cast<std::size_t>(subspaces);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const entry_t *blk = blocks + (i / 32) * block_stride;
        __m512 acc0 = _mm512_set1_ps(base);
        __m512 acc1 = _mm512_set1_ps(base);
        for (int s = 0; s < subspaces; ++s) {
            const float *lrow =
                lut + static_cast<std::size_t>(s) * stride;
            const entry_t *row = blk + static_cast<std::size_t>(s) * 32;
            const __m512i e0 = _mm512_maskz_cvtepu16_epi32(
                static_cast<__mmask16>(-1),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(row)));
            const __m512i e1 = _mm512_maskz_cvtepu16_epi32(
                static_cast<__mmask16>(-1),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(row + 16)));
            acc0 = _mm512_add_ps(
                acc0, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                               0xFFFF, e0, lrow, 4));
            acc1 = _mm512_add_ps(
                acc1, _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                               0xFFFF, e1, lrow, 4));
        }
        _mm512_storeu_ps(out + i, acc0);
        _mm512_storeu_ps(out + i + 16, acc1);
    }
    if (i < n)
        // i is block-aligned, so the AVX2 path sees a fresh block.
        adcScanInterleavedAvx2(lut, lut_stride, subspaces,
                               blocks + (i / 32) * block_stride, n - i,
                               base, out + i);
}

/**
 * 4-bit fast scan over two blocks (64 points) per step: the four
 * 128-bit lanes of the 512-bit shuffle hold both nibble halves of
 * both blocks against the same broadcast LUT row.
 */
JUNO_TARGET_AVX512 void
fastScanPq4Avx512(const std::uint8_t *packed, int subspaces,
                  const std::uint8_t *lut, std::size_t n,
                  std::uint16_t *qsums)
{
    const __m128i nib = _mm_set1_epi8(0x0F);
    const __m512i byte_mask = _mm512_set1_epi16(0x00FF);
    // Restore point order across the four 128-bit lanes on store.
    const __m512i perm0 = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
    const __m512i perm1 = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
    const std::size_t block_stride =
        16u * static_cast<std::size_t>(subspaces);
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const std::uint8_t *b0 = packed + (i / 32) * block_stride;
        const std::uint8_t *b1 = b0 + block_stride;
        __m512i acc_even = _mm512_setzero_si512();
        __m512i acc_odd = _mm512_setzero_si512();
        for (int s = 0; s < subspaces; ++s) {
            const __m128i r0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    b0 + static_cast<std::size_t>(s) * 16));
            const __m128i r1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    b1 + static_cast<std::size_t>(s) * 16));
            const __m512i lutv = _mm512_maskz_broadcast_i32x4(
                static_cast<__mmask16>(-1),
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    lut + static_cast<std::size_t>(s) * 16)));
            const __m128i l0 = _mm_and_si128(r0, nib);
            const __m128i h0 =
                _mm_and_si128(_mm_srli_epi16(r0, 4), nib);
            const __m128i l1 = _mm_and_si128(r1, nib);
            const __m128i h1 =
                _mm_and_si128(_mm_srli_epi16(r1, 4), nib);
            const __m512i idx = _mm512_maskz_inserti64x4(
                static_cast<__mmask8>(-1),
                _mm512_maskz_inserti64x4(static_cast<__mmask8>(-1),
                                         _mm512_setzero_si512(),
                                         _mm256_set_m128i(h0, l0), 0),
                _mm256_set_m128i(h1, l1), 1);
            const __m512i scores = _mm512_shuffle_epi8(lutv, idx);
            acc_even = _mm512_add_epi16(
                acc_even, _mm512_and_si512(scores, byte_mask));
            acc_odd = _mm512_add_epi16(acc_odd,
                                       _mm512_srli_epi16(scores, 8));
        }
        const __m512i lo16 = _mm512_unpacklo_epi16(acc_even, acc_odd);
        const __m512i hi16 = _mm512_unpackhi_epi16(acc_even, acc_odd);
        _mm512_storeu_si512(
            qsums + i, _mm512_permutex2var_epi64(lo16, perm0, hi16));
        _mm512_storeu_si512(
            qsums + i + 32,
            _mm512_permutex2var_epi64(lo16, perm1, hi16));
    }
    if (i < n)
        fastScanPq4Avx2(packed + (i / 32) * block_stride, subspaces, lut,
                        n - i, qsums + i);
}

/** AVX2 table with the wider ADC gather and scan kernels swapped in. */
const Kernels kAvx512Table = {
    "avx512",
    &l2SqrAvx2,
    &innerProductAvx2,
    &l2NormSqrAvx2,
    &l2SqrBatchAvx2,
    &innerProductBatchAvx2,
    &gemmAvx2,
    &adcScanAvx512,
    &adcScanInterleavedAvx512,
    &fastScanPq4Avx512,
    &compactCandidatesAvx2,
};
#endif // JUNO_SIMD_X86

std::atomic<const Kernels *> g_active{nullptr};

const Kernels *
selectInitial()
{
    const char *env = std::getenv("JUNO_SIMD");
    return &table(parseLevel(env));
}

} // namespace

bool
supported(Level lvl)
{
    switch (lvl) {
      case Level::kScalar:
        return true;
      case Level::kAvx2:
#if JUNO_SIMD_X86
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
      case Level::kAvx512:
#if JUNO_SIMD_X86
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") &&
               __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl");
#else
        return false;
#endif
    }
    return false;
}

Level
bestSupported()
{
    if (supported(Level::kAvx512))
        return Level::kAvx512;
    return supported(Level::kAvx2) ? Level::kAvx2 : Level::kScalar;
}

const Kernels &
table(Level lvl)
{
#if JUNO_SIMD_X86
    if (lvl == Level::kAvx512 && supported(Level::kAvx512))
        return kAvx512Table;
    if (lvl != Level::kScalar && supported(Level::kAvx2))
        return kAvx2Table;
#else
    (void)lvl;
#endif
    return kScalarTable;
}

const Kernels &
active()
{
    const Kernels *t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        // First use; a concurrent first use selects the same table, so
        // the race is benign.
        t = selectInitial();
        g_active.store(t, std::memory_order_release);
    }
    return *t;
}

Level
level()
{
    const Kernels *t = &active();
#if JUNO_SIMD_X86
    if (t == &kAvx512Table)
        return Level::kAvx512;
    if (t == &kAvx2Table)
        return Level::kAvx2;
#endif
    (void)t;
    return Level::kScalar;
}

bool
setLevel(Level lvl)
{
    if (!supported(lvl))
        return false;
    g_active.store(&table(lvl), std::memory_order_release);
    return true;
}

const char *
levelName(Level lvl)
{
    switch (lvl) {
      case Level::kScalar:
        return "scalar";
      case Level::kAvx2:
        return "avx2";
      case Level::kAvx512:
        return "avx512";
    }
    return "?";
}

Level
parseLevel(const char *spec)
{
    if (spec == nullptr || *spec == '\0')
        return bestSupported();
    const std::string s(spec);
    if (s == "auto")
        return bestSupported();
    if (s == "scalar")
        return Level::kScalar;
    if (s == "avx2" || s == "avx512") {
        const Level want =
            s == "avx2" ? Level::kAvx2 : Level::kAvx512;
        if (supported(want))
            return want;
        warn("JUNO_SIMD=" + s +
             " requested but this host does not support it; using "
             "best supported level");
        return std::min(bestSupported(), want);
    }
    warn("unknown JUNO_SIMD value '" + s +
         "' (expected scalar|avx2|avx512|auto); using best supported "
         "level");
    return bestSupported();
}

} // namespace simd
} // namespace juno
