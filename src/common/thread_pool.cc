#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace juno {

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    thread_count_ = threads;
    if (thread_count_ == 1)
        return; // inline mode: no workers
    workers_.reserve(static_cast<std::size_t>(thread_count_));
    for (int i = 0; i < thread_count_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    std::vector<std::thread> to_join;
    {
        CvLock lock(mutex_);
        if (stopping_) {
            // Another caller owns the teardown (or it already ran);
            // block until the workers are gone so every shutdown()
            // return carries the same postcondition.
            while (!shutdown_done_)
                cv_shutdown_.wait(lock.native());
            return;
        }
        stopping_ = true;
        to_join.swap(workers_);
    }
    cv_job_.notify_all();
    for (auto &w : to_join)
        w.join();
    {
        MutexLock lock(mutex_);
        shutdown_done_ = true;
    }
    cv_shutdown_.notify_all();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (thread_count_ == 1) {
        job();
        return;
    }
    bool run_inline = false;
    {
        MutexLock lock(mutex_);
        if (stopping_) {
            // Workers are draining or gone; a queued job could be
            // stranded, so run it inline (documented degradation).
            run_inline = true;
        } else {
            queue_.push_back(std::move(job));
            ++in_flight_;
        }
    }
    if (run_inline) {
        job();
        return;
    }
    cv_job_.notify_one();
}

void
ThreadPool::wait()
{
    if (thread_count_ == 1)
        return;
    CvLock lock(mutex_);
    while (in_flight_ != 0)
        cv_done_.wait(lock.native());
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            CvLock lock(mutex_);
            while (!stopping_ && queue_.empty())
                cv_job_.wait(lock.native());
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            MutexLock lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
ThreadPool::Batch::submit(std::function<void()> job)
{
    {
        MutexLock lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, job = std::move(job)] {
        job();
        MutexLock lock(mutex_);
        if (--pending_ == 0)
            cv_.notify_all();
    });
}

void
ThreadPool::Batch::join()
{
    CvLock lock(mutex_);
    while (pending_ != 0)
        cv_.wait(lock.native());
}

void
ThreadPool::parallelFor(idx_t n, const std::function<void(idx_t)> &fn,
                        idx_t min_grain)
{
    if (n <= 0)
        return;
    min_grain = std::max<idx_t>(1, min_grain);
    // Chunk size derives from n over the worker count, floored at the
    // grain; degenerate splits (everything would land in one chunk
    // anyway) run inline on the caller.
    const idx_t per = std::max(
        min_grain, (n + thread_count_ - 1) / thread_count_);
    if (thread_count_ == 1 || per >= n) {
        for (idx_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // A private Batch instead of wait(): concurrent parallelFor calls
    // on one pool each block on their own jobs only.
    Batch batch(*this);
    for (idx_t begin = 0; begin < n; begin += per) {
        const idx_t end = std::min(n, begin + per);
        batch.submit([begin, end, &fn] {
            for (idx_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    batch.join();
}

} // namespace juno
