/**
 * @file
 * Minimal fixed-size thread pool with a parallel-for helper.
 *
 * On single-core hosts the pool degrades gracefully (size 1 executes
 * inline), but the pipelined executor (core/pipeline.h) still relies on
 * real threads to overlap the RT-LUT and accumulation stages the way
 * the paper overlaps RT and Tensor cores.
 */
#ifndef JUNO_COMMON_THREAD_POOL_H
#define JUNO_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace juno {

/** Fixed-size worker pool executing enqueued std::function jobs. */
class ThreadPool {
  public:
    /**
     * @param threads worker count; 0 picks hardware_concurrency(), and a
     * pool of size 1 runs jobs inline in submit() (no thread spawned).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return thread_count_; }

    /**
     * Drains every queued job, then joins the workers. Safe to call
     * repeatedly and from several threads at once: the first caller
     * performs the teardown, later callers block until it completes
     * and then return. The destructor calls shutdown() implicitly.
     *
     * After shutdown the pool degrades to inline mode: submit() (and
     * parallelFor) still execute their jobs, on the calling thread, so
     * a racing producer can never strand work in a dead queue.
     */
    void shutdown() JUNO_EXCLUDES(mutex_);

    /**
     * Enqueues a job. After shutdown() has begun, the job runs inline
     * on the caller instead (never silently dropped).
     */
    void submit(std::function<void()> job) JUNO_EXCLUDES(mutex_);

    /** Blocks until every submitted job has finished. */
    void wait() JUNO_EXCLUDES(mutex_);

    /**
     * A tracked group of jobs with its own completion counter: join()
     * (or the destructor) blocks until *this batch's* jobs finish,
     * without calling ThreadPool::wait(), so independent batches can
     * share one pool concurrently (the query engine submits one batch
     * per search while other callers keep using the pool).
     */
    class Batch {
      public:
        explicit Batch(ThreadPool &pool) : pool_(pool) {}
        ~Batch() { join(); }

        Batch(const Batch &) = delete;
        Batch &operator=(const Batch &) = delete;

        /** Enqueues a job belonging to this batch. */
        void submit(std::function<void()> job) JUNO_EXCLUDES(mutex_);

        /** Blocks until every job submitted to this batch finished. */
        void join() JUNO_EXCLUDES(mutex_);

      private:
        ThreadPool &pool_;
        Mutex mutex_;
        std::condition_variable cv_;
        int pending_ JUNO_GUARDED_BY(mutex_) = 0;
    };

    /**
     * Runs fn(i) for i in [0, n) split into contiguous chunks across
     * the pool, blocking until done. fn must be safe to call
     * concurrently for distinct i. The chunk size derives from
     * n / threads floored at @p min_grain (default 1) so tiny
     * per-item work does not drown in dispatch overhead (the tail
     * chunk may be smaller); when the split degenerates to a single
     * chunk the whole range runs inline on the caller.
     */
    void parallelFor(idx_t n, const std::function<void(idx_t)> &fn,
                     idx_t min_grain = 1);

  private:
    void workerLoop() JUNO_EXCLUDES(mutex_);

    /** Immutable after construction (read lock-free everywhere). */
    int thread_count_;
    Mutex mutex_;
    /** Swapped out under mutex_ by the one shutdown() teardown owner. */
    std::vector<std::thread> workers_ JUNO_GUARDED_BY(mutex_);
    std::deque<std::function<void()>> queue_ JUNO_GUARDED_BY(mutex_);
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    int in_flight_ JUNO_GUARDED_BY(mutex_) = 0;
    bool stopping_ JUNO_GUARDED_BY(mutex_) = false;
    bool shutdown_done_ JUNO_GUARDED_BY(mutex_) = false;
    std::condition_variable cv_shutdown_;
};

} // namespace juno

#endif // JUNO_COMMON_THREAD_POOL_H
