/**
 * @file
 * Minimal fixed-size thread pool with a parallel-for helper.
 *
 * On single-core hosts the pool degrades gracefully (size 1 executes
 * inline), but the pipelined executor (core/pipeline.h) still relies on
 * real threads to overlap the RT-LUT and accumulation stages the way
 * the paper overlaps RT and Tensor cores.
 */
#ifndef JUNO_COMMON_THREAD_POOL_H
#define JUNO_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace juno {

/** Fixed-size worker pool executing enqueued std::function jobs. */
class ThreadPool {
  public:
    /**
     * @param threads worker count; 0 picks hardware_concurrency(), and a
     * pool of size 1 runs jobs inline in submit() (no thread spawned).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return thread_count_; }

    /** Enqueues a job. */
    void submit(std::function<void()> job);

    /** Blocks until every submitted job has finished. */
    void wait();

    /**
     * Runs fn(i) for i in [0, n) split into contiguous chunks across the
     * pool, blocking until done. fn must be safe to call concurrently
     * for distinct i.
     */
    void parallelFor(idx_t n, const std::function<void(idx_t)> &fn);

  private:
    void workerLoop();

    int thread_count_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    int in_flight_ = 0;
    bool stopping_ = false;
};

} // namespace juno

#endif // JUNO_COMMON_THREAD_POOL_H
