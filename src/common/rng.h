/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component in JUNO (dataset synthesis, k-means init,
 * sampling for the threshold regressor) takes an explicit Rng so that
 * experiments are reproducible from a single seed.
 */
#ifndef JUNO_COMMON_RNG_H
#define JUNO_COMMON_RNG_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace juno {

/**
 * Small, fast, seedable PRNG (xoshiro256** by Blackman & Vigna).
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can be
 * handed to <random> distributions, but we provide the distributions we
 * need directly to keep results identical across standard libraries.
 */
class Rng {
  public:
    using result_type = std::uint64_t;

    /** Seeds the four 64-bit lanes from @p seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Uniform integer in [0, n); @p n must be positive. */
    std::uint64_t below(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second sample). */
    double gaussian();

    /** Normal with explicit mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Samples @p k distinct indices from [0, n) without replacement.
     * Uses Floyd's algorithm; O(k) expected time. Requires k <= n.
     */
    std::vector<idx_t> sampleWithoutReplacement(idx_t n, idx_t k);

    /** Fisher-Yates shuffle of @p items. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Forks an independent stream (for per-thread determinism). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace juno

#endif // JUNO_COMMON_RNG_H
