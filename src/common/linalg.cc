#include "common/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace juno {

FloatMatrix
transpose(FloatMatrixView a)
{
    FloatMatrix out(a.cols(), a.rows());
    for (idx_t r = 0; r < a.rows(); ++r)
        for (idx_t c = 0; c < a.cols(); ++c)
            out.at(c, r) = a.at(r, c);
    return out;
}

FloatMatrix
matmul(FloatMatrixView a, FloatMatrixView b)
{
    JUNO_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
    FloatMatrix out(a.rows(), b.cols(), 0.0f);
    for (idx_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *orow = out.row(i);
        for (idx_t k = 0; k < a.cols(); ++k) {
            const float aik = arow[k];
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (idx_t j = 0; j < b.cols(); ++j)
                orow[j] += aik * brow[j];
        }
    }
    return out;
}

FloatMatrix
identity(idx_t n)
{
    FloatMatrix out(n, n, 0.0f);
    for (idx_t i = 0; i < n; ++i)
        out.at(i, i) = 1.0f;
    return out;
}

float
maxAbsDiff(FloatMatrixView a, FloatMatrixView b)
{
    JUNO_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "shape mismatch");
    float worst = 0.0f;
    for (idx_t r = 0; r < a.rows(); ++r)
        for (idx_t c = 0; c < a.cols(); ++c)
            worst = std::max(worst, std::abs(a.at(r, c) - b.at(r, c)));
    return worst;
}

bool
isOrthonormal(FloatMatrixView q, float tol)
{
    const auto qt = transpose(q);
    const auto gram = matmul(qt.view(), q);
    return maxAbsDiff(gram.view(), identity(q.cols()).view()) <= tol;
}

Svd
jacobiSvd(FloatMatrixView a, int max_sweeps, float tol)
{
    JUNO_REQUIRE(a.rows() >= a.cols(),
                 "jacobiSvd requires m >= n; transpose the input");
    const idx_t m = a.rows(), n = a.cols();

    // Work on a copy U that rotates towards orthogonal columns while V
    // accumulates the rotations.
    FloatMatrix u(m, n);
    std::copy_n(a.data(), static_cast<std::size_t>(m * n), u.data());
    FloatMatrix v = identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (idx_t p = 0; p < n - 1; ++p) {
            for (idx_t q = p + 1; q < n; ++q) {
                // Column inner products.
                double app = 0.0, aqq = 0.0, apq = 0.0;
                for (idx_t r = 0; r < m; ++r) {
                    const double up = u.at(r, p), uq = u.at(r, q);
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                off = std::max(off, std::abs(apq) /
                                        (std::sqrt(app * aqq) + 1e-30));
                if (std::abs(apq) <=
                    tol * std::sqrt(app * aqq) + 1e-30)
                    continue;
                // Jacobi rotation zeroing the (p, q) column product.
                const double tau = (aqq - app) / (2.0 * apq);
                const double t = (tau >= 0 ? 1.0 : -1.0) /
                                 (std::abs(tau) +
                                  std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = c * t;
                for (idx_t r = 0; r < m; ++r) {
                    const double up = u.at(r, p), uq = u.at(r, q);
                    u.at(r, p) = static_cast<float>(c * up - s * uq);
                    u.at(r, q) = static_cast<float>(s * up + c * uq);
                }
                for (idx_t r = 0; r < n; ++r) {
                    const double vp = v.at(r, p), vq = v.at(r, q);
                    v.at(r, p) = static_cast<float>(c * vp - s * vq);
                    v.at(r, q) = static_cast<float>(s * vp + c * vq);
                }
            }
        }
        if (off <= tol)
            break;
    }

    // Column norms are the singular values; normalise U.
    Svd result;
    result.s.resize(static_cast<std::size_t>(n));
    for (idx_t c = 0; c < n; ++c) {
        double norm = 0.0;
        for (idx_t r = 0; r < m; ++r)
            norm += static_cast<double>(u.at(r, c)) * u.at(r, c);
        norm = std::sqrt(norm);
        result.s[static_cast<std::size_t>(c)] = static_cast<float>(norm);
        if (norm > 1e-30)
            for (idx_t r = 0; r < m; ++r)
                u.at(r, c) = static_cast<float>(u.at(r, c) / norm);
    }

    // Sort singular values descending, permuting U and V columns.
    std::vector<idx_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](idx_t x, idx_t y) {
        return result.s[static_cast<std::size_t>(x)] >
               result.s[static_cast<std::size_t>(y)];
    });
    FloatMatrix u_sorted(m, n), v_sorted(n, n);
    std::vector<float> s_sorted(static_cast<std::size_t>(n));
    for (idx_t c = 0; c < n; ++c) {
        const idx_t src = order[static_cast<std::size_t>(c)];
        s_sorted[static_cast<std::size_t>(c)] =
            result.s[static_cast<std::size_t>(src)];
        for (idx_t r = 0; r < m; ++r)
            u_sorted.at(r, c) = u.at(r, src);
        for (idx_t r = 0; r < n; ++r)
            v_sorted.at(r, c) = v.at(r, src);
    }
    result.u = std::move(u_sorted);
    result.v = std::move(v_sorted);
    result.s = std::move(s_sorted);
    return result;
}

FloatMatrix
procrustes(FloatMatrixView x, FloatMatrixView y)
{
    JUNO_REQUIRE(x.rows() == y.rows() && x.cols() == y.cols(),
                 "procrustes shape mismatch");
    const auto xty = matmul(transpose(x).view(), y);
    const auto svd = jacobiSvd(xty.view());
    return matmul(svd.u.view(), transpose(svd.v.view()).view());
}

} // namespace juno
