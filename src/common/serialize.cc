#include "common/serialize.h"

#include <cstring>

namespace juno {
namespace {

/** Upper bound on any single container payload: 16 GiB. */
constexpr std::uint64_t kMaxPayloadBytes = 16ull << 30;

} // namespace

BinaryWriter::BinaryWriter(const std::string &path, const char magic[8],
                           std::uint32_t version)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        fatal("cannot open " + path + " for writing");
    out_.write(magic, 8);
    writePod(version);
}

void
BinaryWriter::check()
{
    if (!out_)
        fatal("short write to " + path_);
}

void
BinaryWriter::writeString(const std::string &s)
{
    writePod<std::uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
    check();
}

void
BinaryWriter::writeMatrix(FloatMatrixView m)
{
    writePod<std::int64_t>(m.rows());
    writePod<std::int64_t>(m.cols());
    out_.write(reinterpret_cast<const char *>(m.data()),
               static_cast<std::streamsize>(sizeof(float)) * m.rows() *
                   m.cols());
    check();
}

BinaryReader::BinaryReader(const std::string &path, const char magic[8],
                           std::uint32_t expected_version)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        fatal("cannot open " + path);
    char got[8];
    in_.read(got, 8);
    if (!in_ || std::memcmp(got, magic, 8) != 0)
        fatal(path + ": bad magic (not a JUNO index file?)");
    const auto version = readPod<std::uint32_t>();
    if (version != expected_version)
        fatal(path + ": version " + std::to_string(version) +
              " unsupported (expected " +
              std::to_string(expected_version) + ")");
}

void
BinaryReader::check()
{
    if (!in_)
        fatal(path_ + ": truncated or corrupt stream");
}

void
BinaryReader::boundCheck(std::uint64_t bytes) const
{
    if (bytes > kMaxPayloadBytes)
        fatal(path_ + ": implausible payload size (corrupt file)");
}

std::string
BinaryReader::readString()
{
    const auto count = readPod<std::uint64_t>();
    boundCheck(count);
    std::string s(static_cast<std::size_t>(count), '\0');
    in_.read(s.data(), static_cast<std::streamsize>(count));
    check();
    return s;
}

FloatMatrix
BinaryReader::readMatrix()
{
    const auto rows = readPod<std::int64_t>();
    const auto cols = readPod<std::int64_t>();
    if (rows < 0 || cols < 0)
        fatal(path_ + ": negative matrix shape (corrupt file)");
    boundCheck(static_cast<std::uint64_t>(rows) *
               static_cast<std::uint64_t>(cols) * sizeof(float));
    FloatMatrix m(rows, cols);
    in_.read(reinterpret_cast<char *>(m.data()),
             static_cast<std::streamsize>(sizeof(float)) * rows * cols);
    check();
    return m;
}

} // namespace juno
