#include "common/serialize.h"

#include <cstring>

namespace juno {

void
Writer::writeString(const std::string &s)
{
    writePod<std::uint64_t>(s.size());
    if (!s.empty())
        writeRaw(s.data(), s.size());
}

void
Writer::writeMatrix(FloatMatrixView m)
{
    writePod<std::int64_t>(m.rows());
    writePod<std::int64_t>(m.cols());
    const std::size_t count = static_cast<std::size_t>(m.rows()) *
                              static_cast<std::size_t>(m.cols());
    if (count != 0)
        writeRaw(m.data(), count * sizeof(float));
}

void
Reader::boundCheck(std::uint64_t count, std::uint64_t elem_bytes) const
{
    if (elem_bytes == 0 ||
        count > kMaxSerializedPayloadBytes / elem_bytes)
        fatal(where() + ": implausible payload size (corrupt file)");
}

std::string
Reader::readString()
{
    const auto count = readPod<std::uint64_t>();
    boundCheck(count, 1);
    std::string s(static_cast<std::size_t>(count), '\0');
    if (count != 0)
        readRaw(s.data(), static_cast<std::size_t>(count));
    return s;
}

FloatMatrix
Reader::readMatrix()
{
    const auto rows = readPod<std::int64_t>();
    const auto cols = readPod<std::int64_t>();
    if (rows < 0 || cols < 0)
        fatal(where() + ": negative matrix shape (corrupt file)");
    // Guard the product itself before boundCheck: 2^32 x 2^32 would
    // wrap to a tiny (even zero) element count and sail through.
    if (cols != 0 &&
        static_cast<std::uint64_t>(rows) >
            kMaxSerializedPayloadBytes / static_cast<std::uint64_t>(cols))
        fatal(where() + ": implausible matrix shape (corrupt file)");
    boundCheck(static_cast<std::uint64_t>(rows) *
                   static_cast<std::uint64_t>(cols),
               sizeof(float));
    FloatMatrix m(rows, cols);
    const std::size_t count = static_cast<std::size_t>(rows) *
                              static_cast<std::size_t>(cols);
    if (count != 0)
        readRaw(m.data(), count * sizeof(float));
    return m;
}

BinaryWriter::BinaryWriter(const std::string &path, const char magic[8],
                           std::uint32_t version)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        fatal("cannot open " + path + " for writing");
    writeRaw(magic, 8);
    writePod(version);
}

void
BinaryWriter::writeRaw(const void *data, std::size_t bytes)
{
    if (bytes == 0)
        return;
    out_.write(static_cast<const char *>(data),
               static_cast<std::streamsize>(bytes));
    if (!out_)
        fatal("short write to " + path_);
}

BinaryReader::BinaryReader(const std::string &path, const char magic[8],
                           std::uint32_t expected_version)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        fatal("cannot open " + path);
    char got[8];
    in_.read(got, 8);
    if (!in_ || std::memcmp(got, magic, 8) != 0)
        fatal(path + ": bad magic (not a JUNO index file?)");
    const auto version = readPod<std::uint32_t>();
    if (version != expected_version)
        fatal(path + ": version " + std::to_string(version) +
              " unsupported (expected " +
              std::to_string(expected_version) + ")");
}

void
BinaryReader::readRaw(void *data, std::size_t bytes)
{
    if (bytes == 0)
        return;
    in_.read(static_cast<char *>(data),
             static_cast<std::streamsize>(bytes));
    if (!in_)
        fatal(path_ + ": truncated or corrupt stream");
}

void
BufferWriter::writeRaw(const void *data, std::size_t bytes)
{
    if (bytes == 0)
        return;
    buffer_.append(static_cast<const char *>(data), bytes);
}

BoundedMemReader::BoundedMemReader(const void *data, std::size_t bytes,
                                   std::string name)
    : cursor_(static_cast<const std::uint8_t *>(data)),
      end_(static_cast<const std::uint8_t *>(data) + bytes),
      name_(std::move(name))
{
}

void
BoundedMemReader::readRaw(void *data, std::size_t bytes)
{
    if (bytes == 0)
        return;
    std::memcpy(data, viewRaw(bytes), bytes);
}

const void *
BoundedMemReader::viewRaw(std::size_t bytes)
{
    if (bytes > remaining())
        fatal(name_ + ": truncated or corrupt stream");
    const void *p = cursor_;
    cursor_ += bytes;
    return p;
}

} // namespace juno
