#include "common/mmap_blob.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define JUNO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace juno {

#ifdef JUNO_HAVE_MMAP
namespace {

std::size_t
pageSize()
{
    static const std::size_t size = [] {
        const long page = ::sysconf(_SC_PAGESIZE);
        return page > 0 ? static_cast<std::size_t>(page)
                        : static_cast<std::size_t>(4096);
    }();
    return size;
}

/**
 * Widens [p, p + len) to page boundaries. Returns false for ranges
 * madvise/mincore cannot take (null or empty).
 */
bool
pageSpan(const void *p, std::size_t len, void *&base, std::size_t &span)
{
    if (p == nullptr || len == 0)
        return false;
    const std::size_t page = pageSize();
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t start = addr & ~(page - 1);
    const std::uintptr_t end = addr + len;
    base = reinterpret_cast<void *>(start);
    span = ((end - start) + page - 1) / page * page;
    return true;
}

} // namespace
#endif

bool
memAdvise(const void *p, std::size_t len, MemAdvice advice)
{
#ifdef JUNO_HAVE_MMAP
    void *base = nullptr;
    std::size_t span = 0;
    if (!pageSpan(p, len, base, span))
        return false;
#if defined(__linux__)
    // glibc's posix_madvise deliberately ignores POSIX_MADV_DONTNEED;
    // the eviction hint must go through the raw syscall wrapper. A
    // read-only file-backed mapping just drops clean pages and
    // re-faults them from the file on next access.
    if (advice == MemAdvice::kDontNeed)
        return ::madvise(base, span, MADV_DONTNEED) == 0;
#endif
    int hint = POSIX_MADV_NORMAL;
    switch (advice) {
    case MemAdvice::kNormal:
        hint = POSIX_MADV_NORMAL;
        break;
    case MemAdvice::kWillNeed:
        hint = POSIX_MADV_WILLNEED;
        break;
    case MemAdvice::kDontNeed:
        hint = POSIX_MADV_DONTNEED;
        break;
    case MemAdvice::kRandom:
        hint = POSIX_MADV_RANDOM;
        break;
    case MemAdvice::kSequential:
        hint = POSIX_MADV_SEQUENTIAL;
        break;
    }
    return ::posix_madvise(base, span, hint) == 0;
#else
    (void)p;
    (void)len;
    (void)advice;
    return false;
#endif
}

double
memResidentFraction(const void *p, std::size_t len)
{
#ifdef JUNO_HAVE_MMAP
    void *base = nullptr;
    std::size_t span = 0;
    if (!pageSpan(p, len, base, span))
        return -1.0;
    const std::size_t pages = span / pageSize();
#if defined(__APPLE__)
    std::vector<char> vec(pages);
#else
    std::vector<unsigned char> vec(pages);
#endif
    if (::mincore(base, span, vec.data()) != 0)
        return -1.0;
    std::size_t resident = 0;
    for (std::size_t i = 0; i < pages; ++i)
        resident += (vec[i] & 1) != 0 ? 1 : 0;
    return static_cast<double>(resident) / static_cast<double>(pages);
#else
    (void)p;
    (void)len;
    return -1.0;
#endif
}

std::shared_ptr<MappedBlob>
MappedBlob::map(const std::string &path)
{
#ifdef JUNO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        warn("mmap unavailable for " + path + ": open failed: " +
             std::strerror(errno) + "; falling back to buffered reads");
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        warn("mmap unavailable for " + path + ": fstat failed: " +
             std::strerror(errno) + "; falling back to buffered reads");
        ::close(fd);
        return nullptr;
    }
    if (st.st_size <= 0) {
        warn("mmap unavailable for " + path +
             ": file is empty; falling back to buffered reads");
        ::close(fd);
        return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the descriptor
    // is no longer needed either way.
    ::close(fd);
    if (mem == MAP_FAILED) {
        warn("mmap failed for " + path + ": " + std::strerror(errno) +
             "; falling back to buffered reads");
        return nullptr;
    }
    return std::shared_ptr<MappedBlob>(new MappedBlob(
        static_cast<const std::uint8_t *>(mem), size, path));
#else
    (void)path;
    return nullptr;
#endif
}

MappedBlob::~MappedBlob()
{
#ifdef JUNO_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
#endif
}

bool
MappedBlob::advise(std::size_t offset, std::size_t len,
                   MemAdvice advice) const
{
    if (offset >= size_)
        return false;
    len = std::min(len, size_ - offset);
    return memAdvise(data_ + offset, len, advice);
}

double
MappedBlob::residentFraction(std::size_t offset, std::size_t len) const
{
    if (offset >= size_)
        return -1.0;
    len = std::min(len, size_ - offset);
    return memResidentFraction(data_ + offset, len);
}

} // namespace juno
