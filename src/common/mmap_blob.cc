#include "common/mmap_blob.h"

#if defined(__unix__) || defined(__APPLE__)
#define JUNO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace juno {

std::shared_ptr<MappedBlob>
MappedBlob::map(const std::string &path)
{
#ifdef JUNO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the descriptor
    // is no longer needed either way.
    ::close(fd);
    if (mem == MAP_FAILED)
        return nullptr;
    return std::shared_ptr<MappedBlob>(new MappedBlob(
        static_cast<const std::uint8_t *>(mem), size, path));
#else
    (void)path;
    return nullptr;
#endif
}

MappedBlob::~MappedBlob()
{
#ifdef JUNO_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
#endif
}

} // namespace juno
