/**
 * @file
 * Scalar distance kernels (Equ. 2.1 of the paper) plus the batch forms
 * used by the filtering stage, including the decomposition
 * ||x - q||^2 = ||x||^2 - 2<x,q> + ||q||^2 that the paper maps onto
 * Tensor cores (Sec. 5.3); here it becomes a tiled CPU matmul.
 */
#ifndef JUNO_COMMON_DISTANCE_H
#define JUNO_COMMON_DISTANCE_H

#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace juno {

/** Squared L2 distance between two D-dimensional vectors. */
float l2Sqr(const float *a, const float *b, idx_t d);

/** Inner product between two D-dimensional vectors. */
float innerProduct(const float *a, const float *b, idx_t d);

/** Squared L2 norm of a vector. */
float l2NormSqr(const float *a, idx_t d);

/**
 * Score under @p metric: squared L2 (lower better) or inner product
 * (higher better).
 */
float score(Metric metric, const float *a, const float *b, idx_t d);

/**
 * Pairwise scores between @p queries (Q x D) and @p points (N x D),
 * written to @p out (Q x N). This is the filtering-stage kernel
 * (query vs. IVF centroids).
 *
 * For L2 uses the norm decomposition with precomputable point norms:
 * pass @p point_norms_sqr (size N) to skip recomputing ||x||^2, or an
 * empty span to compute on the fly.
 */
void pairwiseScores(Metric metric, FloatMatrixView queries,
                    FloatMatrixView points,
                    const std::vector<float> &point_norms_sqr,
                    FloatMatrix &out);

/** Precomputes ||x||^2 for every row of @p points. */
std::vector<float> rowNormsSqr(FloatMatrixView points);

/**
 * Tiled GEMM C = A * B with A (M x K) row-major, B (K x N) row-major.
 * Stands in for the cuBLAS/Tensor-core path of the paper; used by the
 * pipelined accumulator where B is the all-ones column.
 */
void gemm(FloatMatrixView a, FloatMatrixView b, FloatMatrix &c);

} // namespace juno

#endif // JUNO_COMMON_DISTANCE_H
