/**
 * @file
 * Live mutability: insert/delete/upsert on a serving index without a
 * stop-the-world rebuild (DESIGN.md "Live mutability").
 *
 * Every index type below this layer is frozen at build(). LiveIndex
 * wraps one of them in the LSM shape every production ANN service
 * converges on:
 *
 *  - a flat "fresh" buffer of appended vectors, scanned exactly on
 *    every query and merged into the top-k alongside the main index's
 *    results — an insert is visible to the very next search;
 *  - tombstones consulted during result merge — a delete (or the
 *    delete half of an upsert) takes effect immediately, without
 *    touching the immutable main index;
 *  - a background merge thread that folds the buffer into the main
 *    index (re-assigning IVF lists incrementally where the type
 *    supports it, rebuild-from-union otherwise) and publishes the
 *    result as a new snapshot generation, which readers swap to
 *    atomically.
 *
 * Consistency contract: a query observes exactly one generation —
 * never a mix of old and new — because each search chunk holds the
 * reader side of one shared lock for its whole execution while
 * mutations and the generation publish take brief exclusive holds.
 * The expensive merge work (union build, index training, snapshot
 * write) runs with no lock held, against copies captured at freeze
 * time, so writers never stall searches for more than a pointer swap.
 *
 * Parity contract: with no overlay (no fresh rows, no tombstones) a
 * LiveIndex search is the wrapped index's search with row ids mapped
 * to external ids; a merged generation built by rebuild-from-union is
 * bitwise-equal to a fresh build over the union dataset (same spec,
 * same seeds, same row order). The IVF-Flat incremental path reuses
 * the previous generation's centroids and is recall-parity instead.
 */
#ifndef JUNO_LIVE_LIVE_INDEX_H
#define JUNO_LIVE_LIVE_INDEX_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/index.h"
#include "common/matrix.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/trace.h"

namespace juno {

/**
 * Outcome of one live mutation. Typed like submit()'s RejectReason so
 * callers (and the serving layer's per-op counters) branch on a value
 * instead of parsing an exception message. Mutations never block and
 * never throw for expectable conditions.
 */
enum class MutateStatus {
    kOk,          ///< applied; visible to the next search
    kBufferFull,  ///< fresh buffer at capacity (backpressure: a merge
                  ///< is behind; retry after it drains)
    kDuplicateId, ///< insert() of an id that is already live (upsert
                  ///< is the read-modify-write spelling)
    kUnknownId,   ///< remove() of an id that is not live
    kInvalidId,   ///< negative id
    kStopped,     ///< service-level: mutation after stop()
    kUnsupported, ///< service-level: served index is not a LiveIndex
};

/** Human-readable status (metrics labels, logs, CLI output). */
const char *mutateStatusName(MutateStatus status);

/** The three live mutation kinds (service-level op accounting). */
enum class LiveOp { kInsert, kRemove, kUpsert };

/** Tunables of one LiveIndex. */
struct LiveConfig {
    /**
     * Rows each fresh buffer holds. Two buffers exist (active +
     * frozen-under-merge), so peak fresh memory is twice this many
     * rows. Inserts into a full active buffer while the other is
     * still merging return kBufferFull.
     */
    idx_t fresh_capacity = 4096;
    /** Active-buffer row count that triggers a background merge. */
    idx_t merge_threshold = 1024;
    /**
     * Age trigger: a merge starts once the oldest fresh row has been
     * buffered this many seconds, even below merge_threshold.
     * 0 disables the age trigger (size-only).
     */
    double merge_age_s = 0.0;
    /**
     * Run the background merge thread. Off, merges happen only via
     * mergeNow() — the deterministic mode the parity tests use.
     */
    bool auto_merge = true;
    /**
     * Prefer the incremental merge path where the index type supports
     * it (IVF-Flat: re-assign the union to the previous generation's
     * centroids, skipping k-means). Off forces rebuild-from-union,
     * which is bitwise-parity with a fresh build.
     */
    bool incremental = true;
    /**
     * Directory for generation snapshots: each merge saves
     * gen-<N>.juno there and republishes through openIndex() with
     * mmap, so readers serve the new generation through the registry's
     * keepalive-counted views. Empty (default) publishes the built
     * index directly from memory (no files).
     */
    std::string snapshot_dir;
    /** Merge-trace hook: each merge emits freeze/build/snapshot/
     * publish spans as one trace collected here. Null disables. */
    Tracer *tracer = nullptr;
    /**
     * Test/chaos hook, called after the merged index is built but
     * before the publish lock is taken — the window a racing delete
     * must survive (see test_live_index "delete racing publish").
     */
    std::function<void()> before_publish;
};

/** Point-in-time freshness/merge statistics of one LiveIndex. */
struct LiveStats {
    idx_t live_count = 0;  ///< ids a search can currently return
    idx_t fresh_rows = 0;  ///< live rows awaiting merge (both buffers)
    idx_t tombstones = 0;  ///< dead rows (main + buffers) awaiting compaction
    std::uint64_t generation = 0; ///< current generation number
    std::uint64_t generations_published = 0; ///< merges that swapped readers
    std::uint64_t merges = 0;     ///< completed merge cycles
    std::uint64_t inserts = 0;    ///< applied inserts
    std::uint64_t removes = 0;    ///< applied removes
    std::uint64_t upserts = 0;    ///< applied upserts
    std::uint64_t rejected_full = 0;  ///< mutations refused: buffer full
    std::uint64_t rejected_other = 0; ///< duplicate/unknown/invalid refusals
    bool merging = false;         ///< a merge is in flight
};

/**
 * A mutable serving index wrapping any registry-buildable AnnIndex.
 *
 * External ids: the initial points get ids 0..n-1; insert()/upsert()
 * take caller-chosen non-negative ids. Search results carry external
 * ids, whatever generation or buffer the hit came from. At most one
 * live vector exists per id at any instant.
 *
 * Thread-safety: searches, mutations, and merges may all race; see
 * the file comment for the locking protocol. The read path satisfies
 * the AnnIndex contract (concurrent search() calls are safe) *with*
 * concurrent mutation — unlike every other index type in the tree.
 */
class LiveIndex : public AnnIndex {
  public:
    /**
     * Builds the initial generation over @p initial_points (ids
     * 0..n-1) from @p spec via the index factory, so every merge can
     * rebuild an equivalent index deterministically from the same
     * spec string.
     */
    LiveIndex(Metric metric, FloatMatrixView initial_points,
              const std::string &spec, LiveConfig config = {});

    /** Stops the merge thread; in-flight merges complete first. */
    ~LiveIndex() override;

    // ---- Mutations (never block searches; brief exclusive lock) ----

    /** Appends @p vec (dim() floats) under @p id. The id must not be
     * live; a tombstoned id may be re-inserted. */
    MutateStatus insert(const float *vec, idx_t id);

    /** Tombstones @p id; it disappears from the very next search. */
    MutateStatus remove(idx_t id);

    /** Atomically replace: remove-if-present + insert. */
    MutateStatus upsert(const float *vec, idx_t id);

    /**
     * Runs one merge cycle synchronously on the calling thread
     * (serialised against the background thread). Returns true when a
     * new generation was published, false when there was nothing to
     * fold (no fresh rows, no tombstones).
     */
    bool mergeNow();

    /** Current generation number (0 = the initial build). */
    std::uint64_t generation() const;

    LiveStats liveStats() const;

    const LiveConfig &liveConfig() const { return config_; }

    /**
     * Redirects merge traces (overrides LiveConfig::tracer; null
     * disables). The serving layer attaches its own tracer here so
     * merge spans land in the same ring as request traces.
     */
    void setTracer(Tracer *tracer) { tracer_.store(tracer); }

    // ---- AnnIndex ----
    std::string name() const override;
    /** The *base* spec: what each merged generation is rebuilt from. */
    std::string spec() const override { return base_spec_; }
    Metric metric() const override { return metric_; }
    /** Live ids (generation live rows + buffered live rows). */
    idx_t size() const override;
    idx_t dim() const override { return dim_; }

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;

  private:
    /** One immutable published index plus its id/tombstone overlay. */
    struct Generation {
        /** Null only when a merge emptied the index entirely. */
        std::unique_ptr<AnnIndex> index;
        /** Raw vectors, row-aligned with the index (merge source). */
        FloatMatrix points;
        /** Row -> external id. */
        std::vector<idx_t> ids;
        /** Tombstone bitmap over rows; set rows are filtered from
         * every result merge. */
        std::vector<std::uint8_t> dead;
        idx_t dead_count = 0;
        std::uint64_t number = 0;
    };

    /** One append-only fresh buffer (active or frozen-under-merge). */
    struct FreshBuffer {
        FloatMatrix rows; ///< capacity x dim, first `count` rows valid
        std::vector<idx_t> ids;
        std::vector<std::uint8_t> dead;
        idx_t count = 0;
        idx_t dead_count = 0;
    };

    /** Where an id's single live vector currently resides. */
    struct Loc {
        enum class Where : std::uint8_t { kMain, kBuffer };
        Where where = Where::kMain;
        int buffer = 0; ///< buffers_ slot when where == kBuffer
        idx_t row = 0;
    };

    /** Merge inputs captured (copied) at freeze time, worked on with
     * no lock held. */
    struct MergeJob {
        std::shared_ptr<Generation> gen;
        std::vector<std::uint8_t> gen_dead; ///< liveness at freeze
        FloatMatrix fresh_rows;
        std::vector<idx_t> fresh_ids;
        std::vector<std::uint8_t> fresh_dead;
        int frozen = 0; ///< buffers_ slot frozen by this merge
    };

    MutateStatus insertLocked(const float *vec, idx_t id)
        JUNO_REQUIRES(rw_);
    MutateStatus removeLocked(idx_t id) JUNO_REQUIRES(rw_);

    /** Wakes the merge thread when a trigger fired (outside rw_). */
    void maybeTriggerMerge();
    bool mergeDue() const;
    void mergeLoop() JUNO_EXCLUDES(merge_mutex_);
    /** One full merge cycle; true when a generation was published. */
    bool mergeOnce() JUNO_EXCLUDES(merge_run_mutex_);

    const Metric metric_;
    const idx_t dim_;
    const std::string base_spec_;
    const LiveConfig config_;
    std::string base_name_;
    /** Merge-trace sink; seeded from config_, swappable at runtime. */
    std::atomic<Tracer *> tracer_{nullptr};

    /** The generation-coherence lock (see file comment). */
    mutable SharedMutex rw_;
    std::shared_ptr<Generation> gen_ JUNO_GUARDED_BY(rw_);
    FreshBuffer buffers_[2] JUNO_GUARDED_BY(rw_);
    int active_ JUNO_GUARDED_BY(rw_) = 0;
    bool merging_ JUNO_GUARDED_BY(rw_) = false;
    /** id -> live location; exactly the currently-live ids. */
    std::unordered_map<idx_t, Loc> loc_ JUNO_GUARDED_BY(rw_);

    // Merge-trigger signals (atomics: read by the merge thread
    // without rw_).
    std::atomic<std::int64_t> active_rows_{0};
    /** steady_clock us of the active buffer's first append; -1 none. */
    std::atomic<std::int64_t> oldest_fresh_us_{-1};

    // Op counters (atomics: liveStats() reads without rw_ writers).
    std::atomic<std::uint64_t> inserts_{0};
    std::atomic<std::uint64_t> removes_{0};
    std::atomic<std::uint64_t> upserts_{0};
    std::atomic<std::uint64_t> rejected_full_{0};
    std::atomic<std::uint64_t> rejected_other_{0};
    std::atomic<std::uint64_t> merges_{0};
    std::atomic<std::uint64_t> generations_published_{0};

    /** Serialises merge cycles (background thread vs mergeNow()). */
    Mutex merge_run_mutex_;

    Mutex merge_mutex_;
    std::condition_variable merge_cv_;
    bool merge_stop_ JUNO_GUARDED_BY(merge_mutex_) = false;
    std::thread merge_thread_;
};

} // namespace juno

#endif // JUNO_LIVE_LIVE_INDEX_H
