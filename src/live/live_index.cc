#include "live/live_index.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "baseline/ivfflat_index.h"
#include "common/logging.h"
#include "common/simd.h"
#include "registry/index_factory.h"
#include "registry/index_spec.h"

namespace juno {

namespace {

/** Fresh-buffer rows scored per batched-kernel call (flat-scan idiom). */
constexpr idx_t kFreshScanBlock = 1024;

/** Per-worker scratch for the nested main-generation search. */
struct LiveScratch {
    SearchResults main_results;
    std::vector<std::uint8_t> main_degraded;
};

std::int64_t
nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
mutateStatusName(MutateStatus status)
{
    switch (status) {
    case MutateStatus::kOk:
        return "ok";
    case MutateStatus::kBufferFull:
        return "buffer_full";
    case MutateStatus::kDuplicateId:
        return "duplicate_id";
    case MutateStatus::kUnknownId:
        return "unknown_id";
    case MutateStatus::kInvalidId:
        return "invalid_id";
    case MutateStatus::kStopped:
        return "stopped";
    case MutateStatus::kUnsupported:
        return "unsupported";
    }
    return "unknown";
}

LiveIndex::LiveIndex(Metric metric, FloatMatrixView initial_points,
                     const std::string &spec, LiveConfig config)
    : metric_(metric), dim_(initial_points.cols()),
      base_spec_(IndexSpec::parse(spec).toString()),
      config_(std::move(config))
{
    JUNO_REQUIRE(initial_points.rows() > 0,
                 "live index needs a non-empty initial point set");
    JUNO_REQUIRE(config_.fresh_capacity > 0,
                 "fresh_capacity must be positive");
    JUNO_REQUIRE(config_.merge_threshold > 0,
                 "merge_threshold must be positive");

    auto gen = std::make_shared<Generation>();
    const idx_t rows = initial_points.rows();
    gen->points = FloatMatrix(rows, dim_);
    std::copy_n(initial_points.data(),
                static_cast<std::size_t>(rows) *
                    static_cast<std::size_t>(dim_),
                gen->points.data());
    gen->ids.resize(static_cast<std::size_t>(rows));
    std::iota(gen->ids.begin(), gen->ids.end(), idx_t{0});
    gen->dead.assign(static_cast<std::size_t>(rows), 0);
    gen->index = buildIndex(metric_, gen->points.view(), base_spec_);
    base_name_ = "Live[" + gen->index->name() + "]";

    {
        // The lock is uncontended here (no other thread can see this
        // object yet); holding it satisfies the guarded-member
        // discipline uniformly.
        WriterLock lock(rw_);
        loc_.reserve(static_cast<std::size_t>(rows));
        for (idx_t r = 0; r < rows; ++r)
            loc_[r] = Loc{Loc::Where::kMain, 0, r};
        gen_ = std::move(gen);
        for (FreshBuffer &buf : buffers_) {
            buf.rows = FloatMatrix(config_.fresh_capacity, dim_);
            buf.ids.reserve(static_cast<std::size_t>(
                config_.fresh_capacity));
            buf.dead.reserve(static_cast<std::size_t>(
                config_.fresh_capacity));
        }
    }

    tracer_.store(config_.tracer);

    if (config_.auto_merge)
        merge_thread_ = std::thread([this] { mergeLoop(); });
}

LiveIndex::~LiveIndex()
{
    {
        MutexLock lock(merge_mutex_);
        merge_stop_ = true;
    }
    merge_cv_.notify_all();
    if (merge_thread_.joinable())
        merge_thread_.join();
}

std::string
LiveIndex::name() const
{
    return base_name_;
}

idx_t
LiveIndex::size() const
{
    ReaderLock lock(rw_);
    // loc_ holds exactly the currently-live ids.
    return static_cast<idx_t>(loc_.size());
}

std::uint64_t
LiveIndex::generation() const
{
    ReaderLock lock(rw_);
    return gen_->number;
}

LiveStats
LiveIndex::liveStats() const
{
    LiveStats stats;
    {
        ReaderLock lock(rw_);
        stats.live_count = static_cast<idx_t>(loc_.size());
        for (const FreshBuffer &buf : buffers_) {
            stats.fresh_rows += buf.count - buf.dead_count;
            stats.tombstones += buf.dead_count;
        }
        stats.tombstones += gen_->dead_count;
        stats.generation = gen_->number;
        stats.merging = merging_;
    }
    stats.generations_published = generations_published_.load();
    stats.merges = merges_.load();
    stats.inserts = inserts_.load();
    stats.removes = removes_.load();
    stats.upserts = upserts_.load();
    stats.rejected_full = rejected_full_.load();
    stats.rejected_other = rejected_other_.load();
    return stats;
}

MutateStatus
LiveIndex::insertLocked(const float *vec, idx_t id)
{
    if (id < 0)
        return MutateStatus::kInvalidId;
    if (loc_.find(id) != loc_.end())
        return MutateStatus::kDuplicateId;
    FreshBuffer &act = buffers_[active_];
    if (act.count >= config_.fresh_capacity)
        return MutateStatus::kBufferFull;
    std::copy_n(vec, static_cast<std::size_t>(dim_),
                act.rows.row(act.count));
    act.ids.push_back(id);
    act.dead.push_back(0);
    loc_[id] = Loc{Loc::Where::kBuffer, active_, act.count};
    ++act.count;
    active_rows_.fetch_add(1);
    std::int64_t expected = -1;
    oldest_fresh_us_.compare_exchange_strong(expected, nowUs());
    return MutateStatus::kOk;
}

MutateStatus
LiveIndex::removeLocked(idx_t id)
{
    if (id < 0)
        return MutateStatus::kInvalidId;
    auto it = loc_.find(id);
    if (it == loc_.end())
        return MutateStatus::kUnknownId;
    if (it->second.where == Loc::Where::kMain) {
        gen_->dead[static_cast<std::size_t>(it->second.row)] = 1;
        ++gen_->dead_count;
    } else {
        FreshBuffer &buf = buffers_[it->second.buffer];
        buf.dead[static_cast<std::size_t>(it->second.row)] = 1;
        ++buf.dead_count;
    }
    loc_.erase(it);
    return MutateStatus::kOk;
}

MutateStatus
LiveIndex::insert(const float *vec, idx_t id)
{
    MutateStatus status;
    {
        WriterLock lock(rw_);
        status = insertLocked(vec, id);
    }
    if (status == MutateStatus::kOk) {
        inserts_.fetch_add(1);
        maybeTriggerMerge();
    } else if (status == MutateStatus::kBufferFull) {
        rejected_full_.fetch_add(1);
    } else {
        rejected_other_.fetch_add(1);
    }
    return status;
}

MutateStatus
LiveIndex::remove(idx_t id)
{
    MutateStatus status;
    {
        WriterLock lock(rw_);
        status = removeLocked(id);
    }
    if (status == MutateStatus::kOk)
        removes_.fetch_add(1);
    else
        rejected_other_.fetch_add(1);
    return status;
}

MutateStatus
LiveIndex::upsert(const float *vec, idx_t id)
{
    MutateStatus status;
    {
        WriterLock lock(rw_);
        if (id < 0) {
            status = MutateStatus::kInvalidId;
        } else if (buffers_[active_].count >= config_.fresh_capacity) {
            // Capacity is checked before the remove half so a refused
            // upsert leaves the old vector live (atomic replace).
            status = MutateStatus::kBufferFull;
        } else {
            removeLocked(id); // kUnknownId is fine: plain insert
            status = insertLocked(vec, id);
        }
    }
    if (status == MutateStatus::kOk) {
        upserts_.fetch_add(1);
        maybeTriggerMerge();
    } else if (status == MutateStatus::kBufferFull) {
        rejected_full_.fetch_add(1);
    } else {
        rejected_other_.fetch_add(1);
    }
    return status;
}

void
LiveIndex::maybeTriggerMerge()
{
    if (!config_.auto_merge)
        return;
    if (active_rows_.load() >= config_.merge_threshold)
        merge_cv_.notify_one();
}

bool
LiveIndex::mergeDue() const
{
    if (active_rows_.load() >= config_.merge_threshold)
        return true;
    if (config_.merge_age_s > 0.0) {
        const std::int64_t first = oldest_fresh_us_.load();
        if (first >= 0 &&
            static_cast<double>(nowUs() - first) >=
                config_.merge_age_s * 1e6)
            return true;
    }
    return false;
}

void
LiveIndex::mergeLoop()
{
    for (;;) {
        {
            CvLock lock(merge_mutex_);
            while (!merge_stop_ && !mergeDue())
                merge_cv_.wait_for(lock.native(),
                                   std::chrono::milliseconds(20));
            if (merge_stop_)
                return;
        }
        mergeOnce();
    }
}

bool
LiveIndex::mergeNow()
{
    return mergeOnce();
}

bool
LiveIndex::mergeOnce()
{
    // One merge in flight at a time: the background thread and
    // mergeNow() callers serialise here, never under rw_.
    MutexLock run(merge_run_mutex_);

    Tracer *tracer = tracer_.load();
    std::shared_ptr<Trace> trace;
    if (tracer != nullptr)
        trace = tracer->makeTrace("live merge");

    // ---- Freeze: capture the merge inputs under a brief exclusive
    // hold. The active buffer is copied out and a fresh (empty) one
    // swapped in; the frozen copy stays searchable — and deletable —
    // until publish, while the merge works on its private copy.
    MergeJob job;
    {
        TraceSpan span(trace.get(), "freeze");
        WriterLock lock(rw_);
        FreshBuffer &act = buffers_[active_];
        if (act.count == 0 && gen_->dead_count == 0) {
            active_rows_.store(0);
            oldest_fresh_us_.store(-1);
            return false; // nothing to fold, nothing to compact
        }
        job.gen = gen_;
        job.gen_dead = gen_->dead;
        job.frozen = active_;
        job.fresh_rows = FloatMatrix(act.count, dim_);
        std::copy_n(act.rows.data(),
                    static_cast<std::size_t>(act.count) *
                        static_cast<std::size_t>(dim_),
                    job.fresh_rows.data());
        job.fresh_ids = act.ids;
        job.fresh_dead = act.dead;
        merging_ = true;
        active_ = 1 - active_;
        JUNO_ASSERT(buffers_[active_].count == 0,
                    "previous merge left a dirty buffer");
        active_rows_.store(0);
        oldest_fresh_us_.store(-1);
    }

    // ---- Union build + index construction: no locks held. Row order
    // is deterministic (generation rows in row order minus the rows
    // dead at freeze, then frozen rows in append order minus dead), so
    // rebuild-from-union is bitwise-reproducible from the spec.
    const idx_t gen_rows = static_cast<idx_t>(job.gen->ids.size());
    const idx_t fresh_rows = job.fresh_rows.rows();
    idx_t union_rows = 0;
    for (idx_t r = 0; r < gen_rows; ++r)
        if (job.gen_dead[static_cast<std::size_t>(r)] == 0)
            ++union_rows;
    for (idx_t i = 0; i < fresh_rows; ++i)
        if (job.fresh_dead[static_cast<std::size_t>(i)] == 0)
            ++union_rows;

    FloatMatrix union_points(union_rows, dim_);
    std::vector<idx_t> union_ids;
    union_ids.reserve(static_cast<std::size_t>(union_rows));
    idx_t w = 0;
    for (idx_t r = 0; r < gen_rows; ++r) {
        if (job.gen_dead[static_cast<std::size_t>(r)] != 0)
            continue;
        std::copy_n(job.gen->points.row(r),
                    static_cast<std::size_t>(dim_),
                    union_points.row(w));
        union_ids.push_back(job.gen->ids[static_cast<std::size_t>(r)]);
        ++w;
    }
    for (idx_t i = 0; i < fresh_rows; ++i) {
        if (job.fresh_dead[static_cast<std::size_t>(i)] != 0)
            continue;
        std::copy_n(job.fresh_rows.row(i),
                    static_cast<std::size_t>(dim_),
                    union_points.row(w));
        union_ids.push_back(job.fresh_ids[static_cast<std::size_t>(i)]);
        ++w;
    }

    std::unique_ptr<AnnIndex> merged;
    if (union_rows > 0) {
        TraceSpan span(trace.get(), "build");
        bool incremental = false;
        if (config_.incremental) {
            // IVF-Flat incremental re-assignment: fold the union onto
            // the previous generation's centroids (no k-means). Also
            // the only path that can index a union smaller than nlist.
            const auto *old = dynamic_cast<const IvfFlatIndex *>(
                job.gen->index.get());
            const IndexSpec spec = IndexSpec::parse(base_spec_);
            if (old != nullptr && spec.type == "ivfflat") {
                IvfFlatIndex::Params params;
                params.clusters =
                    static_cast<int>(spec.getInt("nlist", 256));
                params.nprobs = spec.getInt("nprobe", 8);
                params.seed = static_cast<std::uint64_t>(
                    spec.getInt("seed", 31));
                params.max_iters =
                    static_cast<int>(spec.getInt("iters", 20));
                params.max_training_points = spec.getInt("train", 0);
                merged = std::make_unique<IvfFlatIndex>(
                    metric_, union_points.view(), params,
                    old->ivf().centroids());
                incremental = true;
            }
        }
        if (!incremental)
            merged = buildIndex(metric_, union_points.view(),
                                base_spec_);
    }

    // ---- Snapshot generation: persist, then republish through the
    // registry's mmap path so readers hold keepalive-counted views of
    // the on-disk generation (the atomic reader-swap primitive).
    const std::uint64_t next_number = job.gen->number + 1;
    if (!config_.snapshot_dir.empty() && merged != nullptr) {
        TraceSpan span(trace.get(), "snapshot");
        const std::string path = config_.snapshot_dir + "/gen-" +
                                 std::to_string(next_number) + ".juno";
        merged->save(path);
        merged = openIndex(path, SnapshotOptions{});
    }

    if (config_.before_publish)
        config_.before_publish();

    // ---- Publish: swap the generation under a brief exclusive hold.
    // Mutations that landed during the merge are reconciled through
    // loc_ (the single source of liveness truth): a union row whose id
    // was deleted mid-merge, or re-homed into the new active buffer by
    // an upsert, starts out tombstoned in the new generation.
    {
        TraceSpan span(trace.get(), "publish");
        WriterLock lock(rw_);
        auto next = std::make_shared<Generation>();
        next->index = std::move(merged);
        next->points = std::move(union_points);
        next->ids = std::move(union_ids);
        next->dead.assign(next->ids.size(), 0);
        next->number = next_number;
        for (idx_t r = 0; r < static_cast<idx_t>(next->ids.size());
             ++r) {
            const idx_t id = next->ids[static_cast<std::size_t>(r)];
            auto it = loc_.find(id);
            const bool live_here =
                it != loc_.end() &&
                (it->second.where == Loc::Where::kMain ||
                 (it->second.where == Loc::Where::kBuffer &&
                  it->second.buffer == job.frozen));
            if (live_here) {
                it->second = Loc{Loc::Where::kMain, 0, r};
            } else {
                next->dead[static_cast<std::size_t>(r)] = 1;
                ++next->dead_count;
            }
        }
        FreshBuffer &frozen = buffers_[job.frozen];
        frozen.count = 0;
        frozen.dead_count = 0;
        frozen.ids.clear();
        frozen.dead.clear();
        merging_ = false;
        gen_ = std::move(next);
    }
    merges_.fetch_add(1);
    generations_published_.fetch_add(1);
    if (trace != nullptr) {
        trace->instant("generation", "number",
                       static_cast<double>(next_number), "rows",
                       static_cast<double>(union_rows));
        tracer->collect(std::move(trace));
    }
    return true;
}

void
LiveIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    auto &scratch = ctx.scratch<LiveScratch>(
        [] { return std::make_unique<LiveScratch>(); });
    const idx_t m = chunk.end - chunk.begin;
    const FloatMatrixView queries(chunk.queries.row(chunk.begin), m,
                                  dim_);

    // The whole chunk executes under one reader hold: generation,
    // buffers and tombstones are observed coherently, so a query
    // racing a publish sees exactly the old or the new generation.
    ReaderLock lock(rw_);
    const Generation &gen = *gen_;
    const FreshBuffer &frozen = buffers_[1 - active_];
    const FreshBuffer &act = buffers_[active_];
    const idx_t gen_rows = static_cast<idx_t>(gen.ids.size());

    const bool pristine = gen.dead_count == 0 && frozen.count == 0 &&
                          act.count == 0 && gen.index != nullptr;

    // Nested main-generation search for the whole chunk at once.
    // Over-fetching k + dead_count main results makes the post-filter
    // top-k exact w.r.t. the main index's own answer; threads=1 runs
    // inline on this worker (the engine's re-entrant path).
    scratch.main_results.clear();
    if (gen.index != nullptr && gen.dead_count < gen_rows) {
        SearchRequest inner(queries, SearchOptions{});
        inner.options.k =
            pristine ? chunk.k
                     : std::min(chunk.k + gen.dead_count, gen_rows);
        inner.options.threads = 1;
        inner.options.collect_stats = false;
        inner.options.deadline = ctx.deadline;
        inner.options.nprobe_scale = ctx.nprobe_scale;
        inner.options.scan_tighten = ctx.scan_tighten;
        inner.options.trace = ctx.trace;
        // The nested engine zeroes its degraded vector for its whole
        // batch; handing it ctx.degraded directly would clobber
        // sibling chunks' flags. Collect into chunk-local scratch and
        // OR the flags outward instead, so a degraded main scan stays
        // marked through the fresh-buffer merge.
        inner.options.degraded = &scratch.main_degraded;
        gen.index->search(inner, scratch.main_results);
        for (idx_t i = 0; i < m; ++i)
            if (scratch.main_degraded[static_cast<std::size_t>(i)] != 0)
                ctx.markDegraded(chunk.begin + i);
    }

    if (pristine) {
        // Parity fast path: the wrapped index's result lists verbatim
        // with rows mapped to external ids — no re-selection, so tied
        // scores keep the wrapped index's order bitwise.
        for (idx_t i = 0; i < m; ++i) {
            auto &list =
                scratch.main_results[static_cast<std::size_t>(i)];
            for (Neighbor &nb : list)
                nb.id = gen.ids[static_cast<std::size_t>(nb.id)];
            (*chunk.results)[static_cast<std::size_t>(chunk.begin + i)] =
                std::move(list);
        }
        return;
    }

    StageScope scan_timer(ctx, Stage::kScan);
    const bool have_main =
        scratch.main_results.size() == static_cast<std::size_t>(m);
    for (idx_t i = 0; i < m; ++i) {
        const idx_t qi = chunk.begin + i;
        const float *q = chunk.queries.row(qi);
        TopK top(chunk.k, metric_);
        if (have_main) {
            for (const Neighbor &nb :
                 scratch.main_results[static_cast<std::size_t>(i)]) {
                if (gen.dead[static_cast<std::size_t>(nb.id)] != 0)
                    continue;
                top.push(gen.ids[static_cast<std::size_t>(nb.id)],
                         nb.score);
            }
        }
        // Fresh rows are scanned exactly, every query, through the
        // batched kernel (frozen buffer first, then active: a stable
        // order). Dead rows — deletes of still-buffered vectors — are
        // skipped at push time.
        for (const FreshBuffer *buf : {&frozen, &act}) {
            const idx_t n = buf->count;
            for (idx_t base = 0; base < n; base += kFreshScanBlock) {
                const idx_t count =
                    std::min(kFreshScanBlock, n - base);
                ctx.scores.resize(static_cast<std::size_t>(count));
                simd::scoreBatch(metric_, q, buf->rows.row(base), count,
                                 dim_, ctx.scores.data());
                for (idx_t j = 0; j < count; ++j) {
                    if (buf->dead[static_cast<std::size_t>(base + j)] !=
                        0)
                        continue;
                    top.push(
                        buf->ids[static_cast<std::size_t>(base + j)],
                        ctx.scores[static_cast<std::size_t>(j)]);
                }
            }
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

} // namespace juno
