#include "baseline/index.h"

#include "common/logging.h"

namespace juno {

SearchResults
AnnIndex::search(const SearchRequest &request)
{
    JUNO_REQUIRE(request.options.k > 0, "k must be positive");
    JUNO_REQUIRE(request.queries.cols() == dim(),
                 "dimension mismatch: queries have "
                     << request.queries.cols() << " columns, index has "
                     << dim());
    return engine_.run(
        request.queries, request.options,
        [this](const SearchChunk &chunk, SearchContext &ctx) {
            searchChunk(chunk, ctx);
        },
        timers_);
}

} // namespace juno
