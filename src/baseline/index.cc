#include "baseline/index.h"

#include <algorithm>

#include "common/logging.h"
#include "registry/snapshot.h"
#include "serve/hot_list_cache.h"

namespace juno {

std::string
AnnIndex::spec() const
{
    fatal("index '" + name() + "' does not describe itself as a spec");
}

void
AnnIndex::saveSections(SnapshotWriter &) const
{
    fatal("index '" + name() + "' does not support persistence");
}

void
AnnIndex::save(const std::string &path) const
{
    SnapshotWriter writer(path, spec());
    saveSections(writer);
    writer.finish();
}

SearchResults
AnnIndex::search(const SearchRequest &request)
{
    SearchResults results;
    search(request, results);
    return results;
}

void
AnnIndex::search(const SearchRequest &request, SearchResults &out)
{
    JUNO_REQUIRE(request.options.k >= 0, "k must be non-negative");
    // Degenerate requests resolve here, uniformly for every index
    // type, so searchChunk() implementations never see them:
    //  - empty batch -> no results (queries are not even shape-checked;
    //    an empty view has no meaningful column count);
    //  - k == 0 -> one empty neighbour list per query;
    //  - k > numPoints -> k clamps to the index size (results truncate
    //    instead of reading past list ends).
    const idx_t rows = request.queries.rows();
    // Degraded flags track rows 1:1; degenerate paths below bypass the
    // engine, so they size/clear the vector themselves.
    if (request.options.degraded != nullptr)
        request.options.degraded->assign(static_cast<std::size_t>(rows),
                                         0);
    if (rows == 0) {
        out.clear();
        return;
    }
    JUNO_REQUIRE(request.queries.cols() == dim(),
                 "dimension mismatch: queries have "
                     << request.queries.cols() << " columns, index has "
                     << dim());
    if (request.options.k == 0 || size() == 0) {
        // @p out may be a reused buffer: stale lists must empty out.
        out.resize(static_cast<std::size_t>(rows));
        for (auto &list : out)
            list.clear();
        return;
    }
    SearchOptions options = request.options;
    options.k = std::min(options.k, size());
    applyMemoryBudget(options.memory_budget_bytes);
    engine_.run(
        request.queries, options,
        [this](const SearchChunk &chunk, SearchContext &ctx) {
            searchChunk(chunk, ctx);
        },
        timers_, out);
}

void
AnnIndex::applyMemoryBudget(std::int64_t requested)
{
    std::int64_t budget = requested;
    if (budget < 0) {
        // Unspecified: leave whatever is attached alone. When nothing
        // is attached yet, fall back to JUNO_MEM_BUDGET (read once per
        // process; serving restarts to change it).
        if (hotListCache() != nullptr)
            return;
        static const std::int64_t env_budget =
            HotListCache::budgetFromEnv();
        if (env_budget < 0)
            return;
        budget = env_budget;
    }
    const auto cache = hotListCache();
    const std::int64_t current =
        cache != nullptr ? static_cast<std::int64_t>(cache->budget())
                         : 0;
    if (current != budget)
        setMemoryBudget(budget);
}

} // namespace juno
