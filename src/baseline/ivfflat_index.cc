#include "baseline/ivfflat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

IvfFlatIndex::IvfFlatIndex(Metric metric, FloatMatrixView points,
                           const Params &params)
    : metric_(metric), points_(points.rows(), points.cols()),
      nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_.build(points_.view(), ivf_params);
}

std::string
IvfFlatIndex::name() const
{
    return "IVF" + std::to_string(ivf_.numClusters()) + ",Flat";
}

SearchResults
IvfFlatIndex::search(FloatMatrixView queries, idx_t k)
{
    JUNO_REQUIRE(queries.cols() == points_.cols(), "dimension mismatch");
    SearchResults results(static_cast<std::size_t>(queries.rows()));
    const idx_t d = points_.cols();
    for (idx_t qi = 0; qi < queries.rows(); ++qi) {
        const float *q = queries.row(qi);
        std::vector<Neighbor> probes;
        {
            ScopedStageTimer t(timers_, "filter");
            probes = ivf_.probe(metric_, q, nprobs_);
        }
        ScopedStageTimer t(timers_, "scan");
        TopK top(std::min(k, points_.rows()), metric_);
        for (const auto &probe : probes) {
            for (idx_t pid : ivf_.list(static_cast<cluster_t>(probe.id)))
                top.push(pid, score(metric_, q, points_.row(pid), d));
        }
        results[static_cast<std::size_t>(qi)] = top.take();
    }
    return results;
}

} // namespace juno
