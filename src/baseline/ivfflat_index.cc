#include "baseline/ivfflat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

IvfFlatIndex::IvfFlatIndex(Metric metric, FloatMatrixView points,
                           const Params &params)
    : metric_(metric), points_(points.rows(), points.cols()),
      nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_.build(points_.view(), ivf_params);
}

std::string
IvfFlatIndex::name() const
{
    return "IVF" + std::to_string(ivf_.numClusters()) + ",Flat";
}

void
IvfFlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    const idx_t d = points_.cols();
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);
        {
            ScopedStageTimer t(ctx.timers(), "filter");
            ctx.probes = ivf_.probe(metric_, q, nprobs_);
        }
        ScopedStageTimer t(ctx.timers(), "scan");
        TopK top(std::min(chunk.k, points_.rows()), metric_);
        // Inverted lists hold scattered ids, so the contiguous batch
        // kernel does not apply; the single-row kernel still runs
        // through the dispatched (AVX2 when available) table.
        const auto &kernels = simd::active();
        for (const auto &probe : ctx.probes) {
            for (idx_t pid : ivf_.list(static_cast<cluster_t>(probe.id))) {
                const float s =
                    metric_ == Metric::kL2
                        ? kernels.l2_sqr(q, points_.row(pid), d)
                        : kernels.inner_product(q, points_.row(pid), d);
                top.push(pid, s);
            }
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

} // namespace juno
