#include "baseline/ivfflat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

IvfFlatIndex::IvfFlatIndex(Metric metric, FloatMatrixView points,
                           const Params &params)
    : metric_(metric), points_(points.rows(), points.cols()),
      nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_iters = params.max_iters;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points_.view(), ivf_params);

    // GEMM operands of the batched filter: the centroid table
    // transposed to d x C, plus per-centroid squared norms for the L2
    // identity |q - c|^2 = |q|^2 + |c|^2 - 2<q, c>.
    const idx_t C = ivf_.numClusters();
    const idx_t d = points_.cols();
    centroids_t_ = FloatMatrix(d, C);
    for (idx_t c = 0; c < C; ++c) {
        const float *row = ivf_.centroids().row(c);
        for (idx_t j = 0; j < d; ++j)
            centroids_t_.at(j, c) = row[j];
    }
    if (metric_ == Metric::kL2) {
        centroid_norms_.resize(static_cast<std::size_t>(C));
        for (idx_t c = 0; c < C; ++c)
            centroid_norms_[static_cast<std::size_t>(c)] =
                simd::l2NormSqr(ivf_.centroids().row(c), d);
    }
}

std::string
IvfFlatIndex::name() const
{
    return "IVF" + std::to_string(ivf_.numClusters()) + ",Flat";
}

namespace {
/**
 * Queries scored per GEMM call. The tile's cross-query amortisation
 * saturates here (bench_micro_kernels gemmBatchWidth), and bounding
 * the block keeps the score scratch at block x C floats however
 * large a caller's chunk is (a 100k-query batch must not allocate a
 * 100k x C matrix per context).
 */
constexpr idx_t kFilterBlock = 16;
} // namespace

void
IvfFlatIndex::filterBlock(const SearchChunk &chunk, idx_t begin,
                          idx_t end, SearchContext &ctx)
{
    const idx_t d = points_.cols();
    const idx_t C = ivf_.numClusters();
    const idx_t m = end - begin;

    // Bitwise chunk-shape invariance: every output element of the
    // dispatched GEMM is a fixed-order accumulation chain over d that
    // depends only on its own query row and the table — provided no
    // kernel falls into a differently-rounded column-tail path, which
    // the tile guarantees when C is a multiple of the 16-wide tile.
    // Otherwise pad the query block to the 4-row tile height so every
    // row takes the full-tile path regardless of m.
    const float *queries = chunk.queries.row(begin);
    idx_t rows = m;
    if (C % 16 != 0 && m % 4 != 0) {
        rows = (m + 3) / 4 * 4;
        ctx.residual.resize(static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(d));
        std::copy_n(queries,
                    static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(d),
                    ctx.residual.begin());
        for (idx_t r = m; r < rows; ++r) // pad rows: repeat query 0
            std::copy_n(queries, static_cast<std::size_t>(d),
                        ctx.residual.begin() +
                            static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(d));
        queries = ctx.residual.data();
    }

    ctx.scores.resize(static_cast<std::size_t>(rows) *
                      static_cast<std::size_t>(C));
    simd::active().gemm(queries, centroids_t_.data(), ctx.scores.data(),
                        rows, d, C);

    if (metric_ == Metric::kL2) {
        for (idx_t i = 0; i < m; ++i) {
            const float qn =
                simd::l2NormSqr(chunk.queries.row(begin + i), d);
            float *row = ctx.scores.data() +
                         static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(C);
            for (idx_t c = 0; c < C; ++c)
                row[c] = (qn + centroid_norms_[static_cast<
                                   std::size_t>(c)]) -
                         2.0f * row[c];
        }
    }
}

void
IvfFlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    const idx_t d = points_.cols();
    const idx_t C = ivf_.numClusters();
    const auto &kernels = simd::active();
    for (idx_t block = chunk.begin; block < chunk.end;
         block += kFilterBlock) {
        const idx_t block_end =
            std::min(chunk.end, block + kFilterBlock);
        {
            // Stage A once per query block: this is where batching
            // pays — the centroid table streams once per block
            // instead of once per query.
            ScopedStageTimer t(ctx.timers(), "filter");
            filterBlock(chunk, block, block_end, ctx);
        }
        for (idx_t qi = block; qi < block_end; ++qi) {
            const float *q = chunk.queries.row(qi);
            {
                ScopedStageTimer t(ctx.timers(), "filter");
                const float *scores =
                    ctx.scores.data() +
                    static_cast<std::size_t>(qi - block) *
                        static_cast<std::size_t>(C);
                ctx.probes = selectTopK(metric_, scores, C,
                                        std::min(nprobs_, C));
            }
            ScopedStageTimer t(ctx.timers(), "scan");
            TopK top(std::min(chunk.k, points_.rows()), metric_);
            // Inverted lists hold scattered ids, so the contiguous
            // batch kernel does not apply; the single-row kernel
            // still runs through the dispatched table. Each row fetch
            // is a data-dependent random load — prefetching a couple
            // of ids ahead overlaps the miss with the current row's
            // reduction.
            for (const auto &probe : ctx.probes) {
                const auto &plist =
                    ivf_.list(static_cast<cluster_t>(probe.id));
                for (std::size_t pi = 0; pi < plist.size(); ++pi) {
                    if (pi + 2 < plist.size())
                        __builtin_prefetch(
                            points_.row(plist[pi + 2]));
                    const idx_t pid = plist[pi];
                    const float s =
                        metric_ == Metric::kL2
                            ? kernels.l2_sqr(q, points_.row(pid), d)
                            : kernels.inner_product(q, points_.row(pid),
                                                    d);
                    top.push(pid, s);
                }
            }
            (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
        }
    }
}

} // namespace juno
