#include "baseline/ivfflat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"
#include "registry/index_spec.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

IvfFlatIndex::IvfFlatIndex(Metric metric, FloatMatrixView points,
                           const Params &params)
    : metric_(metric), params_(params), nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    FloatMatrix copy(points.rows(), points.cols());
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                copy.data());
    points_ = std::move(copy);
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_iters = params.max_iters;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points_.view(), ivf_params);

    buildFilterOperands();
}

IvfFlatIndex::IvfFlatIndex(Metric metric, FloatMatrixView points,
                           const Params &params,
                           const FloatMatrix &centroids)
    : metric_(metric), params_(params), nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");
    JUNO_REQUIRE(centroids.rows() == params.clusters,
                 "centroid count does not match params.clusters");
    FloatMatrix copy(points.rows(), points.cols());
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                copy.data());
    points_ = std::move(copy);
    FloatMatrix ctr(centroids.rows(), centroids.cols());
    std::copy_n(centroids.data(),
                static_cast<std::size_t>(centroids.rows() *
                                         centroids.cols()),
                ctr.data());
    ivf_.assign(points_.view(), std::move(ctr));
    buildFilterOperands();
}

void
IvfFlatIndex::buildFilterOperands()
{
    // GEMM operands of the batched filter: the centroid table
    // transposed to d x C, plus per-centroid squared norms for the L2
    // identity |q - c|^2 = |q|^2 + |c|^2 - 2<q, c>.
    const idx_t C = ivf_.numClusters();
    const idx_t d = points_.cols();
    centroids_t_ = FloatMatrix(d, C);
    for (idx_t c = 0; c < C; ++c) {
        const float *row = ivf_.centroids().row(c);
        for (idx_t j = 0; j < d; ++j)
            centroids_t_.at(j, c) = row[j];
    }
    if (metric_ == Metric::kL2) {
        centroid_norms_.resize(static_cast<std::size_t>(C));
        for (idx_t c = 0; c < C; ++c)
            centroid_norms_[static_cast<std::size_t>(c)] =
                simd::l2NormSqr(ivf_.centroids().row(c), d);
    }
}

std::string
IvfFlatIndex::name() const
{
    return "IVF" + std::to_string(ivf_.numClusters()) + ",Flat";
}

std::string
IvfFlatIndex::spec() const
{
    IndexSpec spec;
    spec.type = "ivfflat";
    spec.setInt("nlist", params_.clusters);
    spec.setInt("nprobe", nprobs_);
    spec.setInt("seed", static_cast<long>(params_.seed));
    spec.setInt("iters", params_.max_iters);
    spec.setInt("train", params_.max_training_points);
    return spec.toString();
}

void
IvfFlatIndex::saveSections(SnapshotWriter &writer) const
{
    Writer &meta = writer.section("meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    writeMetricTag(meta, metric_);
    meta.writePod<std::int64_t>(points_.rows());
    meta.writePod<std::int64_t>(points_.cols());
    meta.writePod<std::int64_t>(nprobs_);
    meta.writePod<std::int32_t>(params_.clusters);
    meta.writePod<std::uint64_t>(params_.seed);
    meta.writePod<std::int32_t>(params_.max_iters);
    meta.writePod<std::int64_t>(params_.max_training_points);
    ivf_.save(writer.section("ivf"));
    writer.addBlob("points", points_.data(),
                   static_cast<std::size_t>(points_.rows()) *
                       static_cast<std::size_t>(points_.cols()) *
                       sizeof(float));
}

std::unique_ptr<IvfFlatIndex>
IvfFlatIndex::open(SnapshotReader &reader)
{
    auto meta = reader.stream("meta");
    checkFormatVersion(meta, kFormatVersion,
                       reader.path() + " [ivfflat]");
    std::unique_ptr<IvfFlatIndex> index(new IvfFlatIndex());
    index->metric_ = readMetricTag(meta);
    const auto rows = meta.readPod<std::int64_t>();
    const auto cols = meta.readPod<std::int64_t>();
    index->nprobs_ = meta.readPod<std::int64_t>();
    index->params_.clusters = meta.readPod<std::int32_t>();
    index->params_.seed = meta.readPod<std::uint64_t>();
    index->params_.max_iters = meta.readPod<std::int32_t>();
    index->params_.max_training_points = meta.readPod<std::int64_t>();
    index->params_.nprobs = index->nprobs_;
    JUNO_REQUIRE(rows > 0 && cols > 0 && index->nprobs_ > 0,
                 reader.path() << ": corrupt ivfflat index header");

    auto ivf_stream = reader.stream("ivf");
    index->ivf_.load(ivf_stream);
    JUNO_REQUIRE(index->ivf_.dim() == cols,
                 reader.path() << ": IVF/point dimension mismatch");
    index->points_ =
        reader.blob("points").matrix(rows, cols,
                                     reader.path() + " [points]");
    index->buildFilterOperands();
    return index;
}

bool
IvfFlatIndex::setMemoryBudget(std::int64_t bytes)
{
    JUNO_REQUIRE(bytes >= 0, "negative memory budget");
    std::shared_ptr<HotListCache> next;
    if (bytes > 0)
        next = std::make_shared<HotListCache>(
            static_cast<std::size_t>(bytes), ivf_.numClusters());
    std::atomic_store(&hot_cache_, next);
    return true;
}

std::shared_ptr<const HotListCache>
IvfFlatIndex::hotListCache() const
{
    return std::atomic_load(&hot_cache_);
}

namespace {
/**
 * Queries scored per GEMM call. The tile's cross-query amortisation
 * saturates here (bench_micro_kernels gemmBatchWidth), and bounding
 * the block keeps the score scratch at block x C floats however
 * large a caller's chunk is (a 100k-query batch must not allocate a
 * 100k x C matrix per context).
 */
constexpr idx_t kFilterBlock = 16;

/** Per-worker out-of-core scratch (ctx.scratch slot). */
struct FlatOocScratch {
    /** Contiguous re-materialisation of one cold list's rows. */
    std::vector<float> gather;
};
} // namespace

void
IvfFlatIndex::filterBlock(const SearchChunk &chunk, idx_t begin,
                          idx_t end, SearchContext &ctx)
{
    const idx_t d = points_.cols();
    const idx_t C = ivf_.numClusters();
    const idx_t m = end - begin;

    // Bitwise chunk-shape invariance: every output element of the
    // dispatched GEMM is a fixed-order accumulation chain over d that
    // depends only on its own query row and the table — provided no
    // kernel falls into a differently-rounded column-tail path, which
    // the tile guarantees when C is a multiple of the 16-wide tile.
    // Otherwise pad the query block to the 4-row tile height so every
    // row takes the full-tile path regardless of m.
    const float *queries = chunk.queries.row(begin);
    idx_t rows = m;
    if (C % 16 != 0 && m % 4 != 0) {
        rows = (m + 3) / 4 * 4;
        ctx.residual.resize(static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(d));
        std::copy_n(queries,
                    static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(d),
                    ctx.residual.begin());
        for (idx_t r = m; r < rows; ++r) // pad rows: repeat query 0
            std::copy_n(queries, static_cast<std::size_t>(d),
                        ctx.residual.begin() +
                            static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(d));
        queries = ctx.residual.data();
    }

    ctx.scores.resize(static_cast<std::size_t>(rows) *
                      static_cast<std::size_t>(C));
    simd::active().gemm(queries, centroids_t_.data(), ctx.scores.data(),
                        rows, d, C);

    if (metric_ == Metric::kL2) {
        for (idx_t i = 0; i < m; ++i) {
            const float qn =
                simd::l2NormSqr(chunk.queries.row(begin + i), d);
            float *row = ctx.scores.data() +
                         static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(C);
            for (idx_t c = 0; c < C; ++c)
                row[c] = (qn + centroid_norms_[static_cast<
                                   std::size_t>(c)]) -
                         2.0f * row[c];
        }
    }
}

void
IvfFlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    const idx_t d = points_.cols();
    const idx_t C = ivf_.numClusters();
    const auto &kernels = simd::active();
    auto cache_sp = std::atomic_load(&hot_cache_);
    HotListCache *cache =
        cache_sp != nullptr && cache_sp->enabled() ? cache_sp.get()
                                                   : nullptr;
    FlatOocScratch *ooc =
        cache != nullptr
            ? &ctx.scratch<FlatOocScratch>(
                  [] { return std::make_unique<FlatOocScratch>(); })
            : nullptr;
    for (idx_t block = chunk.begin; block < chunk.end;
         block += kFilterBlock) {
        const idx_t block_end =
            std::min(chunk.end, block + kFilterBlock);
        {
            // Stage A once per query block: this is where batching
            // pays — the centroid table streams once per block
            // instead of once per query.
            StageScope t(ctx, Stage::kFilter);
            filterBlock(chunk, block, block_end, ctx);
        }
        for (idx_t qi = block; qi < block_end; ++qi) {
            const float *q = chunk.queries.row(qi);
            {
                StageScope t(ctx, Stage::kFilter);
                const float *scores =
                    ctx.scores.data() +
                    static_cast<std::size_t>(qi - block) *
                        static_cast<std::size_t>(C);
                // Degraded batches shrink the probe budget here; at
                // scale 1.0 this is exactly min(nprobs_, C).
                ctx.probes = selectTopK(
                    metric_, scores, C,
                    std::min(ctx.scaledNprobes(nprobs_), C));
            }
            StageScope t(ctx, Stage::kScan);
            TopK top(std::min(chunk.k, points_.rows()), metric_);
            // Inverted lists hold scattered ids, so the contiguous
            // batch kernel does not apply; the single-row kernel
            // still runs through the dispatched table. Each row fetch
            // is a data-dependent random load — prefetching a couple
            // of ids ahead overlaps the miss with the current row's
            // reduction.
            //
            // With a hot-list cache attached, a pinned list scans its
            // contiguous heap copy (fault-free, streaming); a cold
            // list gathers its rows once into contiguous scratch,
            // scans that, and offers it for admission — same bytes
            // through the same kernel in the same push order, so
            // results are bitwise identical to the plain path.
            const std::size_t n_probes = ctx.probes.size();
            for (std::size_t p = 0; p < n_probes; ++p) {
                // Cooperative deadline: checked between list
                // iterations (never before the first, so results stay
                // non-empty). A cut-off scan returns the valid top-k
                // of the lists completed so far, flagged degraded.
                if (p > 0 && ctx.pastDeadline()) {
                    ctx.markDegraded(qi);
                    break;
                }
                const auto &probe = ctx.probes[p];
                const cluster_t c = static_cast<cluster_t>(probe.id);
                const auto &plist = ivf_.list(c);
                const std::size_t ln = plist.size();
                if (cache != nullptr) {
                    const float *rows = nullptr;
                    HotListCache::EntryPtr entry = cache->find(c);
                    if (entry != nullptr) {
                        rows = entry->primaryAs<float>();
                    } else {
                        auto &gather = ooc->gather;
                        gather.resize(ln * static_cast<std::size_t>(d));
                        for (std::size_t pi = 0; pi < ln; ++pi) {
                            if (pi + 2 < ln)
                                __builtin_prefetch(
                                    points_.row(plist[pi + 2]));
                            std::copy_n(
                                points_.row(plist[pi]),
                                static_cast<std::size_t>(d),
                                gather.begin() +
                                    pi * static_cast<std::size_t>(d));
                        }
                        rows = gather.data();
                        cache->offer(c, gather.data(),
                                     gather.size() * sizeof(float),
                                     nullptr, 0);
                    }
                    for (std::size_t pi = 0; pi < ln; ++pi) {
                        const float *row =
                            rows + pi * static_cast<std::size_t>(d);
                        const float s =
                            metric_ == Metric::kL2
                                ? kernels.l2_sqr(q, row, d)
                                : kernels.inner_product(q, row, d);
                        top.push(plist[pi], s);
                    }
                    continue;
                }
                for (std::size_t pi = 0; pi < ln; ++pi) {
                    if (pi + 2 < ln)
                        __builtin_prefetch(
                            points_.row(plist[pi + 2]));
                    const idx_t pid = plist[pi];
                    const float s =
                        metric_ == Metric::kL2
                            ? kernels.l2_sqr(q, points_.row(pid), d)
                            : kernels.inner_product(q, points_.row(pid),
                                                    d);
                    top.push(pid, s);
                }
            }
            (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
        }
    }
}

} // namespace juno
