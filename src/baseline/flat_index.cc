#include "baseline/flat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

FlatIndex::FlatIndex(Metric metric, FloatMatrixView points)
    : metric_(metric), points_(points.rows(), points.cols())
{
    JUNO_REQUIRE(points.rows() > 0, "empty point set");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
}

std::string
FlatIndex::name() const
{
    return std::string("Flat-") + metricName(metric_);
}

void
FlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    ScopedStageTimer scan_timer(ctx.timers(), "scan");
    const idx_t d = points_.cols();
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);
        TopK top(std::min(chunk.k, points_.rows()), metric_);
        for (idx_t pi = 0; pi < points_.rows(); ++pi)
            top.push(pi, score(metric_, q, points_.row(pi), d));
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

} // namespace juno
