#include "baseline/flat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

namespace {
/** Points scored per batched-kernel call; keeps scratch L1-resident. */
constexpr idx_t kScanBlock = 1024;
} // namespace

FlatIndex::FlatIndex(Metric metric, FloatMatrixView points)
    : metric_(metric), points_(points.rows(), points.cols())
{
    JUNO_REQUIRE(points.rows() > 0, "empty point set");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
}

std::string
FlatIndex::name() const
{
    return std::string("Flat-") + metricName(metric_);
}

void
FlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    ScopedStageTimer scan_timer(ctx.timers(), "scan");
    const idx_t d = points_.cols();
    const idx_t n = points_.rows();
    ctx.scores.resize(
        static_cast<std::size_t>(std::min(kScanBlock, n)));
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);
        TopK top(std::min(chunk.k, n), metric_);
        // Block the brute-force scan through the dispatched batch
        // kernel: scores land in context scratch, then feed top-k.
        for (idx_t base = 0; base < n; base += kScanBlock) {
            const idx_t count = std::min(kScanBlock, n - base);
            simd::scoreBatch(metric_, q, points_.row(base), count, d,
                             ctx.scores.data());
            for (idx_t i = 0; i < count; ++i)
                top.push(base + i,
                         ctx.scores[static_cast<std::size_t>(i)]);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

} // namespace juno
