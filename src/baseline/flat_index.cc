#include "baseline/flat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

FlatIndex::FlatIndex(Metric metric, FloatMatrixView points)
    : metric_(metric), points_(points.rows(), points.cols())
{
    JUNO_REQUIRE(points.rows() > 0, "empty point set");
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                points_.data());
}

std::string
FlatIndex::name() const
{
    return std::string("Flat-") + metricName(metric_);
}

SearchResults
FlatIndex::search(FloatMatrixView queries, idx_t k)
{
    JUNO_REQUIRE(queries.cols() == points_.cols(), "dimension mismatch");
    JUNO_REQUIRE(k > 0, "k must be positive");
    SearchResults results(static_cast<std::size_t>(queries.rows()));
    ScopedStageTimer scan_timer(timers_, "scan");
    const idx_t d = points_.cols();
    for (idx_t qi = 0; qi < queries.rows(); ++qi) {
        const float *q = queries.row(qi);
        TopK top(std::min(k, points_.rows()), metric_);
        for (idx_t pi = 0; pi < points_.rows(); ++pi)
            top.push(pi, score(metric_, q, points_.row(pi), d));
        results[static_cast<std::size_t>(qi)] = top.take();
    }
    return results;
}

} // namespace juno
