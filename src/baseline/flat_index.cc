#include "baseline/flat_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Points scored per batched-kernel call; keeps scratch L1-resident. */
constexpr idx_t kScanBlock = 1024;
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

FlatIndex::FlatIndex(Metric metric, FloatMatrixView points)
    : metric_(metric)
{
    JUNO_REQUIRE(points.rows() > 0, "empty point set");
    FloatMatrix copy(points.rows(), points.cols());
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                copy.data());
    points_ = std::move(copy);
}

std::string
FlatIndex::name() const
{
    return std::string("Flat-") + metricName(metric_);
}

std::string
FlatIndex::spec() const
{
    return "flat";
}

void
FlatIndex::saveSections(SnapshotWriter &writer) const
{
    Writer &meta = writer.section("meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    writeMetricTag(meta, metric_);
    meta.writePod<std::int64_t>(points_.rows());
    meta.writePod<std::int64_t>(points_.cols());
    writer.addBlob("points", points_.data(),
                   static_cast<std::size_t>(points_.rows()) *
                       static_cast<std::size_t>(points_.cols()) *
                       sizeof(float));
}

std::unique_ptr<FlatIndex>
FlatIndex::open(SnapshotReader &reader)
{
    auto meta = reader.stream("meta");
    checkFormatVersion(meta, kFormatVersion, reader.path() + " [flat]");
    std::unique_ptr<FlatIndex> index(new FlatIndex());
    index->metric_ = readMetricTag(meta);
    const auto rows = meta.readPod<std::int64_t>();
    const auto cols = meta.readPod<std::int64_t>();
    JUNO_REQUIRE(rows > 0 && cols > 0,
                 reader.path() << ": corrupt flat index header");
    index->points_ =
        reader.blob("points").matrix(rows, cols,
                                     reader.path() + " [points]");
    return index;
}

void
FlatIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    StageScope scan_timer(ctx, Stage::kScan);
    const idx_t d = points_.cols();
    const idx_t n = points_.rows();
    ctx.scores.resize(
        static_cast<std::size_t>(std::min(kScanBlock, n)));
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);
        TopK top(std::min(chunk.k, n), metric_);
        // Block the brute-force scan through the dispatched batch
        // kernel: scores land in context scratch, then feed top-k.
        for (idx_t base = 0; base < n; base += kScanBlock) {
            const idx_t count = std::min(kScanBlock, n - base);
            simd::scoreBatch(metric_, q, points_.row(base), count, d,
                             ctx.scores.data());
            for (idx_t i = 0; i < count; ++i)
                top.push(base + i,
                         ctx.scores[static_cast<std::size_t>(i)]);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

} // namespace juno
