/**
 * @file
 * FAISS-style IVFPQ index — the paper's baseline (Sec. 2.1).
 *
 * Online search runs the three stages the paper instruments:
 *   A. filtering          — query vs. all C coarse centroids, keep nprobs;
 *   B+C. L2-LUT construction — per probed cluster, *dense* pairwise
 *        scores between the query residual projection and every one of
 *        the E codebook entries in every subspace;
 *   D. distance calculation — for each point in the probed clusters,
 *        accumulate LUT entries addressed by its PQ codes; top-k.
 *
 * Per-stage wall time accumulates into stageTimers() under the names
 * "filter", "lut" and "scan" (Fig. 3(a) reproduces from these).
 *
 * An optional HNSW router replaces the brute-force centroid scan in
 * stage A, reproducing FAISS's IVFx_HNSWy,PQz factory string.
 */
#ifndef JUNO_BASELINE_IVFPQ_INDEX_H
#define JUNO_BASELINE_IVFPQ_INDEX_H

#include <memory>
#include <optional>

#include "baseline/hnsw.h"
#include "baseline/index.h"
#include "ivf/ivf.h"
#include "quant/interleaved_codes.h"
#include "quant/product_quantizer.h"
#include "serve/hot_list_cache.h"

namespace juno {

/** IVF + residual PQ with asymmetric distance computation. */
class IvfPqIndex : public AnnIndex {
  public:
    struct Params {
        int clusters = 256;          ///< C coarse clusters
        int pq_subspaces = 48;       ///< the x of "PQx"
        int pq_entries = 256;        ///< E codebook entries per subspace
        idx_t nprobs = 8;            ///< probed clusters per query
        bool use_hnsw_router = false;///< route stage A through HNSW
        int hnsw_m = 16;
        int hnsw_ef_search = 64;
        std::uint64_t seed = 31;
        idx_t max_training_points = 0;
        /**
         * Build the list-resident interleaved code layout (and, for
         * pq_entries <= 16, the nibble-packed fast-scan plane). Off
         * reverts the scan stage to the legacy id-gather path — the
         * bit-exact reference the parity tests compare against.
         */
        bool use_interleaved = true;
    };

    /** Trains IVF + PQ offline and encodes every point. */
    IvfPqIndex(Metric metric, FloatMatrixView points, const Params &params);

    /**
     * Loader for openIndex(): restores the trained IVF, codebooks,
     * codes and the interleaved/fast-scan planes (no re-training, no
     * re-layout). In mmap mode the code planes view the mapping.
     */
    static std::unique_ptr<IvfPqIndex> open(SnapshotReader &reader);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return num_points_; }
    idx_t dim() const override { return dim_; }

    idx_t nprobs() const { return nprobs_; }
    void setNprobs(idx_t nprobs) { nprobs_ = nprobs; }

    /**
     * Attaches an admission-controlled HotListCache of @p bytes and
     * switches the batched scan loop to IO-aware probing: pinned
     * lists scan first out of heap copies, cold lists get a WILLNEED
     * prefetch up front and scan last (resident ones before truly
     * cold ones, classified with a one-page mincore probe). 0 detaches
     * the cache and restores the plain probe order. Results are
     * bitwise identical either way.
     */
    bool setMemoryBudget(std::int64_t bytes) override;
    std::shared_ptr<const HotListCache> hotListCache() const override;

    const InvertedFileIndex &ivf() const { return ivf_; }
    const ProductQuantizer &pq() const { return pq_; }
    const PQCodes &codes() const { return codes_; }
    const InterleavedLists &interleaved() const { return interleaved_; }
    bool hasHnswRouter() const { return router_ != nullptr; }

    /**
     * Filtering stage only (public so JUNO and the motivation benches
     * can reuse the identical stage-A implementation).
     */
    std::vector<Neighbor> probe(const float *query, idx_t nprobs) const;

    /**
     * Filtering against caller-owned router scratch; the batched path
     * passes the worker context's visited set to keep the HNSW-routed
     * stage A allocation-free.
     */
    std::vector<Neighbor> probe(const float *query, idx_t nprobs,
                                VisitedSet &visited) const;

    /**
     * Searches a single query and optionally reports which (cluster,
     * subspace, entry) cells the returned top-k actually addressed.
     * Used by the Fig. 3(b)/4/5 sparsity characterisation benches.
     */
    std::vector<Neighbor> searchOneRecordingUsage(
        const float *query, idx_t k,
        std::vector<std::vector<std::uint32_t>> *entry_usage) const;

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    /** For open(): members are filled by the loader. */
    IvfPqIndex() = default;

    /**
     * Computes the per-cluster LUT and base score for one query;
     * @p residual is caller-owned scratch (context buffer on the
     * batched path) so the hot loop stays allocation-free.
     */
    void buildLut(const float *query, cluster_t cluster, FloatMatrix &lut,
                  float &base, std::vector<float> &residual) const;

    /** Caller-owned scan scratch (per search worker / legacy call). */
    struct ScanScratch {
        std::vector<float> scores;
        QuantizedLut qlut;
        std::vector<std::uint16_t> qsums;
        /** One probe in scan order, with its pinned copy when cached. */
        struct OrderedProbe {
            cluster_t cluster;
            HotListCache::EntryPtr entry; ///< null when not pinned
        };
        std::vector<OrderedProbe> order;
        std::vector<cluster_t> cold;     ///< cache misses (reorder pass)
        std::vector<cluster_t> deferred; ///< truly cold tail
    };

    /**
     * Reorders @p probes resident-first into scratch.order: cache
     * hits (pinned heap copies, fault-free), then cache misses whose
     * first mapped page mincore reports resident, then truly cold
     * lists — which get their interleaved extents WILLNEED-prefetched
     * *before* the warm scans run, so page-ins overlap useful work.
     * Pure reordering: the scanned set is exactly @p probes, and the
     * top-k is scan-order independent (TopK tie-breaks by id; the
     * fast-scan block bound skips only strictly-worse blocks).
     */
    void orderProbesResidentFirst(const std::vector<Neighbor> &probes,
                                  HotListCache &cache,
                                  ScanScratch &scratch) const;

    /**
     * ADC-scans one inverted list against a dense LUT (paper stage D)
     * and offers every surviving point to @p top. Three tiers, chosen
     * per list:
     *  - 4-bit fast scan (interleaved nibble plane + quantised u8 LUT
     *    + in-register shuffles) when pq_entries <= 16 and a SIMD
     *    dispatch level is active; a per-32-block bound on the
     *    quantised sums skips blocks that cannot beat the current
     *    heap minimum before any float work;
     *  - streaming float scan over the interleaved blocks (bitwise
     *    identical to the legacy gather) otherwise;
     *  - the legacy id-gather kernel when use_interleaved is off.
     * Both the batched searchChunk() path and the legacy
     * searchOneRecordingUsage() path funnel through this one helper.
     */
    /**
     * @p pinned substitutes the list's cached heap copy for the
     * mapped planes (bitwise-identical bytes); @p cache, when set,
     * receives an offer of the payload after a cold interleaved scan.
     * @p tighten > 0 widens the fast-scan block skip margin by that
     * fraction of the heap threshold (degraded serving); 0 keeps the
     * exact skip rule.
     */
    void scanList(cluster_t cluster, const FloatMatrix &lut, float base,
                  ScanScratch &scratch, TopK &top,
                  const CachedList *pinned = nullptr,
                  HotListCache *cache = nullptr,
                  float tighten = 0.0f) const;

    Metric metric_ = Metric::kL2;
    idx_t num_points_ = 0;
    idx_t dim_ = 0;
    Params params_;
    InvertedFileIndex ivf_;
    ProductQuantizer pq_;
    PQCodes codes_;
    /** List-resident interleaved layout (empty when disabled). */
    InterleavedLists interleaved_;
    idx_t nprobs_ = 8;
    std::unique_ptr<Hnsw> router_;
    int hnsw_ef_search_ = 64;
    /**
     * Out-of-core hot-list cache; null when no budget is set. Read
     * with atomic_load so setMemoryBudget() can swap it under
     * concurrent searches (in-flight scans keep their shared_ptr).
     */
    std::shared_ptr<HotListCache> hot_cache_;
};

} // namespace juno

#endif // JUNO_BASELINE_IVFPQ_INDEX_H
