#include "baseline/ivfpq_index.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

IvfPqIndex::IvfPqIndex(Metric metric, FloatMatrixView points,
                       const Params &params)
    : metric_(metric), num_points_(points.rows()), dim_(points.cols()),
      nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");

    // Offline step 1: coarse clustering + inverted lists.
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points, ivf_params);

    // Offline steps 2-3: train the PQ codebook on residuals against
    // the assigned coarse centroid (paper Fig. 1 top).
    FloatMatrix residuals(points.rows(), points.cols());
    for (idx_t p = 0; p < points.rows(); ++p)
        ivf_.residual(points.row(p), ivf_.label(p), residuals.row(p));

    PQParams pq_params;
    pq_params.num_subspaces = params.pq_subspaces;
    pq_params.entries = params.pq_entries;
    pq_params.seed = params.seed + 1;
    pq_params.max_training_points = params.max_training_points;
    pq_.train(residuals.view(), pq_params);

    // Offline step 4: encode all points.
    codes_ = pq_.encode(residuals.view());

    if (params.use_hnsw_router) {
        router_ = std::make_unique<Hnsw>();
        Hnsw::Params hp;
        hp.m = params.hnsw_m;
        hp.seed = params.seed + 2;
        router_->build(metric_, ivf_.centroids().view(), hp);
        hnsw_ef_search_ = params.hnsw_ef_search;
    }
}

std::string
IvfPqIndex::name() const
{
    std::string n = "IVF" + std::to_string(ivf_.numClusters());
    if (router_)
        n += "_HNSW";
    n += ",PQ" + std::to_string(pq_.numSubspaces());
    return n;
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)));
    }
    return ivf_.probe(metric_, query, nprobs);
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs,
                  VisitedSet &visited) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)),
                               visited);
    }
    return ivf_.probe(metric_, query, nprobs);
}

void
IvfPqIndex::buildLut(const float *query, cluster_t cluster, FloatMatrix &lut,
                     float &base, std::vector<float> &residual) const
{
    if (metric_ == Metric::kL2) {
        // L2 ADC on residuals: dist ~= sum_s L2(residual_s, entry_s).
        residual.resize(static_cast<std::size_t>(dim_));
        ivf_.residual(query, cluster, residual.data());
        pq_.computeLut(Metric::kL2, residual.data(), lut);
        base = 0.0f;
    } else {
        // IP decomposes as IP(q, c) + IP(q, residual-decode); the LUT
        // is built on the raw query, the centroid term is the base.
        pq_.computeLut(Metric::kInnerProduct, query, lut);
        base = innerProduct(query, ivf_.centroid(cluster), dim_);
    }
}

void
IvfPqIndex::scanList(const std::vector<idx_t> &list, const FloatMatrix &lut,
                     float base, std::vector<float> &scores,
                     TopK &top) const
{
    if (list.empty())
        return;
    if (scores.size() < list.size())
        scores.resize(list.size());
    simd::adcScan(lut.data(), lut.cols(), pq_.numSubspaces(),
                  codes_.codes.data(),
                  static_cast<std::size_t>(codes_.num_subspaces),
                  list.data(), list.size(), base, scores.data());
    for (std::size_t i = 0; i < list.size(); ++i)
        top.push(list[i], scores[i]);
}

void
IvfPqIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);

        {
            ScopedStageTimer t(ctx.timers(), "filter");
            ctx.probes = probe(q, nprobs_, ctx.visited);
        }

        TopK top(std::min(chunk.k, num_points_), metric_);
        for (const auto &pr : ctx.probes) {
            const cluster_t c = static_cast<cluster_t>(pr.id);
            float base = 0.0f;
            {
                ScopedStageTimer t(ctx.timers(), "lut");
                buildLut(q, c, ctx.lut, base, ctx.residual);
            }
            ScopedStageTimer t(ctx.timers(), "scan");
            scanList(ivf_.list(c), ctx.lut, base, ctx.scores, top);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

std::vector<Neighbor>
IvfPqIndex::searchOneRecordingUsage(
    const float *query, idx_t k,
    std::vector<std::vector<std::uint32_t>> *entry_usage) const
{
    const int subspaces = pq_.numSubspaces();
    if (entry_usage != nullptr) {
        entry_usage->assign(
            static_cast<std::size_t>(subspaces),
            std::vector<std::uint32_t>(
                static_cast<std::size_t>(pq_.entries()), 0));
    }

    auto probes = probe(query, nprobs_);
    TopK top(std::min(k, num_points_), metric_);
    FloatMatrix lut;
    std::vector<float> residual;
    std::vector<float> scores;
    for (const auto &pr : probes) {
        const cluster_t c = static_cast<cluster_t>(pr.id);
        float base = 0.0f;
        buildLut(query, c, lut, base, residual);
        scanList(ivf_.list(c), lut, base, scores, top);
    }
    auto result = top.take();
    if (entry_usage != nullptr) {
        // Count, per subspace, how often each entry encodes a returned
        // neighbour (the Fig. 3(b) heatmap row for this query).
        for (const auto &nb : result) {
            const entry_t *pc = codes_.row(nb.id);
            for (int s = 0; s < subspaces; ++s)
                ++(*entry_usage)[static_cast<std::size_t>(s)][pc[s]];
        }
    }
    return result;
}

} // namespace juno
