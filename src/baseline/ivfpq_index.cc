#include "baseline/ivfpq_index.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/distance.h"
#include "common/logging.h"
#include "common/mmap_blob.h"
#include "common/simd.h"
#include "registry/index_spec.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

IvfPqIndex::IvfPqIndex(Metric metric, FloatMatrixView points,
                       const Params &params)
    : metric_(metric), num_points_(points.rows()), dim_(points.cols()),
      params_(params), nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");

    // Offline step 1: coarse clustering + inverted lists.
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points, ivf_params);

    // Offline steps 2-3: train the PQ codebook on residuals against
    // the assigned coarse centroid (paper Fig. 1 top).
    FloatMatrix residuals(points.rows(), points.cols());
    for (idx_t p = 0; p < points.rows(); ++p)
        ivf_.residual(points.row(p), ivf_.label(p), residuals.row(p));

    PQParams pq_params;
    pq_params.num_subspaces = params.pq_subspaces;
    pq_params.entries = params.pq_entries;
    pq_params.seed = params.seed + 1;
    pq_params.max_training_points = params.max_training_points;
    pq_.train(residuals.view(), pq_params);

    // Offline step 4: encode all points, then re-materialise each
    // inverted list's codes in the interleaved fast-scan layout so the
    // online scan streams instead of gathering rows through ids.
    codes_ = pq_.encode(residuals.view());
    if (params.use_interleaved)
        interleaved_.build(ivf_.lists(), codes_, pq_.entries());

    if (params.use_hnsw_router) {
        router_ = std::make_unique<Hnsw>();
        Hnsw::Params hp;
        hp.m = params.hnsw_m;
        hp.seed = params.seed + 2;
        router_->build(metric_, ivf_.centroids().view(), hp);
        hnsw_ef_search_ = params.hnsw_ef_search;
    }
}

std::string
IvfPqIndex::name() const
{
    std::string n = "IVF" + std::to_string(ivf_.numClusters());
    if (router_)
        n += "_HNSW";
    n += ",PQ" + std::to_string(pq_.numSubspaces());
    return n;
}

std::string
IvfPqIndex::spec() const
{
    IndexSpec spec;
    spec.type = "ivfpq";
    spec.setInt("nlist", params_.clusters);
    spec.setInt("m", params_.pq_subspaces);
    spec.setInt("entries", params_.pq_entries);
    spec.setInt("nprobe", nprobs_);
    spec.setBool("hnsw", router_ != nullptr);
    spec.setInt("hnsw_m", params_.hnsw_m);
    spec.setInt("ef", hnsw_ef_search_);
    spec.setInt("seed", static_cast<long>(params_.seed));
    spec.setInt("train", params_.max_training_points);
    spec.setBool("interleaved", params_.use_interleaved);
    return spec.toString();
}

void
IvfPqIndex::saveSections(SnapshotWriter &writer) const
{
    Writer &meta = writer.section("meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    writeMetricTag(meta, metric_);
    meta.writePod<std::int64_t>(num_points_);
    meta.writePod<std::int64_t>(dim_);
    meta.writePod<std::int64_t>(nprobs_);
    meta.writePod<std::int32_t>(params_.clusters);
    meta.writePod<std::int32_t>(params_.pq_subspaces);
    meta.writePod<std::int32_t>(params_.pq_entries);
    meta.writePod<std::int32_t>(params_.hnsw_m);
    meta.writePod<std::int32_t>(hnsw_ef_search_);
    meta.writePod<std::uint64_t>(params_.seed);
    meta.writePod<std::int64_t>(params_.max_training_points);
    meta.writePod<std::uint8_t>(router_ != nullptr ? 1 : 0);
    meta.writePod<std::uint8_t>(interleaved_.built() ? 1 : 0);
    meta.writePod<std::int64_t>(codes_.num_points);
    meta.writePod<std::int32_t>(codes_.num_subspaces);

    ivf_.save(writer.section("ivf"));
    pq_.save(writer.section("pq"));
    writer.addBlob("codes", codes_.data(),
                   codes_.count() * sizeof(entry_t));
    if (interleaved_.built())
        interleaved_.save(writer, "ileav.");
    if (router_ != nullptr)
        router_->saveGraph(writer, "router.");
}

std::unique_ptr<IvfPqIndex>
IvfPqIndex::open(SnapshotReader &reader)
{
    const std::string what = reader.path() + " [ivfpq]";
    auto meta = reader.stream("meta");
    checkFormatVersion(meta, kFormatVersion, what);
    std::unique_ptr<IvfPqIndex> index(new IvfPqIndex());
    index->metric_ = readMetricTag(meta);
    index->num_points_ = meta.readPod<std::int64_t>();
    index->dim_ = meta.readPod<std::int64_t>();
    index->nprobs_ = meta.readPod<std::int64_t>();
    index->params_.clusters = meta.readPod<std::int32_t>();
    index->params_.pq_subspaces = meta.readPod<std::int32_t>();
    index->params_.pq_entries = meta.readPod<std::int32_t>();
    index->params_.hnsw_m = meta.readPod<std::int32_t>();
    index->hnsw_ef_search_ = meta.readPod<std::int32_t>();
    index->params_.seed = meta.readPod<std::uint64_t>();
    index->params_.max_training_points = meta.readPod<std::int64_t>();
    const bool has_router = meta.readPod<std::uint8_t>() != 0;
    const bool has_interleaved = meta.readPod<std::uint8_t>() != 0;
    index->codes_.num_points = meta.readPod<std::int64_t>();
    index->codes_.num_subspaces = meta.readPod<std::int32_t>();
    JUNO_REQUIRE(index->num_points_ > 0 && index->dim_ > 0 &&
                     index->nprobs_ > 0 &&
                     index->codes_.num_points == index->num_points_ &&
                     index->codes_.num_subspaces > 0 &&
                     index->codes_.num_subspaces ==
                         index->params_.pq_subspaces,
                 what << ": corrupt index header");
    // Overflow guard: a forged point count whose code-plane product
    // wraps to a tiny value must not match a tiny blob below.
    JUNO_REQUIRE(static_cast<std::uint64_t>(index->codes_.num_points) <=
                     kMaxSerializedPayloadBytes / sizeof(entry_t) /
                         static_cast<std::uint64_t>(
                             index->codes_.num_subspaces),
                 what << ": implausible code plane (corrupt file)");
    index->params_.nprobs = index->nprobs_;
    index->params_.use_hnsw_router = has_router;
    index->params_.use_interleaved = has_interleaved;
    index->params_.hnsw_ef_search = index->hnsw_ef_search_;

    auto ivf_stream = reader.stream("ivf");
    index->ivf_.load(ivf_stream);
    auto pq_stream = reader.stream("pq");
    index->pq_.load(pq_stream);
    JUNO_REQUIRE(index->pq_.dim() == index->dim_ &&
                     index->pq_.numSubspaces() ==
                         index->codes_.num_subspaces,
                 what << ": quantizer/codes shape mismatch");

    const auto codes_blob = reader.blob("codes");
    const auto codes_count = index->codes_.count();
    if (codes_blob.bytes != codes_count * sizeof(entry_t))
        fatal(what + ": PQ code payload size mismatch (corrupt file)");
    index->codes_.adoptView(
        reinterpret_cast<const entry_t *>(codes_blob.data),
        codes_blob.keepalive);

    if (has_interleaved) {
        index->interleaved_.load(reader, "ileav.");
        JUNO_REQUIRE(index->interleaved_.numLists() ==
                             index->ivf_.numClusters() &&
                         index->interleaved_.subspaces() ==
                             index->codes_.num_subspaces,
                     what << ": interleaved layout shape mismatch");
    }
    if (has_router) {
        index->router_ = std::make_unique<Hnsw>();
        index->router_->loadGraph(reader, "router.");
        JUNO_REQUIRE(index->router_->size() == index->ivf_.numClusters(),
                     what << ": router/centroid count mismatch");
    }
    return index;
}

bool
IvfPqIndex::setMemoryBudget(std::int64_t bytes)
{
    JUNO_REQUIRE(bytes >= 0, "negative memory budget");
    std::shared_ptr<HotListCache> next;
    if (bytes > 0)
        next = std::make_shared<HotListCache>(
            static_cast<std::size_t>(bytes), ivf_.numClusters());
    std::atomic_store(&hot_cache_, next);
    return true;
}

std::shared_ptr<const HotListCache>
IvfPqIndex::hotListCache() const
{
    return std::atomic_load(&hot_cache_);
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)));
    }
    return ivf_.probe(metric_, query, nprobs);
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs,
                  VisitedSet &visited) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)),
                               visited);
    }
    return ivf_.probe(metric_, query, nprobs);
}

void
IvfPqIndex::buildLut(const float *query, cluster_t cluster, FloatMatrix &lut,
                     float &base, std::vector<float> &residual) const
{
    if (metric_ == Metric::kL2) {
        // L2 ADC on residuals: dist ~= sum_s L2(residual_s, entry_s).
        residual.resize(static_cast<std::size_t>(dim_));
        ivf_.residual(query, cluster, residual.data());
        pq_.computeLut(Metric::kL2, residual.data(), lut);
        base = 0.0f;
    } else {
        // IP decomposes as IP(q, c) + IP(q, residual-decode); the LUT
        // is built on the raw query, the centroid term is the base.
        pq_.computeLut(Metric::kInnerProduct, query, lut);
        base = innerProduct(query, ivf_.centroid(cluster), dim_);
    }
}

void
IvfPqIndex::orderProbesResidentFirst(const std::vector<Neighbor> &probes,
                                     HotListCache &cache,
                                     ScanScratch &scratch) const
{
    auto &order = scratch.order;
    auto &cold = scratch.cold;
    auto &deferred = scratch.deferred;
    order.clear();
    cold.clear();
    deferred.clear();
    // Pass 1: pinned lists scan first, straight out of heap copies.
    for (const auto &pr : probes) {
        const cluster_t c = static_cast<cluster_t>(pr.id);
        if (auto entry = cache.find(c))
            order.push_back({c, std::move(entry)});
        else
            cold.push_back(c);
    }
    // Pass 2: split the misses. A miss whose pages the OS still holds
    // scans next (fault-free anyway); a truly cold miss gets its
    // WILLNEED issued *now* and scans last, so its page-ins proceed
    // while the resident scans run.
    const bool mapped = interleaved_.planesMapped();
    for (const cluster_t c : cold) {
        // One-page mincore probe: a list's extent pages in and out
        // together (sequential access), so the first page is a cheap
        // proxy for the whole extent. Unknown (-1) counts as cold.
        const bool resident =
            !mapped ||
            memResidentFraction(interleaved_.listBlocks(c), 1) >= 1.0;
        if (resident) {
            order.push_back({c, nullptr});
            continue;
        }
        memAdvise(interleaved_.listBlocks(c),
                  interleaved_.listBlocksBytes(c), MemAdvice::kWillNeed);
        if (interleaved_.packed4())
            memAdvise(interleaved_.listPacked(c),
                      interleaved_.listPackedBytes(c),
                      MemAdvice::kWillNeed);
        deferred.push_back(c);
    }
    for (const cluster_t c : deferred)
        order.push_back({c, nullptr});
}

void
IvfPqIndex::scanList(cluster_t cluster, const FloatMatrix &lut, float base,
                     ScanScratch &scratch, TopK &top,
                     const CachedList *pinned, HotListCache *cache,
                     float tighten) const
{
    const std::vector<idx_t> &list = ivf_.list(cluster);
    const std::size_t n = list.size();
    if (n == 0)
        return;
    const int subspaces = pq_.numSubspaces();

    // A cold interleaved scan offers its payload for admission; the
    // cache copies it out of the mapping only when the list has
    // earned residency (and the budget can take it).
    if (cache != nullptr && pinned == nullptr && interleaved_.built())
        cache->offer(cluster, interleaved_.listBlocks(cluster),
                     interleaved_.listBlocksBytes(cluster),
                     interleaved_.packed4()
                         ? interleaved_.listPacked(cluster)
                         : nullptr,
                     interleaved_.listPackedBytes(cluster));

    if (interleaved_.built() && interleaved_.packed4() &&
        simd::level() != simd::Level::kScalar) {
        // 4-bit fast scan: quantise the float LUT once per (query,
        // probe), scan the nibble plane with in-register shuffles,
        // then reconstruct float scores only for blocks whose best
        // quantised sum can still beat the current heap minimum.
        const std::uint8_t *packed =
            pinned != nullptr ? pinned->secondaryAs<std::uint8_t>()
                              : interleaved_.listPacked(cluster);
        quantizeLut(lut, pq_.entries(), scratch.qlut);
        if (scratch.qsums.size() < n)
            scratch.qsums.resize(n);
        simd::fastScanPq4(packed, subspaces, scratch.qlut.table.data(),
                          n, scratch.qsums.data());
        const float scale = scratch.qlut.scale;
        const float offset = base + scratch.qlut.bias;
        const std::uint16_t *qs = scratch.qsums.data();
        const bool lower_better = metric_ == Metric::kL2;
        for (std::size_t b = 0; b < n; b += 32) {
            const std::size_t count = std::min<std::size_t>(32, n - b);
            if (top.full()) {
                // The reconstruction is monotone in the quantised sum,
                // so the block's min (L2) / max (IP) sum bounds every
                // score in it exactly.
                std::uint16_t best = qs[b];
                if (lower_better) {
                    for (std::size_t j = 1; j < count; ++j)
                        best = std::min(best, qs[b + j]);
                } else {
                    for (std::size_t j = 1; j < count; ++j)
                        best = std::max(best, qs[b + j]);
                }
                float bound =
                    offset + scale * static_cast<float>(best);
                if (tighten > 0.0f) {
                    // Degraded serving: pretend the block's bound is
                    // worse by a margin proportional to the heap
                    // threshold, discarding near-threshold blocks a
                    // full-quality scan would rescore. tighten == 0
                    // keeps the exact rule (bitwise parity).
                    const float margin =
                        tighten * std::fabs(top.worstAccepted());
                    bound = lower_better ? bound + margin
                                         : bound - margin;
                }
                // Skip only when strictly worse: a tied bound must
                // still reach TopK::push, whose id tie-break keeps
                // results independent of block scan order.
                if (isBetter(metric_, top.worstAccepted(), bound))
                    continue;
            }
            for (std::size_t j = 0; j < count; ++j)
                top.push(list[b + j],
                         offset +
                             scale * static_cast<float>(qs[b + j]));
        }
        return;
    }

    if (scratch.scores.size() < n)
        scratch.scores.resize(n);
    if (interleaved_.built()) {
        // Streaming float scan over the interleaved blocks; bitwise
        // identical to the legacy gather (same per-point accumulation
        // order), minus the per-point random code-row load.
        const entry_t *blocks =
            pinned != nullptr ? pinned->primaryAs<entry_t>()
                              : interleaved_.listBlocks(cluster);
        simd::adcScanInterleaved(lut.data(), lut.cols(), subspaces,
                                 blocks, n, base,
                                 scratch.scores.data());
    } else {
        simd::adcScan(lut.data(), lut.cols(), subspaces,
                      codes_.data(),
                      static_cast<std::size_t>(codes_.num_subspaces),
                      list.data(), n, base, scratch.scores.data());
    }
    for (std::size_t i = 0; i < n; ++i)
        top.push(list[i], scratch.scores[i]);
}

void
IvfPqIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    // Per-worker scan scratch (quantised LUT + qsum buffers) persists
    // across queries and batches alongside the other context buffers.
    ScanScratch &scan = ctx.scratch<ScanScratch>(
        [] { return std::make_unique<ScanScratch>(); });
    // IO-aware probing engages only with a cache attached and the
    // interleaved layout built (the legacy gather has no per-list
    // payload to pin or prefetch). The shared_ptr keeps the cache
    // alive across the chunk even if the budget changes mid-batch.
    auto cache_sp = std::atomic_load(&hot_cache_);
    HotListCache *cache = cache_sp != nullptr && cache_sp->enabled() &&
                                  interleaved_.built()
                              ? cache_sp.get()
                              : nullptr;
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);

        {
            StageScope t(ctx, Stage::kFilter);
            // Degraded batches shrink the probe budget at the source;
            // scale 1.0 probes exactly nprobs_ clusters.
            ctx.probes =
                probe(q, ctx.scaledNprobes(nprobs_), ctx.visited);
            if (cache != nullptr) {
                orderProbesResidentFirst(ctx.probes, *cache, scan);
            } else {
                scan.order.clear();
                for (const auto &pr : ctx.probes)
                    scan.order.push_back(
                        {static_cast<cluster_t>(pr.id), nullptr});
            }
        }

        // Traced batches record the IO picture of each query's probe
        // set: pinned-list hits vs misses, and how many misses were
        // mincore-cold (pages not resident — the WILLNEED-deferred
        // tail). Off the traced path this is a single pointer test.
        if (ctx.trace != nullptr && cache != nullptr) {
            const auto misses = static_cast<double>(scan.cold.size());
            ctx.trace->instant(
                "hot_cache", "hits",
                static_cast<double>(ctx.probes.size()) - misses, "misses",
                misses);
            ctx.trace->instant("cold_probes", "mincore_cold",
                               static_cast<double>(scan.deferred.size()));
        }

        TopK top(std::min(chunk.k, num_points_), metric_);
        const float tighten = static_cast<float>(ctx.scan_tighten);
        const std::size_t n_order = scan.order.size();
        for (std::size_t p = 0; p < n_order; ++p) {
            // Cooperative deadline between probe lists: a cut-off
            // query keeps the valid top-k of the lists it finished
            // (the first list always runs) and is flagged degraded.
            if (p > 0 && ctx.pastDeadline()) {
                ctx.markDegraded(qi);
                break;
            }
            const auto &op = scan.order[p];
            float base = 0.0f;
            {
                StageScope t(ctx, Stage::kLut);
                buildLut(q, op.cluster, ctx.lut, base, ctx.residual);
            }
            StageScope t(ctx, Stage::kScan);
            scanList(op.cluster, ctx.lut, base, scan, top,
                     op.entry.get(), cache, tighten);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

std::vector<Neighbor>
IvfPqIndex::searchOneRecordingUsage(
    const float *query, idx_t k,
    std::vector<std::vector<std::uint32_t>> *entry_usage) const
{
    const int subspaces = pq_.numSubspaces();
    if (entry_usage != nullptr) {
        entry_usage->assign(
            static_cast<std::size_t>(subspaces),
            std::vector<std::uint32_t>(
                static_cast<std::size_t>(pq_.entries()), 0));
    }

    auto probes = probe(query, nprobs_);
    TopK top(std::min(k, num_points_), metric_);
    FloatMatrix lut;
    std::vector<float> residual;
    ScanScratch scratch;
    for (const auto &pr : probes) {
        const cluster_t c = static_cast<cluster_t>(pr.id);
        float base = 0.0f;
        buildLut(query, c, lut, base, residual);
        scanList(c, lut, base, scratch, top);
    }
    auto result = top.take();
    if (entry_usage != nullptr) {
        // Count, per subspace, how often each entry encodes a returned
        // neighbour (the Fig. 3(b) heatmap row for this query).
        for (const auto &nb : result) {
            const entry_t *pc = codes_.row(nb.id);
            for (int s = 0; s < subspaces; ++s)
                ++(*entry_usage)[static_cast<std::size_t>(s)][pc[s]];
        }
    }
    return result;
}

} // namespace juno
