#include "baseline/ivfpq_index.h"

#include <algorithm>
#include <memory>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

IvfPqIndex::IvfPqIndex(Metric metric, FloatMatrixView points,
                       const Params &params)
    : metric_(metric), num_points_(points.rows()), dim_(points.cols()),
      nprobs_(params.nprobs)
{
    JUNO_REQUIRE(params.nprobs > 0, "nprobs must be positive");

    // Offline step 1: coarse clustering + inverted lists.
    InvertedFileIndex::Params ivf_params;
    ivf_params.clusters = params.clusters;
    ivf_params.seed = params.seed;
    ivf_params.max_training_points = params.max_training_points;
    ivf_.build(points, ivf_params);

    // Offline steps 2-3: train the PQ codebook on residuals against
    // the assigned coarse centroid (paper Fig. 1 top).
    FloatMatrix residuals(points.rows(), points.cols());
    for (idx_t p = 0; p < points.rows(); ++p)
        ivf_.residual(points.row(p), ivf_.label(p), residuals.row(p));

    PQParams pq_params;
    pq_params.num_subspaces = params.pq_subspaces;
    pq_params.entries = params.pq_entries;
    pq_params.seed = params.seed + 1;
    pq_params.max_training_points = params.max_training_points;
    pq_.train(residuals.view(), pq_params);

    // Offline step 4: encode all points, then re-materialise each
    // inverted list's codes in the interleaved fast-scan layout so the
    // online scan streams instead of gathering rows through ids.
    codes_ = pq_.encode(residuals.view());
    if (params.use_interleaved)
        interleaved_.build(ivf_.lists(), codes_, pq_.entries());

    if (params.use_hnsw_router) {
        router_ = std::make_unique<Hnsw>();
        Hnsw::Params hp;
        hp.m = params.hnsw_m;
        hp.seed = params.seed + 2;
        router_->build(metric_, ivf_.centroids().view(), hp);
        hnsw_ef_search_ = params.hnsw_ef_search;
    }
}

std::string
IvfPqIndex::name() const
{
    std::string n = "IVF" + std::to_string(ivf_.numClusters());
    if (router_)
        n += "_HNSW";
    n += ",PQ" + std::to_string(pq_.numSubspaces());
    return n;
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)));
    }
    return ivf_.probe(metric_, query, nprobs);
}

std::vector<Neighbor>
IvfPqIndex::probe(const float *query, idx_t nprobs,
                  VisitedSet &visited) const
{
    if (router_) {
        return router_->search(query, std::min(nprobs, ivf_.numClusters()),
                               std::max<int>(hnsw_ef_search_,
                                             static_cast<int>(nprobs)),
                               visited);
    }
    return ivf_.probe(metric_, query, nprobs);
}

void
IvfPqIndex::buildLut(const float *query, cluster_t cluster, FloatMatrix &lut,
                     float &base, std::vector<float> &residual) const
{
    if (metric_ == Metric::kL2) {
        // L2 ADC on residuals: dist ~= sum_s L2(residual_s, entry_s).
        residual.resize(static_cast<std::size_t>(dim_));
        ivf_.residual(query, cluster, residual.data());
        pq_.computeLut(Metric::kL2, residual.data(), lut);
        base = 0.0f;
    } else {
        // IP decomposes as IP(q, c) + IP(q, residual-decode); the LUT
        // is built on the raw query, the centroid term is the base.
        pq_.computeLut(Metric::kInnerProduct, query, lut);
        base = innerProduct(query, ivf_.centroid(cluster), dim_);
    }
}

void
IvfPqIndex::scanList(cluster_t cluster, const FloatMatrix &lut, float base,
                     ScanScratch &scratch, TopK &top) const
{
    const std::vector<idx_t> &list = ivf_.list(cluster);
    const std::size_t n = list.size();
    if (n == 0)
        return;
    const int subspaces = pq_.numSubspaces();

    if (interleaved_.built() && interleaved_.packed4() &&
        simd::level() != simd::Level::kScalar) {
        // 4-bit fast scan: quantise the float LUT once per (query,
        // probe), scan the nibble plane with in-register shuffles,
        // then reconstruct float scores only for blocks whose best
        // quantised sum can still beat the current heap minimum.
        quantizeLut(lut, pq_.entries(), scratch.qlut);
        if (scratch.qsums.size() < n)
            scratch.qsums.resize(n);
        simd::fastScanPq4(interleaved_.listPacked(cluster), subspaces,
                          scratch.qlut.table.data(), n,
                          scratch.qsums.data());
        const float scale = scratch.qlut.scale;
        const float offset = base + scratch.qlut.bias;
        const std::uint16_t *qs = scratch.qsums.data();
        const bool lower_better = metric_ == Metric::kL2;
        for (std::size_t b = 0; b < n; b += 32) {
            const std::size_t count = std::min<std::size_t>(32, n - b);
            if (top.full()) {
                // The reconstruction is monotone in the quantised sum,
                // so the block's min (L2) / max (IP) sum bounds every
                // score in it exactly.
                std::uint16_t best = qs[b];
                if (lower_better) {
                    for (std::size_t j = 1; j < count; ++j)
                        best = std::min(best, qs[b + j]);
                } else {
                    for (std::size_t j = 1; j < count; ++j)
                        best = std::max(best, qs[b + j]);
                }
                const float bound =
                    offset + scale * static_cast<float>(best);
                // Skip only when strictly worse: a tied bound must
                // still reach TopK::push, whose id tie-break keeps
                // results independent of block scan order.
                if (isBetter(metric_, top.worstAccepted(), bound))
                    continue;
            }
            for (std::size_t j = 0; j < count; ++j)
                top.push(list[b + j],
                         offset +
                             scale * static_cast<float>(qs[b + j]));
        }
        return;
    }

    if (scratch.scores.size() < n)
        scratch.scores.resize(n);
    if (interleaved_.built()) {
        // Streaming float scan over the interleaved blocks; bitwise
        // identical to the legacy gather (same per-point accumulation
        // order), minus the per-point random code-row load.
        simd::adcScanInterleaved(lut.data(), lut.cols(), subspaces,
                                 interleaved_.listBlocks(cluster), n,
                                 base, scratch.scores.data());
    } else {
        simd::adcScan(lut.data(), lut.cols(), subspaces,
                      codes_.codes.data(),
                      static_cast<std::size_t>(codes_.num_subspaces),
                      list.data(), n, base, scratch.scores.data());
    }
    for (std::size_t i = 0; i < n; ++i)
        top.push(list[i], scratch.scores[i]);
}

void
IvfPqIndex::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    // Per-worker scan scratch (quantised LUT + qsum buffers) persists
    // across queries and batches alongside the other context buffers.
    ScanScratch &scan = ctx.scratch<ScanScratch>(
        [] { return std::make_unique<ScanScratch>(); });
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi) {
        const float *q = chunk.queries.row(qi);

        {
            ScopedStageTimer t(ctx.timers(), "filter");
            ctx.probes = probe(q, nprobs_, ctx.visited);
        }

        TopK top(std::min(chunk.k, num_points_), metric_);
        for (const auto &pr : ctx.probes) {
            const cluster_t c = static_cast<cluster_t>(pr.id);
            float base = 0.0f;
            {
                ScopedStageTimer t(ctx.timers(), "lut");
                buildLut(q, c, ctx.lut, base, ctx.residual);
            }
            ScopedStageTimer t(ctx.timers(), "scan");
            scanList(c, ctx.lut, base, scan, top);
        }
        (*chunk.results)[static_cast<std::size_t>(qi)] = top.take();
    }
}

std::vector<Neighbor>
IvfPqIndex::searchOneRecordingUsage(
    const float *query, idx_t k,
    std::vector<std::vector<std::uint32_t>> *entry_usage) const
{
    const int subspaces = pq_.numSubspaces();
    if (entry_usage != nullptr) {
        entry_usage->assign(
            static_cast<std::size_t>(subspaces),
            std::vector<std::uint32_t>(
                static_cast<std::size_t>(pq_.entries()), 0));
    }

    auto probes = probe(query, nprobs_);
    TopK top(std::min(k, num_points_), metric_);
    FloatMatrix lut;
    std::vector<float> residual;
    ScanScratch scratch;
    for (const auto &pr : probes) {
        const cluster_t c = static_cast<cluster_t>(pr.id);
        float base = 0.0f;
        buildLut(query, c, lut, base, residual);
        scanList(c, lut, base, scratch, top);
    }
    auto result = top.take();
    if (entry_usage != nullptr) {
        // Count, per subspace, how often each entry encodes a returned
        // neighbour (the Fig. 3(b) heatmap row for this query).
        for (const auto &nb : result) {
            const entry_t *pc = codes_.row(nb.id);
            for (int s = 0; s < subspaces; ++s)
                ++(*entry_usage)[static_cast<std::size_t>(s)][pc[s]];
        }
    }
    return result;
}

} // namespace juno
