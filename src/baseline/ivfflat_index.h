/**
 * @file
 * IVF-Flat: coarse filtering plus exact distances within the probed
 * clusters. Sits between Flat and IVFPQ on the accuracy/speed curve
 * and isolates the effect of quantization error in experiments.
 *
 * The filtering stage is batched across the search chunk: one GEMM of
 * the chunk's queries against the (transposed) centroid table scores
 * every (query, centroid) pair through the register-blocked tile, so
 * centroid loads amortise across queries the way the paper's batch
 * dispatch amortises them across Tensor-core tiles (Sec. 5.3). A
 * single-query chunk runs the same kernel at tile under-occupancy —
 * that gap is exactly what the serving layer's micro-batcher exists
 * to close. L2 probe scores use the norm identity
 * |q - c|^2 = |q|^2 + |c|^2 - 2<q, c> over the GEMM's inner products
 * (centroid norms precomputed at build).
 */
#ifndef JUNO_BASELINE_IVFFLAT_INDEX_H
#define JUNO_BASELINE_IVFFLAT_INDEX_H

#include <memory>
#include <vector>

#include "baseline/index.h"
#include "common/mmap_blob.h"
#include "ivf/ivf.h"
#include "serve/hot_list_cache.h"

namespace juno {

class SnapshotReader;

/** IVF with exact in-cluster scan. */
class IvfFlatIndex : public AnnIndex {
  public:
    struct Params {
        int clusters = 256;
        idx_t nprobs = 8;
        std::uint64_t seed = 31;
        /** k-means iteration cap (see cluster/kmeans.h). */
        int max_iters = 20;
        /** Training subsample cap; 0 trains on every point. */
        idx_t max_training_points = 0;
    };

    IvfFlatIndex(Metric metric, FloatMatrixView points, const Params &params);

    /**
     * Incremental-merge constructor: reuses pre-trained @p centroids
     * (typically the previous generation's) and only re-assigns
     * @p points to inverted lists — no k-means. The coarse
     * quantisation is approximate w.r.t. a fresh training run over
     * the same points (recall parity, not bitwise parity), but the
     * merge skips the dominant training cost.
     */
    IvfFlatIndex(Metric metric, FloatMatrixView points, const Params &params,
                 const FloatMatrix &centroids);

    /**
     * Loader for openIndex(): the trained IVF is restored (no
     * k-means re-run); the GEMM operands (transposed centroid table,
     * centroid norms) re-derive deterministically. In mmap mode the
     * point matrix views the mapping (zero-copy).
     */
    static std::unique_ptr<IvfFlatIndex> open(SnapshotReader &reader);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return points_.rows(); }
    idx_t dim() const override { return points_.cols(); }

    idx_t nprobs() const { return nprobs_; }
    void setNprobs(idx_t nprobs) { nprobs_ = nprobs; }
    const InvertedFileIndex &ivf() const { return ivf_; }

    /**
     * Attaches an admission-controlled HotListCache of @p bytes for
     * out-of-core serving; 0 detaches it. An inverted list's rows are
     * scattered through the mapped point matrix, so a per-list
     * madvise is impractical here — instead a hot list's rows are
     * re-materialised *contiguously* (in list order) in the pinned
     * copy, which both survives OS eviction and streams instead of
     * random-loading. Cold lists keep the legacy gather. Results are
     * bitwise identical either way (same kernel, same bytes, same
     * push order).
     */
    bool setMemoryBudget(std::int64_t bytes) override;
    std::shared_ptr<const HotListCache> hotListCache() const override;

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    /** For open(): members are filled by the loader. */
    IvfFlatIndex() = default;

    /** Derives the GEMM operands from the trained IVF (build + load). */
    void buildFilterOperands();

    /**
     * Stage A for the query block [begin, end) of @p chunk: fills
     * ctx.scores with the block's m x C probe-score matrix
     * (block-local row qi - begin). Scores are bitwise independent of
     * the block/chunk shape: every (query, centroid) pair goes
     * through the same GEMM accumulation chain whatever m is (queries
     * pad to the 4-row tile when the centroid count is not a multiple
     * of the tile width).
     */
    void filterBlock(const SearchChunk &chunk, idx_t begin, idx_t end,
                     SearchContext &ctx);

    Metric metric_ = Metric::kL2;
    Params params_;
    PinnedMatrix points_;
    InvertedFileIndex ivf_;
    idx_t nprobs_ = 8;
    /** Centroid table transposed to d x C (the GEMM's B operand). */
    FloatMatrix centroids_t_;
    /** |c|^2 per centroid (L2 probe scoring; empty under IP). */
    std::vector<float> centroid_norms_;
    /** Out-of-core hot-list cache; null when no budget is set. */
    std::shared_ptr<HotListCache> hot_cache_;
};

} // namespace juno

#endif // JUNO_BASELINE_IVFFLAT_INDEX_H
