/**
 * @file
 * IVF-Flat: coarse filtering plus exact distances within the probed
 * clusters. Sits between Flat and IVFPQ on the accuracy/speed curve
 * and isolates the effect of quantization error in experiments.
 */
#ifndef JUNO_BASELINE_IVFFLAT_INDEX_H
#define JUNO_BASELINE_IVFFLAT_INDEX_H

#include "baseline/index.h"
#include "ivf/ivf.h"

namespace juno {

/** IVF with exact in-cluster scan. */
class IvfFlatIndex : public AnnIndex {
  public:
    struct Params {
        int clusters = 256;
        idx_t nprobs = 8;
        std::uint64_t seed = 31;
    };

    IvfFlatIndex(Metric metric, FloatMatrixView points, const Params &params);

    std::string name() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return points_.rows(); }
    idx_t dim() const override { return points_.cols(); }

    idx_t nprobs() const { return nprobs_; }
    void setNprobs(idx_t nprobs) { nprobs_ = nprobs; }
    const InvertedFileIndex &ivf() const { return ivf_; }

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;

  private:
    Metric metric_;
    FloatMatrix points_;
    InvertedFileIndex ivf_;
    idx_t nprobs_;
};

} // namespace juno

#endif // JUNO_BASELINE_IVFFLAT_INDEX_H
