/**
 * @file
 * Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018).
 *
 * The paper's strongest baseline configuration is IVFx_HNSWy,PQz: an
 * IVFPQ index whose coarse-centroid lookup is routed through an HNSW
 * graph instead of brute force (FAISS index_factory semantics). This
 * implementation supports that role (graph over the C centroids) and
 * doubles as a standalone graph index for tests.
 */
#ifndef JUNO_BASELINE_HNSW_H
#define JUNO_BASELINE_HNSW_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/index.h"
#include "common/matrix.h"
#include "common/mmap_blob.h"
#include "common/rng.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

class SnapshotReader;

/**
 * HNSW graph over a fixed point set. Also a full AnnIndex: batched
 * search beams with width efSearch() and reuses the context's
 * epoch-stamped visited set instead of allocating one per query.
 */
class Hnsw : public AnnIndex {
  public:
    struct Params {
        /** Max out-degree per node on layers > 0 (2M on layer 0). */
        int m = 16;
        /** Beam width during construction. */
        int ef_construction = 100;
        std::uint64_t seed = 97;
    };

    /**
     * Builds the graph over @p points (copied). @p metric governs both
     * construction and search ordering.
     */
    void build(Metric metric, FloatMatrixView points, const Params &params);

    bool built() const { return !layers_.empty(); }
    int maxLevel() const { return max_level_; }

    /** Loader for openIndex(): restores a standalone HNSW snapshot. */
    static std::unique_ptr<Hnsw> open(SnapshotReader &reader);

    /**
     * Writes the graph state (points, levels, adjacency) as sections
     * named @p prefix + {"meta", "graph", "points"}. The standalone
     * saveSections() uses an empty prefix; IVFPQ persists its centroid
     * router under "router." so both fit in one snapshot.
     */
    void saveGraph(SnapshotWriter &writer,
                   const std::string &prefix) const;

    /** Restores what saveGraph() wrote (replaces current state). */
    void loadGraph(SnapshotReader &reader, const std::string &prefix);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return points_.rows(); }
    idx_t dim() const override { return points_.cols(); }

    /** Beam width of the batched AnnIndex search path. */
    int efSearch() const { return ef_search_; }
    void setEfSearch(int ef) { ef_search_ = ef; }

    /** Batched search entry points (hidden otherwise by search() below). */
    using AnnIndex::search;

    /**
     * Beam search: returns the best-first top-@p k with beam width
     * @p ef (clamped up to k). Thread-safe on a built graph (uses its
     * own local scratch), so the IVFPQ router can call it from
     * concurrent search workers.
     */
    std::vector<Neighbor> search(const float *query, idx_t k, int ef) const;

    /**
     * Allocation-free variant against caller-owned visited scratch
     * (the IVFPQ router passes its worker context's set, one per
     * thread, so the batched filter stage never allocates per query).
     */
    std::vector<Neighbor>
    search(const float *query, idx_t k, int ef, VisitedSet &visited) const
    {
        return searchImpl(query, k, ef, visited);
    }

    /** Out-neighbours of @p node on @p level (for tests/inspection). */
    const std::vector<idx_t> &neighbors(int level, idx_t node) const;

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    /** Greedy descent to the closest node on a single level. */
    idx_t greedyDescend(const float *query, idx_t entry, int level) const;

    /** search() body against caller-owned visited scratch. */
    std::vector<Neighbor> searchImpl(const float *query, idx_t k, int ef,
                                     VisitedSet &visited) const;

    /** Beam search on one level. */
    std::vector<Neighbor> searchLayer(const float *query, idx_t entry,
                                      int ef, int level,
                                      VisitedSet &visited) const;

    /**
     * Diversity-aware neighbour selection (Algorithm 4 of the HNSW
     * paper): keeps a candidate only when it is closer to @p base than
     * to every already-kept neighbour; backfills remaining slots with
     * the closest skipped candidates.
     */
    std::vector<idx_t> selectHeuristic(
        idx_t base, const std::vector<Neighbor> &candidates, int m) const;

    /** Connects @p node on @p level to heuristically chosen neighbours. */
    void connect(idx_t node, int level,
                 const std::vector<Neighbor> &candidates, int m);

    float scoreOf(const float *query, idx_t node) const;

    Metric metric_ = Metric::kL2;
    PinnedMatrix points_;
    Params params_;
    int ef_search_ = 64;
    /** layers_[l][node] = adjacency list (empty if node absent). */
    std::vector<std::vector<std::vector<idx_t>>> layers_;
    std::vector<int> node_level_;
    idx_t entry_point_ = -1;
    int max_level_ = -1;
};

} // namespace juno

#endif // JUNO_BASELINE_HNSW_H
