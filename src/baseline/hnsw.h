/**
 * @file
 * Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018).
 *
 * The paper's strongest baseline configuration is IVFx_HNSWy,PQz: an
 * IVFPQ index whose coarse-centroid lookup is routed through an HNSW
 * graph instead of brute force (FAISS index_factory semantics). This
 * implementation supports that role (graph over the C centroids) and
 * doubles as a standalone graph index for tests.
 */
#ifndef JUNO_BASELINE_HNSW_H
#define JUNO_BASELINE_HNSW_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

/** HNSW graph over a fixed point set. */
class Hnsw {
  public:
    struct Params {
        /** Max out-degree per node on layers > 0 (2M on layer 0). */
        int m = 16;
        /** Beam width during construction. */
        int ef_construction = 100;
        std::uint64_t seed = 97;
    };

    /**
     * Builds the graph over @p points (copied). @p metric governs both
     * construction and search ordering.
     */
    void build(Metric metric, FloatMatrixView points, const Params &params);

    bool built() const { return !layers_.empty(); }
    idx_t size() const { return points_.rows(); }
    int maxLevel() const { return max_level_; }

    /**
     * Beam search: returns the best-first top-@p k with beam width
     * @p ef (clamped up to k).
     */
    std::vector<Neighbor> search(const float *query, idx_t k, int ef) const;

    /** Out-neighbours of @p node on @p level (for tests/inspection). */
    const std::vector<idx_t> &neighbors(int level, idx_t node) const;

  private:
    /** Greedy descent to the closest node on a single level. */
    idx_t greedyDescend(const float *query, idx_t entry, int level) const;

    /** Beam search on one level. */
    std::vector<Neighbor> searchLayer(const float *query, idx_t entry,
                                      int ef, int level) const;

    /**
     * Diversity-aware neighbour selection (Algorithm 4 of the HNSW
     * paper): keeps a candidate only when it is closer to @p base than
     * to every already-kept neighbour; backfills remaining slots with
     * the closest skipped candidates.
     */
    std::vector<idx_t> selectHeuristic(
        idx_t base, const std::vector<Neighbor> &candidates, int m) const;

    /** Connects @p node on @p level to heuristically chosen neighbours. */
    void connect(idx_t node, int level,
                 const std::vector<Neighbor> &candidates, int m);

    float scoreOf(const float *query, idx_t node) const;

    Metric metric_ = Metric::kL2;
    FloatMatrix points_;
    Params params_;
    /** layers_[l][node] = adjacency list (empty if node absent). */
    std::vector<std::vector<std::vector<idx_t>>> layers_;
    std::vector<int> node_level_;
    idx_t entry_point_ = -1;
    int max_level_ = -1;
};

} // namespace juno

#endif // JUNO_BASELINE_HNSW_H
