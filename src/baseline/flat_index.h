/**
 * @file
 * Exact brute-force index (FAISS "Flat"): the accuracy oracle and the
 * lossless-search fallback discussed in paper Sec. 6.5.
 */
#ifndef JUNO_BASELINE_FLAT_INDEX_H
#define JUNO_BASELINE_FLAT_INDEX_H

#include "baseline/index.h"

namespace juno {

/** Linear-scan exact nearest neighbour index. */
class FlatIndex : public AnnIndex {
  public:
    /** Copies @p points (N x D). */
    FlatIndex(Metric metric, FloatMatrixView points);

    std::string name() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return points_.rows(); }
    idx_t dim() const override { return points_.cols(); }

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;

  private:
    Metric metric_;
    FloatMatrix points_;
};

} // namespace juno

#endif // JUNO_BASELINE_FLAT_INDEX_H
