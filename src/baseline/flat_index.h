/**
 * @file
 * Exact brute-force index (FAISS "Flat"): the accuracy oracle and the
 * lossless-search fallback discussed in paper Sec. 6.5.
 */
#ifndef JUNO_BASELINE_FLAT_INDEX_H
#define JUNO_BASELINE_FLAT_INDEX_H

#include <memory>

#include "baseline/index.h"
#include "common/mmap_blob.h"

namespace juno {

class SnapshotReader;

/** Linear-scan exact nearest neighbour index. */
class FlatIndex : public AnnIndex {
  public:
    /** Copies @p points (N x D). */
    FlatIndex(Metric metric, FloatMatrixView points);

    /**
     * Loader for openIndex(): restores a snapshot written by save().
     * In mmap mode the point matrix views the mapping (zero-copy).
     */
    static std::unique_ptr<FlatIndex> open(SnapshotReader &reader);

    std::string name() const override;
    std::string spec() const override;
    Metric metric() const override { return metric_; }
    idx_t size() const override { return points_.rows(); }
    idx_t dim() const override { return points_.cols(); }

  protected:
    void searchChunk(const SearchChunk &chunk, SearchContext &ctx) override;
    void saveSections(SnapshotWriter &writer) const override;

  private:
    /** For open(): members are filled by the loader. */
    FlatIndex() = default;

    Metric metric_ = Metric::kL2;
    PinnedMatrix points_;
};

} // namespace juno

#endif // JUNO_BASELINE_FLAT_INDEX_H
