/**
 * @file
 * Abstract ANN index interface shared by the baselines and JUNO, so the
 * harness can sweep heterogeneous indexes through one code path.
 */
#ifndef JUNO_BASELINE_INDEX_H
#define JUNO_BASELINE_INDEX_H

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/timer.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

/** Retrieved results: one best-first Neighbor list per query. */
using SearchResults = std::vector<std::vector<Neighbor>>;

/** Common interface of every searchable index in this repository. */
class AnnIndex {
  public:
    virtual ~AnnIndex() = default;

    /** Human-readable configuration name (used in bench tables). */
    virtual std::string name() const = 0;

    /** Metric the index was built for. */
    virtual Metric metric() const = 0;

    /** Number of indexed points. */
    virtual idx_t size() const = 0;

    /**
     * Retrieves the top-@p k neighbours of every row of @p queries.
     * Implementations accumulate per-stage wall time into stageTimers()
     * so benches can report breakdowns.
     */
    virtual SearchResults search(FloatMatrixView queries, idx_t k) = 0;

    /** Per-stage timing ledger of all searches since the last reset. */
    const StageTimers &stageTimers() const { return timers_; }
    void resetStageTimers() { timers_.reset(); }

  protected:
    StageTimers timers_;
};

} // namespace juno

#endif // JUNO_BASELINE_INDEX_H
