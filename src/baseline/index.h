/**
 * @file
 * Abstract ANN index interface shared by the baselines and JUNO, so the
 * harness can sweep heterogeneous indexes through one code path.
 *
 * Searching is batched: the public non-virtual search(SearchRequest)
 * shards the query batch across a worker pool (engine/query_engine.h)
 * and delegates each shard to the protected searchChunk() virtual.
 * Implementations write into SearchContext-owned scratch instead of
 * allocating per query, and accumulate stage timings into the
 * context's private ledger (merged thread-safely after the batch).
 */
#ifndef JUNO_BASELINE_INDEX_H
#define JUNO_BASELINE_INDEX_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/timer.h"
#include "common/topk.h"
#include "common/types.h"
#include "engine/query_engine.h"
#include "engine/search_context.h"
#include "engine/search_request.h"

namespace juno {

class SnapshotWriter;
class HotListCache;

/** Common interface of every searchable index in this repository. */
class AnnIndex {
  public:
    virtual ~AnnIndex() = default;

    /** Human-readable configuration name (used in bench tables). */
    virtual std::string name() const = 0;

    /**
     * Canonical IndexSpec string (registry/index_spec.h) that rebuilds
     * an equivalent index over the same points:
     * buildIndex(metric, points, spec()) reproduces this configuration
     * bit-for-bit. Also the provenance record stored in snapshots.
     */
    virtual std::string spec() const;

    /**
     * Persists the trained index as a versioned snapshot (the one
     * on-disk container every index type shares; see
     * registry/snapshot.h). Reload with openIndex(path) — or with
     * SearchService's warm-start constructor to serve directly from
     * the file. Non-virtual template method: the container handling is
     * uniform, only saveSections() differs per type.
     */
    void save(const std::string &path) const;

    /** Metric the index was built for. */
    virtual Metric metric() const = 0;

    /** Number of indexed points. */
    virtual idx_t size() const = 0;

    /** Dimensionality of indexed points (queries must match). */
    virtual idx_t dim() const = 0;

    /**
     * Retrieves the top-k neighbours of every query row of @p request.
     * The batch is sharded across request.options.threads workers;
     * results are bitwise identical for every thread count. Per-stage
     * wall time accumulates into stageTimers() (unless the request
     * disables stats) so benches can report breakdowns.
     *
     * The read path is safe to call from several caller threads at
     * once (each checks out its own SearchContext; see
     * engine/query_engine.h): this is the contract the serving layer
     * and its tests rely on. Multi-threaded requests serialise against
     * each other on the shared worker pool. Mutating the index (build,
     * setNprobs, ...) concurrently with searches remains undefined.
     */
    SearchResults search(const SearchRequest &request);

    /**
     * Batch-submit hook: like search(request) but writes into @p out,
     * whose storage is reused across calls. The serving layer's
     * micro-batcher dispatches every assembled batch through this
     * overload with one long-lived buffer per dispatcher, so
     * steady-state serving does not reallocate the result table.
     */
    void search(const SearchRequest &request, SearchResults &out);

    /** Convenience: single-threaded batch with default options. */
    SearchResults
    search(FloatMatrixView queries, idx_t k)
    {
        return search(SearchRequest(queries, k));
    }

    /** Per-stage timing ledger of all searches since the last reset. */
    const StageTimers &stageTimers() const { return timers_; }
    void resetStageTimers() { timers_.reset(); }

    /** Worker count actually used by the most recent search(). */
    int lastSearchThreads() const { return engine_.lastThreadCount(); }

    /**
     * Attaches (or resizes) a hot-list cache of @p bytes for
     * out-of-core serving; 0 detaches it. Returns false when this
     * index type has no IO-aware probe path (the default). Resizing
     * discards the previous cache's contents and counters. Not safe
     * concurrently with in-flight searches of the *same* budget
     * transition, but the SearchOptions funnel only calls it on a
     * budget change, and in-flight scans keep their shared_ptr.
     */
    virtual bool setMemoryBudget(std::int64_t bytes)
    {
        (void)bytes;
        return false;
    }

    /** The attached hot-list cache (counters), or null when none. */
    virtual std::shared_ptr<const HotListCache> hotListCache() const
    {
        return nullptr;
    }

  protected:
    /**
     * Answers queries [chunk.begin, chunk.end), writing each result
     * into (*chunk.results)[qi]. Runs concurrently on distinct chunks
     * with distinct contexts; must only mutate @p ctx, the owned
     * result slots, and state guarded by the implementation.
     */
    virtual void searchChunk(const SearchChunk &chunk,
                             SearchContext &ctx) = 0;

    /**
     * Writes this index's sections into an open snapshot. Every
     * shipping index type implements this (with spec()); the default
     * rejects, so ad-hoc test doubles need not.
     */
    virtual void saveSections(SnapshotWriter &writer) const;

    StageTimers timers_;

  private:
    /** Applies SearchOptions::memory_budget_bytes (env fallback). */
    void applyMemoryBudget(std::int64_t requested);

    QueryEngine engine_;
};

} // namespace juno

#endif // JUNO_BASELINE_INDEX_H
