#include "baseline/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"
#include "registry/index_spec.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Snapshot meta-section format of this index type. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

std::string
Hnsw::name() const
{
    return "HNSW(m=" + std::to_string(params_.m) +
           ",ef=" + std::to_string(ef_search_) + ")";
}

std::string
Hnsw::spec() const
{
    IndexSpec spec;
    spec.type = "hnsw";
    spec.setInt("m", params_.m);
    spec.setInt("efc", params_.ef_construction);
    spec.setInt("ef", ef_search_);
    spec.setInt("seed", static_cast<long>(params_.seed));
    return spec.toString();
}

void
Hnsw::saveGraph(SnapshotWriter &writer, const std::string &prefix) const
{
    JUNO_REQUIRE(built(), "save before build");
    Writer &meta = writer.section(prefix + "meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    writeMetricTag(meta, metric_);
    meta.writePod<std::int64_t>(points_.rows());
    meta.writePod<std::int64_t>(points_.cols());
    meta.writePod<std::int32_t>(params_.m);
    meta.writePod<std::int32_t>(params_.ef_construction);
    meta.writePod<std::uint64_t>(params_.seed);
    meta.writePod<std::int32_t>(ef_search_);
    meta.writePod<std::int64_t>(entry_point_);
    meta.writePod<std::int32_t>(max_level_);

    // Adjacency as one CSR per level: offsets (n + 1) then flat ids.
    Writer &graph = writer.section(prefix + "graph");
    graph.writePod<std::uint64_t>(layers_.size());
    graph.writeVector(node_level_);
    for (const auto &layer : layers_) {
        std::vector<std::uint64_t> offsets;
        offsets.reserve(layer.size() + 1);
        std::vector<idx_t> flat;
        offsets.push_back(0);
        for (const auto &neighbors : layer) {
            flat.insert(flat.end(), neighbors.begin(), neighbors.end());
            offsets.push_back(flat.size());
        }
        graph.writeVector(offsets);
        graph.writeVector(flat);
    }

    writer.addBlob(prefix + "points", points_.data(),
                   static_cast<std::size_t>(points_.rows()) *
                       static_cast<std::size_t>(points_.cols()) *
                       sizeof(float));
}

void
Hnsw::loadGraph(SnapshotReader &reader, const std::string &prefix)
{
    const std::string what = reader.path() + " [" + prefix + "hnsw]";
    auto meta = reader.stream(prefix + "meta");
    checkFormatVersion(meta, kFormatVersion, what);
    metric_ = readMetricTag(meta);
    const auto rows = meta.readPod<std::int64_t>();
    const auto cols = meta.readPod<std::int64_t>();
    params_.m = meta.readPod<std::int32_t>();
    params_.ef_construction = meta.readPod<std::int32_t>();
    params_.seed = meta.readPod<std::uint64_t>();
    ef_search_ = meta.readPod<std::int32_t>();
    entry_point_ = meta.readPod<std::int64_t>();
    max_level_ = meta.readPod<std::int32_t>();
    JUNO_REQUIRE(rows > 0 && cols > 0 && params_.m >= 2 &&
                     entry_point_ >= 0 && entry_point_ < rows &&
                     max_level_ >= 0,
                 what << ": corrupt graph header");

    auto graph = reader.stream(prefix + "graph");
    const auto levels = graph.readPod<std::uint64_t>();
    JUNO_REQUIRE(levels > 0 &&
                     levels == static_cast<std::uint64_t>(max_level_) + 1,
                 what << ": level count mismatch");
    node_level_ = graph.readVector<int>();
    JUNO_REQUIRE(node_level_.size() == static_cast<std::size_t>(rows),
                 what << ": node level table size mismatch");
    layers_.assign(static_cast<std::size_t>(levels), {});
    for (auto &layer : layers_) {
        const auto offsets = graph.readVector<std::uint64_t>();
        const auto flat = graph.readVector<idx_t>();
        JUNO_REQUIRE(offsets.size() ==
                             static_cast<std::size_t>(rows) + 1 &&
                         offsets.front() == 0 &&
                         offsets.back() == flat.size(),
                     what << ": corrupt adjacency CSR");
        layer.resize(static_cast<std::size_t>(rows));
        for (std::size_t node = 0; node < layer.size(); ++node) {
            JUNO_REQUIRE(offsets[node] <= offsets[node + 1],
                         what << ": corrupt adjacency CSR");
            layer[node].assign(flat.begin() + static_cast<std::ptrdiff_t>(
                                                  offsets[node]),
                               flat.begin() + static_cast<std::ptrdiff_t>(
                                                  offsets[node + 1]));
            for (const idx_t nb : layer[node])
                JUNO_REQUIRE(nb >= 0 && nb < rows,
                             what << ": neighbour id out of range");
        }
    }

    points_ = reader.blob(prefix + "points")
                  .matrix(rows, cols, what + " points");
}

void
Hnsw::saveSections(SnapshotWriter &writer) const
{
    saveGraph(writer, "");
}

std::unique_ptr<Hnsw>
Hnsw::open(SnapshotReader &reader)
{
    auto index = std::make_unique<Hnsw>();
    index->loadGraph(reader, "");
    return index;
}

float
Hnsw::scoreOf(const float *query, idx_t node) const
{
    return score(metric_, query, points_.row(node), points_.cols());
}

void
Hnsw::build(Metric metric, FloatMatrixView points, const Params &params)
{
    JUNO_REQUIRE(points.rows() > 0, "empty point set");
    JUNO_REQUIRE(params.m >= 2, "HNSW m must be >= 2");
    JUNO_REQUIRE(params.ef_construction >= params.m,
                 "ef_construction must be >= m");

    metric_ = metric;
    params_ = params;
    FloatMatrix copy(points.rows(), points.cols());
    std::copy_n(points.data(),
                static_cast<std::size_t>(points.rows() * points.cols()),
                copy.data());
    points_ = std::move(copy);

    const idx_t n = points.rows();
    Rng rng(params.seed);
    VisitedSet visited;
    const double level_mult = 1.0 / std::log(static_cast<double>(params.m));

    node_level_.resize(static_cast<std::size_t>(n));
    layers_.clear();
    entry_point_ = -1;
    max_level_ = -1;

    for (idx_t node = 0; node < n; ++node) {
        // Exponentially distributed level (standard HNSW draw).
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        const int level =
            static_cast<int>(std::floor(-std::log(u) * level_mult));
        node_level_[static_cast<std::size_t>(node)] = level;

        while (static_cast<int>(layers_.size()) <= level)
            layers_.emplace_back(static_cast<std::size_t>(n));

        if (entry_point_ < 0) {
            entry_point_ = node;
            max_level_ = level;
            continue;
        }

        idx_t entry = entry_point_;
        // Greedy descent through levels above the node's level.
        for (int l = max_level_; l > level; --l)
            entry = greedyDescend(points_.row(node), entry, l);

        // Beam-search insert on each level from min(level, max) down.
        for (int l = std::min(level, max_level_); l >= 0; --l) {
            auto candidates = searchLayer(points_.row(node), entry,
                                          params.ef_construction, l,
                                          visited);
            const int m = l == 0 ? 2 * params.m : params.m;
            connect(node, l, candidates, m);
            if (!candidates.empty())
                entry = candidates[0].id;
        }

        if (level > max_level_) {
            max_level_ = level;
            entry_point_ = node;
        }
    }
}

idx_t
Hnsw::greedyDescend(const float *query, idx_t entry, int level) const
{
    float best = scoreOf(query, entry);
    bool improved = true;
    while (improved) {
        improved = false;
        for (idx_t nb :
             layers_[static_cast<std::size_t>(level)]
                    [static_cast<std::size_t>(entry)]) {
            const float s = scoreOf(query, nb);
            if (isBetter(metric_, s, best)) {
                best = s;
                entry = nb;
                improved = true;
            }
        }
    }
    return entry;
}

std::vector<Neighbor>
Hnsw::searchLayer(const float *query, idx_t entry, int ef, int level,
                  VisitedSet &visited) const
{
    // Candidate frontier with the *best* candidate at top(): the
    // comparator must order worse elements first.
    auto worse = [this](const Neighbor &a, const Neighbor &b) {
        return isBetter(metric_, b.score, a.score);
    };
    std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)>
        best_frontier(worse);

    visited.reset(points_.rows());
    const Neighbor start{entry, scoreOf(query, entry)};
    best_frontier.push(start);
    visited.insert(entry);

    TopK results(ef, metric_);
    results.push(start.id, start.score);

    // Neighbor-expansion scratch: unvisited adjacency rows are
    // gathered contiguously and scored in one batched kernel call per
    // expansion instead of one dispatched call per neighbor. The
    // batch kernel's per-row accumulation is bitwise identical to the
    // single-pair kernel (the simd layer's documented contract), so
    // traversal order and results are unchanged. The buffers are
    // thread-local so this hot path stays allocation-free in steady
    // state while remaining safe for concurrent callers (the IVFPQ
    // router probes from parallel search workers).
    const idx_t d = points_.cols();
    thread_local std::vector<idx_t> fresh;
    thread_local std::vector<float> rows;
    thread_local std::vector<float> scores;

    while (!best_frontier.empty()) {
        const Neighbor cand = best_frontier.top();
        best_frontier.pop();
        // Stop when the best remaining candidate is worse than the
        // worst accepted result and the result set is full.
        if (results.full() &&
            !isBetter(metric_, cand.score, results.worstAccepted()))
            break;
        fresh.clear();
        for (idx_t nb :
             layers_[static_cast<std::size_t>(level)]
                    [static_cast<std::size_t>(cand.id)]) {
            if (visited.insert(nb))
                fresh.push_back(nb);
        }
        if (fresh.empty())
            continue;
        const auto cnt = fresh.size();
        // Independent guards: the thread-local buffers outlive this
        // index, so rows may already be large (grown by a wider index
        // on this thread) while scores still lags cnt.
        if (rows.size() < cnt * static_cast<std::size_t>(d))
            rows.resize(cnt * static_cast<std::size_t>(d));
        if (scores.size() < cnt)
            scores.resize(cnt);
        for (std::size_t i = 0; i < cnt; ++i) {
            const float *src = points_.row(fresh[i]);
            if (i + 1 < cnt)
                __builtin_prefetch(points_.row(fresh[i + 1]));
            std::copy_n(src, static_cast<std::size_t>(d),
                        rows.data() + i * static_cast<std::size_t>(d));
        }
        simd::scoreBatch(metric_, query, rows.data(),
                         static_cast<idx_t>(cnt), d, scores.data());
        for (std::size_t i = 0; i < cnt; ++i) {
            const float s = scores[i];
            if (!results.full() ||
                isBetter(metric_, s, results.worstAccepted())) {
                results.push(fresh[i], s);
                best_frontier.push({fresh[i], s});
            }
        }
    }
    return results.take();
}

std::vector<idx_t>
Hnsw::selectHeuristic(idx_t base, const std::vector<Neighbor> &candidates,
                      int m) const
{
    // Algorithm 4 of the HNSW paper: accept a candidate only if it is
    // closer to the base than to every already-accepted neighbour.
    // This spreads edges across directions and keeps clustered data
    // connected (plain closest-m creates disconnected cliques).
    std::vector<idx_t> selected;
    for (const auto &cand : candidates) {
        if (cand.id == base)
            continue;
        if (static_cast<int>(selected.size()) >= m)
            break;
        bool diverse = true;
        for (idx_t kept : selected) {
            const float cand_to_kept =
                scoreOf(points_.row(cand.id), kept);
            if (isBetter(metric_, cand_to_kept, cand.score)) {
                diverse = false;
                break;
            }
        }
        if (diverse)
            selected.push_back(cand.id);
    }
    // Backfill with the closest skipped candidates if diversity left
    // slots unused (keepPrunedConnections in the reference code).
    if (static_cast<int>(selected.size()) < m) {
        for (const auto &cand : candidates) {
            if (static_cast<int>(selected.size()) >= m)
                break;
            if (cand.id == base)
                continue;
            if (std::find(selected.begin(), selected.end(), cand.id) ==
                selected.end())
                selected.push_back(cand.id);
        }
    }
    return selected;
}

void
Hnsw::connect(idx_t node, int level,
              const std::vector<Neighbor> &candidates, int m)
{
    auto &layer = layers_[static_cast<std::size_t>(level)];
    auto &adj = layer[static_cast<std::size_t>(node)];
    for (idx_t chosen : selectHeuristic(node, candidates, m)) {
        adj.push_back(chosen);
        auto &back = layer[static_cast<std::size_t>(chosen)];
        back.push_back(node);
        // Prune the reverse list if it overflows, re-applying the
        // diversity heuristic from the overflowing node's viewpoint.
        if (static_cast<int>(back.size()) > m) {
            std::vector<Neighbor> back_cands;
            back_cands.reserve(back.size());
            for (idx_t nb : back)
                back_cands.push_back(
                    {nb, scoreOf(points_.row(chosen), nb)});
            std::sort(back_cands.begin(), back_cands.end(),
                      [this](const Neighbor &a, const Neighbor &b) {
                          if (a.score != b.score)
                              return isBetter(metric_, a.score, b.score);
                          return a.id < b.id;
                      });
            back = selectHeuristic(chosen, back_cands, m);
        }
    }
}

std::vector<Neighbor>
Hnsw::searchImpl(const float *query, idx_t k, int ef,
                 VisitedSet &visited) const
{
    JUNO_REQUIRE(built(), "search before build");
    JUNO_REQUIRE(k > 0, "k must be positive");
    ef = std::max<int>(ef, static_cast<int>(k));

    idx_t entry = entry_point_;
    for (int l = max_level_; l > 0; --l)
        entry = greedyDescend(query, entry, l);
    auto found = searchLayer(query, entry, ef, 0, visited);
    if (static_cast<idx_t>(found.size()) > k)
        found.resize(static_cast<std::size_t>(k));
    return found;
}

std::vector<Neighbor>
Hnsw::search(const float *query, idx_t k, int ef) const
{
    // Local scratch: this entry point stays safe to call concurrently
    // (the IVFPQ router probes from parallel search workers).
    VisitedSet visited;
    return searchImpl(query, k, ef, visited);
}

void
Hnsw::searchChunk(const SearchChunk &chunk, SearchContext &ctx)
{
    StageScope t(ctx, Stage::kGraph);
    for (idx_t qi = chunk.begin; qi < chunk.end; ++qi)
        (*chunk.results)[static_cast<std::size_t>(qi)] = searchImpl(
            chunk.queries.row(qi), chunk.k, ef_search_, ctx.visited);
}

const std::vector<idx_t> &
Hnsw::neighbors(int level, idx_t node) const
{
    JUNO_REQUIRE(level >= 0 &&
                     level < static_cast<int>(layers_.size()),
                 "bad level " << level);
    return layers_[static_cast<std::size_t>(level)]
                  [static_cast<std::size_t>(node)];
}

} // namespace juno
