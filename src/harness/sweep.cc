#include "harness/sweep.h"

#include <algorithm>

namespace juno {

std::vector<ParetoPoint>
sweepOperatingPoints(Workload &workload, AnnIndex &index,
                     const SearchOptions &options, int steps,
                     const std::function<std::string(int)> &configure,
                     idx_t recall_m)
{
    std::vector<ParetoPoint> points;
    points.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        ParetoPoint p;
        p.label = configure(i);
        const auto eval = evaluate(workload, index, options, recall_m);
        p.recall = recall_m > 0 ? eval.recallm_at_k : eval.recall1_at_k;
        p.qps = eval.qps;
        points.push_back(std::move(p));
    }
    return points;
}

std::vector<ParetoPoint>
sweepOperatingPoints(Workload &workload, AnnIndex &index, idx_t k, int steps,
                     const std::function<std::string(int)> &configure,
                     idx_t recall_m)
{
    SearchOptions options;
    options.k = k;
    return sweepOperatingPoints(workload, index, options, steps, configure,
                                recall_m);
}

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.recall != b.recall)
                      return a.recall < b.recall;
                  return a.qps > b.qps;
              });
    // Scan from the highest recall down, keeping points whose QPS
    // strictly exceeds every higher-recall point.
    std::vector<ParetoPoint> frontier;
    double best_qps = -1.0;
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
        if (it->qps > best_qps) {
            frontier.push_back(*it);
            best_qps = it->qps;
        }
    }
    std::reverse(frontier.begin(), frontier.end());
    return frontier;
}

} // namespace juno
