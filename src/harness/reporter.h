/**
 * @file
 * Table/CSV output helpers so every bench prints its figure data in a
 * uniform, diff-able format (rows mirror the paper's plots).
 */
#ifndef JUNO_HARNESS_REPORTER_H
#define JUNO_HARNESS_REPORTER_H

#include <string>
#include <vector>

namespace juno {

struct EvalPoint;

/** Fixed-column text table accumulated row by row. */
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Adds a data row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Formats numbers consistently (6 significant digits). */
    static std::string num(double v);

    /** Renders the table to a string (header, rule, rows). */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

    /** Renders as CSV. */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a section banner ("== Fig. 12: ... ==") to stdout. */
void printBanner(const std::string &title);

/**
 * Prints the effective-QPS table of a thread-scaling run (one row per
 * worker count, speedup relative to the first row). Points come from
 * evaluateThreadScaling(); recall is printed once per row to confirm
 * results did not change with the thread count.
 */
void printThreadScaling(const std::vector<EvalPoint> &points);

} // namespace juno

#endif // JUNO_HARNESS_REPORTER_H
