/**
 * @file
 * Snapshot cache for the bench/harness loop: build an index once per
 * (spec, dataset) pair, persist it, and let every later sweep point —
 * and every later bench run — open the snapshot instead of re-running
 * k-means/PQ/graph construction.
 *
 * The cache directory comes from the JUNO_SNAPSHOT_CACHE environment
 * variable (or an explicit argument); when unset, buildOrOpen() just
 * builds, so benches behave exactly as before unless the user opts
 * in. Cache keys hash the spec string plus a caller-supplied dataset
 * identity, so a changed spec, seed or scale never reuses a stale
 * snapshot.
 */
#ifndef JUNO_HARNESS_INDEX_CACHE_H
#define JUNO_HARNESS_INDEX_CACHE_H

#include <memory>
#include <string>

#include "baseline/index.h"
#include "registry/index_factory.h"

namespace juno {

/** JUNO_SNAPSHOT_CACHE value, or "" when caching is off. */
std::string snapshotCacheDir();

/** Cache file path for (spec, dataset_key) under @p cache_dir. */
std::string snapshotCachePath(const std::string &cache_dir,
                              const std::string &spec,
                              const std::string &dataset_key);

/**
 * Opens the cached snapshot for (spec, dataset_key) if @p cache_dir
 * holds one, else builds via the factory and saves it there. An empty
 * @p cache_dir always builds. A cache file that fails to open (e.g.
 * truncated by an interrupted run) is rebuilt and overwritten, not
 * fatal.
 */
std::unique_ptr<AnnIndex> buildOrOpen(Metric metric,
                                      FloatMatrixView points,
                                      const std::string &spec,
                                      const std::string &dataset_key,
                                      const std::string &cache_dir =
                                          snapshotCacheDir());

} // namespace juno

#endif // JUNO_HARNESS_INDEX_CACHE_H
