/**
 * @file
 * Parameter sweeps and Pareto-frontier extraction for the QPS/recall
 * plots (paper Fig. 12).
 */
#ifndef JUNO_HARNESS_SWEEP_H
#define JUNO_HARNESS_SWEEP_H

#include <functional>
#include <vector>

#include "harness/workload.h"

namespace juno {

/** A (recall, qps) operating point with its configuration label. */
struct ParetoPoint {
    double recall = 0.0;
    double qps = 0.0;
    std::string label;
};

/**
 * Runs @p configure(i) for i in [0, steps), evaluating the index after
 * each configuration with @p options (k, threads, batch size), and
 * returns all operating points.
 */
std::vector<ParetoPoint> sweepOperatingPoints(
    Workload &workload, AnnIndex &index, const SearchOptions &options,
    int steps, const std::function<std::string(int)> &configure,
    idx_t recall_m = 0);

/** Single-threaded convenience overload. */
std::vector<ParetoPoint> sweepOperatingPoints(
    Workload &workload, AnnIndex &index, idx_t k, int steps,
    const std::function<std::string(int)> &configure, idx_t recall_m = 0);

/**
 * Filters to the Pareto frontier: keeps points not dominated in both
 * recall and QPS, sorted by recall ascending (the paper's bold grey
 * "JUNO" line aggregates configurations exactly this way).
 */
std::vector<ParetoPoint> paretoFrontier(std::vector<ParetoPoint> points);

} // namespace juno

#endif // JUNO_HARNESS_SWEEP_H
