#include "harness/workload.h"

#include "common/timer.h"

namespace juno {

Workload::Workload(const SyntheticSpec &spec, idx_t gt_k)
    : data_(makeDataset(spec)),
      gt_(computeGroundTruth(data_.metric, data_.base.view(),
                             data_.queries.view(), gt_k))
{
}

EvalPoint
evaluate(Workload &workload, AnnIndex &index, const SearchOptions &options,
         idx_t recall_m)
{
    index.resetStageTimers();
    Timer timer;
    const auto results =
        index.search(SearchRequest(workload.queries(), options));
    const double seconds = timer.seconds();

    EvalPoint point;
    point.index_name = index.name();
    point.k = options.k;
    point.threads = index.lastSearchThreads();
    point.qps = seconds > 0.0
        ? static_cast<double>(workload.queries().rows()) / seconds
        : 0.0;
    point.recall1_at_k = recall1AtK(workload.groundTruth(), results);
    if (recall_m > 0)
        point.recallm_at_k =
            recallMAtK(workload.groundTruth(), results, recall_m);
    point.timers = index.stageTimers();
    return point;
}

EvalPoint
evaluate(Workload &workload, AnnIndex &index, idx_t k, idx_t recall_m)
{
    SearchOptions options;
    options.k = k;
    return evaluate(workload, index, options, recall_m);
}

std::vector<EvalPoint>
evaluateThreadScaling(Workload &workload, AnnIndex &index, idx_t k,
                      const std::vector<int> &thread_counts, idx_t recall_m)
{
    std::vector<EvalPoint> points;
    points.reserve(thread_counts.size());
    for (int threads : thread_counts) {
        SearchOptions options;
        options.k = k;
        options.threads = threads;
        // point.threads carries the *effective* worker count from the
        // engine, which may be lower than requested on tiny batches.
        points.push_back(evaluate(workload, index, options, recall_m));
    }
    return points;
}

} // namespace juno
