#include "harness/index_cache.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "registry/snapshot.h"

namespace juno {
namespace {

/** FNV-1a over @p s, hex-encoded (stable across runs and hosts). */
std::string
stableHash(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

std::string
snapshotCacheDir()
{
    const char *dir = std::getenv("JUNO_SNAPSHOT_CACHE");
    return dir != nullptr ? dir : "";
}

std::string
snapshotCachePath(const std::string &cache_dir, const std::string &spec,
                  const std::string &dataset_key)
{
    return cache_dir + "/" + stableHash(spec + "|" + dataset_key) +
           ".juno";
}

std::unique_ptr<AnnIndex>
buildOrOpen(Metric metric, FloatMatrixView points,
            const std::string &spec, const std::string &dataset_key,
            const std::string &cache_dir)
{
    if (cache_dir.empty())
        return buildIndex(metric, points, spec);

    const std::string path =
        snapshotCachePath(cache_dir, spec, dataset_key);
    std::unique_ptr<AnnIndex> cached;
    try {
        cached = openIndex(path);
    } catch (const ConfigError &) {
        // Missing or unreadable cache entry: build and repopulate.
    }
    if (cached != nullptr) {
        // The key hashes the requested spec, so a cached file should
        // hold the same index type; a mismatch means a hash collision
        // or a foreign file — fail loudly (outside the catch above,
        // so this is never mistaken for a cache miss and silently
        // overwritten) instead of serving the wrong index.
        JUNO_REQUIRE(IndexSpec::parse(cached->spec()).type ==
                         IndexSpec::parse(spec).type,
                     path << " holds spec '" << cached->spec()
                          << "', expected '" << spec
                          << "' (cache key collision?)");
        return cached;
    }
    auto index = buildIndex(metric, points, spec);
    try {
        index->save(path);
    } catch (const ConfigError &err) {
        warn(std::string("snapshot cache write failed (") + err.what() +
             "); continuing without cache");
    }
    return index;
}

} // namespace juno
