#include "harness/reporter.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "harness/workload.h"

namespace juno {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    JUNO_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    JUNO_REQUIRE(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v)
{
    std::ostringstream oss;
    oss.precision(6);
    oss << v;
    return oss.str();
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TablePrinter::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << ",";
        }
        oss << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

void
printBanner(const std::string &title)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::fflush(stdout);
}

void
printThreadScaling(const std::vector<EvalPoint> &points)
{
    if (points.empty())
        return;
    TablePrinter table({"index", "threads", "QPS", "speedup", "R1@k"});
    const double base_qps = points.front().qps;
    for (const auto &p : points)
        table.addRow({p.index_name, std::to_string(p.threads),
                      TablePrinter::num(p.qps),
                      TablePrinter::num(base_qps > 0.0 ? p.qps / base_qps
                                                       : 0.0),
                      TablePrinter::num(p.recall1_at_k)});
    table.print();
}

} // namespace juno
