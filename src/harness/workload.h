/**
 * @file
 * Shared evaluation workload: a synthetic dataset, its ground truth,
 * and the QPS/recall measurement loop every bench reuses.
 */
#ifndef JUNO_HARNESS_WORKLOAD_H
#define JUNO_HARNESS_WORKLOAD_H

#include <string>

#include "baseline/index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {

/** Dataset + ground truth bundle. */
class Workload {
  public:
    /** Generates the dataset and computes exact top-@p gt_k truth. */
    Workload(const SyntheticSpec &spec, idx_t gt_k = 100);

    const Dataset &dataset() const { return data_; }
    const GroundTruth &groundTruth() const { return gt_; }
    Metric metric() const { return data_.metric; }
    FloatMatrixView base() const { return data_.base.view(); }
    FloatMatrixView queries() const { return data_.queries.view(); }
    const std::string &name() const { return data_.name; }

  private:
    Dataset data_;
    GroundTruth gt_;
};

/** One measured operating point of an index. */
struct EvalPoint {
    std::string index_name;
    double qps = 0.0;
    double recall1_at_k = 0.0;  ///< R1@k
    double recallm_at_k = 0.0;  ///< Rm@(10k): only when gt_k >= m
    idx_t k = 0;
    int threads = 1;            ///< workers used by the batch
    StageTimers timers;
};

/**
 * Times index.search over the workload queries with @p options and
 * scores recall. QPS is effective batch throughput: query count over
 * end-to-end wall time, so it reflects the thread count in @p options.
 * @param recall_m when > 0 also computes Rm@k (requires gt_k >= m).
 */
EvalPoint evaluate(Workload &workload, AnnIndex &index,
                   const SearchOptions &options, idx_t recall_m = 0);

/** Single-threaded convenience overload (R1@k uses this k). */
EvalPoint evaluate(Workload &workload, AnnIndex &index, idx_t k,
                   idx_t recall_m = 0);

/**
 * Measures the same operating point at several worker counts
 * (default 1/2/4), for the thread-scaling tables the QPS benches
 * report. Results are bitwise identical across entries by the query
 * engine's determinism guarantee; only QPS moves.
 */
std::vector<EvalPoint> evaluateThreadScaling(
    Workload &workload, AnnIndex &index, idx_t k,
    const std::vector<int> &thread_counts = {1, 2, 4},
    idx_t recall_m = 0);

} // namespace juno

#endif // JUNO_HARNESS_WORKLOAD_H
