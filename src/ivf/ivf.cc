#include "ivf/ivf.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

void
InvertedFileIndex::build(FloatMatrixView points, const Params &params)
{
    JUNO_REQUIRE(points.rows() >= params.clusters,
                 "fewer points than clusters");
    KMeansParams km;
    km.clusters = params.clusters;
    km.max_iters = params.max_iters;
    km.seed = params.seed;
    km.max_training_points = params.max_training_points;
    auto res = kmeans(points, km);

    centroids_ = std::move(res.centroids);
    labels_ = std::move(res.labels);
    lists_.assign(static_cast<std::size_t>(params.clusters), {});
    for (idx_t p = 0; p < points.rows(); ++p)
        lists_[static_cast<std::size_t>(labels_[static_cast<std::size_t>(p)])]
            .push_back(p);
}

void
InvertedFileIndex::assign(FloatMatrixView points, FloatMatrix centroids)
{
    JUNO_REQUIRE(centroids.rows() > 0, "assign needs centroids");
    JUNO_REQUIRE(points.cols() == centroids.cols(),
                 "point/centroid dimension mismatch");
    centroids_ = std::move(centroids);
    const idx_t C = centroids_.rows();
    const idx_t d = centroids_.cols();
    labels_.assign(static_cast<std::size_t>(points.rows()), 0);
    lists_.assign(static_cast<std::size_t>(C), {});
    for (idx_t p = 0; p < points.rows(); ++p) {
        const float *x = points.row(p);
        cluster_t best = 0;
        float best_d = l2Sqr(x, centroids_.row(0), d);
        for (idx_t c = 1; c < C; ++c) {
            const float dist = l2Sqr(x, centroids_.row(c), d);
            if (dist < best_d) {
                best_d = dist;
                best = static_cast<cluster_t>(c);
            }
        }
        labels_[static_cast<std::size_t>(p)] = best;
        lists_[static_cast<std::size_t>(best)].push_back(p);
    }
}

const std::vector<idx_t> &
InvertedFileIndex::list(cluster_t c) const
{
    JUNO_ASSERT(c >= 0 && c < numClusters(), "cluster " << c);
    return lists_[static_cast<std::size_t>(c)];
}

std::vector<Neighbor>
InvertedFileIndex::probe(Metric metric, const float *query,
                         idx_t nprobs) const
{
    JUNO_REQUIRE(built(), "probe before build");
    JUNO_REQUIRE(nprobs > 0, "nprobs must be positive");
    nprobs = std::min(nprobs, numClusters());
    TopK top(nprobs, metric);
    for (idx_t c = 0; c < numClusters(); ++c)
        top.push(c, score(metric, query, centroids_.row(c),
                          centroids_.cols()));
    return top.take();
}

void
InvertedFileIndex::residual(const float *x, cluster_t c, float *out) const
{
    const float *ctr = centroid(c);
    for (idx_t j = 0; j < dim(); ++j)
        out[j] = x[j] - ctr[j];
}

void
InvertedFileIndex::save(Writer &writer) const
{
    JUNO_REQUIRE(built(), "save before build");
    writer.writeMatrix(centroids_.view());
    writer.writeVector(labels_);
    writer.writePod<std::uint64_t>(lists_.size());
    for (const auto &list : lists_)
        writer.writeVector(list);
}

void
InvertedFileIndex::load(Reader &reader)
{
    centroids_ = reader.readMatrix();
    labels_ = reader.readVector<cluster_t>();
    const auto count = reader.readPod<std::uint64_t>();
    JUNO_REQUIRE(count == static_cast<std::uint64_t>(centroids_.rows()),
                 "inverted list count mismatch (corrupt file)");
    lists_.assign(static_cast<std::size_t>(count), {});
    for (auto &list : lists_)
        list = reader.readVector<idx_t>();
}

} // namespace juno
