/**
 * @file
 * Inverted file index (paper Sec. 2.1, step 1 and stage A).
 *
 * k-means over full-dimension points produces C coarse centroids; the
 * IVF stores, per centroid, the ids of the points assigned to it. The
 * online filtering stage scores a query against all C centroids and
 * keeps the nprobs closest clusters.
 */
#ifndef JUNO_IVF_IVF_H
#define JUNO_IVF_IVF_H

#include <vector>

#include "cluster/kmeans.h"
#include "common/matrix.h"
#include "common/serialize.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

/** Coarse IVF built over a point set. */
class InvertedFileIndex {
  public:
    /** Training configuration. */
    struct Params {
        int clusters = 256;
        int max_iters = 20;
        std::uint64_t seed = 31;
        idx_t max_training_points = 0;
    };

    /** Trains centroids and populates the inverted lists. */
    void build(FloatMatrixView points, const Params &params);

    /**
     * Populates the index from pre-trained @p centroids without
     * re-running k-means: every point is assigned to its nearest
     * centroid under L2 (the k-means assignment rule). This is the
     * live-merge incremental path — folding fresh points into an
     * existing coarse quantisation pays only the O(n * C) assignment,
     * not the training. Replaces current state.
     */
    void assign(FloatMatrixView points, FloatMatrix centroids);

    bool built() const { return centroids_.rows() > 0; }
    idx_t numClusters() const { return centroids_.rows(); }
    idx_t dim() const { return centroids_.cols(); }

    const FloatMatrix &centroids() const { return centroids_; }
    const float *centroid(cluster_t c) const { return centroids_.row(c); }

    /** Point ids assigned to cluster @p c. */
    const std::vector<idx_t> &list(cluster_t c) const;

    /** All inverted lists (layout builders consume them wholesale). */
    const std::vector<std::vector<idx_t>> &lists() const { return lists_; }

    /** Cluster label of point @p p (index into the build-time matrix). */
    cluster_t label(idx_t p) const { return labels_.at(static_cast<std::size_t>(p)); }

    const std::vector<cluster_t> &labels() const { return labels_; }

    /**
     * Filtering stage (paper stage A): returns the nprobs closest
     * centroids best-first under @p metric. For inner-product search
     * the centroid similarity is the inner product (paper Sec. 4.2,
     * "change metric of the cluster in filtering").
     */
    std::vector<Neighbor> probe(Metric metric, const float *query,
                                idx_t nprobs) const;

    /**
     * Residual r = x - centroid(c) of vector @p x against cluster c
     * (paper stage B), written into @p out (dim floats).
     */
    void residual(const float *x, cluster_t c, float *out) const;

    /** Serializes the trained index. */
    void save(Writer &writer) const;

    /** Restores a trained index (replaces current state). */
    void load(Reader &reader);

  private:
    FloatMatrix centroids_;
    std::vector<cluster_t> labels_;
    std::vector<std::vector<idx_t>> lists_;
};

} // namespace juno

#endif // JUNO_IVF_IVF_H
