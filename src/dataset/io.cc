#include "dataset/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace juno {
namespace {

std::ifstream
openBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open " + path);
    return in;
}

std::int32_t
readDim(std::ifstream &in, const std::string &path)
{
    std::int32_t d = 0;
    in.read(reinterpret_cast<char *>(&d), sizeof(d));
    if (!in)
        return -1; // clean EOF handled by caller
    if (d <= 0 || d > (1 << 20))
        fatal(path + ": implausible vector dimension " + std::to_string(d));
    return d;
}

} // namespace

FloatMatrix
readFvecs(const std::string &path)
{
    auto in = openBinary(path);
    std::vector<float> data;
    std::int32_t dim = 0;
    idx_t rows = 0;
    while (true) {
        const std::int32_t d = readDim(in, path);
        if (d < 0)
            break;
        if (dim == 0)
            dim = d;
        else if (d != dim)
            fatal(path + ": inconsistent dimensions");
        const std::size_t old = data.size();
        data.resize(old + static_cast<std::size_t>(d));
        in.read(reinterpret_cast<char *>(data.data() + old),
                static_cast<std::streamsize>(sizeof(float)) * d);
        if (!in)
            fatal(path + ": truncated vector record");
        ++rows;
    }
    FloatMatrix m(rows, dim);
    std::copy(data.begin(), data.end(), m.data());
    return m;
}

FloatMatrix
readBvecs(const std::string &path)
{
    auto in = openBinary(path);
    std::vector<float> data;
    std::int32_t dim = 0;
    idx_t rows = 0;
    std::vector<std::uint8_t> buf;
    while (true) {
        const std::int32_t d = readDim(in, path);
        if (d < 0)
            break;
        if (dim == 0)
            dim = d;
        else if (d != dim)
            fatal(path + ": inconsistent dimensions");
        buf.resize(static_cast<std::size_t>(d));
        in.read(reinterpret_cast<char *>(buf.data()), d);
        if (!in)
            fatal(path + ": truncated vector record");
        for (std::uint8_t b : buf)
            data.push_back(static_cast<float>(b));
        ++rows;
    }
    FloatMatrix m(rows, dim);
    std::copy(data.begin(), data.end(), m.data());
    return m;
}

std::vector<std::vector<std::int32_t>>
readIvecs(const std::string &path)
{
    auto in = openBinary(path);
    std::vector<std::vector<std::int32_t>> rows;
    while (true) {
        const std::int32_t d = readDim(in, path);
        if (d < 0)
            break;
        std::vector<std::int32_t> row(static_cast<std::size_t>(d));
        in.read(reinterpret_cast<char *>(row.data()),
                static_cast<std::streamsize>(sizeof(std::int32_t)) * d);
        if (!in)
            fatal(path + ": truncated vector record");
        rows.push_back(std::move(row));
    }
    return rows;
}

void
writeFvecs(const std::string &path, FloatMatrixView m)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open " + path + " for writing");
    const std::int32_t d = static_cast<std::int32_t>(m.cols());
    for (idx_t r = 0; r < m.rows(); ++r) {
        out.write(reinterpret_cast<const char *>(&d), sizeof(d));
        out.write(reinterpret_cast<const char *>(m.row(r)),
                  static_cast<std::streamsize>(sizeof(float)) * d);
    }
    if (!out)
        fatal("short write to " + path);
}

void
writeIvecs(const std::string &path,
           const std::vector<std::vector<std::int32_t>> &rows)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open " + path + " for writing");
    for (const auto &row : rows) {
        const std::int32_t d = static_cast<std::int32_t>(row.size());
        out.write(reinterpret_cast<const char *>(&d), sizeof(d));
        out.write(reinterpret_cast<const char *>(row.data()),
                  static_cast<std::streamsize>(sizeof(std::int32_t)) * d);
    }
    if (!out)
        fatal("short write to " + path);
}

} // namespace juno
