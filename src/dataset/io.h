/**
 * @file
 * Readers/writers for the TEXMEX vector file formats (fvecs / ivecs /
 * bvecs) used by SIFT1M, DEEP1B and friends, so real corpora drop into
 * the benches unchanged when available.
 *
 * Format: each vector is stored as a 4-byte little-endian int32 d
 * followed by d components (float32 for fvecs, int32 for ivecs, uint8
 * for bvecs).
 */
#ifndef JUNO_DATASET_IO_H
#define JUNO_DATASET_IO_H

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace juno {

/** Reads an entire .fvecs file. Throws ConfigError on malformed input. */
FloatMatrix readFvecs(const std::string &path);

/** Reads a .bvecs file, widening uint8 components to float. */
FloatMatrix readBvecs(const std::string &path);

/** Reads an .ivecs file (e.g. ground-truth neighbour ids). */
std::vector<std::vector<std::int32_t>> readIvecs(const std::string &path);

/** Writes @p m as .fvecs. */
void writeFvecs(const std::string &path, FloatMatrixView m);

/** Writes integer id lists as .ivecs. */
void writeIvecs(const std::string &path,
                const std::vector<std::vector<std::int32_t>> &rows);

} // namespace juno

#endif // JUNO_DATASET_IO_H
