/**
 * @file
 * Recall metrics exactly as defined in paper Sec. 6.1:
 *
 *  - R1@k   ("Recall-1@k"): fraction of queries whose k retrieved
 *    neighbours contain the single true nearest neighbour.
 *  - Rm@k   ("Recall-m@k", e.g. R100@1000): averaged count of the m
 *    true nearest neighbours found among the k retrieved, divided by m.
 */
#ifndef JUNO_DATASET_RECALL_H
#define JUNO_DATASET_RECALL_H

#include <vector>

#include "common/topk.h"
#include "dataset/ground_truth.h"

namespace juno {

/** Retrieved results: one best-first Neighbor list per query. */
using ResultSet = std::vector<std::vector<Neighbor>>;

/**
 * R1@k: @p results[q] may hold any number of ids; only membership of
 * gt's rank-0 id matters.
 */
double recall1AtK(const GroundTruth &gt, const ResultSet &results);

/**
 * Rm@k: fraction of the first @p m ground-truth ids present in each
 * result list, averaged over queries. Requires gt.k >= m.
 */
double recallMAtK(const GroundTruth &gt, const ResultSet &results, idx_t m);

} // namespace juno

#endif // JUNO_DATASET_RECALL_H
