#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {
namespace {

/** Mixture component: a center, per-axis scales and a weight. */
struct Component {
    std::vector<float> center;
    std::vector<float> scale;
    double weight;
};

/**
 * Builds @p count anisotropic Gaussian components. Component weights
 * follow a Zipf-like power law so that some regions of the space are
 * dense and others sparse -- the precondition for the density-adaptive
 * threshold of paper Sec. 4.1 to matter.
 */
std::vector<Component>
makeComponents(int count, idx_t dim, float center_spread,
               float scale_lo, float scale_hi, Rng &rng)
{
    std::vector<Component> comps(static_cast<std::size_t>(count));
    double weight_sum = 0.0;
    for (int c = 0; c < count; ++c) {
        auto &comp = comps[static_cast<std::size_t>(c)];
        comp.center.resize(static_cast<std::size_t>(dim));
        comp.scale.resize(static_cast<std::size_t>(dim));
        for (idx_t d = 0; d < dim; ++d) {
            comp.center[static_cast<std::size_t>(d)] =
                static_cast<float>(rng.gaussian(0.0, center_spread));
            comp.scale[static_cast<std::size_t>(d)] =
                rng.uniform(scale_lo, scale_hi);
        }
        comp.weight = 1.0 / std::pow(static_cast<double>(c) + 1.0, 0.7);
        weight_sum += comp.weight;
    }
    for (auto &comp : comps)
        comp.weight /= weight_sum;
    return comps;
}

/** Samples a component index proportional to weight. */
int
sampleComponent(const std::vector<Component> &comps, Rng &rng)
{
    double u = rng.uniform();
    for (std::size_t c = 0; c < comps.size(); ++c) {
        u -= comps[c].weight;
        if (u <= 0.0)
            return static_cast<int>(c);
    }
    return static_cast<int>(comps.size()) - 1;
}

/** Draws one point from component @p comp into @p out. */
void
samplePoint(const Component &comp, idx_t dim, Rng &rng, float *out)
{
    for (idx_t d = 0; d < dim; ++d) {
        const std::size_t sd = static_cast<std::size_t>(d);
        out[d] = comp.center[sd] +
                 comp.scale[sd] * static_cast<float>(rng.gaussian());
    }
}

/** SIFT-like post-processing: shift positive, clip to [0, 255]. */
void
siftify(float *row, idx_t dim)
{
    for (idx_t d = 0; d < dim; ++d) {
        float v = row[d] * 24.0f + 32.0f; // typical SIFT bin statistics
        row[d] = std::clamp(v, 0.0f, 255.0f);
    }
}

/** DEEP-like post-processing: L2-normalise the row. */
void
deepify(float *row, idx_t dim)
{
    const float norm = std::sqrt(l2NormSqr(row, dim));
    if (norm > 1e-12f)
        for (idx_t d = 0; d < dim; ++d)
            row[d] /= norm;
}

/** TTI-like post-processing: heavy-tail a random subset of axes. */
void
ttify(float *row, idx_t dim, Rng &rng)
{
    for (idx_t d = 0; d < dim; ++d) {
        if (rng.uniform() < 0.05)
            row[d] *= 4.0f; // rare large coordinates (heavy tail)
    }
}

void
fillMatrix(FloatMatrix &m, const std::vector<Component> &comps,
           DatasetKind kind, Rng &rng)
{
    const idx_t dim = m.cols();
    for (idx_t i = 0; i < m.rows(); ++i) {
        float *row = m.row(i);
        if (kind == DatasetKind::kUniform) {
            for (idx_t d = 0; d < dim; ++d)
                row[d] = rng.uniform(-1.0f, 1.0f);
            continue;
        }
        const auto &comp =
            comps[static_cast<std::size_t>(sampleComponent(comps, rng))];
        samplePoint(comp, dim, rng, row);
        switch (kind) {
          case DatasetKind::kSiftLike:
            siftify(row, dim);
            break;
          case DatasetKind::kDeepLike:
            deepify(row, dim);
            break;
          case DatasetKind::kTtiLike:
            ttify(row, dim, rng);
            break;
          case DatasetKind::kUniform:
            break;
        }
    }
}

} // namespace

idx_t
nativeDim(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::kSiftLike:
        return 128;
      case DatasetKind::kDeepLike:
        return 96;
      case DatasetKind::kTtiLike:
        return 200;
      case DatasetKind::kUniform:
        return 64;
    }
    return 64;
}

Metric
nativeMetric(DatasetKind kind)
{
    return kind == DatasetKind::kTtiLike ? Metric::kInnerProduct
                                         : Metric::kL2;
}

const char *
kindName(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::kSiftLike:
        return "sift";
      case DatasetKind::kDeepLike:
        return "deep";
      case DatasetKind::kTtiLike:
        return "tti";
      case DatasetKind::kUniform:
        return "uniform";
    }
    return "unknown";
}

Dataset
makeDataset(const SyntheticSpec &spec)
{
    JUNO_REQUIRE(spec.num_points > 0, "num_points must be positive");
    JUNO_REQUIRE(spec.num_queries >= 0, "num_queries must be >= 0");
    JUNO_REQUIRE(spec.components > 0, "components must be positive");

    const idx_t dim = spec.dim > 0 ? spec.dim : nativeDim(spec.kind);
    Rng rng(spec.seed);

    // Component geometry tuned per family: SIFT-like clusters are
    // tighter; TTI-like ones broader with larger spread.
    float spread = 1.0f, lo = 0.15f, hi = 0.5f;
    if (spec.kind == DatasetKind::kSiftLike) {
        spread = 1.2f;
        lo = 0.2f;
        hi = 0.6f;
    } else if (spec.kind == DatasetKind::kTtiLike) {
        spread = 1.5f;
        lo = 0.25f;
        hi = 0.8f;
    }
    JUNO_REQUIRE(spec.noise_scale > 0.0f, "noise_scale must be positive");
    lo *= spec.noise_scale;
    hi *= spec.noise_scale;
    const auto comps =
        makeComponents(spec.components, dim, spread, lo, hi, rng);

    Dataset ds;
    ds.metric = nativeMetric(spec.kind);
    ds.name = std::string(kindName(spec.kind)) +
              std::to_string(spec.num_points / 1000) + "k";
    ds.base = FloatMatrix(spec.num_points, dim);
    ds.queries = FloatMatrix(spec.num_queries, dim);
    fillMatrix(ds.base, comps, spec.kind, rng);
    fillMatrix(ds.queries, comps, spec.kind, rng);
    return ds;
}

} // namespace juno
