/**
 * @file
 * Exact brute-force k-nearest-neighbour ground truth, needed to score
 * recall (R1@100, R100@1000) for every evaluation figure.
 */
#ifndef JUNO_DATASET_GROUND_TRUTH_H
#define JUNO_DATASET_GROUND_TRUTH_H

#include <vector>

#include "common/matrix.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "common/types.h"

namespace juno {

/** Ground truth: for each query, the exact top-k ids best-first. */
struct GroundTruth {
    idx_t k = 0;
    /** neighbors[q] holds k Neighbor entries best-first. */
    std::vector<std::vector<Neighbor>> neighbors;
};

/**
 * Computes exact top-@p k neighbours of every query by linear scan.
 * O(Q * N * D); run once per (dataset, metric) and reuse.
 *
 * @param pool optional thread pool for query-level parallelism.
 */
GroundTruth computeGroundTruth(Metric metric, FloatMatrixView base,
                               FloatMatrixView queries, idx_t k,
                               ThreadPool *pool = nullptr);

} // namespace juno

#endif // JUNO_DATASET_GROUND_TRUTH_H
