#include "dataset/recall.h"

#include <unordered_set>

#include "common/logging.h"

namespace juno {

double
recall1AtK(const GroundTruth &gt, const ResultSet &results)
{
    JUNO_REQUIRE(gt.neighbors.size() == results.size(),
                 "query count mismatch");
    if (results.empty())
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t q = 0; q < results.size(); ++q) {
        JUNO_REQUIRE(!gt.neighbors[q].empty(), "empty ground truth row");
        const idx_t true_nn = gt.neighbors[q][0].id;
        for (const auto &nb : results[q]) {
            if (nb.id == true_nn) {
                ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) / static_cast<double>(results.size());
}

double
recallMAtK(const GroundTruth &gt, const ResultSet &results, idx_t m)
{
    JUNO_REQUIRE(gt.neighbors.size() == results.size(),
                 "query count mismatch");
    JUNO_REQUIRE(gt.k >= m, "ground truth k=" << gt.k << " < m=" << m);
    if (results.empty())
        return 0.0;
    double total = 0.0;
    for (std::size_t q = 0; q < results.size(); ++q) {
        std::unordered_set<idx_t> retrieved;
        retrieved.reserve(results[q].size() * 2);
        for (const auto &nb : results[q])
            retrieved.insert(nb.id);
        idx_t found = 0;
        for (idx_t r = 0; r < m; ++r)
            if (retrieved.count(gt.neighbors[q][static_cast<std::size_t>(r)].id))
                ++found;
        total += static_cast<double>(found) / static_cast<double>(m);
    }
    return total / static_cast<double>(results.size());
}

} // namespace juno
