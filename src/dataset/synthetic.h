/**
 * @file
 * Synthetic dataset generators standing in for the paper's SIFT, DEEP
 * and TTI corpora (DESIGN.md Sec. 2 documents the substitution).
 *
 * Each generator produces a clustered embedding distribution whose
 * salient statistics match the real dataset it replaces:
 *  - kSiftLike: non-negative, byte-ranged gradient histograms, D=128;
 *  - kDeepLike: L2-normalised CNN descriptors, D=96;
 *  - kTtiLike:  heavy-tailed text-to-image embeddings used with the
 *    inner-product metric, D=200;
 *  - kUniform:  unstructured control distribution (no clusters), useful
 *    in tests as the "no locality" counterexample.
 *
 * Clusteredness is what gives rise to the sparsity / spatial-locality
 * phenomena of paper Sec. 3, so all three *Like generators are mixtures
 * of anisotropic Gaussians with power-law component weights.
 */
#ifndef JUNO_DATASET_SYNTHETIC_H
#define JUNO_DATASET_SYNTHETIC_H

#include <cstdint>
#include <string>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/types.h"

namespace juno {

/** Family of synthetic embedding distributions. */
enum class DatasetKind {
    kSiftLike,
    kDeepLike,
    kTtiLike,
    kUniform,
};

/** Parameters controlling synthesis. */
struct SyntheticSpec {
    DatasetKind kind = DatasetKind::kDeepLike;
    /** Number of base (database) vectors. */
    idx_t num_points = 10000;
    /** Number of query vectors (drawn from the same mixture). */
    idx_t num_queries = 100;
    /** Dimensionality; 0 picks the dataset family's native D. */
    idx_t dim = 0;
    /** Number of mixture components (latent clusters). */
    int components = 64;
    /**
     * Multiplier on the per-component spread. 1.0 keeps components
     * well-separated (easy coarse filtering); values around 2-3 blur
     * component boundaries so nprobs genuinely trades recall for
     * speed, as on real embedding corpora.
     */
    float noise_scale = 1.0f;
    /** Seed for full reproducibility. */
    std::uint64_t seed = 42;
};

/** A generated dataset: base vectors plus queries, and its metric. */
struct Dataset {
    FloatMatrix base;    ///< num_points x dim
    FloatMatrix queries; ///< num_queries x dim
    Metric metric = Metric::kL2;
    std::string name;
};

/** Native dimensionality of a dataset family (128/96/200/64). */
idx_t nativeDim(DatasetKind kind);

/** Default metric of a family (TTI uses inner product, rest L2). */
Metric nativeMetric(DatasetKind kind);

/** Short name ("sift", "deep", "tti", "uniform"). */
const char *kindName(DatasetKind kind);

/** Generates a dataset according to @p spec. */
Dataset makeDataset(const SyntheticSpec &spec);

} // namespace juno

#endif // JUNO_DATASET_SYNTHETIC_H
