#include "dataset/ground_truth.h"

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

GroundTruth
computeGroundTruth(Metric metric, FloatMatrixView base,
                   FloatMatrixView queries, idx_t k, ThreadPool *pool)
{
    JUNO_REQUIRE(base.cols() == queries.cols(), "dimension mismatch");
    JUNO_REQUIRE(k > 0 && k <= base.rows(),
                 "k=" << k << " out of range for N=" << base.rows());

    GroundTruth gt;
    gt.k = k;
    gt.neighbors.resize(static_cast<std::size_t>(queries.rows()));

    const idx_t d = base.cols();
    const idx_t n = base.rows();
    auto scan_one = [&](idx_t qi) {
        const float *q = queries.row(qi);
        // Same dispatched batch kernel as FlatIndex, so exact-scan
        // scores stay bitwise comparable with the brute-force index.
        // Per-worker scratch, reused across the queries each pool
        // thread handles.
        thread_local std::vector<float> scores;
        scores.resize(static_cast<std::size_t>(n));
        simd::scoreBatch(metric, q, base.data(), n, d, scores.data());
        TopK top(k, metric);
        for (idx_t pi = 0; pi < n; ++pi)
            top.push(pi, scores[static_cast<std::size_t>(pi)]);
        gt.neighbors[static_cast<std::size_t>(qi)] = top.take();
    };

    if (pool != nullptr)
        pool->parallelFor(queries.rows(), scan_one);
    else
        for (idx_t qi = 0; qi < queries.rows(); ++qi)
            scan_one(qi);
    return gt;
}

} // namespace juno
