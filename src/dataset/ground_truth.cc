#include "dataset/ground_truth.h"

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

GroundTruth
computeGroundTruth(Metric metric, FloatMatrixView base,
                   FloatMatrixView queries, idx_t k, ThreadPool *pool)
{
    JUNO_REQUIRE(base.cols() == queries.cols(), "dimension mismatch");
    JUNO_REQUIRE(k > 0 && k <= base.rows(),
                 "k=" << k << " out of range for N=" << base.rows());

    GroundTruth gt;
    gt.k = k;
    gt.neighbors.resize(static_cast<std::size_t>(queries.rows()));

    const idx_t d = base.cols();
    auto scan_one = [&](idx_t qi) {
        const float *q = queries.row(qi);
        TopK top(k, metric);
        for (idx_t pi = 0; pi < base.rows(); ++pi)
            top.push(pi, score(metric, q, base.row(pi), d));
        gt.neighbors[static_cast<std::size_t>(qi)] = top.take();
    };

    if (pool != nullptr)
        pool->parallelFor(queries.rows(), scan_one);
    else
        for (idx_t qi = 0; qi < queries.rows(); ++qi)
            scan_one(qi);
    return gt;
}

} // namespace juno
