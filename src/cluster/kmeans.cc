#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {
namespace {

/** k-means++ seeding: D^2-weighted sequential centroid choice. */
FloatMatrix
seedPlusPlus(FloatMatrixView points, int k, Rng &rng)
{
    const idx_t n = points.rows(), d = points.cols();
    FloatMatrix centroids(k, d);

    // First centroid uniformly at random.
    idx_t first = static_cast<idx_t>(rng.below(static_cast<std::uint64_t>(n)));
    std::copy_n(points.row(first), d, centroids.row(0));

    std::vector<double> dist2(static_cast<std::size_t>(n),
                              std::numeric_limits<double>::max());
    for (int c = 1; c < k; ++c) {
        // Update shortest distance to any chosen centroid.
        const float *last = centroids.row(c - 1);
        double total = 0.0;
        for (idx_t i = 0; i < n; ++i) {
            const double d2 =
                static_cast<double>(l2Sqr(points.row(i), last, d));
            auto &slot = dist2[static_cast<std::size_t>(i)];
            slot = std::min(slot, d2);
            total += slot;
        }
        idx_t chosen = n - 1;
        if (total > 0.0) {
            double u = rng.uniform() * total;
            for (idx_t i = 0; i < n; ++i) {
                u -= dist2[static_cast<std::size_t>(i)];
                if (u <= 0.0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            // All points coincide with chosen centroids; any pick works.
            chosen = static_cast<idx_t>(
                rng.below(static_cast<std::uint64_t>(n)));
        }
        std::copy_n(points.row(chosen), d, centroids.row(c));
    }
    return centroids;
}

/** One assignment pass; returns the objective (sum of squared dist). */
double
assignPass(FloatMatrixView points, const FloatMatrix &centroids,
           std::vector<cluster_t> &labels)
{
    const idx_t n = points.rows(), d = points.cols();
    const idx_t k = centroids.rows();
    double objective = 0.0;
    for (idx_t i = 0; i < n; ++i) {
        const float *p = points.row(i);
        float best = std::numeric_limits<float>::max();
        cluster_t best_c = 0;
        for (idx_t c = 0; c < k; ++c) {
            const float d2 = l2Sqr(p, centroids.row(c), d);
            if (d2 < best) {
                best = d2;
                best_c = static_cast<cluster_t>(c);
            }
        }
        labels[static_cast<std::size_t>(i)] = best_c;
        objective += best;
    }
    return objective;
}

/** Recomputes centroids as cluster means; returns per-cluster counts. */
std::vector<idx_t>
updatePass(FloatMatrixView points, const std::vector<cluster_t> &labels,
           FloatMatrix &centroids)
{
    const idx_t n = points.rows(), d = points.cols();
    const idx_t k = centroids.rows();
    std::vector<idx_t> counts(static_cast<std::size_t>(k), 0);
    for (idx_t c = 0; c < k; ++c)
        std::fill_n(centroids.row(c), d, 0.0f);
    for (idx_t i = 0; i < n; ++i) {
        const cluster_t c = labels[static_cast<std::size_t>(i)];
        ++counts[static_cast<std::size_t>(c)];
        const float *p = points.row(i);
        float *ctr = centroids.row(c);
        for (idx_t j = 0; j < d; ++j)
            ctr[j] += p[j];
    }
    for (idx_t c = 0; c < k; ++c) {
        const idx_t cnt = counts[static_cast<std::size_t>(c)];
        if (cnt > 0) {
            float *ctr = centroids.row(c);
            const float inv = 1.0f / static_cast<float>(cnt);
            for (idx_t j = 0; j < d; ++j)
                ctr[j] *= inv;
        }
    }
    return counts;
}

/**
 * Splits the largest cluster into any empty one by copying its centroid
 * with a small symmetric perturbation (FAISS's repair strategy).
 */
void
repairEmpty(FloatMatrix &centroids, std::vector<idx_t> &counts, Rng &rng)
{
    const idx_t k = centroids.rows(), d = centroids.cols();
    for (idx_t c = 0; c < k; ++c) {
        if (counts[static_cast<std::size_t>(c)] > 0)
            continue;
        idx_t donor = static_cast<idx_t>(std::distance(
            counts.begin(), std::max_element(counts.begin(), counts.end())));
        if (counts[static_cast<std::size_t>(donor)] < 2)
            continue; // nothing to split
        const float eps = 1e-4f;
        for (idx_t j = 0; j < d; ++j) {
            const float v = centroids.at(donor, j);
            const float delta = eps * (rng.uniform() < 0.5 ? -1.0f : 1.0f) *
                                (std::abs(v) + 1.0f);
            centroids.at(c, j) = v + delta;
            centroids.at(donor, j) = v - delta;
        }
        // Approximate count split; corrected on the next assign pass.
        counts[static_cast<std::size_t>(c)] =
            counts[static_cast<std::size_t>(donor)] / 2;
        counts[static_cast<std::size_t>(donor)] -=
            counts[static_cast<std::size_t>(c)];
    }
}

} // namespace

KMeansResult
kmeans(FloatMatrixView points, const KMeansParams &params)
{
    JUNO_REQUIRE(params.clusters > 0, "clusters must be positive");
    JUNO_REQUIRE(points.rows() > 0, "cannot cluster an empty point set");
    JUNO_REQUIRE(points.rows() >= params.clusters,
                 "need at least as many points (" << points.rows()
                 << ") as clusters (" << params.clusters << ")");

    Rng rng(params.seed);

    // Optional training subsample.
    FloatMatrix sample_storage;
    FloatMatrixView train = points;
    if (params.max_training_points > 0 &&
        points.rows() > params.max_training_points) {
        const auto ids = rng.sampleWithoutReplacement(
            points.rows(), params.max_training_points);
        sample_storage = FloatMatrix(params.max_training_points,
                                     points.cols());
        for (idx_t i = 0; i < params.max_training_points; ++i)
            std::copy_n(points.row(ids[static_cast<std::size_t>(i)]),
                        points.cols(), sample_storage.row(i));
        train = sample_storage.view();
    }

    KMeansResult result;
    result.centroids = seedPlusPlus(train, params.clusters, rng);
    std::vector<cluster_t> train_labels(
        static_cast<std::size_t>(train.rows()));

    double prev_obj = std::numeric_limits<double>::max();
    for (int it = 0; it < params.max_iters; ++it) {
        const double obj = assignPass(train, result.centroids, train_labels);
        auto counts = updatePass(train, train_labels, result.centroids);
        repairEmpty(result.centroids, counts, rng);
        result.iterations = it + 1;
        if (params.verbose)
            std::fprintf(stderr, "kmeans iter %d objective %.6g\n", it, obj);
        if (prev_obj < std::numeric_limits<double>::max() &&
            prev_obj - obj <= params.tol * std::abs(prev_obj))
            break;
        prev_obj = obj;
    }

    // Final assignment of *all* input points to the trained centroids.
    result.labels.resize(static_cast<std::size_t>(points.rows()));
    result.objective = assignPass(points, result.centroids, result.labels);
    return result;
}

std::vector<cluster_t>
assignToNearest(FloatMatrixView points, FloatMatrixView centroids)
{
    JUNO_REQUIRE(points.cols() == centroids.cols(), "dimension mismatch");
    std::vector<cluster_t> labels(static_cast<std::size_t>(points.rows()));
    const idx_t d = points.cols();
    for (idx_t i = 0; i < points.rows(); ++i) {
        const float *p = points.row(i);
        float best = std::numeric_limits<float>::max();
        cluster_t best_c = 0;
        for (idx_t c = 0; c < centroids.rows(); ++c) {
            const float d2 = l2Sqr(p, centroids.row(c), d);
            if (d2 < best) {
                best = d2;
                best_c = static_cast<cluster_t>(c);
            }
        }
        labels[static_cast<std::size_t>(i)] = best_c;
    }
    return labels;
}

} // namespace juno
