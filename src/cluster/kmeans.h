/**
 * @file
 * Lloyd k-means with k-means++ seeding — the workhorse behind both the
 * coarse IVF clustering (C clusters over full-D points, paper step 1)
 * and the per-subspace codebook training (E entries over M-dim
 * residual projections, paper step 3).
 */
#ifndef JUNO_CLUSTER_KMEANS_H
#define JUNO_CLUSTER_KMEANS_H

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/types.h"

namespace juno {

/** Tuning knobs for KMeans::train. */
struct KMeansParams {
    int clusters = 16;
    int max_iters = 25;
    /** Stop when relative objective improvement drops below this. */
    double tol = 1e-4;
    std::uint64_t seed = 123;
    /**
     * Train on at most this many points (sampled without replacement);
     * 0 trains on everything. Mirrors FAISS's training subsampling for
     * large corpora.
     */
    idx_t max_training_points = 0;
    /** Enables verbose per-iteration objective logging to stderr. */
    bool verbose = false;
};

/** Result of a k-means run. */
struct KMeansResult {
    /** clusters x dim centroid matrix. */
    FloatMatrix centroids;
    /** Assignment of every *input* point to its nearest centroid. */
    std::vector<cluster_t> labels;
    /** Final sum of squared distances to assigned centroids. */
    double objective = 0.0;
    /** Iterations actually executed. */
    int iterations = 0;
};

/**
 * Runs k-means++ initialisation followed by Lloyd iterations.
 * Empty clusters are repaired by splitting the most populous cluster
 * (FAISS-style), so every returned centroid owns at least one point
 * whenever clusters <= N.
 */
KMeansResult kmeans(FloatMatrixView points, const KMeansParams &params);

/** Assigns each row of @p points to the nearest centroid (L2). */
std::vector<cluster_t> assignToNearest(FloatMatrixView points,
                                       FloatMatrixView centroids);

} // namespace juno

#endif // JUNO_CLUSTER_KMEANS_H
