#include "quant/product_quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"
#include "common/simd.h"

namespace juno {

void
ProductQuantizer::train(FloatMatrixView vectors, const PQParams &params)
{
    JUNO_REQUIRE(params.num_subspaces > 0, "num_subspaces must be positive");
    JUNO_REQUIRE(params.entries > 1 && params.entries <= 65536,
                 "entries must be in (1, 65536]");
    JUNO_REQUIRE(vectors.cols() % params.num_subspaces == 0,
                 "dim " << vectors.cols() << " not divisible by "
                        << params.num_subspaces << " subspaces");

    num_subspaces_ = params.num_subspaces;
    entries_ = params.entries;
    sub_dim_ = static_cast<int>(vectors.cols()) / num_subspaces_;
    codebooks_.clear();
    codebooks_.reserve(static_cast<std::size_t>(num_subspaces_));

    const idx_t n = vectors.rows();
    FloatMatrix proj(n, sub_dim_);
    for (int s = 0; s < num_subspaces_; ++s) {
        // Gather the subspace-s projection of every training vector.
        for (idx_t i = 0; i < n; ++i) {
            const float *src = vectors.row(i) + s * sub_dim_;
            std::copy_n(src, sub_dim_, proj.row(i));
        }
        KMeansParams km;
        km.clusters = entries_;
        km.max_iters = params.max_iters;
        km.seed = params.seed + static_cast<std::uint64_t>(s) * 7919;
        km.max_training_points = params.max_training_points;
        auto res = kmeans(proj.view(), km);
        codebooks_.push_back(std::move(res.centroids));
    }
}

const FloatMatrix &
ProductQuantizer::codebook(int s) const
{
    JUNO_ASSERT(s >= 0 && s < num_subspaces_, "subspace " << s);
    return codebooks_[static_cast<std::size_t>(s)];
}

const float *
ProductQuantizer::entry(int s, entry_t e) const
{
    return codebook(s).row(static_cast<idx_t>(e));
}

void
ProductQuantizer::encodeOne(const float *vec, entry_t *out) const
{
    std::vector<float> scores(static_cast<std::size_t>(entries_));
    encodeOne(vec, out, scores);
}

void
ProductQuantizer::encodeOne(const float *vec, entry_t *out,
                            std::vector<float> &scores) const
{
    JUNO_ASSERT(trained(), "encode before train");
    if (scores.size() < static_cast<std::size_t>(entries_))
        scores.resize(static_cast<std::size_t>(entries_));
    for (int s = 0; s < num_subspaces_; ++s) {
        const float *proj = vec + s * sub_dim_;
        const FloatMatrix &cb = codebooks_[static_cast<std::size_t>(s)];
        simd::active().l2_sqr_batch(proj, cb.data(), cb.rows(), sub_dim_,
                                    scores.data());
        float best = std::numeric_limits<float>::max();
        entry_t best_e = 0;
        for (idx_t e = 0; e < cb.rows(); ++e) {
            const float d2 = scores[static_cast<std::size_t>(e)];
            if (d2 < best) {
                best = d2;
                best_e = static_cast<entry_t>(e);
            }
        }
        out[s] = best_e;
    }
}

PQCodes
ProductQuantizer::encode(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(vectors.cols() == dim(), "dimension mismatch");
    PQCodes codes;
    codes.num_points = vectors.rows();
    codes.num_subspaces = num_subspaces_;
    codes.codes.resize(static_cast<std::size_t>(vectors.rows()) *
                       static_cast<std::size_t>(num_subspaces_));
    std::vector<float> scores(static_cast<std::size_t>(entries_));
    for (idx_t i = 0; i < vectors.rows(); ++i)
        encodeOne(vectors.row(i),
                  codes.codes.data() +
                      static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(num_subspaces_),
                  scores);
    return codes;
}

std::vector<float>
ProductQuantizer::decode(const entry_t *codes) const
{
    std::vector<float> out(static_cast<std::size_t>(dim()));
    for (int s = 0; s < num_subspaces_; ++s) {
        const float *e = entry(s, codes[s]);
        std::copy_n(e, sub_dim_, out.data() + s * sub_dim_);
    }
    return out;
}

double
ProductQuantizer::reconstructionError(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(vectors.cols() == dim(), "dimension mismatch");
    std::vector<entry_t> codes(static_cast<std::size_t>(num_subspaces_));
    std::vector<float> scores(static_cast<std::size_t>(entries_));
    double total = 0.0;
    for (idx_t i = 0; i < vectors.rows(); ++i) {
        encodeOne(vectors.row(i), codes.data(), scores);
        const auto rec = decode(codes.data());
        total += static_cast<double>(
            l2Sqr(vectors.row(i), rec.data(), dim()));
    }
    return vectors.rows() ? total / static_cast<double>(vectors.rows())
                          : 0.0;
}

void
ProductQuantizer::save(Writer &writer) const
{
    JUNO_REQUIRE(trained(), "save before train");
    writer.writePod<std::int32_t>(num_subspaces_);
    writer.writePod<std::int32_t>(entries_);
    writer.writePod<std::int32_t>(sub_dim_);
    for (const auto &cb : codebooks_)
        writer.writeMatrix(cb.view());
}

void
ProductQuantizer::load(Reader &reader)
{
    num_subspaces_ = reader.readPod<std::int32_t>();
    entries_ = reader.readPod<std::int32_t>();
    sub_dim_ = reader.readPod<std::int32_t>();
    JUNO_REQUIRE(num_subspaces_ > 0 && entries_ > 1 && sub_dim_ > 0,
                 "corrupt product quantizer header");
    codebooks_.clear();
    codebooks_.reserve(static_cast<std::size_t>(num_subspaces_));
    for (int s = 0; s < num_subspaces_; ++s) {
        auto cb = reader.readMatrix();
        JUNO_REQUIRE(cb.rows() == entries_ && cb.cols() == sub_dim_,
                     "corrupt codebook shape");
        codebooks_.push_back(std::move(cb));
    }
}

void
ProductQuantizer::computeLut(Metric metric, const float *vec,
                             FloatMatrix &out) const
{
    JUNO_ASSERT(trained(), "computeLut before train");
    if (out.rows() != num_subspaces_ || out.cols() != entries_)
        out = FloatMatrix(num_subspaces_, entries_);
    // Each codebook is E contiguous subDim-rows: one batched-kernel
    // call scores the whole subspace (paper stage C, dense LUT).
    for (int s = 0; s < num_subspaces_; ++s) {
        const float *proj = vec + s * sub_dim_;
        const FloatMatrix &cb = codebooks_[static_cast<std::size_t>(s)];
        simd::scoreBatch(metric, proj, cb.data(), cb.rows(), sub_dim_,
                         out.row(s));
    }
}

} // namespace juno
