/**
 * @file
 * Product quantization (paper Sec. 2.1, steps 2-4).
 *
 * The D-dimensional space is split into D/M subspaces of M dimensions
 * each; within each subspace, E "second-level" clusters are trained on
 * residual projections and their centroids form the codebook. A point
 * is encoded as one entry id per subspace, compressing D floats to
 * (D/M)*log2(E) bits.
 *
 * JUNO's RT mapping requires M == 2 (spheres live in 2-D subspace
 * planes), but the quantizer itself supports any M dividing D so the
 * FAISS-style baseline can sweep PQ8..PQ64 configurations.
 */
#ifndef JUNO_QUANT_PRODUCT_QUANTIZER_H
#define JUNO_QUANT_PRODUCT_QUANTIZER_H

#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/serialize.h"
#include "common/types.h"

namespace juno {

/** Training/encoding configuration. */
struct PQParams {
    /** Number of subspaces (the x in "PQx"); must divide dim. */
    int num_subspaces = 48;
    /** Codebook entries per subspace (E in the paper; <= 65536). */
    int entries = 256;
    /** k-means settings for per-subspace codebook training. */
    int max_iters = 20;
    std::uint64_t seed = 7;
    idx_t max_training_points = 0;
};

/**
 * PQ codes of a point set: row-major (N x num_subspaces) entry ids.
 * Usually owns its storage (`codes`); a snapshot opened in mmap mode
 * instead views the mapped code plane directly through adoptView(),
 * so every read path must go through data()/row(), never `codes`.
 */
struct PQCodes {
    idx_t num_points = 0;
    int num_subspaces = 0;
    std::vector<entry_t> codes;

    /** Total entry count (num_points * num_subspaces). */
    std::size_t
    count() const
    {
        return static_cast<std::size_t>(num_points) *
               static_cast<std::size_t>(num_subspaces);
    }

    const entry_t *
    data() const
    {
        return view_ != nullptr ? view_ : codes.data();
    }

    /** Views an external code plane kept alive by @p keepalive. */
    void
    adoptView(const entry_t *data, std::shared_ptr<const void> keepalive)
    {
        codes.clear();
        view_ = data;
        keepalive_ = std::move(keepalive);
    }

    const entry_t *
    row(idx_t p) const
    {
        JUNO_DCHECK(p >= 0 && p < num_points,
                    "point " << p << " of " << num_points);
        // Widen both factors before multiplying so the row offset is
        // computed in std::size_t, never in a narrower signed type.
        return data() + static_cast<std::size_t>(p) *
                            static_cast<std::size_t>(num_subspaces);
    }

    entry_t
    at(idx_t p, int s) const
    {
        JUNO_DCHECK(s >= 0 && s < num_subspaces,
                    "subspace " << s << " of " << num_subspaces);
        return row(p)[s];
    }

  private:
    const entry_t *view_ = nullptr;
    std::shared_ptr<const void> keepalive_;
};

/** Trained product quantizer. */
class ProductQuantizer {
  public:
    ProductQuantizer() = default;

    /**
     * Trains per-subspace codebooks on @p vectors (typically residuals
     * against the coarse centroids). @p dim must be divisible by
     * params.num_subspaces.
     */
    void train(FloatMatrixView vectors, const PQParams &params);

    bool trained() const { return !codebooks_.empty(); }
    int numSubspaces() const { return num_subspaces_; }
    int entries() const { return entries_; }
    /** Dimensions per subspace (M in the paper). */
    int subDim() const { return sub_dim_; }
    idx_t dim() const { return static_cast<idx_t>(num_subspaces_) * sub_dim_; }

    /** Codebook of subspace @p s: an (E x subDim) matrix. */
    const FloatMatrix &codebook(int s) const;

    /** Pointer to entry @p e of subspace @p s (subDim floats). */
    const float *entry(int s, entry_t e) const;

    /** Encodes every row of @p vectors. */
    PQCodes encode(FloatMatrixView vectors) const;

    /** Encodes a single vector into @p out (num_subspaces entries). */
    void encodeOne(const float *vec, entry_t *out) const;

    /**
     * Same, with caller-owned score scratch (grown to entries()
     * floats if smaller) so encode loops stay allocation-free.
     */
    void encodeOne(const float *vec, entry_t *out,
                   std::vector<float> &scores) const;

    /** Reconstructs a vector from its codes. */
    std::vector<float> decode(const entry_t *codes) const;

    /** Mean squared reconstruction error over @p vectors. */
    double reconstructionError(FloatMatrixView vectors) const;

    /**
     * Dense look-up table for one query vector: out[s][e] is the score
     * between the query's subspace-s projection and entry e. This is
     * the baseline's L2-LUT construction stage (paper stage C); JUNO
     * replaces it with the selective RT-core version.
     */
    void computeLut(Metric metric, const float *vec, FloatMatrix &out) const;

    /**
     * Accumulated score of an encoded point from a dense LUT:
     * sum over s of lut[s][code[s]] (paper stage D).
     */
    float
    lutScore(const FloatMatrix &lut, const entry_t *codes) const
    {
        float acc = 0.0f;
        for (int s = 0; s < num_subspaces_; ++s)
            acc += lut.at(s, codes[s]);
        return acc;
    }

    /** Serializes a trained quantizer. */
    void save(Writer &writer) const;

    /** Restores a trained quantizer (replaces current state). */
    void load(Reader &reader);

  private:
    int num_subspaces_ = 0;
    int entries_ = 0;
    int sub_dim_ = 0;
    /** One (E x subDim) codebook per subspace. */
    std::vector<FloatMatrix> codebooks_;
};

} // namespace juno

#endif // JUNO_QUANT_PRODUCT_QUANTIZER_H
