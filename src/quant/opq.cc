#include "quant/opq.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

void
OptimizedProductQuantizer::train(FloatMatrixView vectors,
                                 const Params &params)
{
    JUNO_REQUIRE(vectors.rows() > 0, "empty training set");
    const idx_t n = vectors.rows(), d = vectors.cols();
    JUNO_REQUIRE(params.opq_iters >= 1, "opq_iters must be >= 1");

    rotation_ = identity(d);
    FloatMatrix rotated(n, d);

    for (int iter = 0; iter < params.opq_iters; ++iter) {
        // Step 1: rotate and (re)train the PQ on the rotated data.
        for (idx_t i = 0; i < n; ++i)
            rotateOne(vectors.row(i), rotated.row(i));
        PQParams pq_params = params.pq;
        pq_params.seed = params.seed + static_cast<std::uint64_t>(iter);
        pq_.train(rotated.view(), pq_params);

        if (iter + 1 == params.opq_iters)
            break;

        // Step 2: reconstruct in rotated space and re-solve for R.
        const auto codes = pq_.encode(rotated.view());
        FloatMatrix recon(n, d);
        for (idx_t i = 0; i < n; ++i) {
            const auto rec = pq_.decode(codes.row(i));
            std::copy(rec.begin(), rec.end(), recon.row(i));
        }
        // R = argmin ||X R - recon||: Procrustes on (X, recon).
        rotation_ = procrustes(vectors, recon.view());
    }
}

void
OptimizedProductQuantizer::rotateOne(const float *vec, float *out) const
{
    const idx_t d = rotation_.rows();
    for (idx_t c = 0; c < d; ++c)
        out[c] = 0.0f;
    // out = vec * R: accumulate row-by-row for cache friendliness.
    for (idx_t r = 0; r < d; ++r) {
        const float v = vec[r];
        if (v == 0.0f)
            continue;
        const float *rrow = rotation_.row(r);
        for (idx_t c = 0; c < d; ++c)
            out[c] += v * rrow[c];
    }
}

FloatMatrix
OptimizedProductQuantizer::rotate(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(vectors.cols() == dim(), "dimension mismatch");
    FloatMatrix out(vectors.rows(), vectors.cols());
    for (idx_t i = 0; i < vectors.rows(); ++i)
        rotateOne(vectors.row(i), out.row(i));
    return out;
}

PQCodes
OptimizedProductQuantizer::encode(FloatMatrixView vectors) const
{
    const auto rotated = rotate(vectors);
    return pq_.encode(rotated.view());
}

std::vector<float>
OptimizedProductQuantizer::decode(const entry_t *codes) const
{
    // decode in rotated space, then rotate back: x ~= y R^T.
    const auto rotated = pq_.decode(codes);
    const idx_t d = dim();
    std::vector<float> out(static_cast<std::size_t>(d), 0.0f);
    for (idx_t c = 0; c < d; ++c) {
        const float y = rotated[static_cast<std::size_t>(c)];
        if (y == 0.0f)
            continue;
        for (idx_t r = 0; r < d; ++r)
            out[static_cast<std::size_t>(r)] += y * rotation_.at(r, c);
    }
    return out;
}

double
OptimizedProductQuantizer::reconstructionError(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(trained(), "reconstructionError before train");
    const auto codes = encode(vectors);
    double total = 0.0;
    for (idx_t i = 0; i < vectors.rows(); ++i) {
        const auto rec = decode(codes.row(i));
        total += static_cast<double>(
            l2Sqr(vectors.row(i), rec.data(), vectors.cols()));
    }
    return vectors.rows() ? total / static_cast<double>(vectors.rows())
                          : 0.0;
}

} // namespace juno
