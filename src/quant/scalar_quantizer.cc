#include "quant/scalar_quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/logging.h"

namespace juno {

void
ScalarQuantizer::train(FloatMatrixView vectors, RangeMode mode)
{
    JUNO_REQUIRE(vectors.rows() > 0, "empty training set");
    const idx_t n = vectors.rows(), d = vectors.cols();
    lo_.assign(static_cast<std::size_t>(d), 0.0f);
    step_.assign(static_cast<std::size_t>(d), 0.0f);

    for (idx_t c = 0; c < d; ++c) {
        float lo, hi;
        if (mode == RangeMode::kMinMax) {
            lo = hi = vectors.at(0, c);
            for (idx_t r = 1; r < n; ++r) {
                lo = std::min(lo, vectors.at(r, c));
                hi = std::max(hi, vectors.at(r, c));
            }
        } else {
            double mean = 0.0;
            for (idx_t r = 0; r < n; ++r)
                mean += vectors.at(r, c);
            mean /= static_cast<double>(n);
            double var = 0.0;
            for (idx_t r = 0; r < n; ++r) {
                const double dvt = vectors.at(r, c) - mean;
                var += dvt * dvt;
            }
            const double sigma =
                std::sqrt(var / static_cast<double>(std::max<idx_t>(
                                    1, n - 1)));
            lo = static_cast<float>(mean - 3.0 * sigma);
            hi = static_cast<float>(mean + 3.0 * sigma);
        }
        if (hi <= lo)
            hi = lo + 1e-6f; // constant dimension: degenerate range
        lo_[static_cast<std::size_t>(c)] = lo;
        step_[static_cast<std::size_t>(c)] = (hi - lo) / 255.0f;
    }
}

void
ScalarQuantizer::encodeOne(const float *vec, std::uint8_t *out) const
{
    JUNO_ASSERT(trained(), "encode before train");
    for (idx_t c = 0; c < dim(); ++c) {
        const float lo = lo_[static_cast<std::size_t>(c)];
        const float step = step_[static_cast<std::size_t>(c)];
        const float t = (vec[c] - lo) / step;
        out[c] = static_cast<std::uint8_t>(
            std::clamp(std::lround(t), 0L, 255L));
    }
}

std::vector<std::uint8_t>
ScalarQuantizer::encode(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(vectors.cols() == dim(), "dimension mismatch");
    std::vector<std::uint8_t> out(
        static_cast<std::size_t>(vectors.rows() * dim()));
    for (idx_t r = 0; r < vectors.rows(); ++r)
        encodeOne(vectors.row(r), out.data() + r * dim());
    return out;
}

void
ScalarQuantizer::decodeOne(const std::uint8_t *codes, float *out) const
{
    for (idx_t c = 0; c < dim(); ++c)
        out[c] = lo_[static_cast<std::size_t>(c)] +
                 step_[static_cast<std::size_t>(c)] *
                     static_cast<float>(codes[c]);
}

float
ScalarQuantizer::l2SqrToCode(const float *query,
                             const std::uint8_t *codes) const
{
    float acc = 0.0f;
    for (idx_t c = 0; c < dim(); ++c) {
        const float rec = lo_[static_cast<std::size_t>(c)] +
                          step_[static_cast<std::size_t>(c)] *
                              static_cast<float>(codes[c]);
        const float diff = query[c] - rec;
        acc += diff * diff;
    }
    return acc;
}

float
ScalarQuantizer::ipToCode(const float *query,
                          const std::uint8_t *codes) const
{
    float acc = 0.0f;
    for (idx_t c = 0; c < dim(); ++c) {
        const float rec = lo_[static_cast<std::size_t>(c)] +
                          step_[static_cast<std::size_t>(c)] *
                              static_cast<float>(codes[c]);
        acc += query[c] * rec;
    }
    return acc;
}

double
ScalarQuantizer::reconstructionError(FloatMatrixView vectors) const
{
    JUNO_REQUIRE(vectors.cols() == dim(), "dimension mismatch");
    std::vector<std::uint8_t> codes(static_cast<std::size_t>(dim()));
    std::vector<float> rec(static_cast<std::size_t>(dim()));
    double total = 0.0;
    for (idx_t r = 0; r < vectors.rows(); ++r) {
        encodeOne(vectors.row(r), codes.data());
        decodeOne(codes.data(), rec.data());
        total += static_cast<double>(
            l2Sqr(vectors.row(r), rec.data(), dim()));
    }
    return vectors.rows() ? total / static_cast<double>(vectors.rows())
                          : 0.0;
}

} // namespace juno
