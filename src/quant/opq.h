/**
 * @file
 * Optimized Product Quantization (Ge et al., CVPR 2013; cited by the
 * paper as a codebook-quality improvement orthogonal to JUNO's
 * contribution). OPQ learns an orthogonal rotation R of the input
 * space so that the rotated data quantizes with lower distortion, then
 * trains a plain PQ on the rotated vectors.
 *
 * Training alternates:
 *   1. fix R, train/encode PQ on X R;
 *   2. fix the codes, solve the orthogonal Procrustes problem
 *      R = argmin ||X R - decode(codes)||_F.
 *
 * Because the rotation is orthogonal, L2 distances are preserved, so
 * an OPQ-rotated index (including JUNO's RT scene, which only sees the
 * rotated subspace projections) searches the original metric exactly.
 */
#ifndef JUNO_QUANT_OPQ_H
#define JUNO_QUANT_OPQ_H

#include "common/linalg.h"
#include "quant/product_quantizer.h"

namespace juno {

/** Rotation + product quantizer pair. */
class OptimizedProductQuantizer {
  public:
    struct Params {
        PQParams pq;
        /** Alternating-minimisation iterations. */
        int opq_iters = 5;
        std::uint64_t seed = 17;
    };

    /** Trains R and the PQ on @p vectors (N x D). */
    void train(FloatMatrixView vectors, const Params &params);

    bool trained() const { return pq_.trained(); }
    const FloatMatrix &rotation() const { return rotation_; }
    const ProductQuantizer &pq() const { return pq_; }
    idx_t dim() const { return rotation_.rows(); }

    /** Applies the learned rotation: out = vec * R (row vector form). */
    void rotateOne(const float *vec, float *out) const;

    /** Rotates every row of @p vectors. */
    FloatMatrix rotate(FloatMatrixView vectors) const;

    /** Encodes (rotating first). */
    PQCodes encode(FloatMatrixView vectors) const;

    /** Decodes to the *original* (un-rotated) space. */
    std::vector<float> decode(const entry_t *codes) const;

    /** Mean squared reconstruction error in the original space. */
    double reconstructionError(FloatMatrixView vectors) const;

  private:
    FloatMatrix rotation_; ///< D x D orthogonal
    ProductQuantizer pq_;
};

} // namespace juno

#endif // JUNO_QUANT_OPQ_H
