/**
 * @file
 * List-resident interleaved PQ code layout (FAISS "fast scan" style).
 *
 * The legacy scan gathers each point's code row through `ids[i]`, so
 * every scanned point costs a random load of its row plus `subspaces`
 * dependent LUT lookups. This module re-materialises each inverted
 * list's codes contiguously in SIMD-friendly blocks of 32 points,
 * subspace-major within a block:
 *
 *   block[s * 32 + j] = code of the list's (block_base + j)-th point
 *                       in subspace s
 *
 * so the scan streams sequentially (`simd::adcScanInterleaved`) and
 * the 8/16-wide LUT gathers load their indices with one straight
 * vector load instead of an 8x8 transpose network.
 *
 * When the codebook is 4-bit (entries <= 16) a second, nibble-packed
 * plane is kept alongside: per block and subspace, 16 bytes where byte
 * j holds point j in the low nibble and point j+16 in the high nibble.
 * Together with a `QuantizedLut` (u8 entries, one scale + summed bias
 * per query) this feeds the in-register `pshufb` fast-scan kernel
 * (`simd::fastScanPq4`), which replaces the gather entirely.
 *
 * Tail blocks are zero-padded; consumers only read the first `size`
 * outputs of a list.
 */
#ifndef JUNO_QUANT_INTERLEAVED_CODES_H
#define JUNO_QUANT_INTERLEAVED_CODES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/matrix.h"
#include "common/mmap_blob.h"
#include "common/types.h"
#include "quant/product_quantizer.h"

namespace juno {

class SnapshotWriter;
class SnapshotReader;

/** Interleaved, list-resident copy of a PQCodes partitioned by lists. */
class InterleavedLists {
  public:
    /** Points per interleaved block (the fast-scan batch width). */
    static constexpr idx_t kBlockPoints = 32;
    /** Bytes per (block, subspace) in the nibble-packed plane. */
    static constexpr idx_t kPackedBytes = 16;

    /**
     * Builds the layout from the row-major @p codes and the inverted
     * @p lists (point ids per cluster). @p entries is the codebook
     * size E; the nibble plane is kept when E <= 16 (and the subspace
     * count keeps the u16 fast-scan accumulators overflow-free).
     * Pass @p with_packed4 = false when the consumer only streams the
     * float scan (JUNO's dense regime) to skip that plane entirely.
     */
    void build(const std::vector<std::vector<idx_t>> &lists,
               const PQCodes &codes, int entries,
               bool with_packed4 = true);

    bool built() const { return !lists_.empty(); }
    int subspaces() const { return subspaces_; }
    /** True when the 4-bit nibble-packed plane is present. */
    bool packed4() const { return packed4_; }
    idx_t numLists() const { return static_cast<idx_t>(lists_.size()); }

    /** Number of points in list @p c. */
    idx_t listSize(cluster_t c) const
    {
        JUNO_DCHECK(c >= 0 && c < numLists(),
                    "list " << c << " of " << numLists());
        return lists_[static_cast<std::size_t>(c)].size;
    }

    /** Interleaved entry_t blocks of list @p c (ceil(n/32) blocks). */
    const entry_t *listBlocks(cluster_t c) const
    {
        JUNO_DCHECK(c >= 0 && c < numLists(),
                    "list " << c << " of " << numLists());
        return blocks_.data() + lists_[static_cast<std::size_t>(c)].block;
    }

    /** Nibble-packed plane of list @p c; only valid when packed4(). */
    const std::uint8_t *listPacked(cluster_t c) const
    {
        JUNO_DCHECK(c >= 0 && c < numLists(),
                    "list " << c << " of " << numLists());
        JUNO_DCHECK(packed4_, "no nibble-packed plane built");
        return packed_.data() + lists_[static_cast<std::size_t>(c)].packed;
    }

    // -- Plane extents (IO-aware probing: madvise prefetch, mincore
    //    residency, hot-list cache copy-out operate on byte ranges) --

    /** Bytes of list @p c's interleaved block plane (zero-pad incl.). */
    std::size_t listBlocksBytes(cluster_t c) const
    {
        return listNumBlocks(c) *
               static_cast<std::size_t>(kBlockPoints) *
               static_cast<std::size_t>(subspaces_) * sizeof(entry_t);
    }

    /** Bytes of list @p c's nibble plane; 0 when not packed4(). */
    std::size_t listPackedBytes(cluster_t c) const
    {
        if (!packed4_)
            return 0;
        return listNumBlocks(c) *
               static_cast<std::size_t>(kPackedBytes) *
               static_cast<std::size_t>(subspaces_);
    }

    /** Whole-plane extents (bench eviction pressure, residency stats). */
    const entry_t *blocksData() const { return blocks_.data(); }
    std::size_t blocksBytes() const
    {
        return blocks_.size() * sizeof(entry_t);
    }
    const std::uint8_t *packedData() const { return packed_.data(); }
    std::size_t packedBytes() const { return packed_.size(); }

    /**
     * True when the planes view a memory-mapped snapshot (load() in
     * mmap mode) rather than owned heap memory: only then do madvise
     * prefetch and eviction hints have any effect.
     */
    bool planesMapped() const { return planes_mapped_; }

    /**
     * Persists the built layout as sections @p prefix + {"meta",
     * "blocks", "packed"} so the fast-scan state is restored rather
     * than rebuilt on open. The planes are bulk blobs: a snapshot
     * opened in mmap mode scans them straight out of the mapping.
     */
    void save(SnapshotWriter &writer, const std::string &prefix) const;

    /** Restores what save() wrote (replaces current state). */
    void load(SnapshotReader &reader, const std::string &prefix);

  private:
    struct ListRef {
        std::size_t block = 0;  ///< offset into blocks_
        std::size_t packed = 0; ///< offset into packed_
        idx_t size = 0;         ///< points in this list
    };

    std::size_t listNumBlocks(cluster_t c) const
    {
        JUNO_DCHECK(c >= 0 && c < numLists(),
                    "list " << c << " of " << numLists());
        const auto n = static_cast<std::size_t>(
            lists_[static_cast<std::size_t>(c)].size);
        return (n + static_cast<std::size_t>(kBlockPoints) - 1) /
               static_cast<std::size_t>(kBlockPoints);
    }

    int subspaces_ = 0;
    bool packed4_ = false;
    bool planes_mapped_ = false;
    std::vector<ListRef> lists_;
    PinnedArray<entry_t> blocks_;
    PinnedArray<std::uint8_t> packed_;
};

/**
 * Per-query quantisation of a dense float LUT to u8 entries for the
 * fast-scan kernel: table[s * 16 + e] = round((lut[s][e] - min_s) /
 * scale), with one global scale chosen so every subspace row fits in
 * [0, 255]. A scanned point's quantised sum q reconstructs to
 *
 *   score ~= bias + scale * q      (bias = sum_s min_s)
 *
 * and the reconstruction is monotone in q, so per-block min/max bounds
 * on q are exact bounds on the reconstructed scores (the TopK block
 * pre-filter relies on this). The per-subspace rounding error is at
 * most scale/2, i.e. |score - float_score| <= subspaces * scale / 2.
 */
struct QuantizedLut {
    /** subspaces x 16 u8 entries (rows padded when entries < 16). */
    std::vector<std::uint8_t> table;
    float scale = 1.0f;
    float bias = 0.0f;
    int subspaces = 0;
    /** Per-subspace minima (quantizeLut scratch, reused per query). */
    std::vector<float> row_min;
};

/**
 * Quantises @p lut (subspaces x entries, entries <= 16) into @p out,
 * reusing its buffer. Degenerate flat rows quantise with scale 1.
 */
void quantizeLut(const FloatMatrix &lut, int entries, QuantizedLut &out);

} // namespace juno

#endif // JUNO_QUANT_INTERLEAVED_CODES_H
