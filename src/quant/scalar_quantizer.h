/**
 * @file
 * Scalar quantization (paper Sec. 7 related work): each vector
 * component is quantized independently to 8 bits via a per-dimension
 * affine map. Simpler and weaker than PQ, it serves as a second
 * encoding baseline and as the compression layer for memory-bound
 * deployments.
 */
#ifndef JUNO_QUANT_SCALAR_QUANTIZER_H
#define JUNO_QUANT_SCALAR_QUANTIZER_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace juno {

/** Per-dimension 8-bit affine quantizer. */
class ScalarQuantizer {
  public:
    /** How the per-dimension range is estimated. */
    enum class RangeMode {
        /** [min, max] of the training data per dimension. */
        kMinMax,
        /** mean +- 3 sigma per dimension (robust to outliers). */
        kThreeSigma,
    };

    /** Learns per-dimension ranges from @p vectors. */
    void train(FloatMatrixView vectors,
               RangeMode mode = RangeMode::kMinMax);

    bool trained() const { return !lo_.empty(); }
    idx_t dim() const { return static_cast<idx_t>(lo_.size()); }

    /** Encodes one vector to @p out (dim bytes). */
    void encodeOne(const float *vec, std::uint8_t *out) const;

    /** Encodes every row; returns N x dim bytes, row-major. */
    std::vector<std::uint8_t> encode(FloatMatrixView vectors) const;

    /** Decodes one code row back to floats. */
    void decodeOne(const std::uint8_t *codes, float *out) const;

    /** Squared L2 between a float query and an encoded point. */
    float l2SqrToCode(const float *query, const std::uint8_t *codes) const;

    /** Inner product between a float query and an encoded point. */
    float ipToCode(const float *query, const std::uint8_t *codes) const;

    /** Mean squared reconstruction error on @p vectors. */
    double reconstructionError(FloatMatrixView vectors) const;

  private:
    std::vector<float> lo_;   ///< per-dimension lower bound
    std::vector<float> step_; ///< per-dimension step ((hi-lo)/255)
};

} // namespace juno

#endif // JUNO_QUANT_SCALAR_QUANTIZER_H
