#include "quant/interleaved_codes.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "registry/snapshot.h"

namespace juno {

namespace {
/** Snapshot meta-section format of the interleaved layout. */
constexpr std::uint32_t kFormatVersion = 1;
} // namespace

void
InterleavedLists::build(const std::vector<std::vector<idx_t>> &lists,
                        const PQCodes &codes, int entries,
                        bool with_packed4)
{
    JUNO_REQUIRE(codes.num_subspaces > 0, "codes not encoded");
    subspaces_ = codes.num_subspaces;
    // The u16 fast-scan accumulator holds subspaces * 255 at most.
    packed4_ = with_packed4 && entries <= 16 && subspaces_ <= 256;
    lists_.clear();
    lists_.resize(lists.size());

    const auto sub = static_cast<std::size_t>(subspaces_);
    std::size_t total_blocks = 0;
    for (const auto &list : lists)
        total_blocks += (list.size() +
                         static_cast<std::size_t>(kBlockPoints) - 1) /
                        static_cast<std::size_t>(kBlockPoints);
    // Built into owning vectors, then pinned; a snapshot load replaces
    // them with views into the mapped planes instead.
    std::vector<entry_t> blocks(
        total_blocks * static_cast<std::size_t>(kBlockPoints) * sub, 0);
    std::vector<std::uint8_t> packed(
        packed4_ ? total_blocks * static_cast<std::size_t>(kPackedBytes) *
                       sub
                 : 0,
        0);

    std::size_t block_off = 0;
    std::size_t packed_off = 0;
    for (std::size_t c = 0; c < lists.size(); ++c) {
        const auto &list = lists[c];
        ListRef &ref = lists_[c];
        ref.block = block_off;
        ref.packed = packed_off;
        ref.size = static_cast<idx_t>(list.size());

        const std::size_t nblocks =
            (list.size() + static_cast<std::size_t>(kBlockPoints) - 1) /
            static_cast<std::size_t>(kBlockPoints);
        for (std::size_t b = 0; b < nblocks; ++b) {
            entry_t *blk =
                blocks.data() + block_off +
                b * static_cast<std::size_t>(kBlockPoints) * sub;
            std::uint8_t *pk =
                packed4_ ? packed.data() + packed_off +
                               b * static_cast<std::size_t>(kPackedBytes) *
                                   sub
                         : nullptr;
            const std::size_t base =
                b * static_cast<std::size_t>(kBlockPoints);
            const std::size_t count = std::min(
                static_cast<std::size_t>(kBlockPoints),
                list.size() - base);
            for (std::size_t j = 0; j < count; ++j) {
                const entry_t *row = codes.row(list[base + j]);
                for (std::size_t s = 0; s < sub; ++s) {
                    const entry_t e = row[s];
                    blk[s * static_cast<std::size_t>(kBlockPoints) + j] =
                        e;
                    if (pk != nullptr) {
                        JUNO_ASSERT(e < 16, "PQ4 code " << e);
                        std::uint8_t &byte =
                            pk[s * static_cast<std::size_t>(
                                       kPackedBytes) +
                               (j & 15)];
                        byte = static_cast<std::uint8_t>(
                            j < 16 ? (byte & 0xF0u) | e
                                   : (byte & 0x0Fu) |
                                         static_cast<unsigned>(e) << 4);
                    }
                }
            }
        }
        block_off +=
            nblocks * static_cast<std::size_t>(kBlockPoints) * sub;
        if (packed4_)
            packed_off +=
                nblocks * static_cast<std::size_t>(kPackedBytes) * sub;
    }

    blocks_ = std::move(blocks);
    packed_ = std::move(packed);
    planes_mapped_ = false;
}

void
InterleavedLists::save(SnapshotWriter &writer,
                       const std::string &prefix) const
{
    JUNO_REQUIRE(built(), "save before build");
    Writer &meta = writer.section(prefix + "meta");
    meta.writePod<std::uint32_t>(kFormatVersion);
    meta.writePod<std::int32_t>(subspaces_);
    meta.writePod<std::uint8_t>(packed4_ ? 1 : 0);
    meta.writePod<std::uint64_t>(lists_.size());
    for (const auto &ref : lists_) {
        meta.writePod<std::uint64_t>(ref.block);
        meta.writePod<std::uint64_t>(ref.packed);
        meta.writePod<std::int64_t>(ref.size);
    }
    meta.writePod<std::uint64_t>(blocks_.size());
    meta.writePod<std::uint64_t>(packed_.size());
    writer.addBlob(prefix + "blocks", blocks_.data(),
                   blocks_.size() * sizeof(entry_t));
    if (packed4_)
        writer.addBlob(prefix + "packed", packed_.data(),
                       packed_.size());
}

void
InterleavedLists::load(SnapshotReader &reader, const std::string &prefix)
{
    const std::string what =
        reader.path() + " [" + prefix + "interleaved]";
    auto meta = reader.stream(prefix + "meta");
    checkFormatVersion(meta, kFormatVersion, what);
    subspaces_ = meta.readPod<std::int32_t>();
    packed4_ = meta.readPod<std::uint8_t>() != 0;
    const auto count = meta.readPod<std::uint64_t>();
    // Caps keep every bound below overflow-free in u64: subspaces
    // fits 17 bits, the plane counts 34 bits, so nblocks * width *
    // sub stays far under 2^64 (forged sizes cannot wrap the checks).
    JUNO_REQUIRE(subspaces_ > 0 && subspaces_ <= 65536 && count > 0,
                 what << ": corrupt layout header");
    lists_.assign(static_cast<std::size_t>(count), {});
    const auto sub = static_cast<std::size_t>(subspaces_);
    for (auto &ref : lists_) {
        ref.block = meta.readPod<std::uint64_t>();
        ref.packed = meta.readPod<std::uint64_t>();
        ref.size = meta.readPod<std::int64_t>();
        JUNO_REQUIRE(ref.size >= 0, what << ": negative list size");
    }
    const auto blocks_count = meta.readPod<std::uint64_t>();
    const auto packed_count = meta.readPod<std::uint64_t>();
    JUNO_REQUIRE(blocks_count <=
                         kMaxSerializedPayloadBytes / sizeof(entry_t) &&
                     packed_count <= kMaxSerializedPayloadBytes,
                 what << ": implausible plane size (corrupt file)");
    for (const auto &ref : lists_) {
        // Each stored point occupies at least one slot of the blocks
        // plane, so a plausible size is bounded by the plane itself.
        JUNO_REQUIRE(static_cast<std::uint64_t>(ref.size) <=
                         blocks_count,
                     what << ": list size out of range");
        const auto nblocks =
            (static_cast<std::uint64_t>(ref.size) + kBlockPoints - 1) /
            kBlockPoints;
        JUNO_REQUIRE(ref.block <= blocks_count &&
                         nblocks * kBlockPoints * sub <=
                             blocks_count - ref.block,
                     what << ": list block offset out of range");
        JUNO_REQUIRE(!packed4_ ||
                         (ref.packed <= packed_count &&
                          nblocks * kPackedBytes * sub <=
                              packed_count - ref.packed),
                     what << ": list packed offset out of range");
    }
    blocks_ = reader.blob(prefix + "blocks")
                  .array<entry_t>(static_cast<std::size_t>(blocks_count),
                                  what + " blocks");
    if (packed4_)
        packed_ = reader.blob(prefix + "packed")
                      .array<std::uint8_t>(
                          static_cast<std::size_t>(packed_count),
                          what + " packed");
    else
        packed_ = PinnedArray<std::uint8_t>();
    // IO hints only make sense against a file mapping: a buffered
    // load already materialised the planes in heap memory.
    planes_mapped_ = reader.mapped();
}

void
quantizeLut(const FloatMatrix &lut, int entries, QuantizedLut &out)
{
    JUNO_REQUIRE(entries > 0 && entries <= 16,
                 "quantizeLut needs entries <= 16, got " << entries);
    const int subspaces = static_cast<int>(lut.rows());
    out.subspaces = subspaces;
    out.table.assign(static_cast<std::size_t>(subspaces) * 16, 0);

    // One global scale keeps the accumulated sum linear in the raw
    // scores; per-subspace biases fold into a single additive term.
    // The minima land in row_min so the quantisation pass below does
    // not rescan the LUT.
    out.row_min.resize(static_cast<std::size_t>(subspaces));
    float bias = 0.0f;
    float max_range = 0.0f;
    for (int s = 0; s < subspaces; ++s) {
        const float *row = lut.row(s);
        float lo = row[0], hi = row[0];
        for (int e = 1; e < entries; ++e) {
            lo = std::min(lo, row[e]);
            hi = std::max(hi, row[e]);
        }
        out.row_min[static_cast<std::size_t>(s)] = lo;
        bias += lo;
        max_range = std::max(max_range, hi - lo);
    }
    const float scale = max_range > 0.0f ? max_range / 255.0f : 1.0f;
    const float inv_scale = 1.0f / scale;
    out.scale = scale;
    out.bias = bias;

    for (int s = 0; s < subspaces; ++s) {
        const float *row = lut.row(s);
        const float lo = out.row_min[static_cast<std::size_t>(s)];
        std::uint8_t *qrow =
            out.table.data() + static_cast<std::size_t>(s) * 16;
        for (int e = 0; e < entries; ++e) {
            const float q = std::nearbyint((row[e] - lo) * inv_scale);
            qrow[e] = static_cast<std::uint8_t>(
                std::min(255.0f, std::max(0.0f, q)));
        }
    }
}

} // namespace juno
