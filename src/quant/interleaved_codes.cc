#include "quant/interleaved_codes.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace juno {

void
InterleavedLists::build(const std::vector<std::vector<idx_t>> &lists,
                        const PQCodes &codes, int entries,
                        bool with_packed4)
{
    JUNO_REQUIRE(codes.num_subspaces > 0, "codes not encoded");
    subspaces_ = codes.num_subspaces;
    // The u16 fast-scan accumulator holds subspaces * 255 at most.
    packed4_ = with_packed4 && entries <= 16 && subspaces_ <= 256;
    lists_.clear();
    lists_.resize(lists.size());
    blocks_.clear();
    packed_.clear();

    const auto sub = static_cast<std::size_t>(subspaces_);
    std::size_t total_blocks = 0;
    for (const auto &list : lists)
        total_blocks += (list.size() +
                         static_cast<std::size_t>(kBlockPoints) - 1) /
                        static_cast<std::size_t>(kBlockPoints);
    blocks_.assign(total_blocks * static_cast<std::size_t>(kBlockPoints) *
                       sub,
                   0);
    if (packed4_)
        packed_.assign(total_blocks *
                           static_cast<std::size_t>(kPackedBytes) * sub,
                       0);

    std::size_t block_off = 0;
    std::size_t packed_off = 0;
    for (std::size_t c = 0; c < lists.size(); ++c) {
        const auto &list = lists[c];
        ListRef &ref = lists_[c];
        ref.block = block_off;
        ref.packed = packed_off;
        ref.size = static_cast<idx_t>(list.size());

        const std::size_t nblocks =
            (list.size() + static_cast<std::size_t>(kBlockPoints) - 1) /
            static_cast<std::size_t>(kBlockPoints);
        for (std::size_t b = 0; b < nblocks; ++b) {
            entry_t *blk =
                blocks_.data() + block_off +
                b * static_cast<std::size_t>(kBlockPoints) * sub;
            std::uint8_t *pk =
                packed4_ ? packed_.data() + packed_off +
                               b * static_cast<std::size_t>(kPackedBytes) *
                                   sub
                         : nullptr;
            const std::size_t base =
                b * static_cast<std::size_t>(kBlockPoints);
            const std::size_t count = std::min(
                static_cast<std::size_t>(kBlockPoints),
                list.size() - base);
            for (std::size_t j = 0; j < count; ++j) {
                const entry_t *row = codes.row(list[base + j]);
                for (std::size_t s = 0; s < sub; ++s) {
                    const entry_t e = row[s];
                    blk[s * static_cast<std::size_t>(kBlockPoints) + j] =
                        e;
                    if (pk != nullptr) {
                        JUNO_ASSERT(e < 16, "PQ4 code " << e);
                        std::uint8_t &byte =
                            pk[s * static_cast<std::size_t>(
                                       kPackedBytes) +
                               (j & 15)];
                        byte = static_cast<std::uint8_t>(
                            j < 16 ? (byte & 0xF0u) | e
                                   : (byte & 0x0Fu) |
                                         static_cast<unsigned>(e) << 4);
                    }
                }
            }
        }
        block_off +=
            nblocks * static_cast<std::size_t>(kBlockPoints) * sub;
        if (packed4_)
            packed_off +=
                nblocks * static_cast<std::size_t>(kPackedBytes) * sub;
    }
}

void
quantizeLut(const FloatMatrix &lut, int entries, QuantizedLut &out)
{
    JUNO_REQUIRE(entries > 0 && entries <= 16,
                 "quantizeLut needs entries <= 16, got " << entries);
    const int subspaces = static_cast<int>(lut.rows());
    out.subspaces = subspaces;
    out.table.assign(static_cast<std::size_t>(subspaces) * 16, 0);

    // One global scale keeps the accumulated sum linear in the raw
    // scores; per-subspace biases fold into a single additive term.
    // The minima land in row_min so the quantisation pass below does
    // not rescan the LUT.
    out.row_min.resize(static_cast<std::size_t>(subspaces));
    float bias = 0.0f;
    float max_range = 0.0f;
    for (int s = 0; s < subspaces; ++s) {
        const float *row = lut.row(s);
        float lo = row[0], hi = row[0];
        for (int e = 1; e < entries; ++e) {
            lo = std::min(lo, row[e]);
            hi = std::max(hi, row[e]);
        }
        out.row_min[static_cast<std::size_t>(s)] = lo;
        bias += lo;
        max_range = std::max(max_range, hi - lo);
    }
    const float scale = max_range > 0.0f ? max_range / 255.0f : 1.0f;
    const float inv_scale = 1.0f / scale;
    out.scale = scale;
    out.bias = bias;

    for (int s = 0; s < subspaces; ++s) {
        const float *row = lut.row(s);
        const float lo = out.row_min[static_cast<std::size_t>(s)];
        std::uint8_t *qrow =
            out.table.data() + static_cast<std::size_t>(s) * 16;
        for (int e = 0; e < entries; ++e) {
            const float q = std::nearbyint((row[e] - lo) * inv_scale);
            qrow[e] = static_cast<std::uint8_t>(
                std::min(255.0f, std::max(0.0f, q)));
        }
    }
}

} // namespace juno
