/**
 * @file
 * OptiX-like launch facade over the software ray tracer.
 *
 * The paper evaluates JUNO on three GPUs (Sec. 6.4): RTX 4090 (Gen-3
 * RT cores), A40 (Gen-2) and A100 (no RT cores; OptiX silently falls
 * back to CUDA-core traversal). RtDevice models exactly that choice:
 * an execution mode (BVH vs. linear fallback) plus a throughput cost
 * model so Fig. 14's sensitivity study can be regenerated from the
 * traversal counters.
 */
#ifndef JUNO_RTCORE_DEVICE_H
#define JUNO_RTCORE_DEVICE_H

#include <string>
#include <vector>

#include "common/timer.h"
#include "rtcore/scene.h"

namespace juno {
namespace rt {

/** Where "traversal" executes. */
enum class ExecMode {
    /** Hardware-style BVH traversal (RT cores present). */
    kRtCore,
    /** Linear primitive scan (OptiX CUDA-core fallback, A100). */
    kCudaFallback,
};

/**
 * Relative cost weights of traversal operations, used to translate
 * counter totals into modelled time for a hypothetical device. The
 * defaults are unit-less relatives; what matters for Fig. 14(b) is the
 * *ratio* between devices, controlled by rt_throughput.
 */
struct RtCostModel {
    std::string name = "generic";
    /** Cost per BVH node visit (AABB test + traversal step). */
    double node_visit_cost = 1.0;
    /** Cost per primitive intersection test. */
    double prim_test_cost = 2.0;
    /** Cost to set up one ray. */
    double ray_setup_cost = 4.0;
    /** RT throughput multiplier (Gen-3 = 2x Gen-2 per the Ada paper). */
    double rt_throughput = 1.0;

    /** Modelled cost of a traversal counter total. */
    double
    cost(const TraversalStats &stats) const
    {
        const double raw =
            static_cast<double>(stats.node_visits) * node_visit_cost +
            static_cast<double>(stats.prim_tests) * prim_test_cost +
            static_cast<double>(stats.rays) * ray_setup_cost;
        return raw / rt_throughput;
    }
};

/** Cost model presets for the paper's three evaluation GPUs. */
RtCostModel costModelRtx4090();
RtCostModel costModelA40();
RtCostModel costModelA100();

/** Launch outcome: counters plus wall time. */
struct LaunchResult {
    TraversalStats stats;
    double seconds = 0.0;
};

/**
 * Stateless launcher: binds an execution mode and accumulates global
 * statistics across launches (like a CUDA context would).
 */
class RtDevice {
  public:
    explicit RtDevice(ExecMode mode = ExecMode::kRtCore) : mode_(mode) {}

    ExecMode mode() const { return mode_; }
    void setMode(ExecMode mode) { mode_ = mode; }

    const TraversalStats &totalStats() const { return total_; }
    void resetStats() { total_.reset(); }

    /**
     * Folds counters from another device into this one. Parallel
     * search workers launch on private devices and merge here after
     * their chunk, so totals stay exact without contended atomics.
     */
    void mergeStats(const TraversalStats &stats) { total_.merge(stats); }

    /**
     * Traces every ray in @p rays against @p scene, invoking
     * fn(const Ray&, const Hit&) -> bool per intersection (false
     * terminates that ray). Returns per-launch counters and wall time.
     */
    template <typename AnyHitFn>
    LaunchResult
    launch(const Scene &scene, const std::vector<Ray> &rays, AnyHitFn &&fn)
    {
        Timer timer;
        LaunchResult result;
        for (const Ray &ray : rays) {
            auto per_hit = [&](const Hit &hit) { return fn(ray, hit); };
            if (mode_ == ExecMode::kRtCore)
                scene.trace(ray, result.stats, per_hit);
            else
                scene.traceLinear(ray, result.stats, per_hit);
        }
        result.seconds = timer.seconds();
        total_.merge(result.stats);
        return result;
    }

  private:
    ExecMode mode_;
    TraversalStats total_;
};

} // namespace rt
} // namespace juno

#endif // JUNO_RTCORE_DEVICE_H
