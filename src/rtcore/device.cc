#include "rtcore/device.h"

namespace juno {
namespace rt {

RtCostModel
costModelRtx4090()
{
    RtCostModel m;
    m.name = "RTX4090";
    // Ada (Gen-3) RT cores: 2x Gen-2 throughput (NVIDIA Ada whitepaper).
    m.rt_throughput = 2.0;
    return m;
}

RtCostModel
costModelA40()
{
    RtCostModel m;
    m.name = "A40";
    m.rt_throughput = 1.0; // Gen-2 baseline
    return m;
}

RtCostModel
costModelA100()
{
    RtCostModel m;
    m.name = "A100";
    // No RT cores: traversal runs on CUDA cores. The fallback executes
    // linear primitive tests, and each software step is slower than a
    // hardware step; 0.25 reflects the paper's observation that the
    // A100 loses to RT-core GPUs at high quality despite strong CUDA
    // throughput.
    m.rt_throughput = 0.25;
    return m;
}

} // namespace rt
} // namespace juno
