#include "rtcore/scene.h"

#include "common/logging.h"

namespace juno {
namespace rt {

std::uint32_t
Scene::addSphere(const Sphere &s)
{
    JUNO_REQUIRE(s.radius > 0.0f, "sphere radius must be positive");
    spheres_.push_back(s);
    built_ = false;
    return static_cast<std::uint32_t>(spheres_.size() - 1);
}

void
Scene::addSpheres(const std::vector<Sphere> &spheres)
{
    for (const auto &s : spheres)
        addSphere(s);
}

void
Scene::build(const BvhBuildParams &params)
{
    bvh_.build(spheres_, params);
    built_ = true;
}

} // namespace rt
} // namespace juno
