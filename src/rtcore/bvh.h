/**
 * @file
 * Bounding volume hierarchy over sphere primitives.
 *
 * This is the software model of the RT core's two hardware units
 * (paper Sec. 2.2): the AABB interval test and the BVH tree traversal.
 * The builder uses binned SAH (the standard GPU BVH build heuristic);
 * traversal is stack-based and counts node visits / primitive tests so
 * experiments can reason about traversal cost the way the paper
 * reasons about RT-core throughput (Fig. 14(b)).
 */
#ifndef JUNO_RTCORE_BVH_H
#define JUNO_RTCORE_BVH_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "rtcore/geometry.h"

namespace juno {
namespace rt {

/** Counters accumulated during traversal; the RT cost model input. */
struct TraversalStats {
    std::uint64_t rays = 0;
    std::uint64_t node_visits = 0;
    std::uint64_t aabb_tests = 0;
    std::uint64_t prim_tests = 0;
    std::uint64_t hits = 0;

    void
    merge(const TraversalStats &o)
    {
        rays += o.rays;
        node_visits += o.node_visits;
        aabb_tests += o.aabb_tests;
        prim_tests += o.prim_tests;
        hits += o.hits;
    }

    void reset() { *this = TraversalStats{}; }
};

/** How the BVH builder splits nodes. */
enum class SplitPolicy {
    /** Binned surface-area heuristic (default; what GPUs use). */
    kBinnedSah,
    /** Median split on the widest axis (cheaper build, worse tree). */
    kMedian,
};

/** Build settings. */
struct BvhBuildParams {
    SplitPolicy policy = SplitPolicy::kBinnedSah;
    int sah_bins = 16;
    int max_leaf_size = 4;
};

/**
 * Static BVH. Primitives are referenced by index into the sphere array
 * supplied at build time; the array must outlive and stay unchanged
 * while the BVH is used.
 */
class Bvh {
  public:
    /** Flat node: internal nodes store children, leaves a prim range. */
    struct Node {
        Aabb bounds;
        /** Index of left child; right child is left + 1-adjacent. */
        std::int32_t left = -1;
        std::int32_t right = -1;
        /** Leaf payload: [first, first+count) into prim_order_. */
        std::int32_t first = 0;
        std::int32_t count = 0;

        bool isLeaf() const { return count > 0; }
    };

    /** Builds over @p spheres. Empty input produces an empty BVH. */
    void build(const std::vector<Sphere> &spheres,
               const BvhBuildParams &params = {});

    bool empty() const { return nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Maximum leaf depth (root = 0); log-scale in N for a good build. */
    int depth() const;

    /** Sum of leaf SAH cost, for build-quality comparisons. */
    double sahCost() const;

    /**
     * Traverses with an any-hit program. @p fn is called as
     * fn(const Hit&) -> bool for every primitive intersection inside
     * the ray interval; returning false terminates the traversal early
     * (OptiX's optixTerminateRay). Hit order is *not* sorted by t, as
     * with real any-hit shaders.
     */
    template <typename AnyHitFn>
    void
    traverse(const Ray &ray, const std::vector<Sphere> &spheres,
             TraversalStats &stats, AnyHitFn &&fn) const
    {
        ++stats.rays;
        if (nodes_.empty())
            return;
        const Vec3 inv_dir{1.0f / ray.dir.x, 1.0f / ray.dir.y,
                           1.0f / ray.dir.z};
        // Explicit stack; depth 64 covers > 10^9 primitives.
        std::int32_t stack[64];
        int top = 0;
        stack[top++] = 0;
        while (top > 0) {
            const Node &node = nodes_[static_cast<std::size_t>(stack[--top])];
            ++stats.node_visits;
            ++stats.aabb_tests;
            if (!node.bounds.hitBy(ray, inv_dir))
                continue;
            if (node.isLeaf()) {
                for (std::int32_t i = 0; i < node.count; ++i) {
                    const std::uint32_t prim = prim_order_[
                        static_cast<std::size_t>(node.first + i)];
                    ++stats.prim_tests;
                    float thit;
                    if (intersectSphere(ray, spheres[prim], thit)) {
                        ++stats.hits;
                        Hit hit;
                        hit.prim_id = prim;
                        hit.user_id = spheres[prim].user_id;
                        hit.thit = thit;
                        if (!fn(static_cast<const Hit &>(hit)))
                            return;
                    }
                }
            } else {
                stack[top++] = node.left;
                stack[top++] = node.right;
            }
        }
    }

    /**
     * Reference traversal: brute-force linear scan over all spheres.
     * Models OptiX's CUDA-core fallback on GPUs without RT cores
     * (paper Fig. 14(a)) and serves as the correctness oracle.
     */
    template <typename AnyHitFn>
    static void
    traverseLinear(const Ray &ray, const std::vector<Sphere> &spheres,
                   TraversalStats &stats, AnyHitFn &&fn)
    {
        ++stats.rays;
        for (std::uint32_t prim = 0; prim < spheres.size(); ++prim) {
            ++stats.prim_tests;
            float thit;
            if (intersectSphere(ray, spheres[prim], thit)) {
                ++stats.hits;
                Hit hit;
                hit.prim_id = prim;
                hit.user_id = spheres[prim].user_id;
                hit.thit = thit;
                if (!fn(static_cast<const Hit &>(hit)))
                    return;
            }
        }
    }

  private:
    std::int32_t buildRecursive(std::vector<Aabb> &prim_bounds,
                                std::int32_t first, std::int32_t count,
                                const BvhBuildParams &params);

    std::vector<Node> nodes_;
    /** Permutation of primitive ids referenced by leaves. */
    std::vector<std::uint32_t> prim_order_;
};

} // namespace rt
} // namespace juno

#endif // JUNO_RTCORE_BVH_H
