#include "rtcore/bvh.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace juno {
namespace rt {
namespace {

/** Widest axis of a box: 0=x, 1=y, 2=z. */
int
widestAxis(const Aabb &b)
{
    const float dx = b.hi.x - b.lo.x;
    const float dy = b.hi.y - b.lo.y;
    const float dz = b.hi.z - b.lo.z;
    if (dx >= dy && dx >= dz)
        return 0;
    return dy >= dz ? 1 : 2;
}

float
axisOf(const Vec3 &v, int axis)
{
    return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

} // namespace

void
Bvh::build(const std::vector<Sphere> &spheres, const BvhBuildParams &params)
{
    nodes_.clear();
    prim_order_.clear();
    if (spheres.empty())
        return;
    JUNO_REQUIRE(params.max_leaf_size > 0, "max_leaf_size must be positive");
    JUNO_REQUIRE(params.sah_bins > 1, "sah_bins must exceed 1");

    prim_order_.resize(spheres.size());
    std::iota(prim_order_.begin(), prim_order_.end(), 0u);

    std::vector<Aabb> prim_bounds(spheres.size());
    for (std::size_t i = 0; i < spheres.size(); ++i)
        prim_bounds[i] = Aabb::of(spheres[i]);

    nodes_.reserve(spheres.size() * 2);
    buildRecursive(prim_bounds, 0, static_cast<std::int32_t>(spheres.size()),
                   params);
}

std::int32_t
Bvh::buildRecursive(std::vector<Aabb> &prim_bounds, std::int32_t first,
                    std::int32_t count, const BvhBuildParams &params)
{
    const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    Aabb bounds;
    Aabb centroid_bounds;
    for (std::int32_t i = first; i < first + count; ++i) {
        const Aabb &pb =
            prim_bounds[prim_order_[static_cast<std::size_t>(i)]];
        bounds.grow(pb);
        centroid_bounds.grow(pb.centroid());
    }
    nodes_[static_cast<std::size_t>(node_id)].bounds = bounds;

    const int axis = widestAxis(centroid_bounds);
    const float axis_lo = axisOf(centroid_bounds.lo, axis);
    const float axis_hi = axisOf(centroid_bounds.hi, axis);
    const bool degenerate = axis_hi - axis_lo <= 0.0f;

    if (count <= params.max_leaf_size || degenerate) {
        auto &node = nodes_[static_cast<std::size_t>(node_id)];
        node.first = first;
        node.count = count;
        return node_id;
    }

    auto begin = prim_order_.begin() + first;
    auto end = begin + count;
    std::int32_t mid = count / 2;

    if (params.policy == SplitPolicy::kMedian) {
        std::nth_element(begin, begin + mid, end,
                         [&](std::uint32_t a, std::uint32_t b) {
                             return axisOf(prim_bounds[a].centroid(), axis) <
                                    axisOf(prim_bounds[b].centroid(), axis);
                         });
    } else {
        // Binned SAH: bucket centroids, evaluate the SAH at each of the
        // bins-1 candidate planes, take the cheapest.
        const int bins = params.sah_bins;
        std::vector<std::int32_t> bin_count(static_cast<std::size_t>(bins),
                                            0);
        std::vector<Aabb> bin_bounds(static_cast<std::size_t>(bins));
        const float inv_extent =
            static_cast<float>(bins) / (axis_hi - axis_lo);
        auto bin_of = [&](std::uint32_t prim) {
            const float c = axisOf(prim_bounds[prim].centroid(), axis);
            int b = static_cast<int>((c - axis_lo) * inv_extent);
            return std::clamp(b, 0, bins - 1);
        };
        for (auto it = begin; it != end; ++it) {
            const int b = bin_of(*it);
            ++bin_count[static_cast<std::size_t>(b)];
            bin_bounds[static_cast<std::size_t>(b)].grow(prim_bounds[*it]);
        }

        // Sweep from the right to precompute suffix areas/counts.
        std::vector<float> right_area(static_cast<std::size_t>(bins), 0.0f);
        std::vector<std::int32_t> right_count(
            static_cast<std::size_t>(bins), 0);
        Aabb acc;
        std::int32_t acc_count = 0;
        for (int b = bins - 1; b >= 1; --b) {
            acc.grow(bin_bounds[static_cast<std::size_t>(b)]);
            acc_count += bin_count[static_cast<std::size_t>(b)];
            right_area[static_cast<std::size_t>(b)] = acc.surfaceArea();
            right_count[static_cast<std::size_t>(b)] = acc_count;
        }

        // Sweep from the left, evaluating each split plane.
        float best_cost = std::numeric_limits<float>::max();
        int best_plane = -1;
        Aabb left_acc;
        std::int32_t left_count = 0;
        for (int b = 0; b < bins - 1; ++b) {
            left_acc.grow(bin_bounds[static_cast<std::size_t>(b)]);
            left_count += bin_count[static_cast<std::size_t>(b)];
            const std::int32_t rc =
                right_count[static_cast<std::size_t>(b + 1)];
            if (left_count == 0 || rc == 0)
                continue;
            const float cost =
                left_acc.surfaceArea() * static_cast<float>(left_count) +
                right_area[static_cast<std::size_t>(b + 1)] *
                    static_cast<float>(rc);
            if (cost < best_cost) {
                best_cost = cost;
                best_plane = b;
            }
        }

        if (best_plane < 0) {
            // All centroids in one bin; fall back to a median split.
            std::nth_element(
                begin, begin + mid, end,
                [&](std::uint32_t a, std::uint32_t b) {
                    return axisOf(prim_bounds[a].centroid(), axis) <
                           axisOf(prim_bounds[b].centroid(), axis);
                });
        } else {
            auto split_it = std::partition(
                begin, end, [&](std::uint32_t prim) {
                    return bin_of(prim) <= best_plane;
                });
            mid = static_cast<std::int32_t>(split_it - begin);
            if (mid == 0 || mid == count)
                mid = count / 2; // pathological partition; force balance
        }
    }

    const std::int32_t left =
        buildRecursive(prim_bounds, first, mid, params);
    const std::int32_t right =
        buildRecursive(prim_bounds, first + mid, count - mid, params);
    auto &node = nodes_[static_cast<std::size_t>(node_id)];
    node.left = left;
    node.right = right;
    node.count = 0;
    return node_id;
}

int
Bvh::depth() const
{
    if (nodes_.empty())
        return 0;
    // Iterative DFS carrying depth.
    std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
    int max_depth = 0;
    while (!stack.empty()) {
        auto [id, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const Node &node = nodes_[static_cast<std::size_t>(id)];
        if (!node.isLeaf()) {
            stack.push_back({node.left, d + 1});
            stack.push_back({node.right, d + 1});
        }
    }
    return max_depth;
}

double
Bvh::sahCost() const
{
    if (nodes_.empty())
        return 0.0;
    const float root_area = nodes_[0].bounds.surfaceArea();
    if (root_area <= 0.0f)
        return 0.0;
    double cost = 0.0;
    for (const Node &node : nodes_) {
        const double p = node.bounds.surfaceArea() / root_area;
        cost += node.isLeaf() ? p * node.count : p;
    }
    return cost;
}

} // namespace rt
} // namespace juno
