/**
 * @file
 * Geometric primitives for the software ray-tracing engine that stands
 * in for NVIDIA RT cores (DESIGN.md Sec. 2).
 *
 * Conventions follow OptiX: a ray has an origin, a direction, and a
 * valid interval [tmin, tmax]; an intersection is reported at the
 * parametric time thit of the first root inside the interval. JUNO
 * (paper Sec. 4.2) encodes its dynamic distance threshold purely in
 * tmax and recovers distances from thit, so these semantics are the
 * load-bearing part of the substitution.
 */
#ifndef JUNO_RTCORE_GEOMETRY_H
#define JUNO_RTCORE_GEOMETRY_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace juno {
namespace rt {

/** Minimal 3-vector. */
struct Vec3 {
    float x = 0, y = 0, z = 0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    float dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }
    float lengthSqr() const { return dot(*this); }
    float length() const { return std::sqrt(lengthSqr()); }
};

/** Sphere primitive; user_id round-trips to the hit shader. */
struct Sphere {
    Vec3 center;
    float radius = 0;
    /** Opaque payload (JUNO packs subspace/entry ids here). */
    std::uint64_t user_id = 0;
};

/** A ray with an OptiX-style valid interval. */
struct Ray {
    Vec3 origin;
    /** Direction; need not be unit length, but JUNO always uses +z. */
    Vec3 dir{0, 0, 1};
    float tmin = 0.0f;
    float tmax = std::numeric_limits<float>::max();
    /** Opaque payload (JUNO packs query/cluster/subspace ids here). */
    std::uint64_t payload = 0;
};

/** Hit record delivered to any-hit / closest-hit programs. */
struct Hit {
    /** Index of the sphere in the scene. */
    std::uint32_t prim_id = 0;
    /** The sphere's user_id. */
    std::uint64_t user_id = 0;
    /** Parametric hit time (first root in [tmin, tmax]). */
    float thit = 0;
};

/** Axis-aligned bounding box. */
struct Aabb {
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    bool
    valid() const
    {
        return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
    }

    void
    grow(const Vec3 &p)
    {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    void
    grow(const Aabb &b)
    {
        grow(b.lo);
        grow(b.hi);
    }

    /** Bounding box of a sphere. */
    static Aabb
    of(const Sphere &s)
    {
        Aabb b;
        b.grow(Vec3{s.center.x - s.radius, s.center.y - s.radius,
                    s.center.z - s.radius});
        b.grow(Vec3{s.center.x + s.radius, s.center.y + s.radius,
                    s.center.z + s.radius});
        return b;
    }

    Vec3
    centroid() const
    {
        return {(lo.x + hi.x) * 0.5f, (lo.y + hi.y) * 0.5f,
                (lo.z + hi.z) * 0.5f};
    }

    /** Surface area (for the SAH build heuristic). */
    float
    surfaceArea() const
    {
        if (!valid())
            return 0.0f;
        const float dx = hi.x - lo.x, dy = hi.y - lo.y, dz = hi.z - lo.z;
        return 2.0f * (dx * dy + dy * dz + dz * dx);
    }

    /**
     * Slab test: true when the ray interval [tmin, tmax] overlaps the
     * box. @p inv_dir holds 1/dir per axis (+-inf for zero axes, which
     * the IEEE interval arithmetic below handles correctly).
     */
    bool
    hitBy(const Ray &ray, const Vec3 &inv_dir) const
    {
        float t0 = ray.tmin, t1 = ray.tmax;

        float tx0 = (lo.x - ray.origin.x) * inv_dir.x;
        float tx1 = (hi.x - ray.origin.x) * inv_dir.x;
        if (tx0 > tx1)
            std::swap(tx0, tx1);
        // min/max with NaN-suppression: if tx is NaN keep t.
        t0 = tx0 > t0 ? tx0 : t0;
        t1 = tx1 < t1 ? tx1 : t1;
        if (t0 > t1)
            return false;

        float ty0 = (lo.y - ray.origin.y) * inv_dir.y;
        float ty1 = (hi.y - ray.origin.y) * inv_dir.y;
        if (ty0 > ty1)
            std::swap(ty0, ty1);
        t0 = ty0 > t0 ? ty0 : t0;
        t1 = ty1 < t1 ? ty1 : t1;
        if (t0 > t1)
            return false;

        float tz0 = (lo.z - ray.origin.z) * inv_dir.z;
        float tz1 = (hi.z - ray.origin.z) * inv_dir.z;
        if (tz0 > tz1)
            std::swap(tz0, tz1);
        t0 = tz0 > t0 ? tz0 : t0;
        t1 = tz1 < t1 ? tz1 : t1;
        return t0 <= t1;
    }
};

/**
 * Ray/sphere intersection. Returns true and sets @p thit to the first
 * root inside [tmin, tmax] when the ray hits @p s.
 *
 * For JUNO rays (unit +z direction, sphere plane one unit ahead,
 * radius R) this yields thit = 1 - sqrt(R^2 - d^2) with d the 2-D
 * distance between query projection and entry — the identity the paper
 * uses to reconstruct distances without memory reads (Fig. 9 left).
 */
inline bool
intersectSphere(const Ray &ray, const Sphere &s, float &thit)
{
    const Vec3 oc = ray.origin - s.center;
    const float a = ray.dir.lengthSqr();
    const float half_b = oc.dot(ray.dir);
    const float c = oc.lengthSqr() - s.radius * s.radius;
    const float disc = half_b * half_b - a * c;
    if (disc < 0.0f)
        return false;
    const float sqrt_disc = std::sqrt(disc);
    // Entry root first, exit root if the entry is before tmin.
    float t = (-half_b - sqrt_disc) / a;
    if (t < ray.tmin)
        t = (-half_b + sqrt_disc) / a;
    if (t < ray.tmin || t > ray.tmax)
        return false;
    thit = t;
    return true;
}

} // namespace rt
} // namespace juno

#endif // JUNO_RTCORE_GEOMETRY_H
