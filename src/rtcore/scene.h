/**
 * @file
 * A traversable scene: sphere geometry plus its acceleration structure,
 * mirroring an OptiX geometry acceleration structure (GAS). JUNO's
 * offline phase builds one scene holding every codebook entry of every
 * subspace (paper Alg. 1, lines 10-11).
 */
#ifndef JUNO_RTCORE_SCENE_H
#define JUNO_RTCORE_SCENE_H

#include <vector>

#include "rtcore/bvh.h"
#include "rtcore/geometry.h"

namespace juno {
namespace rt {

/** Sphere geometry + BVH; build once, trace many. */
class Scene {
  public:
    /** Adds a sphere before build(). Returns its prim id. */
    std::uint32_t addSphere(const Sphere &s);

    /** Bulk-add. */
    void addSpheres(const std::vector<Sphere> &spheres);

    /** Builds the acceleration structure; invalidates prior builds. */
    void build(const BvhBuildParams &params = {});

    bool built() const { return built_; }
    std::size_t sphereCount() const { return spheres_.size(); }
    const std::vector<Sphere> &spheres() const { return spheres_; }
    const Sphere &sphere(std::uint32_t id) const { return spheres_.at(id); }
    const Bvh &bvh() const { return bvh_; }

    /** Any-hit traversal through the BVH (requires built()). */
    template <typename AnyHitFn>
    void
    trace(const Ray &ray, TraversalStats &stats, AnyHitFn &&fn) const
    {
        bvh_.traverse(ray, spheres_, stats, std::forward<AnyHitFn>(fn));
    }

    /** Linear-scan traversal (the "no RT core" CUDA fallback path). */
    template <typename AnyHitFn>
    void
    traceLinear(const Ray &ray, TraversalStats &stats, AnyHitFn &&fn) const
    {
        Bvh::traverseLinear(ray, spheres_, stats, std::forward<AnyHitFn>(fn));
    }

  private:
    std::vector<Sphere> spheres_;
    Bvh bvh_;
    bool built_ = false;
};

} // namespace rt
} // namespace juno

#endif // JUNO_RTCORE_SCENE_H
