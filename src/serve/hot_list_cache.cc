#include "serve/hot_list_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/parse.h"

namespace juno {

HotListCache::HotListCache(std::size_t budget_bytes, idx_t num_lists)
    : budget_(budget_bytes)
{
    JUNO_REQUIRE(num_lists >= 0, "negative list count");
    if (budget_ > 0)
        freq_.assign(static_cast<std::size_t>(num_lists), 0);
    counters_.budget_bytes = budget_;
}

std::uint64_t
HotListCache::ageInterval() const
{
    // Halve every counter once the table has seen roughly eight
    // accesses per list: long enough for frequencies to mean
    // something, short enough that a traffic shift re-ranks the
    // lists within a few thousand queries.
    return std::max<std::uint64_t>(1024, 8 * freq_.size());
}

void
HotListCache::ageLocked()
{
    for (auto &f : freq_)
        f >>= 1;
}

HotListCache::EntryPtr
HotListCache::find(cluster_t list)
{
    if (!enabled())
        return nullptr;
    MutexLock lock(mutex_);
    const auto idx = static_cast<std::size_t>(list);
    JUNO_ASSERT(idx < freq_.size(), "list " << list << " of "
                                            << freq_.size());
    ++counters_.lookups;
    if (freq_[idx] < std::numeric_limits<std::uint32_t>::max())
        ++freq_[idx];
    if (++accesses_since_age_ >= ageInterval()) {
        accesses_since_age_ = 0;
        ageLocked();
    }
    const auto it = entries_.find(list);
    if (it == entries_.end()) {
        ++counters_.misses;
        return nullptr;
    }
    ++counters_.hits;
    return it->second;
}

void
HotListCache::offer(cluster_t list, const void *primary,
                    std::size_t primary_bytes, const void *secondary,
                    std::size_t secondary_bytes)
{
    if (!enabled())
        return;
    // Chaos hook: an injected admission failure degrades to "don't
    // cache this list" — the scan that made the offer already has the
    // data, so a flaky cache must never fail a query.
    try {
        fault::inject("cache.admit");
    } catch (const FaultInjectedError &) {
        return;
    }
    const std::size_t bytes = primary_bytes + secondary_bytes;
    if (bytes == 0)
        return;
    MutexLock lock(mutex_);
    const auto idx = static_cast<std::size_t>(list);
    JUNO_ASSERT(idx < freq_.size(), "list " << list << " of "
                                            << freq_.size());
    if (entries_.count(list) != 0)
        return; // raced with another scanner's offer
    if (bytes > budget_) {
        ++counters_.rejected_capacity;
        return;
    }
    // Evict strictly-colder residents until the offer fits; give up
    // (keep the residents) the moment the coldest survivor is at
    // least as hot as the candidate — admission never lets a
    // one-hit-wonder displace proven traffic.
    const std::uint32_t candidate_freq = freq_[idx];
    while (pinned_bytes_ + bytes > budget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                freq_[static_cast<std::size_t>(it->first)] <
                    freq_[static_cast<std::size_t>(victim->first)])
                victim = it;
        }
        JUNO_ASSERT(victim != entries_.end(),
                    "budget accounting out of sync");
        if (freq_[static_cast<std::size_t>(victim->first)] >=
            candidate_freq) {
            ++counters_.rejected_policy;
            return;
        }
        pinned_bytes_ -= victim->second->bytes();
        entries_.erase(victim); // in-flight readers hold their ptr
        ++counters_.evicted;
    }
    auto entry = std::make_shared<CachedList>();
    entry->primary.assign(
        static_cast<const std::uint8_t *>(primary),
        static_cast<const std::uint8_t *>(primary) + primary_bytes);
    if (secondary_bytes > 0)
        entry->secondary.assign(
            static_cast<const std::uint8_t *>(secondary),
            static_cast<const std::uint8_t *>(secondary) +
                secondary_bytes);
    pinned_bytes_ += bytes;
    entries_.emplace(list, std::move(entry));
    ++counters_.admitted;
}

HotListCache::Counters
HotListCache::counters() const
{
    MutexLock lock(mutex_);
    Counters c = counters_;
    c.pinned_bytes = pinned_bytes_;
    c.resident_lists = entries_.size();
    c.budget_bytes = budget_;
    return c;
}

std::int64_t
HotListCache::parseByteSize(const std::string &text)
{
    // The checked parser lives in common/parse.cc so byte-size flags
    // share one overflow-safe implementation; this wrapper keeps the
    // legacy -1-on-error contract for existing callers.
    const auto bytes = juno::parseByteSize(text);
    return bytes ? *bytes : -1;
}

std::int64_t
HotListCache::budgetFromEnv()
{
    const char *env = std::getenv("JUNO_MEM_BUDGET");
    if (env == nullptr)
        return -1;
    const std::int64_t bytes = parseByteSize(env);
    if (bytes < 0)
        warn(std::string("ignoring unparseable JUNO_MEM_BUDGET='") +
             env + "' (want bytes with optional k/m/g suffix)");
    return bytes;
}

} // namespace juno
