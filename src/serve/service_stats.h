/**
 * @file
 * SLO accounting for the serving layer: admission counters plus
 * per-request latency split into its queue / batch-assembly / search
 * components, each feeding a QuantileSketch so snapshots report the
 * p50/p95/p99 a latency SLO is written against.
 *
 * Recording is sharded: each recording thread hashes to one of a
 * fixed set of sketch shards and only locks that shard, and
 * snapshot() combines shards with QuantileSketch::merge() — quantiles
 * of the merged sketch are exactly those of the union of samples, so
 * nothing is lost relative to one global sketch while dispatcher
 * threads never serialise behind each other on the stats path.
 */
#ifndef JUNO_SERVE_SERVICE_STATS_H
#define JUNO_SERVE_SERVICE_STATS_H

#include <array>
#include <atomic>
#include <cstdint>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "live/live_index.h"
#include "serve/hot_list_cache.h"

namespace juno {

/**
 * Process-level memory/paging readings for out-of-core serving
 * reports: resident set size plus cumulative page-fault counts.
 * Snapshots report fault *deltas* against the reading taken at
 * service start, so they attribute faults to serving rather than to
 * process startup.
 */
struct ResourceUsage {
    std::size_t rss_bytes = 0;      ///< current resident set size
    std::uint64_t major_faults = 0; ///< faults that required IO
    std::uint64_t minor_faults = 0; ///< faults served from page cache
};

/**
 * Reads the calling process's current usage: RSS from
 * /proc/self/statm when available (ru_maxrss as a fallback), fault
 * counters from getrusage(RUSAGE_SELF). Fields read as 0 on platforms
 * exposing neither.
 */
ResourceUsage readResourceUsage();

/** p50/p95/p99 summary of one latency component (microseconds). */
struct LatencySummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Counters and latency sketches of one SearchService. */
class ServiceStats {
  public:
    /**
     * Point-in-time copy of every counter and quantile. Once stop()
     * has drained, submitted == completed + failed + expired (every
     * accepted request's future was fulfilled exactly once: with a
     * value, with the engine's exception, or with kExpired when shed
     * at dequeue).
     */
    struct Snapshot {
        std::uint64_t submitted = 0;  ///< accepted into the queue
        std::uint64_t completed = 0;  ///< futures fulfilled with a value
        std::uint64_t failed = 0; ///< futures fulfilled with an
                                  ///< exception (engine failure)
        std::uint64_t rejected_full = 0; ///< shed: queue at capacity
        std::uint64_t rejected_stopped = 0; ///< shed: not running
        /** Shed at the door: deadline already past at submit(). */
        std::uint64_t rejected_expired = 0;
        /** Accepted, then shed at dequeue past its deadline (doomed
         * work elimination); the future carries kExpired. */
        std::uint64_t expired = 0;
        /** Value-completed requests flagged ResultList::degraded. */
        std::uint64_t degraded = 0;
        /** Batches dispatched under reduced quality (tier > 0, or at
         * least one deadline-cut query). */
        std::uint64_t degraded_batches = 0;
        /** Current degradation tier (0 = full quality). Filled by
         * SearchService::snapshot(); bare snapshots read 0. */
        int degradation_tier = 0;
        std::uint64_t batches = 0;      ///< dispatched engine batches
        double mean_batch = 0.0;        ///< completed / batches
        LatencySummary queue_us;  ///< submit -> batch drain
        LatencySummary batch_us;  ///< drain -> batch assembled
        LatencySummary search_us; ///< engine execution
        LatencySummary total_us;  ///< submit -> future fulfilled
        /**
         * Hot-list cache counters of the served index (all zero when
         * no cache is attached). Filled by SearchService::snapshot();
         * a bare ServiceStats::snapshot() leaves it zeroed.
         */
        HotListCache::Counters cache;
        /**
         * Current RSS plus page-fault deltas since service start()
         * (the out-of-core signal: major faults are scans paying real
         * IO). Filled by SearchService::snapshot().
         */
        ResourceUsage usage;
        /**
         * Service-level live-mutation admission counters (zero when
         * the served index is immutable): ops *applied* through the
         * service plus ops it refused (and why, coarsely).
         */
        std::uint64_t live_inserts = 0;
        std::uint64_t live_removes = 0;
        std::uint64_t live_upserts = 0;
        std::uint64_t live_rejected = 0;
        /**
         * The served LiveIndex's freshness/merge statistics. Filled by
         * SearchService::snapshot() when live_enabled; zeroed (and
         * meaningless) otherwise.
         */
        LiveStats live;
        /** True when the served index supports live mutation. */
        bool live_enabled = false;
    };

    void recordAccepted() { submitted_.fetch_add(1); }
    void recordRejectedFull() { rejected_full_.fetch_add(1); }
    void recordRejectedStopped() { rejected_stopped_.fetch_add(1); }
    void recordRejectedExpired() { rejected_expired_.fetch_add(1); }

    /** @p n accepted requests shed at dequeue (futures got kExpired). */
    void recordExpired(std::size_t n) { expired_.fetch_add(n); }

    /** @p n value-completed requests flagged degraded. */
    void recordDegraded(std::size_t n) { degraded_.fetch_add(n); }

    /** One batch dispatched under reduced quality. */
    void recordDegradedBatch() { degraded_batches_.fetch_add(1); }

    /** One fulfilled request's latency components (microseconds). */
    void recordCompletion(double queue_us, double batch_us,
                          double search_us, double total_us);

    /**
     * Batched variant: all four component vectors must have equal
     * length n. Takes the recording thread's shard lock once for the
     * whole batch — the dispatcher's completion loop amortises its
     * stats cost across the micro-batch like everything else it does.
     */
    void recordCompletions(const std::vector<double> &queue_us,
                           const std::vector<double> &batch_us,
                           const std::vector<double> &search_us,
                           const std::vector<double> &total_us);

    /** One dispatched batch of @p size requests. */
    void recordBatch(std::size_t size);

    /** @p n requests whose futures carry an engine exception. */
    void recordFailed(std::size_t n) { failed_.fetch_add(n); }

    /** One live mutation admitted through the service: bumps the
     * per-op applied counter, or the rejected counter on refusal. */
    void
    recordLiveOp(LiveOp op, bool applied)
    {
        if (!applied) {
            live_rejected_.fetch_add(1);
            return;
        }
        switch (op) {
        case LiveOp::kInsert:
            live_inserts_.fetch_add(1);
            break;
        case LiveOp::kRemove:
            live_removes_.fetch_add(1);
            break;
        case LiveOp::kUpsert:
            live_upserts_.fetch_add(1);
            break;
        }
    }

    std::uint64_t submitted() const { return submitted_.load(); }
    std::uint64_t completed() const { return completed_.load(); }
    std::uint64_t failed() const { return failed_.load(); }
    std::uint64_t rejectedFull() const { return rejected_full_.load(); }
    std::uint64_t
    rejectedStopped() const
    {
        return rejected_stopped_.load();
    }
    std::uint64_t
    rejectedExpired() const
    {
        return rejected_expired_.load();
    }
    std::uint64_t expired() const { return expired_.load(); }
    std::uint64_t degraded() const { return degraded_.load(); }
    std::uint64_t
    degradedBatches() const
    {
        return degraded_batches_.load();
    }
    std::uint64_t batches() const { return batches_.load(); }
    std::uint64_t liveInserts() const { return live_inserts_.load(); }
    std::uint64_t liveRemoves() const { return live_removes_.load(); }
    std::uint64_t liveUpserts() const { return live_upserts_.load(); }
    std::uint64_t
    liveRejected() const
    {
        return live_rejected_.load();
    }

    /** One latency component of the split (for single exports). */
    enum class Component { kQueue, kBatch, kSearch, kTotal };

    /**
     * Merges the shards of just one component — what the metrics
     * registry's per-component summary callbacks pull, so exporting
     * four summaries does not digest the other three streams four
     * times over.
     */
    LatencySummary componentSummary(Component component) const;

    /**
     * Merges the per-thread shards into one summary per component.
     * Safe to call concurrently with recording; the snapshot is a
     * consistent union of everything recorded before the call plus
     * possibly some records that race with it.
     */
    Snapshot snapshot() const;

  private:
    static constexpr std::size_t kShards = 8;

    /** One recording thread's sketch set (chosen by thread-id hash). */
    struct alignas(64) Shard {
        mutable Mutex mutex;
        QuantileSketch queue_us JUNO_GUARDED_BY(mutex);
        QuantileSketch batch_us JUNO_GUARDED_BY(mutex);
        QuantileSketch search_us JUNO_GUARDED_BY(mutex);
        QuantileSketch total_us JUNO_GUARDED_BY(mutex);
    };

    Shard &localShard();

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> rejected_full_{0};
    std::atomic<std::uint64_t> rejected_stopped_{0};
    std::atomic<std::uint64_t> rejected_expired_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> degraded_{0};
    std::atomic<std::uint64_t> degraded_batches_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batched_requests_{0};
    std::atomic<std::uint64_t> live_inserts_{0};
    std::atomic<std::uint64_t> live_removes_{0};
    std::atomic<std::uint64_t> live_upserts_{0};
    std::atomic<std::uint64_t> live_rejected_{0};
    std::array<Shard, kShards> shards_;
};

} // namespace juno

#endif // JUNO_SERVE_SERVICE_STATS_H
