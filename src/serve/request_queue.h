/**
 * @file
 * Bounded MPMC queue with micro-batch draining: the admission edge of
 * the serving layer.
 *
 * Producers (client threads) never block — a full queue rejects, which
 * is the service's admission control: under overload the system sheds
 * work at the door instead of building an unbounded latency backlog
 * (the queue would otherwise absorb arbitrary wait time and every p99
 * target with it). Consumers (dispatcher threads) drain in batches
 * under the paper's dual trigger: a batch closes when it reaches
 * max_items OR when the linger window expires, whichever comes first,
 * trading a bounded latency add for the amortisation that large
 * dispatched batches buy (JUNO Sec. 5.3).
 *
 * Notify-protocol invariant: a producer must call cv_.notify_all()
 * after (and only after) releasing the mutex whenever its push made
 * either wake condition true — (a) at least one consumer is parked on
 * an empty queue (waiting_empty_ > 0), or (b) the backlog reached the
 * smallest armed linger target (items_.size() >= armed_batch_). Both
 * flags are read under the same lock that published the push, so a
 * consumer can never park *after* missing the push that should have
 * woken it. Every consumer wait is nevertheless time-bounded (the
 * linger wait by its deadline, the empty wait by kEmptyWaitPoll): a
 * notify lost to a crash-injected producer — the `queue.notify` fault
 * site below — or a future protocol bug costs one bounded poll
 * interval, never a livelock. close() wakes everyone unconditionally.
 */
#ifndef JUNO_SERVE_REQUEST_QUEUE_H
#define JUNO_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/thread_annotations.h"

namespace juno {

/** Outcome of a non-blocking push. */
enum class PushResult {
    kOk,     ///< accepted
    kFull,   ///< rejected: queue at capacity (admission control)
    kClosed, ///< rejected: queue closed (service stopping/stopped)
};

/**
 * Mutex-based bounded multi-producer multi-consumer queue whose
 * consumers pop in micro-batches. T must be movable.
 */
template <typename T> class BoundedMpmcQueue {
  public:
    explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity)
    {
        JUNO_REQUIRE(capacity > 0, "queue capacity must be positive");
    }

    BoundedMpmcQueue(const BoundedMpmcQueue &) = delete;
    BoundedMpmcQueue &operator=(const BoundedMpmcQueue &) = delete;

    /** Non-blocking enqueue; never waits for space. */
    PushResult
    tryPush(T &&item) JUNO_EXCLUDES(mutex_)
    {
        bool wake = false;
        {
            MutexLock lock(mutex_);
            if (closed_)
                return PushResult::kClosed;
            if (items_.size() >= capacity_)
                return PushResult::kFull;
            items_.push_back(std::move(item));
            // Wake-threshold protocol: notifying on *every* push would
            // make a lingering consumer eat one futex wake per
            // request — precisely the per-request cost micro-batching
            // exists to amortise. Producers only wake the cv when an
            // idle consumer is parked on an empty queue, or when the
            // backlog just reached a linger-waiter's batch target
            // (its timeout covers every case in between).
            wake = waiting_empty_ > 0 || items_.size() >= armed_batch_;
        }
        // Chaos hook: models a producer dying between publishing its
        // item and notifying. The bounded waits below absorb it.
        if (wake && fault::fired("queue.notify"))
            wake = false;
        if (wake)
            cv_.notify_all();
        return PushResult::kOk;
    }

    /**
     * Drains the next micro-batch into @p out (cleared first).
     * Blocks until at least one item is available, then waits at most
     * @p linger for the batch to fill to @p max_items (the dual
     * trigger; close() also ends the wait). Returns false only when
     * the queue is closed AND empty — i.e. a draining consumer
     * processes everything accepted before it sees the shutdown.
     */
    bool
    popBatch(std::vector<T> &out, std::size_t max_items,
             std::chrono::microseconds linger) JUNO_EXCLUDES(mutex_)
    {
        JUNO_REQUIRE(max_items > 0, "batch size must be positive");
        out.clear();
        CvLock lock(mutex_);
        for (;;) {
            ++waiting_empty_;
            // wait_for, not wait: the poll bound turns a lost wake
            // (see the notify-protocol invariant above) into a short
            // stall instead of a livelock.
            while (items_.empty() && !closed_)
                cv_.wait_for(lock.native(), kEmptyWaitPoll);
            --waiting_empty_;
            if (items_.empty())
                return false; // closed and fully drained
            if (linger.count() > 0 && items_.size() < max_items &&
                !closed_) {
                // Arm the producers' wake threshold for this linger
                // wait. With several concurrently-lingering consumers
                // the smallest target wins; a stale-low threshold
                // after one leaves only costs spurious wakes, never a
                // stall (the timeout below always fires).
                ++armed_waiters_;
                armed_batch_ = std::min(armed_batch_, max_items);
                const auto deadline =
                    std::chrono::steady_clock::now() + linger;
                while (items_.size() < max_items && !closed_) {
                    if (cv_.wait_until(lock.native(), deadline) ==
                        std::cv_status::timeout)
                        break;
                }
                if (--armed_waiters_ == 0)
                    armed_batch_ = kUnarmed;
            }
            // The linger wait releases the lock: with several
            // consumers the queue may be empty again by now.
            if (!items_.empty())
                break;
            if (closed_)
                return false;
        }
        const std::size_t n = std::min(items_.size(), max_items);
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return true;
    }

    /**
     * Closes the queue: subsequent pushes are rejected with kClosed;
     * blocked consumers wake, drain what remains, then get false.
     * Idempotent.
     */
    void
    close() JUNO_EXCLUDES(mutex_)
    {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool
    closed() const JUNO_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const JUNO_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    static constexpr std::size_t kUnarmed = static_cast<std::size_t>(-1);
    /** Upper bound on an empty-queue park after a lost wake. */
    static constexpr std::chrono::milliseconds kEmptyWaitPoll{10};

    const std::size_t capacity_;
    mutable Mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_ JUNO_GUARDED_BY(mutex_);
    bool closed_ JUNO_GUARDED_BY(mutex_) = false;
    /** Consumers parked on an empty queue (wake on first push). */
    std::size_t waiting_empty_ JUNO_GUARDED_BY(mutex_) = 0;
    /** Consumers inside a linger wait, and the size that wakes them. */
    std::size_t armed_waiters_ JUNO_GUARDED_BY(mutex_) = 0;
    std::size_t armed_batch_ JUNO_GUARDED_BY(mutex_) = kUnarmed;
};

} // namespace juno

#endif // JUNO_SERVE_REQUEST_QUEUE_H
