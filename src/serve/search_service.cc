#include "serve/search_service.h"

#include <algorithm>
#include <cstring>
#include <exception>

#include "common/logging.h"
#include "registry/index_factory.h"

namespace juno {

namespace {

double
micros(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

std::unique_ptr<AnnIndex>
requireIndex(std::unique_ptr<AnnIndex> index)
{
    JUNO_REQUIRE(index != nullptr, "warm start needs an index");
    return index;
}

} // namespace

SearchService::SearchService(AnnIndex &index, ServiceConfig config)
    : index_(index), config_(config), queue_(config.queue_capacity)
{
    JUNO_REQUIRE(config_.max_batch > 0,
                 "max_batch must be positive (1 = no batching)");
    JUNO_REQUIRE(config_.linger.count() >= 0, "linger must be >= 0");
    JUNO_REQUIRE(config_.dispatchers > 0,
                 "need at least one dispatcher");
}

SearchService::SearchService(std::unique_ptr<AnnIndex> index,
                             ServiceConfig config)
    : owned_index_(requireIndex(std::move(index))),
      index_(*owned_index_), config_(config),
      queue_(config.queue_capacity)
{
    JUNO_REQUIRE(config_.max_batch > 0,
                 "max_batch must be positive (1 = no batching)");
    JUNO_REQUIRE(config_.linger.count() >= 0, "linger must be >= 0");
    JUNO_REQUIRE(config_.dispatchers > 0,
                 "need at least one dispatcher");
}

SearchService::SearchService(const std::string &snapshot_path,
                             ServiceConfig config,
                             const SnapshotOptions &options)
    : SearchService(openIndex(snapshot_path, options), config)
{
}

SearchService::~SearchService()
{
    stop();
}

void
SearchService::start()
{
    MutexLock lock(lifecycle_mutex_);
    JUNO_REQUIRE(state_ == State::kIdle,
                 "SearchService is one-shot: start() called on a "
                 "running or stopped service");
    // Resolve the out-of-core budget before any query runs: explicit
    // config wins, then JUNO_MEM_BUDGET, else the index is left as
    // configured. setMemoryBudget returning false (index type without
    // an IO-aware path) just means serving stays pure-mmap.
    std::int64_t budget = config_.memory_budget_bytes;
    if (budget < 0)
        budget = HotListCache::budgetFromEnv();
    if (budget >= 0)
        index_.setMemoryBudget(budget);
    base_usage_ = readResourceUsage();
    state_ = State::kRunning;
    running_.store(true);
    dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
    for (int i = 0; i < config_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

ServiceStats::Snapshot
SearchService::snapshot() const
{
    ServiceStats::Snapshot snap = stats_.snapshot();
    if (const auto cache = index_.hotListCache())
        snap.cache = cache->counters();
    const ResourceUsage now = readResourceUsage();
    // base_usage_ is written by start(); reading it under the
    // lifecycle lock keeps a snapshot racing with start() coherent.
    ResourceUsage base;
    {
        MutexLock lock(lifecycle_mutex_);
        base = base_usage_;
    }
    snap.usage.rss_bytes = now.rss_bytes;
    snap.usage.major_faults = now.major_faults - base.major_faults;
    snap.usage.minor_faults = now.minor_faults - base.minor_faults;
    return snap;
}

void
SearchService::stop()
{
    // Joining under the lifecycle lock makes concurrent stop() calls
    // all block until the drain completes (dispatchers never touch
    // this lock, so no deadlock).
    MutexLock lock(lifecycle_mutex_);
    if (state_ == State::kStopped)
        return;
    running_.store(false);
    queue_.close(); // dispatchers drain the backlog, then exit
    for (auto &d : dispatchers_)
        d.join();
    dispatchers_.clear();
    state_ = State::kStopped;
}

std::future<ResultList>
SearchService::submit(const float *query, idx_t k)
{
    JUNO_REQUIRE(k >= 0, "k must be non-negative");
    if (!running_.load()) {
        stats_.recordRejectedStopped();
        return {};
    }
    Request request;
    const auto d = static_cast<std::size_t>(index_.dim());
    request.query.assign(query, query + d);
    request.k = k;
    request.t_submit = Clock::now();
    std::future<ResultList> future = request.promise.get_future();
    switch (queue_.tryPush(std::move(request))) {
    case PushResult::kOk:
        stats_.recordAccepted();
        return future;
    case PushResult::kFull:
        stats_.recordRejectedFull();
        return {};
    case PushResult::kClosed:
        // stop() raced with the running_ check above; the request was
        // never enqueued, so rejecting is loss-free.
        stats_.recordRejectedStopped();
        return {};
    }
    return {}; // unreachable
}

std::future<ResultList>
SearchService::submit(const std::vector<float> &query, idx_t k)
{
    JUNO_REQUIRE(static_cast<idx_t>(query.size()) == index_.dim(),
                 "query has " << query.size() << " dims, index has "
                              << index_.dim());
    return submit(query.data(), k);
}

void
SearchService::dispatchLoop()
{
    // Per-dispatcher scratch, reused across micro-batches: the query
    // matrix, the engine's result table (via the batch-submit hook)
    // and the drained request vector never reallocate in steady
    // state. Below the hook, the engine's checked-out SearchContexts
    // persist too, so the whole dispatch path is allocation-quiet.
    std::vector<Request> batch;
    std::vector<float> queries;
    SearchResults results;
    std::vector<double> lat_queue, lat_batch, lat_search, lat_total;
    const idx_t dim = index_.dim();

    while (queue_.popBatch(batch, static_cast<std::size_t>(
                                      config_.max_batch),
                           config_.linger)) {
        const auto t_drain = Clock::now();
        const idx_t n = static_cast<idx_t>(batch.size());
        queries.resize(static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(dim));
        // Requests may ask for different k; the batch dispatches at
        // the maximum and each result list truncates to its own k
        // afterwards (top-m is a prefix of top-k for m <= k, results
        // being best-first).
        idx_t k_max = 0;
        for (idx_t i = 0; i < n; ++i) {
            const auto &r = batch[static_cast<std::size_t>(i)];
            std::memcpy(queries.data() + static_cast<std::size_t>(i) *
                                             static_cast<std::size_t>(dim),
                        r.query.data(),
                        static_cast<std::size_t>(dim) * sizeof(float));
            k_max = std::max(k_max, r.k);
        }

        SearchRequest request(
            FloatMatrixView(queries.data(), n, dim), SearchOptions{});
        request.options.k = k_max;
        request.options.threads = config_.search_threads;
        request.options.batch_size = config_.engine_chunk;
        request.options.collect_stats = config_.collect_stage_stats;
        // Explicit service budgets ride along on every batch so a
        // configured detach (0) stays detached even when the
        // environment sets JUNO_MEM_BUDGET.
        request.options.memory_budget_bytes = config_.memory_budget_bytes;

        const auto t_ready = Clock::now();
        bool ok = true;
        std::exception_ptr error;
        try {
            index_.search(request, results);
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }
        const auto t_done = Clock::now();

        lat_queue.clear();
        lat_batch.clear();
        lat_search.clear();
        lat_total.clear();
        for (idx_t i = 0; i < n; ++i) {
            auto &r = batch[static_cast<std::size_t>(i)];
            if (!ok) {
                // Propagate the engine failure to every waiter rather
                // than abandoning promises (broken_promise hides the
                // cause).
                r.promise.set_exception(error);
                continue;
            }
            auto &list = results[static_cast<std::size_t>(i)];
            if (static_cast<idx_t>(list.size()) > r.k)
                list.resize(static_cast<std::size_t>(r.k));
            r.promise.set_value(std::move(list));
            lat_queue.push_back(micros(t_drain - r.t_submit));
            lat_batch.push_back(micros(t_ready - t_drain));
            lat_search.push_back(micros(t_done - t_ready));
            lat_total.push_back(micros(t_done - r.t_submit));
        }
        if (ok) {
            stats_.recordCompletions(lat_queue, lat_batch, lat_search,
                                     lat_total);
            stats_.recordBatch(static_cast<std::size_t>(n));
        } else {
            // Exception-fulfilled futures still settle the accepted
            // requests: without this, submitted == completed + failed
            // would break forever after one engine failure.
            stats_.recordFailed(static_cast<std::size_t>(n));
        }
    }
}

} // namespace juno
